//! The [`Actor`] trait and per-activation [`Ctx`].

use crate::addr::Addr;
use crate::system::System;

/// A message-driven state machine.
///
/// Actors encapsulate mutable state that is only ever touched by the runtime
/// while handling a message, one message at a time — there is no shared
/// state and no locking in user code (the actor-model contract the paper
/// relies on). Messages from a single sender are delivered in order.
pub trait Actor: Sized + Send + 'static {
    /// The mailbox message type.
    type Msg: Send + 'static;

    /// Handle one message. Called by exactly one worker thread at a time.
    fn handle(&mut self, msg: Self::Msg, ctx: &mut Ctx<'_, Self>);

    /// Called once, on the spawning thread, before any message is handled.
    fn started(&mut self, ctx: &mut Ctx<'_, Self>) {
        let _ = ctx;
    }

    /// Called after the actor stops (graceful [`Ctx::stop`] only; not after
    /// a panic, since the state may be corrupt).
    fn stopped(&mut self) {}
}

/// Per-activation context handed to [`Actor::handle`].
pub struct Ctx<'a, A: Actor> {
    pub(crate) addr: Addr<A>,
    pub(crate) system: &'a System,
    pub(crate) stop: bool,
}

impl<'a, A: Actor> Ctx<'a, A> {
    /// The address of the actor being activated (for self-sends or for
    /// handing out to other actors).
    pub fn addr(&self) -> Addr<A> {
        self.addr.clone()
    }

    /// The owning system, e.g. to spawn children.
    pub fn system(&self) -> &System {
        self.system
    }

    /// Request a graceful stop: after the current message returns, the actor
    /// processes no further messages, [`Actor::stopped`] runs, and pending
    /// mailbox contents are dropped.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}
