//! Actor addresses: typed [`Addr`] and message-typed [`Recipient`].

use std::fmt;
use std::sync::Arc;

use crate::actor::Actor;
use crate::cell::Cell;
use crate::error::SendError;

/// A cheap, cloneable handle for sending messages to an actor of type `A`.
///
/// Sends are asynchronous: [`Addr::send`] enqueues the message and returns
/// immediately (the paper's principle (c): the sender "can go back to its
/// execution immediately").
pub struct Addr<A: Actor> {
    cell: Arc<Cell<A>>,
}

impl<A: Actor> Addr<A> {
    pub(crate) fn from_cell(cell: Arc<Cell<A>>) -> Self {
        Addr { cell }
    }

    /// Deliver `msg` to the actor's mailbox. Never blocks. Fails only if
    /// the actor is dead; the message is returned inside the error.
    pub fn send(&self, msg: A::Msg) -> Result<(), SendError<A::Msg>> {
        self.cell.deliver(msg)
    }

    /// Whether the actor can still receive messages.
    pub fn is_alive(&self) -> bool {
        self.cell.is_alive()
    }

    /// Messages currently waiting in the actor's mailbox. A racy snapshot
    /// (messages may land or drain concurrently) — meant for backlog
    /// gauges and admission-control heuristics, not for synchronization.
    pub fn queue_len(&self) -> usize {
        self.cell.queue_len()
    }

    /// Erase the actor type, keeping only the ability to send `M` (with a
    /// conversion into the actor's message type).
    pub fn recipient<M>(&self) -> Recipient<M>
    where
        M: Send + 'static,
        A::Msg: From<M>,
    {
        let cell = self.cell.clone();
        let cell2 = self.cell.clone();
        Recipient {
            send_fn: Arc::new(move |m: M| match cell.deliver(A::Msg::from(m)) {
                Ok(()) => Ok(()),
                // The conversion into A::Msg is not reversible, so the
                // payload cannot be handed back.
                Err(SendError(_lost)) => Err(SendError(())),
            }),
            alive: Arc::new(move || cell2.is_alive()),
        }
    }
}

impl<A: Actor> Clone for Addr<A> {
    fn clone(&self) -> Self {
        Addr {
            cell: self.cell.clone(),
        }
    }
}

impl<A: Actor> fmt::Debug for Addr<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Addr<{}>(alive={})",
            std::any::type_name::<A>(),
            self.is_alive()
        )
    }
}

/// A type-erased sender for messages of type `M`.
///
/// Obtained from [`Addr::recipient`]; useful when a component only needs to
/// emit `M`s without knowing which actor type consumes them.
pub struct Recipient<M: Send + 'static> {
    #[allow(clippy::type_complexity)]
    send_fn: Arc<dyn Fn(M) -> Result<(), SendError<()>> + Send + Sync>,
    alive: Arc<dyn Fn() -> bool + Send + Sync>,
}

impl<M: Send + 'static> Recipient<M> {
    /// Deliver `msg`. On failure the payload has already been converted
    /// into the target actor's message type and cannot be recovered.
    pub fn send(&self, msg: M) -> Result<(), SendError<()>> {
        (self.send_fn)(msg)
    }

    /// Whether the destination actor can still receive messages.
    pub fn is_alive(&self) -> bool {
        (self.alive)()
    }
}

impl<M: Send + 'static> Clone for Recipient<M> {
    fn clone(&self) -> Self {
        Recipient {
            send_fn: self.send_fn.clone(),
            alive: self.alive.clone(),
        }
    }
}

impl<M: Send + 'static> fmt::Debug for Recipient<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Recipient<{}>", std::any::type_name::<M>())
    }
}
