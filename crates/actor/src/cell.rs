//! The actor cell: mailbox + state + scheduling status.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crossbeam_queue::SegQueue;
use parking_lot::Mutex;

use crate::actor::{Actor, Ctx};
use crate::scheduler::{Runnable, Scheduler};
use crate::system::{FailureEvent, System};

/// Actor lifecycle / scheduling status.
///
/// `IDLE` — not on any run queue; a sender that observes this transitions it
/// to `SCHEDULED` and enqueues the cell (the *at-most-once* invariant).
/// `SCHEDULED` — on a run queue or currently being run by a worker.
/// `DEAD` — stopped or panicked; the state has been dropped.
const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const DEAD: u8 = 2;

/// Panic payload as a string, when it is one (`panic!("...")` and
/// `panic!(format!...)` both are). Carried on the [`FailureEvent`] so the
/// escalation handler can attribute the death.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
}

/// Restart bookkeeping for supervised actors.
struct Supervision<A> {
    factory: Box<dyn FnMut() -> A + Send>,
    restarts_left: usize,
    restarts_used: usize,
}

pub(crate) struct Cell<A: Actor> {
    mailbox: SegQueue<A::Msg>,
    /// Actor state. `None` once dead. The status word guarantees only one
    /// worker activates the cell at a time, so this lock is uncontended; it
    /// exists to keep the unsafe surface zero.
    state: Mutex<Option<A>>,
    /// Present for supervised actors: rebuilds the state after a panic.
    supervision: Mutex<Option<Supervision<A>>>,
    status: AtomicU8,
    system: System,
}

impl<A: Actor> Cell<A> {
    pub(crate) fn new(actor: A, system: System) -> Arc<Self> {
        Arc::new(Cell {
            mailbox: SegQueue::new(),
            state: Mutex::new(Some(actor)),
            supervision: Mutex::new(None),
            status: AtomicU8::new(IDLE),
            system,
        })
    }

    pub(crate) fn new_supervised(
        mut factory: Box<dyn FnMut() -> A + Send>,
        max_restarts: usize,
        system: System,
    ) -> Arc<Self> {
        let actor = factory();
        Arc::new(Cell {
            mailbox: SegQueue::new(),
            state: Mutex::new(Some(actor)),
            supervision: Mutex::new(Some(Supervision {
                factory,
                restarts_left: max_restarts,
                restarts_used: 0,
            })),
            status: AtomicU8::new(IDLE),
            system,
        })
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.status.load(Ordering::Acquire) != DEAD
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.mailbox.len()
    }

    /// Enqueue a message and make sure the cell is scheduled.
    pub(crate) fn deliver(self: &Arc<Self>, msg: A::Msg) -> Result<(), crate::SendError<A::Msg>> {
        if !self.is_alive() {
            return Err(crate::SendError(msg));
        }
        self.mailbox.push(msg);
        self.system
            .metrics()
            .messages_sent
            .fetch_add(1, Ordering::Relaxed);
        self.try_schedule();
        Ok(())
    }

    fn try_schedule(self: &Arc<Self>) {
        if self
            .status
            .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let task: Arc<dyn Runnable> = self.clone();
            self.system.scheduler().schedule(task);
        }
    }

    /// Run `started` on the spawning thread before any message arrives.
    pub(crate) fn run_started(self: &Arc<Self>) {
        let mut guard = self.state.lock();
        if let Some(actor) = guard.as_mut() {
            let mut ctx = Ctx {
                addr: crate::addr::Addr::from_cell(self.clone()),
                system: &self.system,
                stop: false,
            };
            actor.started(&mut ctx);
            if ctx.stop {
                if let Some(mut a) = guard.take() {
                    a.stopped();
                }
                self.status.store(DEAD, Ordering::Release);
            }
        }
    }

    fn kill(&self, guard: &mut Option<A>, graceful: bool) {
        if let Some(mut a) = guard.take() {
            if graceful {
                a.stopped();
            }
        }
        self.status.store(DEAD, Ordering::Release);
        // Drop anything left in the mailbox.
        while self.mailbox.pop().is_some() {}
    }
}

impl<A: Actor> Runnable for Cell<A> {
    fn run(self: Arc<Self>, sched: &Arc<Scheduler>) {
        let mut guard = self.state.lock();
        let batch = sched.batch;
        let mut processed = 0usize;
        while processed < batch {
            let Some(msg) = self.mailbox.pop() else { break };
            let Some(actor) = guard.as_mut() else {
                // Dead while messages were still queued; drop them.
                drop(guard.take());
                self.status.store(DEAD, Ordering::Release);
                return;
            };
            let mut ctx = Ctx {
                addr: crate::addr::Addr::from_cell(self.clone()),
                system: &self.system,
                stop: false,
            };
            let outcome =
                std::panic::catch_unwind(AssertUnwindSafe(|| actor.handle(msg, &mut ctx)));
            processed += 1;
            sched
                .metrics
                .messages_handled
                .fetch_add(1, Ordering::Relaxed);
            match outcome {
                Ok(()) if ctx.stop => {
                    self.kill(&mut guard, true);
                    return;
                }
                Ok(()) => {}
                Err(panic) => {
                    let detail = panic_detail(panic.as_ref());
                    sched.metrics.panics.fetch_add(1, Ordering::Relaxed);
                    // Supervised actors are rebuilt from their factory and
                    // keep draining the mailbox (the poisoned message is
                    // consumed); unsupervised actors die. Every
                    // panic-death raises exactly one FailureEvent so a
                    // watching engine learns the fleet is short a member
                    // instead of waiting forever.
                    let mut sup = self.supervision.lock();
                    match sup.as_mut() {
                        Some(s) if s.restarts_left > 0 => {
                            s.restarts_left -= 1;
                            s.restarts_used += 1;
                            let used = s.restarts_used;
                            sched.metrics.restarts.fetch_add(1, Ordering::Relaxed);
                            let fresh = (s.factory)();
                            drop(sup);
                            *guard = Some(fresh);
                            let actor = guard.as_mut().expect("just replaced");
                            let mut ctx = Ctx {
                                addr: crate::addr::Addr::from_cell(self.clone()),
                                system: &self.system,
                                stop: false,
                            };
                            // `started` runs actor code too: a panic here
                            // must kill the cell (and escalate) rather
                            // than unwind past this loop with the status
                            // still SCHEDULED — a wedged cell that can
                            // never be scheduled again.
                            let started = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                actor.started(&mut ctx)
                            }));
                            match started {
                                Ok(()) if ctx.stop => {
                                    self.kill(&mut guard, true);
                                    return;
                                }
                                Ok(()) => {}
                                Err(panic) => {
                                    sched.metrics.panics.fetch_add(1, Ordering::Relaxed);
                                    self.kill(&mut guard, false);
                                    self.system.notify_failure(FailureEvent {
                                        actor: std::any::type_name::<A>(),
                                        supervised: true,
                                        restarts_used: used,
                                        detail: panic_detail(panic.as_ref()),
                                    });
                                    return;
                                }
                            }
                        }
                        exhausted => {
                            let supervised = exhausted.is_some();
                            let restarts_used =
                                exhausted.as_ref().map(|s| s.restarts_used).unwrap_or(0);
                            drop(sup);
                            self.kill(&mut guard, false);
                            self.system.notify_failure(FailureEvent {
                                actor: std::any::type_name::<A>(),
                                supervised,
                                restarts_used,
                                detail,
                            });
                            return;
                        }
                    }
                }
            }
        }
        drop(guard);
        if !self.mailbox.is_empty() {
            // Still work to do: stay SCHEDULED and requeue ourselves so
            // other actors get a turn (fair scheduling).
            let task: Arc<dyn Runnable> = self.clone();
            self.system.scheduler().schedule(task);
        } else {
            self.status.store(IDLE, Ordering::Release);
            // A message may have raced in between the emptiness check and
            // the IDLE store; its sender saw SCHEDULED and did nothing, so
            // re-check and schedule ourselves if needed.
            if !self.mailbox.is_empty() {
                self.try_schedule();
            }
        }
    }
}
