//! Send-side error type.

use std::fmt;

/// Returned by [`crate::Addr::send`] when the destination actor is dead
/// (stopped gracefully, killed by a panic, or its system shut down). The
/// undelivered message is handed back to the caller.
pub struct SendError<M>(pub M);

impl<M> SendError<M> {
    /// Recover the message that could not be delivered.
    pub fn into_inner(self) -> M {
        self.0
    }
}

impl<M> fmt::Debug for SendError<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(actor is dead)")
    }
}

impl<M> fmt::Display for SendError<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("message could not be delivered: actor is dead")
    }
}

impl<M> std::error::Error for SendError<M> {}
