#![warn(missing_docs)]

//! A Kilim-style lightweight actor runtime.
//!
//! The GPSA paper builds on Kilim: thousands of lightweight actors, each
//! with a FIFO mailbox, cooperatively scheduled over a small pool of kernel
//! threads. This crate is that substrate, written from scratch:
//!
//! * [`Actor`] — user state machine with a typed mailbox; the runtime calls
//!   [`Actor::handle`] for every message.
//! * [`System`] — owns the worker threads; [`System::spawn`] turns an
//!   [`Actor`] into a running entity and returns its [`Addr`].
//! * [`Addr`] — cheap, cloneable, `Send` handle used to deliver messages
//!   asynchronously ([`Addr::send`] never blocks).
//! * Scheduling — an actor is *idle*, *scheduled*, or *dead*. Sending to an
//!   idle actor enqueues it exactly once on the run queue (Kilim's
//!   at-most-once property); workers drain up to a batch of messages per
//!   activation for fairness, then requeue the actor if its mailbox is
//!   still non-empty. Idle workers steal from each other.
//! * Supervision — a panic inside `handle` kills only that actor; the
//!   system records the failure and keeps running. Supervised actors are
//!   rebuilt from a factory up to a restart budget; when a cell dies for
//!   good, the runtime raises a [`FailureEvent`] through
//!   [`System::set_failure_handler`] so an engine can tear down and
//!   recover instead of hanging.
//!
//! # Example
//!
//! ```
//! use actor::{Actor, Ctx, System};
//! use std::sync::mpsc;
//!
//! struct Adder { total: u64, done: mpsc::Sender<u64> }
//! enum Msg { Add(u64), Report }
//!
//! impl Actor for Adder {
//!     type Msg = Msg;
//!     fn handle(&mut self, msg: Msg, _ctx: &mut Ctx<'_, Self>) {
//!         match msg {
//!             Msg::Add(n) => self.total += n,
//!             Msg::Report => { self.done.send(self.total).unwrap(); }
//!         }
//!     }
//! }
//!
//! let sys = System::builder().workers(2).build();
//! let (tx, rx) = mpsc::channel();
//! let addr = sys.spawn(Adder { total: 0, done: tx });
//! for i in 1..=100 { addr.send(Msg::Add(i)).unwrap(); }
//! addr.send(Msg::Report).unwrap();
//! assert_eq!(rx.recv().unwrap(), 5050);
//! sys.shutdown();
//! ```

mod actor;
mod addr;
mod cell;
mod error;
mod scheduler;
mod system;

pub use actor::{Actor, Ctx};
pub use addr::{Addr, Recipient};
pub use error::SendError;
pub use system::{FailureEvent, System, SystemBuilder, SystemMetrics};
