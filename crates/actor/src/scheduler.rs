//! Run queues and worker threads.
//!
//! The scheduler is the Kilim "weaver" equivalent: a global injector queue
//! plus one work-stealing deque per worker thread. The schedulable unit is
//! an actor *cell* (an `Arc<dyn Runnable>`), not a message — an actor with a
//! non-empty mailbox appears on the queues at most once.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use crate::system::SystemMetrics;

/// A schedulable actor cell.
pub(crate) trait Runnable: Send + Sync {
    /// Run one activation: drain up to a batch of messages. The cell
    /// reschedules itself if its mailbox is still non-empty afterwards.
    fn run(self: Arc<Self>, sched: &Arc<Scheduler>);
}

pub(crate) type Task = Arc<dyn Runnable>;

/// Shared scheduler state: queues, sleep bookkeeping, shutdown flag.
pub(crate) struct Scheduler {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
    pub(crate) batch: usize,
    pub(crate) metrics: Arc<SystemMetrics>,
}

thread_local! {
    /// Set while a worker thread is running, so cells activated on a worker
    /// can push follow-up work to the local deque instead of the injector.
    /// Tagged with the owning scheduler's identity: systems can nest (a serve
    /// Runner drives an engine with its own `System` from a serve worker
    /// thread), and a send to the *inner* system must not land on the outer
    /// system's deque — its workers would never look there, and the stranded
    /// cascade would migrate onto (and starve) the outer pool.
    static LOCAL: std::cell::RefCell<Option<(usize, Deque<Task>)>> =
        const { std::cell::RefCell::new(None) };
}

impl Scheduler {
    pub(crate) fn new(
        workers: usize,
        batch: usize,
        metrics: Arc<SystemMetrics>,
    ) -> (Arc<Self>, Vec<Deque<Task>>) {
        let deques: Vec<Deque<Task>> = (0..workers).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let sched = Arc::new(Scheduler {
            injector: Injector::new(),
            stealers,
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch,
            metrics,
        });
        (sched, deques)
    }

    /// Enqueue a cell for execution. Prefers the current worker's local
    /// deque when called from a worker thread *of this scheduler*.
    pub(crate) fn schedule(&self, task: Task) {
        let me = self as *const Scheduler as usize;
        let pushed_local = LOCAL.with(|l| {
            if let Some((owner, d)) = l.borrow().as_ref() {
                if *owner == me {
                    d.push(task.clone());
                    return true;
                }
            }
            false
        });
        if !pushed_local {
            self.injector.push(task);
        }
        // Wake one sleeping worker if any. The 10ms sleep timeout in the
        // worker loop backstops any lost-wakeup window.
        if self.sleepers.load(Ordering::Acquire) > 0 {
            let _g = self.sleep_lock.lock();
            self.sleep_cv.notify_one();
        }
    }

    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let _g = self.sleep_lock.lock();
        self.sleep_cv.notify_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn find_task(&self, local: &Deque<Task>, index: usize) -> Option<Task> {
        if let Some(t) = local.pop() {
            self.metrics.local_pops.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                crossbeam_deque::Steal::Success(t) => {
                    self.metrics.injector_pops.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
        // Steal from peers, starting after our own index for spread.
        let n = self.stealers.len();
        for off in 1..n {
            let victim = &self.stealers[(index + off) % n];
            loop {
                match victim.steal() {
                    crossbeam_deque::Steal::Success(t) => {
                        self.metrics.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(t);
                    }
                    crossbeam_deque::Steal::Retry => continue,
                    crossbeam_deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Is there any task a worker could run right now? Consulted under the
    /// sleep lock before parking: a task sitting in *any* peer's local deque
    /// is stealable and therefore counts as visible work.
    fn has_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.stealers.iter().any(|s| !s.is_empty())
    }

    /// The body of one worker thread.
    pub(crate) fn worker_loop(self: &Arc<Self>, local: Deque<Task>, index: usize) {
        // Install the deque in TLS so `schedule` calls made while running a
        // task on this thread push to the local queue; `find_task` borrows
        // it back out for popping (the borrows never overlap: the find_task
        // borrow ends before `t.run` begins).
        let me = Arc::as_ptr(self) as usize;
        LOCAL.with(|l| *l.borrow_mut() = Some((me, local)));
        loop {
            if self.is_shutdown() {
                break;
            }
            let task = LOCAL.with(|l| {
                let b = l.borrow();
                let (_, d) = b.as_ref().expect("worker TLS deque installed");
                self.find_task(d, index)
            });
            match task {
                Some(t) => {
                    self.metrics.activations.fetch_add(1, Ordering::Relaxed);
                    t.run(self);
                }
                None => {
                    self.sleepers.fetch_add(1, Ordering::AcqRel);
                    let mut g = self.sleep_lock.lock();
                    // Re-check under the lock so a schedule() between our
                    // failed find_task and here is not missed. The check must
                    // cover the peer deques, not just the injector: a worker
                    // that pushes to its *local* deque while we are en route
                    // to sleep sees `sleepers == 0` and skips the notify, and
                    // an injector-only re-check would then strand that task
                    // (and us) for the full 10ms backstop.
                    if !self.has_visible_work() && !self.is_shutdown() {
                        self.metrics.parks.fetch_add(1, Ordering::Relaxed);
                        self.sleep_cv.wait_for(&mut g, Duration::from_millis(10));
                    }
                    drop(g);
                    self.sleepers.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
        LOCAL.with(|l| *l.borrow_mut() = None);
    }
}
