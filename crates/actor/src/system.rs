//! The actor [`System`]: worker pool lifecycle, spawning, metrics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::actor::Actor;
use crate::addr::Addr;
use crate::cell::Cell;
use crate::scheduler::Scheduler;

/// Cumulative counters for a system's lifetime. All relaxed; read for
/// reporting and benchmarking only.
#[derive(Debug, Default)]
pub struct SystemMetrics {
    /// Messages accepted by `Addr::send`.
    pub messages_sent: AtomicU64,
    /// Messages processed by actor `handle` calls.
    pub messages_handled: AtomicU64,
    /// Actor activations (batched mailbox drains).
    pub activations: AtomicU64,
    /// Actors killed by a panic in `handle`.
    pub panics: AtomicU64,
    /// Actors spawned.
    pub spawned: AtomicU64,
    /// Supervised actors rebuilt after a panic.
    pub restarts: AtomicU64,
    /// Tasks a worker popped from its own local deque.
    pub local_pops: AtomicU64,
    /// Tasks taken from the global injector queue.
    pub injector_pops: AtomicU64,
    /// Tasks stolen from a peer worker's deque.
    pub steals: AtomicU64,
    /// Times a worker found no runnable task and went to sleep.
    pub parks: AtomicU64,
    /// Cells that died from a panic (unsupervised, or supervised with the
    /// restart budget exhausted) — each one also raised a [`FailureEvent`].
    pub failures: AtomicU64,
}

/// Emitted when a cell dies from a panic: an unsupervised actor panicked,
/// or a supervised one panicked with no restarts left (including a panic
/// in `started` during a supervised restart). Raised exactly once per
/// death, via the handler installed with [`System::set_failure_handler`] —
/// the escalation path supervisors and engines use to learn that a fleet
/// member is gone rather than hanging on messages that will never come.
#[derive(Debug, Clone)]
pub struct FailureEvent {
    /// `std::any::type_name` of the actor that died.
    pub actor: &'static str,
    /// Whether the cell was supervised (death means budget exhaustion).
    pub supervised: bool,
    /// Restarts consumed before death (0 for unsupervised actors).
    pub restarts_used: usize,
    /// The fatal panic's payload, when it was a string (the common
    /// `panic!("...")` case) — lets a watching engine attribute the death
    /// (e.g. a chaos-injected fault) instead of only naming the actor.
    pub detail: Option<String>,
}

type FailureHandler = Arc<dyn Fn(FailureEvent) + Send + Sync>;

struct SystemInner {
    scheduler: Arc<Scheduler>,
    metrics: Arc<SystemMetrics>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    shut: AtomicBool,
    failure_handler: Mutex<Option<FailureHandler>>,
}

/// A handle to a running actor system. Cheap to clone; the worker threads
/// stop when [`System::shutdown`] is called (or when the last handle is
/// dropped).
#[derive(Clone)]
pub struct System {
    inner: Arc<SystemInner>,
}

/// Builder for [`System`].
pub struct SystemBuilder {
    workers: usize,
    batch: usize,
    name: String,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            batch: 256,
            name: "actor".to_string(),
        }
    }
}

impl SystemBuilder {
    /// Number of kernel worker threads multiplexing the actors.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Maximum messages drained per actor activation (fairness knob).
    pub fn batch(mut self, n: usize) -> Self {
        self.batch = n.max(1);
        self
    }

    /// Thread-name prefix for the workers.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Start the worker threads and return the system handle.
    pub fn build(self) -> System {
        let metrics = Arc::new(SystemMetrics::default());
        let (scheduler, deques) = Scheduler::new(self.workers, self.batch, metrics.clone());
        let mut handles = Vec::with_capacity(self.workers);
        for (i, deque) in deques.into_iter().enumerate() {
            let sched = scheduler.clone();
            let name = format!("{}-worker-{}", self.name, i);
            handles.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || sched.worker_loop(deque, i))
                    .expect("spawn actor worker thread"),
            );
        }
        System {
            inner: Arc::new(SystemInner {
                scheduler,
                metrics,
                workers: Mutex::new(handles),
                shut: AtomicBool::new(false),
                failure_handler: Mutex::new(None),
            }),
        }
    }
}

impl System {
    /// Start building a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Build a system with default settings (one worker per core).
    pub fn new() -> System {
        SystemBuilder::default().build()
    }

    /// Spawn `actor`, running its [`Actor::started`] hook on the calling
    /// thread, and return its address.
    pub fn spawn<A: Actor>(&self, actor: A) -> Addr<A> {
        let cell = Cell::new(actor, self.clone());
        self.inner.metrics.spawned.fetch_add(1, Ordering::Relaxed);
        cell.run_started();
        Addr::from_cell(cell)
    }

    /// Spawn a *supervised* actor: when `handle` panics, the actor state
    /// is rebuilt from `factory` (its `started` hook runs again), the
    /// panicking message is consumed, and the mailbox keeps draining — up
    /// to `max_restarts` times, after which the next panic kills it like
    /// an unsupervised actor.
    pub fn spawn_supervised<A, F>(&self, factory: F, max_restarts: usize) -> Addr<A>
    where
        A: Actor,
        F: FnMut() -> A + Send + 'static,
    {
        let cell = Cell::new_supervised(Box::new(factory), max_restarts, self.clone());
        self.inner.metrics.spawned.fetch_add(1, Ordering::Relaxed);
        cell.run_started();
        Addr::from_cell(cell)
    }

    /// Stop the worker threads. Pending mailbox messages are dropped.
    /// Idempotent; called automatically when the last handle drops.
    pub fn shutdown(&self) {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.scheduler.begin_shutdown();
        let handles = std::mem::take(&mut *self.inner.workers.lock());
        for h in handles {
            // A worker shutting the system down from inside a handler would
            // deadlock joining itself; skip self-joins.
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }

    /// Abandon the worker threads **without joining them**: signal
    /// shutdown and drop the join handles. This is the teardown path for
    /// a wedged fleet — a worker stuck inside an actor's `handle` (an
    /// infinite loop, a blocked syscall) would make [`System::shutdown`]'s
    /// join block forever. Abandoned workers exit on their own the next
    /// time they reach the scheduler; until then they may still be
    /// running actor code, so callers must treat shared state as
    /// concurrently accessed until the process exits. Idempotent with
    /// `shutdown` (whichever runs first wins).
    pub fn abandon(&self) {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.scheduler.begin_shutdown();
        drop(std::mem::take(&mut *self.inner.workers.lock()));
    }

    /// Install the handler invoked (from the dying actor's worker thread)
    /// whenever a cell dies from a panic. Replaces any previous handler.
    pub fn set_failure_handler<F>(&self, f: F)
    where
        F: Fn(FailureEvent) + Send + Sync + 'static,
    {
        *self.inner.failure_handler.lock() = Some(Arc::new(f));
    }

    pub(crate) fn notify_failure(&self, ev: FailureEvent) {
        self.inner.metrics.failures.fetch_add(1, Ordering::Relaxed);
        let handler = self.inner.failure_handler.lock().clone();
        if let Some(handler) = handler {
            handler(ev);
        }
    }

    /// Lifetime counters.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.inner.metrics
    }

    pub(crate) fn scheduler(&self) -> &Arc<Scheduler> {
        &self.inner.scheduler
    }
}

impl Default for System {
    fn default() -> Self {
        System::new()
    }
}

impl Drop for SystemInner {
    fn drop(&mut self) {
        self.scheduler.begin_shutdown();
        for h in std::mem::take(&mut *self.workers.lock()) {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}
