//! Property tests for the actor runtime: delivery invariants must hold
//! for arbitrary worker counts, batch sizes, and message interleavings.

use proptest::prelude::*;
use std::sync::mpsc;
use std::time::Duration;

use actor::{Actor, Ctx, System};

struct Sink {
    got: Vec<(u8, u32)>,
    expect: usize,
    done: mpsc::Sender<Vec<(u8, u32)>>,
}

enum SinkMsg {
    Item(u8, u32),
}

impl Actor for Sink {
    type Msg = SinkMsg;
    fn handle(&mut self, SinkMsg::Item(sender, seq): SinkMsg, _ctx: &mut Ctx<'_, Self>) {
        self.got.push((sender, seq));
        if self.got.len() == self.expect {
            let _ = self.done.send(std::mem::take(&mut self.got));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// With any configuration, every message is delivered exactly once and
    /// per-sender order is preserved.
    #[test]
    fn delivery_exactly_once_and_per_sender_fifo(
        workers in 1usize..5,
        batch in 1usize..300,
        n_senders in 1u8..6,
        per_sender in 1u32..400,
    ) {
        let sys = System::builder().workers(workers).batch(batch).build();
        let (tx, rx) = mpsc::channel();
        let total = n_senders as usize * per_sender as usize;
        let addr = sys.spawn(Sink { got: Vec::new(), expect: total, done: tx });
        let mut handles = Vec::new();
        for s in 0..n_senders {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_sender {
                    addr.send(SinkMsg::Item(s, i)).unwrap();
                }
            }));
        }
        for h in handles { h.join().unwrap(); }
        let got = rx.recv_timeout(Duration::from_secs(30)).expect("all delivered");
        prop_assert_eq!(got.len(), total);
        // Per-sender sequences are strictly increasing.
        let mut last = vec![None::<u32>; n_senders as usize];
        for (s, seq) in &got {
            if let Some(prev) = last[*s as usize] {
                prop_assert!(*seq > prev, "sender {} out of order: {} after {}", s, seq, prev);
            }
            last[*s as usize] = Some(*seq);
        }
        // Exactly once: each (sender, seq) pair distinct and complete.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), total);
        sys.shutdown();
    }

    /// Spawning and tearing down systems of arbitrary size never hangs.
    #[test]
    fn spawn_shutdown_cycles(workers in 1usize..6, actors in 1usize..50) {
        let sys = System::builder().workers(workers).build();
        let (tx, rx) = mpsc::channel();
        let addrs: Vec<_> = (0..actors)
            .map(|_| sys.spawn(Sink { got: Vec::new(), expect: 1, done: tx.clone() }))
            .collect();
        for a in &addrs {
            a.send(SinkMsg::Item(0, 0)).unwrap();
        }
        for _ in 0..actors {
            rx.recv_timeout(Duration::from_secs(10)).expect("ack");
        }
        sys.shutdown();
    }
}
