//! Behavioural tests for the actor runtime: ordering, at-most-once
//! scheduling, supervision, fairness, scale.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use actor::{Actor, Ctx, FailureEvent, System};

/// Collects the u64s it receives and reports them when asked.
struct Collector {
    seen: Vec<u64>,
    done: mpsc::Sender<Vec<u64>>,
}

enum CollectorMsg {
    Push(u64),
    Report,
}

impl Actor for Collector {
    type Msg = CollectorMsg;
    fn handle(&mut self, msg: CollectorMsg, _ctx: &mut Ctx<'_, Self>) {
        match msg {
            CollectorMsg::Push(v) => self.seen.push(v),
            CollectorMsg::Report => {
                let _ = self.done.send(std::mem::take(&mut self.seen));
            }
        }
    }
}

#[test]
fn per_sender_fifo_order_is_preserved() {
    let sys = System::builder().workers(4).build();
    let (tx, rx) = mpsc::channel();
    let addr = sys.spawn(Collector {
        seen: Vec::new(),
        done: tx,
    });
    for i in 0..10_000u64 {
        addr.send(CollectorMsg::Push(i)).unwrap();
    }
    addr.send(CollectorMsg::Report).unwrap();
    let seen = rx.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(seen.len(), 10_000);
    assert!(
        seen.windows(2).all(|w| w[0] < w[1]),
        "single-sender FIFO violated"
    );
    sys.shutdown();
}

#[test]
fn no_message_lost_or_duplicated_under_concurrent_senders() {
    let sys = System::builder().workers(8).batch(32).build();
    let (tx, rx) = mpsc::channel();
    let addr = sys.spawn(Collector {
        seen: Vec::new(),
        done: tx,
    });
    let senders = 8;
    let per = 5_000u64;
    let mut handles = Vec::new();
    for s in 0..senders {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..per {
                addr.send(CollectorMsg::Push(s * per + i)).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    addr.send(CollectorMsg::Report).unwrap();
    let mut seen = rx.recv_timeout(Duration::from_secs(30)).unwrap();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len() as u64,
        senders * per,
        "messages lost or duplicated"
    );
    sys.shutdown();
}

/// An actor that forwards a token around a ring; tests cross-actor sends
/// made from inside handlers.
struct RingNode {
    next: Option<actor::Addr<RingNode>>,
    remaining_laps: u64,
    done: Option<mpsc::Sender<()>>,
}

impl Actor for RingNode {
    type Msg = RingMsg;
    fn handle(&mut self, msg: RingMsg, _ctx: &mut Ctx<'_, Self>) {
        match msg {
            RingMsg::SetNext(a) => self.next = Some(a),
            RingMsg::Token => {
                if self.remaining_laps == 0 {
                    if let Some(d) = &self.done {
                        let _ = d.send(());
                    }
                } else {
                    self.remaining_laps -= 1;
                    self.next
                        .as_ref()
                        .expect("ring wired")
                        .send(RingMsg::Token)
                        .unwrap();
                }
            }
        }
    }
}

enum RingMsg {
    SetNext(actor::Addr<RingNode>),
    Token,
}

#[test]
fn token_ring_of_a_thousand_actors() {
    // The paper's pitch: "scalable parallelism with thousands of actors".
    let sys = System::builder().workers(4).build();
    let (tx, rx) = mpsc::channel();
    let n = 1000;
    let laps = 20u64; // forwards per node => ~20k hops around the ring
    let addrs: Vec<_> = (0..n)
        .map(|i| {
            sys.spawn(RingNode {
                next: None,
                remaining_laps: laps,
                done: if i == 0 { Some(tx.clone()) } else { None },
            })
        })
        .collect();
    for i in 0..n {
        addrs[i]
            .send(RingMsg::SetNext(addrs[(i + 1) % n].clone()))
            .unwrap();
    }
    addrs[0].send(RingMsg::Token).unwrap();
    rx.recv_timeout(Duration::from_secs(60))
        .expect("ring completed");
    sys.shutdown();
}

struct Panicker;
impl Actor for Panicker {
    type Msg = ();
    fn handle(&mut self, _msg: (), _ctx: &mut Ctx<'_, Self>) {
        panic!("intentional test panic");
    }
}

#[test]
fn panic_kills_only_the_panicking_actor() {
    let sys = System::builder().workers(2).build();
    let bad = sys.spawn(Panicker);
    let (tx, rx) = mpsc::channel();
    let good = sys.spawn(Collector {
        seen: Vec::new(),
        done: tx,
    });
    bad.send(()).unwrap();
    // Wait for the panic to be recorded.
    for _ in 0..500 {
        if sys.metrics().panics.load(Ordering::Relaxed) > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(sys.metrics().panics.load(Ordering::Relaxed), 1);
    assert!(!bad.is_alive(), "panicked actor must be dead");
    assert!(bad.send(()).is_err(), "send to dead actor must fail");
    // The system keeps serving other actors.
    good.send(CollectorMsg::Push(7)).unwrap();
    good.send(CollectorMsg::Report).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), vec![7]);
    sys.shutdown();
}

struct Stopper {
    stopped_flag: Arc<AtomicUsize>,
}
impl Actor for Stopper {
    type Msg = bool; // true = stop now
    fn handle(&mut self, msg: bool, ctx: &mut Ctx<'_, Self>) {
        if msg {
            ctx.stop();
        }
    }
    fn stopped(&mut self) {
        self.stopped_flag.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn graceful_stop_runs_stopped_hook_and_drops_mailbox() {
    let sys = System::builder().workers(2).build();
    let flag = Arc::new(AtomicUsize::new(0));
    let addr = sys.spawn(Stopper {
        stopped_flag: flag.clone(),
    });
    addr.send(true).unwrap();
    for _ in 0..500 {
        if !addr.is_alive() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(!addr.is_alive());
    assert_eq!(
        flag.load(Ordering::SeqCst),
        1,
        "stopped() must run exactly once"
    );
    assert!(addr.send(false).is_err());
    sys.shutdown();
}

struct CountingActor {
    count: Arc<AtomicU64>,
}
impl Actor for CountingActor {
    type Msg = u64;
    fn handle(&mut self, msg: u64, _ctx: &mut Ctx<'_, Self>) {
        self.count.fetch_add(msg, Ordering::Relaxed);
    }
}

#[test]
fn metrics_count_messages_and_activations() {
    let sys = System::builder().workers(2).batch(16).build();
    let count = Arc::new(AtomicU64::new(0));
    let addr = sys.spawn(CountingActor {
        count: count.clone(),
    });
    let n = 1_000u64;
    for _ in 0..n {
        addr.send(1).unwrap();
    }
    for _ in 0..1000 {
        if count.load(Ordering::Relaxed) == n {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(count.load(Ordering::Relaxed), n);
    assert_eq!(sys.metrics().messages_sent.load(Ordering::Relaxed), n);
    assert_eq!(sys.metrics().messages_handled.load(Ordering::Relaxed), n);
    let acts = sys.metrics().activations.load(Ordering::Relaxed);
    assert!(acts >= 1, "at least one activation");
    assert!(
        acts <= n,
        "batched draining means far fewer activations than messages (got {acts})"
    );
    sys.shutdown();
}

#[test]
fn recipient_erases_actor_type() {
    struct Wrap(mpsc::Sender<u32>);
    struct WMsg(u32);
    impl From<u32> for WMsg {
        fn from(v: u32) -> Self {
            WMsg(v)
        }
    }
    impl Actor for Wrap {
        type Msg = WMsg;
        fn handle(&mut self, msg: WMsg, _ctx: &mut Ctx<'_, Self>) {
            self.0.send(msg.0).unwrap();
        }
    }
    let sys = System::builder().workers(1).build();
    let (tx, rx) = mpsc::channel();
    let addr = sys.spawn(Wrap(tx));
    let rcp: actor::Recipient<u32> = addr.recipient();
    assert!(rcp.is_alive());
    rcp.send(99).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 99);
    sys.shutdown();
}

#[test]
fn started_hook_runs_before_messages_and_can_stop() {
    struct S {
        tx: mpsc::Sender<&'static str>,
    }
    impl Actor for S {
        type Msg = ();
        fn started(&mut self, _ctx: &mut Ctx<'_, Self>) {
            self.tx.send("started").unwrap();
        }
        fn handle(&mut self, _m: (), _ctx: &mut Ctx<'_, Self>) {
            self.tx.send("handled").unwrap();
        }
    }
    let sys = System::builder().workers(1).build();
    let (tx, rx) = mpsc::channel();
    let addr = sys.spawn(S { tx });
    addr.send(()).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "started");
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "handled");

    struct Immediate;
    impl Actor for Immediate {
        type Msg = ();
        fn started(&mut self, ctx: &mut Ctx<'_, Self>) {
            ctx.stop();
        }
        fn handle(&mut self, _m: (), _ctx: &mut Ctx<'_, Self>) {
            unreachable!("actor stopped in started()");
        }
    }
    let dead = sys.spawn(Immediate);
    assert!(!dead.is_alive());
    assert!(dead.send(()).is_err());
    sys.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_stops_workers() {
    let sys = System::builder().workers(3).build();
    let count = Arc::new(AtomicU64::new(0));
    let addr = sys.spawn(CountingActor {
        count: count.clone(),
    });
    addr.send(5).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    sys.shutdown();
    sys.shutdown(); // second call is a no-op
    assert_eq!(count.load(Ordering::Relaxed), 5);
}

#[test]
fn supervised_actor_restarts_and_keeps_draining() {
    struct Flaky {
        seen: u64,
        tx: mpsc::Sender<u64>,
    }
    impl Actor for Flaky {
        type Msg = u64;
        fn handle(&mut self, msg: u64, _ctx: &mut Ctx<'_, Self>) {
            if msg == 13 {
                panic!("unlucky message");
            }
            self.seen += 1;
            self.tx.send(msg).unwrap();
        }
    }
    let sys = System::builder().workers(2).build();
    let (tx, rx) = mpsc::channel();
    let addr = sys.spawn_supervised(
        move || Flaky {
            seen: 0,
            tx: tx.clone(),
        },
        3,
    );
    for m in [1u64, 2, 13, 4, 5] {
        addr.send(m).unwrap();
    }
    let mut got = Vec::new();
    for _ in 0..4 {
        got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
    }
    assert_eq!(
        got,
        vec![1, 2, 4, 5],
        "poisoned message consumed, rest delivered"
    );
    assert!(addr.is_alive(), "supervised actor survives a panic");
    assert_eq!(sys.metrics().restarts.load(Ordering::Relaxed), 1);
    assert_eq!(sys.metrics().panics.load(Ordering::Relaxed), 1);
    sys.shutdown();
}

#[test]
fn supervised_actor_dies_after_budget_exhausted() {
    struct AlwaysPanics;
    impl Actor for AlwaysPanics {
        type Msg = ();
        fn handle(&mut self, _m: (), _ctx: &mut Ctx<'_, Self>) {
            panic!("always");
        }
    }
    let sys = System::builder().workers(1).build();
    let addr = sys.spawn_supervised(|| AlwaysPanics, 2);
    for _ in 0..3 {
        let _ = addr.send(());
    }
    for _ in 0..500 {
        if !addr.is_alive() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(!addr.is_alive(), "third panic exceeds the 2-restart budget");
    assert_eq!(sys.metrics().restarts.load(Ordering::Relaxed), 2);
    assert_eq!(sys.metrics().panics.load(Ordering::Relaxed), 3);
    sys.shutdown();
}

/// Collects [`FailureEvent`]s from the system's escalation handler.
fn capture_failures(sys: &System) -> Arc<std::sync::Mutex<Vec<FailureEvent>>> {
    let events = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = events.clone();
    sys.set_failure_handler(move |ev| sink.lock().unwrap().push(ev));
    events
}

fn wait_until(mut cond: impl FnMut() -> bool) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn budget_exhaustion_raises_exactly_one_failure_event() {
    struct AlwaysPanics;
    impl Actor for AlwaysPanics {
        type Msg = ();
        fn handle(&mut self, _m: (), _ctx: &mut Ctx<'_, Self>) {
            panic!("always");
        }
    }
    let sys = System::builder().workers(1).build();
    let events = capture_failures(&sys);
    let addr = sys.spawn_supervised(|| AlwaysPanics, 2);
    // Panics 1 and 2 consume the restart budget silently; panic 3 kills
    // the cell. Extra queued messages after death must not re-raise.
    for _ in 0..5 {
        let _ = addr.send(());
    }
    wait_until(|| !addr.is_alive());
    assert!(!addr.is_alive());
    // Give any (buggy) duplicate escalation a chance to land before the
    // exactly-once assertions.
    std::thread::sleep(Duration::from_millis(20));
    let got = events.lock().unwrap().clone();
    assert_eq!(got.len(), 1, "exactly one escalation per death: {got:?}");
    assert!(got[0].supervised);
    assert_eq!(got[0].restarts_used, 2, "both restarts were consumed");
    assert_eq!(sys.metrics().failures.load(Ordering::Relaxed), 1);
    assert_eq!(sys.metrics().restarts.load(Ordering::Relaxed), 2);
    sys.shutdown();
}

#[test]
fn panic_in_started_during_restart_escalates_instead_of_wedging() {
    // Regression: a panic in `started` while rebuilding a supervised
    // actor used to unwind past the cell's run loop with the status still
    // SCHEDULED — a permanently wedged cell that looks alive, accepts
    // sends, and never runs again.
    struct PoisonedRestart {
        panic_on_start: bool,
    }
    impl Actor for PoisonedRestart {
        type Msg = ();
        fn started(&mut self, _ctx: &mut Ctx<'_, Self>) {
            if self.panic_on_start {
                panic!("restart sabotaged");
            }
        }
        fn handle(&mut self, _m: (), _ctx: &mut Ctx<'_, Self>) {
            panic!("trigger a restart");
        }
    }
    let sys = System::builder().workers(1).build();
    let events = capture_failures(&sys);
    let builds = Arc::new(AtomicUsize::new(0));
    let b = builds.clone();
    // First build starts cleanly; every rebuild panics in `started`.
    let addr = sys.spawn_supervised(
        move || PoisonedRestart {
            panic_on_start: b.fetch_add(1, Ordering::SeqCst) > 0,
        },
        3,
    );
    addr.send(()).unwrap();
    wait_until(|| !addr.is_alive());
    assert!(!addr.is_alive(), "cell must die, not wedge in SCHEDULED");
    assert!(addr.send(()).is_err(), "dead cell must refuse messages");
    let got = events.lock().unwrap().clone();
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].supervised);
    assert_eq!(got[0].restarts_used, 1, "died on its first rebuild");
    assert_eq!(
        builds.load(Ordering::SeqCst),
        2,
        "initial build + one rebuild"
    );
    // Both the handler panic and the started panic are counted; the
    // remaining restart budget was never spent.
    assert_eq!(sys.metrics().panics.load(Ordering::Relaxed), 2);
    assert_eq!(sys.metrics().restarts.load(Ordering::Relaxed), 1);
    assert_eq!(sys.metrics().failures.load(Ordering::Relaxed), 1);
    sys.shutdown();
}

#[test]
fn unsupervised_panic_death_raises_failure_event() {
    let sys = System::builder().workers(1).build();
    let events = capture_failures(&sys);
    let addr = sys.spawn(Panicker);
    addr.send(()).unwrap();
    wait_until(|| !addr.is_alive());
    let got = events.lock().unwrap().clone();
    assert_eq!(got.len(), 1);
    assert!(!got[0].supervised);
    assert_eq!(got[0].restarts_used, 0);
    assert!(got[0].actor.contains("Panicker"), "got {:?}", got[0].actor);
    assert_eq!(sys.metrics().failures.load(Ordering::Relaxed), 1);
    sys.shutdown();
}

#[test]
fn stealable_local_push_wakes_idle_worker_promptly() {
    // Lost-wakeup regression: `Busy` pushes `Probe` onto its *local* deque
    // (cross-actor send from inside a handler) and then occupies its worker,
    // so the probe can only run if the other — idle, possibly parked —
    // worker steals it. The pre-sleep re-check used to consult only the
    // injector, so a worker racing into sleep missed the local push and the
    // probe waited out the full 10ms condvar backstop. With the stealer
    // re-check, idle latency stays far below the backstop on average.
    use std::time::Instant;

    struct Probe {
        tx: mpsc::Sender<Instant>,
    }
    impl Actor for Probe {
        type Msg = ();
        fn handle(&mut self, _m: (), _ctx: &mut Ctx<'_, Self>) {
            let _ = self.tx.send(Instant::now());
        }
    }
    struct Busy {
        probe: actor::Addr<Probe>,
    }
    impl Actor for Busy {
        type Msg = ();
        fn handle(&mut self, _m: (), _ctx: &mut Ctx<'_, Self>) {
            self.probe.send(()).unwrap();
            // Hold this worker past the assertion bound below, so a probe
            // that misses the steal (lost wakeup) visibly pays for it.
            std::thread::sleep(Duration::from_millis(8));
        }
    }

    let sys = System::builder().workers(2).build();
    let (tx, rx) = mpsc::channel();
    let probe = sys.spawn(Probe { tx });
    let busy = sys.spawn(Busy { probe });
    let rounds = 60u32;
    let mut total = Duration::ZERO;
    for _ in 0..rounds {
        let t0 = Instant::now();
        busy.send(()).unwrap();
        let handled = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        total += handled.saturating_duration_since(t0);
        // Let the busy worker finish its hold and both workers go idle, so
        // each round exercises the park/wake path afresh.
        std::thread::sleep(Duration::from_millis(10));
    }
    let steals = sys.metrics().steals.load(Ordering::Relaxed);
    assert!(steals > 0, "probe activations must come from stealing");
    let mean = total / rounds;
    assert!(
        mean < Duration::from_millis(4),
        "idle wake-up latency too close to the 8ms busy hold / 10ms sleep backstop: mean {mean:?}"
    );
    sys.shutdown();
}

#[test]
fn heavy_fanout_fan_in() {
    // Many producers -> many relays -> one sink; exercises work stealing.
    struct Relay {
        sink: actor::Addr<CountingActor>,
    }
    impl Actor for Relay {
        type Msg = u64;
        fn handle(&mut self, msg: u64, _ctx: &mut Ctx<'_, Self>) {
            self.sink.send(msg).unwrap();
        }
    }
    let sys = System::builder().workers(8).build();
    let count = Arc::new(AtomicU64::new(0));
    let sink = sys.spawn(CountingActor {
        count: count.clone(),
    });
    let relays: Vec<_> = (0..64)
        .map(|_| sys.spawn(Relay { sink: sink.clone() }))
        .collect();
    let total = 64u64 * 1000;
    for i in 0..total {
        relays[(i % 64) as usize].send(1).unwrap();
    }
    for _ in 0..2000 {
        if count.load(Ordering::Relaxed) == total {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(count.load(Ordering::Relaxed), total);
    sys.shutdown();
}
