#![warn(missing_docs)]

//! The paper's benchmark algorithms — PageRank, BFS, Connected
//! Components — expressed for all three engines, plus sequential
//! reference implementations used as correctness oracles.
//!
//! * GPSA programs live in [`gpsa::programs`] and are re-exported from
//!   [`gpsa_programs`].
//! * [`psw`] — the same algorithms in the GraphChi-like engine's
//!   edge-value model.
//! * [`xs`] — the same algorithms in the X-Stream-like engine's
//!   scatter–gather model.
//! * [`reference`](crate::reference) — simple, obviously-correct sequential versions.
//!
//! The integration suite (`tests/`) checks all three engines against the
//! references and against each other on the same graphs — the property
//! the paper's evaluation implicitly depends on.

pub mod psw;
pub mod reference;
pub mod xs;

/// Re-export of the GPSA-native programs for convenience.
pub mod gpsa_programs {
    pub use gpsa::programs::{Bfs, ConnectedComponents, InDegree, PageRank, Sssp, UNREACHED};
}
