//! The benchmark algorithms in the GraphChi-like engine's model: vertex
//! update functions over in/out **edge values**.

use gpsa_baselines::graphchi::{PswMeta, PswProgram};
use gpsa_graph::VertexId;

use crate::reference::UNREACHED;

/// PageRank on PSW: each edge carries `rank(src)/deg(src)`; updates sum
/// the in-edge values. Dense (every vertex, every iteration) — run with
/// [`gpsa_baselines::graphchi::PswTermination::Iterations`].
#[derive(Debug, Clone, Copy)]
pub struct PswPageRank {
    /// Damping factor, conventionally 0.85.
    pub damping: f32,
}

impl Default for PswPageRank {
    fn default() -> Self {
        PswPageRank { damping: 0.85 }
    }
}

impl PswProgram for PswPageRank {
    fn init(&self, _v: VertexId, meta: &PswMeta) -> u32 {
        (1.0f32 / meta.n_vertices.max(1) as f32).to_bits()
    }
    fn initially_active(&self, _v: VertexId, _meta: &PswMeta) -> bool {
        true
    }
    fn update(&self, _v: VertexId, _value: u32, in_vals: &[u32], meta: &PswMeta) -> u32 {
        let sum: f32 = in_vals.iter().map(|&b| f32::from_bits(b)).sum();
        let base = (1.0 - self.damping) / meta.n_vertices.max(1) as f32;
        (base + self.damping * sum).to_bits()
    }
    fn out_signal(&self, _v: VertexId, new: u32, out_degree: u32, _meta: &PswMeta) -> Option<u32> {
        if out_degree == 0 {
            None
        } else {
            Some((f32::from_bits(new) / out_degree as f32).to_bits())
        }
    }
    fn changed(&self, _old: u32, _new: u32) -> bool {
        true
    }
    fn always_active(&self) -> bool {
        true
    }
}

/// BFS on PSW: edges carry `level(src) + 1`; updates take the minimum.
/// Selectively scheduled — inactive vertices are skipped, GraphChi's
/// advantage over X-Stream on BFS.
#[derive(Debug, Clone, Copy)]
pub struct PswBfs {
    /// Source vertex.
    pub root: VertexId,
}

impl PswProgram for PswBfs {
    fn init(&self, v: VertexId, _meta: &PswMeta) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }
    fn initially_active(&self, v: VertexId, _meta: &PswMeta) -> bool {
        v == self.root
    }
    fn update(&self, _v: VertexId, value: u32, in_vals: &[u32], _meta: &PswMeta) -> u32 {
        in_vals.iter().copied().fold(value, u32::min)
    }
    fn out_signal(&self, _v: VertexId, new: u32, _d: u32, _meta: &PswMeta) -> Option<u32> {
        if new >= UNREACHED {
            None
        } else {
            Some(new + 1)
        }
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
    fn init_edge(&self, _meta: &PswMeta) -> u32 {
        UNREACHED
    }
}

/// Connected components on PSW: edges carry the source's label; updates
/// take the minimum. Selectively scheduled.
#[derive(Debug, Clone, Copy, Default)]
pub struct PswCc;

impl PswProgram for PswCc {
    fn init(&self, v: VertexId, _meta: &PswMeta) -> u32 {
        v
    }
    fn initially_active(&self, _v: VertexId, _meta: &PswMeta) -> bool {
        true
    }
    fn update(&self, _v: VertexId, value: u32, in_vals: &[u32], _meta: &PswMeta) -> u32 {
        in_vals.iter().copied().fold(value, u32::min)
    }
    fn out_signal(&self, _v: VertexId, new: u32, _d: u32, _meta: &PswMeta) -> Option<u32> {
        Some(new)
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
    fn init_edge(&self, _meta: &PswMeta) -> u32 {
        u32::MAX
    }
}

/// Weighted SSSP on PSW using the synthetic weights of
/// [`gpsa::programs::Sssp`]: each edge `(u, v)` carries
/// `dist(u) + w(u, v)` (per-edge signals), and updates take the minimum.
#[derive(Debug, Clone, Copy)]
pub struct PswSssp {
    /// Source vertex.
    pub root: VertexId,
}

impl PswProgram for PswSssp {
    fn init(&self, v: VertexId, _meta: &PswMeta) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }
    fn initially_active(&self, v: VertexId, _meta: &PswMeta) -> bool {
        v == self.root
    }
    fn update(&self, _v: VertexId, value: u32, in_vals: &[u32], _meta: &PswMeta) -> u32 {
        in_vals.iter().copied().fold(value, u32::min)
    }
    fn out_signal(&self, _v: VertexId, _new: u32, _d: u32, _meta: &PswMeta) -> Option<u32> {
        unreachable!("PswSssp uses per-edge signals")
    }
    fn out_signal_edge(
        &self,
        v: VertexId,
        dst: VertexId,
        new: u32,
        _d: u32,
        _meta: &PswMeta,
    ) -> Option<u32> {
        if new >= UNREACHED {
            None
        } else {
            Some(
                new.saturating_add(gpsa::programs::Sssp::weight(v, dst))
                    .min(UNREACHED),
            )
        }
    }
    fn per_edge_signals(&self) -> bool {
        true
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
    fn init_edge(&self, _meta: &PswMeta) -> u32 {
        UNREACHED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: PswMeta = PswMeta {
        n_vertices: 4,
        n_edges: 5,
    };

    #[test]
    fn pagerank_hooks() {
        let pr = PswPageRank::default();
        let init = f32::from_bits(pr.init(0, &META));
        assert!((init - 0.25).abs() < 1e-6);
        let new = pr.update(1, 0, &[(0.125f32).to_bits(), (0.1f32).to_bits()], &META);
        let expect = 0.15 / 4.0 + 0.85 * 0.225;
        assert!((f32::from_bits(new) - expect).abs() < 1e-6);
        assert_eq!(pr.out_signal(0, (0.5f32).to_bits(), 0, &META), None);
        assert!(pr.always_active());
    }

    #[test]
    fn bfs_hooks() {
        let b = PswBfs { root: 1 };
        assert_eq!(b.init(1, &META), 0);
        assert_eq!(b.init(0, &META), UNREACHED);
        assert!(b.initially_active(1, &META));
        assert!(!b.initially_active(0, &META));
        assert_eq!(b.update(0, UNREACHED, &[3, 7], &META), 3);
        assert_eq!(b.out_signal(0, 3, 2, &META), Some(4));
        assert_eq!(b.out_signal(0, UNREACHED, 2, &META), None);
    }

    #[test]
    fn cc_hooks() {
        let c = PswCc;
        assert_eq!(c.init(3, &META), 3);
        assert_eq!(c.update(3, 3, &[5, 1], &META), 1);
        assert!(c.changed(3, 1));
        assert!(!c.changed(1, 1));
    }
}
