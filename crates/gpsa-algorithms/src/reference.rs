//! Sequential reference implementations — the correctness oracles every
//! engine is validated against.

use gpsa_graph::{Csr, EdgeList, VertexId};

/// Level assigned to unreachable vertices (mirrors
/// [`gpsa::programs::UNREACHED`]).
pub const UNREACHED: u32 = 0x7FFF_FFFF;

/// Breadth-first hop distances from `root`.
pub fn bfs(el: &EdgeList, root: VertexId) -> Vec<u32> {
    let csr = Csr::from_edge_list(el);
    let mut level = vec![UNREACHED; el.n_vertices];
    if (root as usize) >= el.n_vertices {
        return level;
    }
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &d in csr.neighbors(v) {
                if level[d as usize] == UNREACHED {
                    level[d as usize] = depth;
                    next.push(d);
                }
            }
        }
        frontier = next;
    }
    level
}

/// Min-label propagation along directed edges to a fixpoint — the exact
/// semantics of every engine's CC program. (Equals weakly-connected
/// components when the graph is symmetrized.)
pub fn connected_components(el: &EdgeList) -> Vec<u32> {
    let csr = Csr::from_edge_list(el);
    let mut label: Vec<u32> = (0..el.n_vertices as u32).collect();
    loop {
        let mut changed = false;
        for v in 0..el.n_vertices as u32 {
            let lv = label[v as usize];
            for &d in csr.neighbors(v) {
                if lv < label[d as usize] {
                    label[d as usize] = lv;
                    changed = true;
                }
            }
        }
        if !changed {
            return label;
        }
    }
}

/// Synchronous power-iteration PageRank for `supersteps` iterations,
/// damping `d`: `rank(v) = (1-d)/N + d * Σ rank(u)/deg(u)`; sinks hold
/// their mass.
pub fn pagerank(el: &EdgeList, damping: f32, supersteps: usize) -> Vec<f32> {
    let csr = Csr::from_edge_list(el);
    let n = el.n_vertices;
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0f32 / n as f32; n];
    let base = (1.0 - damping) / n as f32;
    for _ in 0..supersteps {
        let mut next = vec![base; n];
        for v in 0..n as u32 {
            let deg = csr.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = rank[v as usize] / deg as f32;
            for &d in csr.neighbors(v) {
                next[d as usize] += damping * share;
            }
        }
        rank = next;
    }
    rank
}

/// Bellman–Ford with the synthetic weights of [`gpsa::programs::Sssp`].
pub fn sssp(el: &EdgeList, root: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHED; el.n_vertices];
    if (root as usize) >= el.n_vertices {
        return dist;
    }
    dist[root as usize] = 0;
    loop {
        let mut changed = false;
        for e in &el.edges {
            let du = dist[e.src as usize];
            if du == UNREACHED {
                continue;
            }
            let w = gpsa::programs::Sssp::weight(e.src, e.dst);
            let cand = du.saturating_add(w).min(UNREACHED);
            if cand < dist[e.dst as usize] {
                dist[e.dst as usize] = cand;
                changed = true;
            }
        }
        if !changed {
            return dist;
        }
    }
}

/// K-core membership by sequential peeling: `true` for vertices in the
/// `k`-core. Multigraph semantics (parallel edges count toward degree),
/// matching [`gpsa::programs::KCore`]. Expects a symmetrized graph.
pub fn k_core(el: &EdgeList, k: u32) -> Vec<bool> {
    let csr = Csr::from_edge_list(el);
    let mut degree: Vec<u32> = (0..el.n_vertices as u32)
        .map(|v| csr.out_degree(v))
        .collect();
    let mut alive = vec![true; el.n_vertices];
    let mut queue: Vec<u32> = (0..el.n_vertices as u32)
        .filter(|&v| degree[v as usize] < k)
        .collect();
    while let Some(v) = queue.pop() {
        if !alive[v as usize] {
            continue;
        }
        alive[v as usize] = false;
        for &d in csr.neighbors(v) {
            if alive[d as usize] {
                degree[d as usize] = degree[d as usize].saturating_sub(1);
                if degree[d as usize] < k {
                    queue.push(d);
                }
            }
        }
    }
    alive
}

/// In-degree of every vertex.
pub fn in_degree(el: &EdgeList) -> Vec<u32> {
    let mut deg = vec![0u32; el.n_vertices];
    for e in &el.edges {
        deg[e.dst as usize] += 1;
    }
    deg
}

/// Largest absolute element-wise difference between two rank vectors.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsa_graph::generate;

    #[test]
    fn bfs_on_known_shapes() {
        let el = generate::chain(5);
        assert_eq!(bfs(&el, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(
            bfs(&el, 4),
            vec![UNREACHED; 4]
                .into_iter()
                .chain([0])
                .collect::<Vec<_>>()
        );
        let star = generate::star(4);
        assert_eq!(bfs(&star, 0), vec![0, 1, 1, 1]);
    }

    #[test]
    fn cc_on_two_components() {
        let el = generate::two_components(3, 4);
        assert_eq!(connected_components(&el), vec![0, 0, 0, 3, 3, 3, 3]);
    }

    #[test]
    fn pagerank_conserves_mass_on_cycles() {
        // On a cycle every vertex has in/out degree 1: ranks stay uniform.
        let el = generate::cycle(10);
        let r = pagerank(&el, 0.85, 50);
        for &v in &r {
            assert!(
                (v - 0.1).abs() < 1e-5,
                "cycle rank should stay uniform: {v}"
            );
        }
    }

    #[test]
    fn pagerank_ranks_hub_highest() {
        // Everyone points at vertex 0.
        let el =
            gpsa_graph::EdgeList::from_edges((1..20).map(|i| (i, 0u32).into()).collect::<Vec<_>>());
        let r = pagerank(&el, 0.85, 30);
        for v in 1..20 {
            assert!(r[0] > r[v], "hub should outrank spokes");
        }
    }

    #[test]
    fn sssp_agrees_with_bfs_shape() {
        let el = generate::chain(6);
        let d = sssp(&el, 0);
        // Distances are sums of the synthetic weights along the chain.
        let mut expect = 0u32;
        assert_eq!(d[0], 0);
        for i in 1..6u32 {
            expect += gpsa::programs::Sssp::weight(i - 1, i);
            assert_eq!(d[i as usize], expect);
        }
    }

    #[test]
    fn in_degree_counts() {
        let el = generate::star(5);
        assert_eq!(in_degree(&el), vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
