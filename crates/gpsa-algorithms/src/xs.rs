//! The benchmark algorithms in the X-Stream-like engine's edge-centric
//! scatter–gather model.

use gpsa_baselines::xstream::{XsMeta, XsProgram};
use gpsa_graph::VertexId;

use crate::reference::UNREACHED;

/// PageRank on X-Stream: scatter emits `rank(src)/deg(src)` for every
/// edge; gather accumulates into a state reset to the base term each
/// iteration. Run with
/// [`gpsa_baselines::xstream::XsTermination::Iterations`].
#[derive(Debug, Clone, Copy)]
pub struct XsPageRank {
    /// Damping factor, conventionally 0.85.
    pub damping: f32,
}

impl Default for XsPageRank {
    fn default() -> Self {
        XsPageRank { damping: 0.85 }
    }
}

impl XsProgram for XsPageRank {
    fn init(&self, _v: VertexId, meta: &XsMeta) -> u32 {
        (1.0f32 / meta.n_vertices.max(1) as f32).to_bits()
    }
    fn scatter(
        &self,
        _src: VertexId,
        src_state: u32,
        src_out_degree: u32,
        _dst: VertexId,
        _meta: &XsMeta,
    ) -> Option<u32> {
        if src_out_degree == 0 {
            None
        } else {
            Some((f32::from_bits(src_state) / src_out_degree as f32).to_bits())
        }
    }
    fn gather(&self, _dst: VertexId, state: u32, update: u32, _meta: &XsMeta) -> u32 {
        (f32::from_bits(state) + self.damping * f32::from_bits(update)).to_bits()
    }
    fn reset(&self, _v: VertexId, _prev: u32, meta: &XsMeta) -> u32 {
        ((1.0 - self.damping) / meta.n_vertices.max(1) as f32).to_bits()
    }
    fn changed(&self, _old: u32, _new: u32) -> bool {
        true
    }
}

/// BFS on X-Stream: scatter emits `level(src) + 1` when the source is
/// reached (but still *streams every edge* to find out — the engine has no
/// frontier).
#[derive(Debug, Clone, Copy)]
pub struct XsBfs {
    /// Source vertex.
    pub root: VertexId,
}

impl XsProgram for XsBfs {
    fn init(&self, v: VertexId, _meta: &XsMeta) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }
    fn scatter(
        &self,
        _src: VertexId,
        src_state: u32,
        _deg: u32,
        _dst: VertexId,
        _meta: &XsMeta,
    ) -> Option<u32> {
        if src_state >= UNREACHED {
            None
        } else {
            Some(src_state + 1)
        }
    }
    fn gather(&self, _dst: VertexId, state: u32, update: u32, _meta: &XsMeta) -> u32 {
        state.min(update)
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
}

/// Connected components on X-Stream: scatter emits the source's label;
/// gather takes the minimum.
#[derive(Debug, Clone, Copy, Default)]
pub struct XsCc;

impl XsProgram for XsCc {
    fn init(&self, v: VertexId, _meta: &XsMeta) -> u32 {
        v
    }
    fn scatter(
        &self,
        _src: VertexId,
        src_state: u32,
        _deg: u32,
        _dst: VertexId,
        _meta: &XsMeta,
    ) -> Option<u32> {
        Some(src_state)
    }
    fn gather(&self, _dst: VertexId, state: u32, update: u32, _meta: &XsMeta) -> u32 {
        state.min(update)
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
}

/// Weighted SSSP on X-Stream: scatter computes `dist(src) + w(src, dst)`
/// per edge (the scatter hook sees both endpoints); gather takes the
/// minimum. Still streams every edge every iteration.
#[derive(Debug, Clone, Copy)]
pub struct XsSssp {
    /// Source vertex.
    pub root: VertexId,
}

impl XsProgram for XsSssp {
    fn init(&self, v: VertexId, _meta: &XsMeta) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }
    fn scatter(
        &self,
        src: VertexId,
        src_state: u32,
        _deg: u32,
        dst: VertexId,
        _meta: &XsMeta,
    ) -> Option<u32> {
        if src_state >= UNREACHED {
            None
        } else {
            Some(
                src_state
                    .saturating_add(gpsa::programs::Sssp::weight(src, dst))
                    .min(UNREACHED),
            )
        }
    }
    fn gather(&self, _dst: VertexId, state: u32, update: u32, _meta: &XsMeta) -> u32 {
        state.min(update)
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: XsMeta = XsMeta {
        n_vertices: 4,
        n_edges: 5,
    };

    #[test]
    fn pagerank_hooks() {
        let pr = XsPageRank::default();
        assert_eq!(pr.scatter(0, (0.4f32).to_bits(), 0, 1, &META), None);
        let m = pr.scatter(0, (0.4f32).to_bits(), 2, 1, &META).unwrap();
        assert!((f32::from_bits(m) - 0.2).abs() < 1e-6);
        let g = pr.gather(1, (0.1f32).to_bits(), (0.2f32).to_bits(), &META);
        assert!((f32::from_bits(g) - (0.1 + 0.85 * 0.2)).abs() < 1e-6);
        let r = f32::from_bits(pr.reset(1, 0, &META));
        assert!((r - 0.15 / 4.0).abs() < 1e-7);
    }

    #[test]
    fn bfs_hooks() {
        let b = XsBfs { root: 2 };
        assert_eq!(b.scatter(0, UNREACHED, 1, 1, &META), None);
        assert_eq!(b.scatter(2, 0, 1, 1, &META), Some(1));
        assert_eq!(b.gather(1, 5, 3, &META), 3);
    }

    #[test]
    fn cc_hooks() {
        let c = XsCc;
        assert_eq!(c.scatter(3, 3, 1, 0, &META), Some(3));
        assert_eq!(c.gather(0, 0, 3, &META), 0);
    }
}
