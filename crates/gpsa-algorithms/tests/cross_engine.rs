//! Cross-engine parity: GPSA, the GraphChi-like PSW engine, and the
//! X-Stream-like engine must agree with the sequential references (and
//! therefore with each other) on the same graphs — the property the
//! paper's evaluation implicitly depends on.

use gpsa::{Engine, EngineConfig, Termination};
use gpsa_algorithms::gpsa_programs::{Bfs, ConnectedComponents, PageRank};
use gpsa_algorithms::psw::{PswBfs, PswCc, PswPageRank};
use gpsa_algorithms::reference;
use gpsa_algorithms::xs::{XsBfs, XsCc, XsPageRank};
use gpsa_baselines::graphchi::{PswConfig, PswEngine, PswTermination};
use gpsa_baselines::xstream::{XsConfig, XsEngine, XsTermination};
use gpsa_graph::{generate, EdgeList};
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-xeng-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn gpsa_run_u32<P>(tag: &str, el: &EdgeList, program: P, term: Termination) -> Vec<u32>
where
    P: gpsa::VertexProgram<Value = u32>,
{
    let engine = Engine::new(EngineConfig::small(workdir(tag)).with_termination(term));
    engine
        .run_edge_list(el.clone(), tag, program)
        .unwrap()
        .values
}

fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("cycle", generate::cycle(64)),
        ("grid", generate::grid(8, 9)),
        ("twocomp", generate::two_components(21, 34)),
        (
            "rmat",
            generate::symmetrize(&generate::rmat(
                250,
                1200,
                generate::RmatParams::default(),
                99,
            )),
        ),
        ("er", generate::erdos_renyi(180, 900, 5)),
    ]
}

#[test]
fn bfs_parity_across_all_three_engines() {
    for (tag, el) in graphs() {
        let root = 0;
        let expect = reference::bfs(&el, root);

        let got_gpsa = gpsa_run_u32(
            &format!("bfs-{tag}"),
            &el,
            Bfs { root },
            Termination::Quiescence {
                max_supersteps: 2000,
            },
        );
        assert_eq!(got_gpsa, expect, "GPSA bfs on {tag}");

        let psw = PswEngine::new(PswConfig::new(workdir(&format!("psw-bfs-{tag}"))))
            .run(&el, PswBfs { root })
            .unwrap();
        assert_eq!(psw.values, expect, "PSW bfs on {tag}");

        let mut cfg = XsConfig::new(workdir(&format!("xs-bfs-{tag}")));
        cfg.in_memory = true;
        let xs = XsEngine::new(cfg).run(&el, XsBfs { root }).unwrap();
        assert_eq!(xs.values, expect, "X-Stream bfs on {tag}");
    }
}

#[test]
fn cc_parity_across_all_three_engines() {
    for (tag, el) in graphs() {
        let expect = reference::connected_components(&el);

        let got_gpsa = gpsa_run_u32(
            &format!("cc-{tag}"),
            &el,
            ConnectedComponents,
            Termination::Quiescence {
                max_supersteps: 2000,
            },
        );
        assert_eq!(got_gpsa, expect, "GPSA cc on {tag}");

        let psw = PswEngine::new(PswConfig::new(workdir(&format!("psw-cc-{tag}"))))
            .run(&el, PswCc)
            .unwrap();
        assert_eq!(psw.values, expect, "PSW cc on {tag}");

        let mut cfg = XsConfig::new(workdir(&format!("xs-cc-{tag}")));
        cfg.in_memory = true;
        let xs = XsEngine::new(cfg).run(&el, XsCc).unwrap();
        assert_eq!(xs.values, expect, "X-Stream cc on {tag}");
    }
}

#[test]
fn pagerank_parity_across_all_three_engines() {
    // PSW is asynchronous (in-iteration visibility), so it converges to
    // the same fixpoint along a different trajectory; compare after enough
    // iterations for all engines to be near the fixpoint.
    let steps = 40u64;
    let tol = 2e-4f32;
    for (tag, el) in graphs() {
        let expect = reference::pagerank(&el, 0.85, steps as usize);

        let engine = Engine::new(
            EngineConfig::small(workdir(&format!("pr-{tag}")))
                .with_termination(Termination::Supersteps(steps)),
        );
        let got = engine
            .run_edge_list(el.clone(), &format!("pr-{tag}"), PageRank::default())
            .unwrap();
        let diff = reference::max_abs_diff(&got.values, &expect);
        assert!(diff < tol, "GPSA pagerank on {tag}: max diff {diff}");

        let mut cfg = PswConfig::new(workdir(&format!("psw-pr-{tag}")));
        cfg.termination = PswTermination::Iterations(steps);
        let psw = PswEngine::new(cfg)
            .run(&el, PswPageRank::default())
            .unwrap();
        let psw_ranks: Vec<f32> = psw.values.iter().map(|&b| f32::from_bits(b)).collect();
        let diff = reference::max_abs_diff(&psw_ranks, &expect);
        assert!(diff < tol, "PSW pagerank on {tag}: max diff {diff}");

        let mut cfg = XsConfig::new(workdir(&format!("xs-pr-{tag}")));
        cfg.in_memory = true;
        cfg.termination = XsTermination::Iterations(steps);
        let xs = XsEngine::new(cfg).run(&el, XsPageRank::default()).unwrap();
        let xs_ranks: Vec<f32> = xs.values.iter().map(|&b| f32::from_bits(b)).collect();
        let diff = reference::max_abs_diff(&xs_ranks, &expect);
        assert!(diff < tol, "X-Stream pagerank on {tag}: max diff {diff}");
    }
}

#[test]
fn sssp_parity_across_all_three_engines() {
    use gpsa_algorithms::gpsa_programs::Sssp;
    use gpsa_algorithms::psw::PswSssp;
    use gpsa_algorithms::xs::XsSssp;
    for (tag, el) in graphs() {
        let root = 0;
        let expect = reference::sssp(&el, root);

        let got = gpsa_run_u32(
            &format!("sssp-{tag}"),
            &el,
            Sssp { root },
            Termination::Quiescence {
                max_supersteps: 5000,
            },
        );
        assert_eq!(got, expect, "GPSA sssp on {tag}");

        let psw = PswEngine::new(PswConfig::new(workdir(&format!("psw-sssp-{tag}"))))
            .run(&el, PswSssp { root })
            .unwrap();
        assert_eq!(psw.values, expect, "PSW sssp on {tag}");

        let mut cfg = XsConfig::new(workdir(&format!("xs-sssp-{tag}")));
        cfg.in_memory = true;
        let xs = XsEngine::new(cfg).run(&el, XsSssp { root }).unwrap();
        assert_eq!(xs.values, expect, "X-Stream sssp on {tag}");
    }
}

#[test]
fn xstream_pagerank_is_exactly_synchronous() {
    // X-Stream's scatter-gather is a synchronous power iteration, so it
    // should match the reference almost bit-for-bit (modulo summation
    // order) even after few iterations.
    let el = generate::symmetrize(&generate::rmat(
        200,
        1000,
        generate::RmatParams::default(),
        7,
    ));
    let expect = reference::pagerank(&el, 0.85, 5);
    let mut cfg = XsConfig::new(workdir("xs-sync"));
    cfg.in_memory = true;
    cfg.termination = XsTermination::Iterations(5);
    let xs = XsEngine::new(cfg).run(&el, XsPageRank::default()).unwrap();
    let ranks: Vec<f32> = xs.values.iter().map(|&b| f32::from_bits(b)).collect();
    assert!(reference::max_abs_diff(&ranks, &expect) < 1e-6);
}

#[test]
fn gpsa_pagerank_is_exactly_synchronous() {
    // GPSA is BSP: its PR trajectory equals the reference's step by step.
    let el = generate::symmetrize(&generate::rmat(
        200,
        1000,
        generate::RmatParams::default(),
        7,
    ));
    for steps in [1u64, 2, 5] {
        let expect = reference::pagerank(&el, 0.85, steps as usize);
        let engine = Engine::new(
            EngineConfig::small(workdir(&format!("gp-sync-{steps}")))
                .with_termination(Termination::Supersteps(steps)),
        );
        let got = engine
            .run_edge_list(el.clone(), &format!("gp-sync-{steps}"), PageRank::default())
            .unwrap();
        let diff = reference::max_abs_diff(&got.values, &expect);
        assert!(diff < 1e-6, "step {steps}: diff {diff}");
    }
}
