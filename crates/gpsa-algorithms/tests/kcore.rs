//! K-core decomposition on the GPSA engine vs the sequential peeling
//! reference.

use gpsa::programs::KCore;
use gpsa::{Engine, EngineConfig};
use gpsa_algorithms::reference;
use gpsa_graph::{generate, EdgeList};
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-kcore-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_kcore(tag: &str, el: &EdgeList, k: u32) -> Vec<bool> {
    let engine = Engine::new(EngineConfig::small(workdir(tag)));
    let program = KCore::new(k, el.out_degrees());
    let report = engine.run_edge_list(el.clone(), tag, program).unwrap();
    report
        .values
        .iter()
        .map(|&v| KCore::decode(v).is_some())
        .collect()
}

#[test]
fn kcore_on_known_shapes() {
    // A cycle is exactly a 2-core (every vertex has degree 2).
    let cyc = generate::symmetrize(&generate::cycle(20));
    assert_eq!(run_kcore("cyc2", &cyc, 2), vec![true; 20]);
    assert_eq!(run_kcore("cyc3", &cyc, 3), vec![false; 20]);

    // A star has no 2-core at all: spokes have degree 1, and removing
    // them strips the hub.
    let star = generate::symmetrize(&generate::star(10));
    assert_eq!(run_kcore("star", &star, 2), vec![false; 10]);
}

#[test]
fn kcore_cascading_peel() {
    // Chain attached to a triangle: peeling the chain must cascade inward
    // but leave the triangle as the 2-core.
    let mut edges = Vec::new();
    for (a, b) in [(0u32, 1u32), (1, 2), (2, 0)] {
        edges.push(gpsa_graph::Edge::new(a, b));
    }
    for i in 2..7u32 {
        edges.push(gpsa_graph::Edge::new(i, i + 1));
    }
    let el = generate::symmetrize(&EdgeList::from_edges(edges));
    let got = run_kcore("cascade", &el, 2);
    assert_eq!(
        got,
        vec![true, true, true, false, false, false, false, false]
    );
}

#[test]
fn kcore_matches_reference_on_random_graphs() {
    for (seed, k) in [(1u64, 2u32), (2, 3), (3, 4), (4, 5)] {
        let el = generate::symmetrize(&generate::erdos_renyi(300, 1800, seed));
        let expect = reference::k_core(&el, k);
        let got = run_kcore(&format!("rand-{seed}-{k}"), &el, k);
        assert_eq!(got, expect, "seed {seed} k {k}");
    }
}

#[test]
fn kcore_on_skewed_graph() {
    let el = generate::symmetrize(&generate::rmat(
        400,
        3000,
        generate::RmatParams::default(),
        9,
    ));
    for k in [2u32, 4, 8] {
        let expect = reference::k_core(&el, k);
        let got = run_kcore(&format!("rmat-{k}"), &el, k);
        assert_eq!(got, expect, "k {k}");
        // Monotonicity: members shrink as k grows (spot check content).
        let members = got.iter().filter(|&&b| b).count();
        let total = got.len();
        assert!(members <= total);
    }
}

#[test]
fn decode_roundtrip() {
    assert_eq!(KCore::decode(0), None);
    assert_eq!(KCore::decode(1), Some(0));
    assert_eq!(KCore::decode(6), Some(5));
}
