//! The PSW execution loop.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gpsa_graph::EdgeList;

use super::program::{PswMeta, PswProgram};
use super::shard::{Record, ShardedGraph};

/// Stop condition for a PSW run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PswTermination {
    /// Run exactly this many iterations.
    Iterations(u64),
    /// Run until no vertex is scheduled, bounded by `max`.
    Quiescence {
        /// Upper bound on iterations.
        max: u64,
    },
}

/// PSW engine configuration.
#[derive(Debug, Clone)]
pub struct PswConfig {
    /// Number of shards / vertex intervals.
    pub n_shards: usize,
    /// Update threads per interval (1 = deterministic sequential order).
    pub threads: usize,
    /// Stop condition.
    pub termination: PswTermination,
    /// Directory for shard files.
    pub work_dir: PathBuf,
}

impl PswConfig {
    /// Defaults: 4 shards, 1 thread, quiescence-bounded.
    pub fn new<P: Into<PathBuf>>(work_dir: P) -> Self {
        PswConfig {
            n_shards: 4,
            threads: 1,
            termination: PswTermination::Quiescence { max: 10_000 },
            work_dir: work_dir.into(),
        }
    }
}

/// Results of a PSW run.
#[derive(Debug, Clone)]
pub struct PswReport {
    /// Final vertex values (raw 32-bit payloads).
    pub values: Vec<u32>,
    /// Iterations executed.
    pub iterations: u64,
    /// Wall time per iteration.
    pub step_times: Vec<Duration>,
    /// Vertex update-function invocations.
    pub updates: u64,
    /// Time spent sharding the input.
    pub build_time: Duration,
}

/// The GraphChi-like engine.
#[derive(Debug, Clone)]
pub struct PswEngine {
    config: PswConfig,
}

/// In-memory image of one loaded shard/window: structure-of-arrays so edge
/// values can be mutated through `&self` during parallel updates.
struct Loaded {
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    vals: Vec<AtomicU32>,
    /// Contiguous source runs `(src, start, end)` — windows are sorted by
    /// source, so each vertex's out-edges form one run.
    runs: Vec<(u32, u32, u32)>,
}

impl Loaded {
    fn from_records(records: Vec<Record>) -> Loaded {
        let mut srcs = Vec::with_capacity(records.len());
        let mut dsts = Vec::with_capacity(records.len());
        let mut vals = Vec::with_capacity(records.len());
        for r in &records {
            srcs.push(r.src);
            dsts.push(r.dst);
            vals.push(AtomicU32::new(r.val));
        }
        let mut runs = Vec::new();
        let mut i = 0;
        while i < srcs.len() {
            let s = srcs[i];
            let start = i;
            while i < srcs.len() && srcs[i] == s {
                i += 1;
            }
            runs.push((s, start as u32, i as u32));
        }
        Loaded {
            srcs,
            dsts,
            vals,
            runs,
        }
    }

    fn to_records(&self, range: std::ops::Range<usize>) -> Vec<Record> {
        range
            .map(|i| Record {
                src: self.srcs[i],
                dst: self.dsts[i],
                val: self.vals[i].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Edge-index run of `src`'s out-edges in this window, if any.
    fn run_of(&self, src: u32) -> Option<std::ops::Range<usize>> {
        self.runs
            .binary_search_by_key(&src, |&(s, _, _)| s)
            .ok()
            .map(|k| {
                let (_, a, b) = self.runs[k];
                a as usize..b as usize
            })
    }
}

impl PswEngine {
    /// Create an engine.
    pub fn new(config: PswConfig) -> Self {
        PswEngine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PswConfig {
        &self.config
    }

    /// Shard `el` and run `program` to termination.
    pub fn run<P: PswProgram>(&self, el: &EdgeList, program: P) -> io::Result<PswReport> {
        let t_build = Instant::now();
        let graph = ShardedGraph::build(
            el,
            self.config.n_shards,
            program.init_edge(&PswMeta {
                n_vertices: el.n_vertices as u64,
                n_edges: el.len() as u64,
            }),
            &self.config.work_dir,
        )?;
        let meta = graph.meta;
        let n = el.n_vertices;
        let p_shards = graph.n_shards();

        // Vertex values and out-degrees (GraphChi keeps a vertex data file;
        // at reproduction scale an in-memory array is equivalent).
        let values: Vec<AtomicU32> = (0..n as u32)
            .map(|v| AtomicU32::new(program.init(v, &meta)))
            .collect();
        let mut out_deg = vec![0u32; n];
        for e in &el.edges {
            out_deg[e.src as usize] += 1;
        }

        // Initial signal pass: every vertex writes its first out-signal so
        // iteration 0 sees real in-edge values (GraphChi initializes edge
        // data the same way).
        for q in 0..p_shards {
            let mut recs = graph.read_shard(q)?;
            for r in &mut recs {
                let init = program.init(r.src, &meta);
                if let Some(sig) =
                    program.out_signal_edge(r.src, r.dst, init, out_deg[r.src as usize], &meta)
                {
                    r.val = sig;
                }
            }
            // Whole-shard writeback = union of all its windows.
            for i in 0..p_shards {
                let range = graph.window_range(q, i);
                graph.write_window(q, i, &recs[range.start as usize..range.end as usize])?;
            }
        }
        let build_time = t_build.elapsed();

        let active: Vec<AtomicBool> = (0..n as u32)
            .map(|v| AtomicBool::new(program.initially_active(v, &meta)))
            .collect();
        let updates = AtomicU64::new(0);
        let mut step_times = Vec::new();
        let mut iterations = 0u64;

        loop {
            let t_step = Instant::now();
            // Snapshot + clear the schedule; updates during this iteration
            // schedule for the next one.
            let current: Vec<bool> = active
                .iter()
                .map(|a| a.swap(false, Ordering::Relaxed))
                .collect();
            // Fixed-iteration mode runs its exact count (timing
            // methodology); quiescence mode stops once nothing is
            // scheduled.
            let any_work = program.always_active() || current.iter().any(|&b| b);
            if !any_work
                && iterations > 0
                && matches!(self.config.termination, PswTermination::Quiescence { .. })
            {
                break;
            }

            let first_iteration = iterations == 0;
            for p in 0..p_shards {
                self.process_interval(
                    &graph,
                    p,
                    &program,
                    &meta,
                    &values,
                    &out_deg,
                    &current,
                    &active,
                    &updates,
                    first_iteration,
                )?;
            }

            step_times.push(t_step.elapsed());
            iterations += 1;
            let more = match self.config.termination {
                PswTermination::Iterations(k) => iterations < k,
                PswTermination::Quiescence { max } => {
                    iterations < max
                        && (program.always_active()
                            || active.iter().any(|a| a.load(Ordering::Relaxed)))
                }
            };
            if !more {
                break;
            }
        }

        Ok(PswReport {
            values: values.iter().map(|v| v.load(Ordering::Relaxed)).collect(),
            iterations,
            step_times,
            updates: updates.load(Ordering::Relaxed),
            build_time,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn process_interval<P: PswProgram>(
        &self,
        graph: &ShardedGraph,
        p: usize,
        program: &P,
        meta: &PswMeta,
        values: &[AtomicU32],
        out_deg: &[u32],
        current: &[bool],
        next_active: &[AtomicBool],
        updates: &AtomicU64,
        first_iteration: bool,
    ) -> io::Result<()> {
        let interval = graph.intervals[p].clone();
        if interval.is_empty() {
            return Ok(());
        }
        let p_shards = graph.n_shards();

        // Memory shard: the interval's in-edges (plus, inside it, the
        // interval's own window).
        let shard = Loaded::from_records(graph.read_shard(p)?);
        // Sliding windows of every other shard: the interval's out-edges.
        let mut windows: Vec<Option<Loaded>> = Vec::with_capacity(p_shards);
        for q in 0..p_shards {
            if q == p {
                windows.push(None); // aliases the memory shard
            } else {
                windows.push(Some(Loaded::from_records(graph.read_window(q, p)?)));
            }
        }

        // Index the in-edges by destination (counting sort over the
        // interval).
        let base = interval.start;
        let width = (interval.end - interval.start) as usize;
        let mut in_count = vec![0u32; width + 1];
        for &d in &shard.dsts {
            in_count[(d - base) as usize + 1] += 1;
        }
        for i in 1..in_count.len() {
            in_count[i] += in_count[i - 1];
        }
        let in_offsets = in_count.clone();
        let mut cursor = in_count;
        let mut in_edges = vec![0u32; shard.dsts.len()];
        for (rec, &d) in shard.dsts.iter().enumerate() {
            let li = (d - base) as usize;
            in_edges[cursor[li] as usize] = rec as u32;
            cursor[li] += 1;
        }

        // The update sweep (parallel chunks; 1 thread = GraphChi's
        // deterministic sub-interval order).
        let self_window = graph.window_range(p, p);
        let update_vertex = |v: u32| {
            let li = (v - base) as usize;
            if !program.always_active() && !current[v as usize] {
                return;
            }
            let old = values[v as usize].load(Ordering::Relaxed);
            let in_vals: Vec<u32> = in_edges[in_offsets[li] as usize..in_offsets[li + 1] as usize]
                .iter()
                .map(|&rec| shard.vals[rec as usize].load(Ordering::Relaxed))
                .collect();
            let new = program.update(v, old, &in_vals, meta);
            updates.fetch_add(1, Ordering::Relaxed);
            let changed = program.changed(old, new);
            if changed {
                values[v as usize].store(new, Ordering::Relaxed);
            }
            // Broadcast the out-signal; schedule out-neighbors on change,
            // and unconditionally on the very first iteration so seeds
            // planted by the initial signal pass get consumed.
            let schedule = changed || first_iteration;
            let signal_value = if changed { new } else { old };
            let per_edge = program.per_edge_signals();
            let signal = if per_edge {
                None // computed per edge below
            } else {
                program.out_signal(v, signal_value, out_deg[v as usize], meta)
            };
            if !per_edge && signal.is_none() && !schedule {
                return;
            }
            for (q, w) in windows.iter().enumerate() {
                let loaded: &Loaded = match w {
                    Some(l) => l,
                    None => &shard,
                };
                let run = match w {
                    Some(l) => l.run_of(v),
                    None => {
                        // Inside the memory shard, restrict to its own
                        // window region (src-sorted run of v within it).
                        shard.run_of(v).map(|r| {
                            let a = r.start.max(self_window.start as usize);
                            let b = r.end.min(self_window.end as usize);
                            a..b.max(a)
                        })
                    }
                };
                let _ = q;
                if let Some(run) = run {
                    for rec in run {
                        let sig = if per_edge {
                            program.out_signal_edge(
                                v,
                                loaded.dsts[rec],
                                signal_value,
                                out_deg[v as usize],
                                meta,
                            )
                        } else {
                            signal
                        };
                        if let Some(sig) = sig {
                            loaded.vals[rec].store(sig, Ordering::Relaxed);
                        }
                        if schedule {
                            next_active[loaded.dsts[rec] as usize].store(true, Ordering::Relaxed);
                        }
                    }
                }
            }
        };

        let threads = self.config.threads.max(1);
        if threads == 1 || width < 2 * threads {
            for v in interval.clone() {
                update_vertex(v);
            }
        } else {
            let chunk = width.div_ceil(threads);
            crossbeam_utils::thread::scope(|s| {
                for t in 0..threads {
                    let lo = interval.start + (t * chunk) as u32;
                    let hi = (lo + chunk as u32).min(interval.end);
                    let f = &update_vertex;
                    s.spawn(move |_| {
                        for v in lo..hi {
                            f(v);
                        }
                    });
                }
            })
            .expect("PSW update scope");
        }

        // Write the windows (and the memory shard's own window) back.
        for (q, w) in windows.iter().enumerate() {
            match w {
                Some(l) => graph.write_window(q, p, &l.to_records(0..l.srcs.len()))?,
                None => graph.write_window(
                    p,
                    p,
                    &shard.to_records(self_window.start as usize..self_window.end as usize),
                )?,
            }
        }
        Ok(())
    }
}
