//! A GraphChi-like engine: vertex-centric, out-of-core, Parallel Sliding
//! Windows over interval shards, edge-value communication, selective
//! scheduling.
//!
//! Faithful properties (per Kyrola et al., OSDI'12, as characterized by
//! the GPSA paper):
//!
//! * the graph is split into `P` vertex intervals; shard `p` holds every
//!   edge whose destination lies in interval `p`, sorted by source;
//! * an iteration processes one interval at a time: the interval's own
//!   shard supplies its in-edges, and one contiguous *sliding window* of
//!   each other shard supplies its out-edges;
//! * vertices communicate through mutable **edge values** stored in the
//!   shards (no message queues);
//! * I/O is explicit (`pread`/`pwrite`-style), not mmap — the design
//!   point GPSA argues against;
//! * inactive vertices are skipped (selective scheduling).

mod engine;
mod program;
mod shard;

pub use engine::{PswConfig, PswEngine, PswReport, PswTermination};
pub use program::{PswMeta, PswProgram};
pub use shard::{Record, ShardedGraph};
