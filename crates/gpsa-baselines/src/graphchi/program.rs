//! The GraphChi-style user program: an update function over a vertex and
//! its in/out edge values.

use gpsa_graph::VertexId;

/// Static graph facts passed to every hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PswMeta {
    /// Number of vertices.
    pub n_vertices: u64,
    /// Number of edges.
    pub n_edges: u64,
}

/// A vertex-centric program in the GraphChi mold. All values are 32-bit
/// words; float programs bit-cast (`f32::to_bits`/`from_bits`).
pub trait PswProgram: Send + Sync + 'static {
    /// Initial vertex value.
    fn init(&self, v: VertexId, meta: &PswMeta) -> u32;

    /// Is `v` in the initial active set?
    fn initially_active(&self, v: VertexId, meta: &PswMeta) -> bool;

    /// The update function: fold the in-edge values into a new vertex
    /// value. `in_vals` yields the current value of every in-edge of `v`.
    fn update(&self, v: VertexId, value: u32, in_vals: &[u32], meta: &PswMeta) -> u32;

    /// Value written to **each** out-edge of `v` after an update (the
    /// GraphChi broadcast); `None` leaves the edge values untouched.
    fn out_signal(
        &self,
        v: VertexId,
        new_value: u32,
        out_degree: u32,
        meta: &PswMeta,
    ) -> Option<u32>;

    /// Per-edge variant of [`out_signal`](Self::out_signal): the value for
    /// the specific edge `(v, dst)`. Defaults to the uniform broadcast;
    /// programs needing edge-dependent values (weighted SSSP) override
    /// this **and** [`per_edge_signals`](Self::per_edge_signals).
    fn out_signal_edge(
        &self,
        v: VertexId,
        _dst: VertexId,
        new_value: u32,
        out_degree: u32,
        meta: &PswMeta,
    ) -> Option<u32> {
        self.out_signal(v, new_value, out_degree, meta)
    }

    /// Whether signals vary per edge (forces the engine onto the per-edge
    /// path).
    fn per_edge_signals(&self) -> bool {
        false
    }

    /// Did the update change the vertex (schedule its out-neighbors)?
    fn changed(&self, old: u32, new: u32) -> bool {
        old != new
    }

    /// Dense mode: every vertex updates every iteration regardless of the
    /// active set (PageRank).
    fn always_active(&self) -> bool {
        false
    }

    /// Initial value of every edge, before the first signal pass.
    fn init_edge(&self, _meta: &PswMeta) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MinProg;
    impl PswProgram for MinProg {
        fn init(&self, v: VertexId, _m: &PswMeta) -> u32 {
            v
        }
        fn initially_active(&self, _v: VertexId, _m: &PswMeta) -> bool {
            true
        }
        fn update(&self, _v: VertexId, value: u32, in_vals: &[u32], _m: &PswMeta) -> u32 {
            in_vals.iter().copied().fold(value, u32::min)
        }
        fn out_signal(&self, _v: VertexId, new: u32, _d: u32, _m: &PswMeta) -> Option<u32> {
            Some(new)
        }
    }

    #[test]
    fn defaults() {
        let p = MinProg;
        assert!(p.changed(3, 1));
        assert!(!p.changed(3, 3));
        assert!(!p.always_active());
        let m = PswMeta {
            n_vertices: 2,
            n_edges: 1,
        };
        assert_eq!(p.init_edge(&m), 0);
        assert_eq!(p.update(0, 5, &[7, 2, 9], &m), 2);
    }
}
