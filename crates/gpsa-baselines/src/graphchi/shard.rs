//! Interval shards and sliding windows (GraphChi's on-disk layout).
//!
//! Shard `p` holds every edge whose destination is in vertex interval `p`,
//! sorted by source. Because of the source sort, the edges *out of* any
//! interval `i` form one contiguous record range in every shard — the
//! *sliding window*. Window record offsets are precomputed at build time,
//! so an iteration over interval `i` costs one full shard read plus `P`
//! window reads and `P` window writes, all sequential — GraphChi's whole
//! point. I/O here is explicit positioned read/write (the engine GPSA
//! contrasts its mmap design against), never mmap.

use std::fs::{File, OpenOptions};
use std::io;
use std::ops::Range;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use gpsa_graph::{EdgeList, VertexId};

use super::program::PswMeta;

/// One shard record: an edge and its mutable 32-bit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// The communication value carried by this edge.
    pub val: u32,
}

const RECORD_BYTES: usize = 12;

impl Record {
    fn write_to(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.src.to_le_bytes());
        buf[4..8].copy_from_slice(&self.dst.to_le_bytes());
        buf[8..12].copy_from_slice(&self.val.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Record {
        Record {
            src: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            dst: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            val: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
        }
    }
}

/// The set of shard files plus the precomputed window offset table.
#[derive(Debug)]
pub struct ShardSet {
    files: Vec<File>,
    /// `window_offsets[q][i]` = first record index in shard `q` whose
    /// source is in interval `i` or later (`P + 1` entries per shard).
    window_offsets: Vec<Vec<u64>>,
    records: Vec<u64>,
}

/// A sharded graph on disk: intervals, shards, metadata.
#[derive(Debug)]
pub struct ShardedGraph {
    /// Vertex intervals, one per shard.
    pub intervals: Vec<Range<VertexId>>,
    /// Graph facts.
    pub meta: PswMeta,
    shards: ShardSet,
    #[allow(dead_code)]
    dir: PathBuf,
}

impl ShardedGraph {
    /// Shard `el` into `n_shards` edge-balanced interval shards under
    /// `dir`, initializing every edge value to `init_edge_val`.
    pub fn build(
        el: &EdgeList,
        n_shards: usize,
        init_edge_val: u32,
        dir: &Path,
    ) -> io::Result<ShardedGraph> {
        assert!(n_shards > 0);
        std::fs::create_dir_all(dir)?;
        let n = el.n_vertices;

        // Edge-balanced intervals over *in*-degree (shards hold in-edges).
        let mut in_deg = vec![0u64; n];
        for e in &el.edges {
            in_deg[e.dst as usize] += 1;
        }
        let total = el.len() as u64;
        let target = total.div_ceil(n_shards as u64).max(1);
        let mut intervals = Vec::with_capacity(n_shards);
        let mut start = 0usize;
        for p in 0..n_shards {
            if p == n_shards - 1 {
                intervals.push(start as VertexId..n as VertexId);
                break;
            }
            let mut acc = 0u64;
            let mut end = start;
            while end < n && acc < target {
                acc += in_deg[end];
                end += 1;
            }
            intervals.push(start as VertexId..end as VertexId);
            start = end;
        }
        while intervals.len() < n_shards {
            intervals.push(n as VertexId..n as VertexId);
        }

        let shard_of = |v: VertexId| -> usize {
            intervals
                .iter()
                .position(|r| r.contains(&v))
                .unwrap_or(n_shards - 1)
        };

        // Bucket edges by destination shard, sort each by (src, dst).
        let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); n_shards];
        for e in &el.edges {
            buckets[shard_of(e.dst)].push(Record {
                src: e.src,
                dst: e.dst,
                val: init_edge_val,
            });
        }
        let mut files = Vec::with_capacity(n_shards);
        let mut window_offsets = Vec::with_capacity(n_shards);
        let mut records = Vec::with_capacity(n_shards);
        for (q, mut bucket) in buckets.into_iter().enumerate() {
            bucket.sort_unstable_by_key(|r| (r.src, r.dst));
            // Window offsets: binary-search each interval boundary.
            let mut offs = Vec::with_capacity(n_shards + 1);
            for iv in &intervals {
                offs.push(bucket.partition_point(|r| r.src < iv.start) as u64);
            }
            offs.push(bucket.len() as u64);
            let path = dir.join(format!("shard-{q}.bin"));
            let mut bytes = vec![0u8; bucket.len() * RECORD_BYTES];
            for (i, r) in bucket.iter().enumerate() {
                r.write_to(&mut bytes[i * RECORD_BYTES..(i + 1) * RECORD_BYTES]);
            }
            std::fs::write(&path, &bytes)?;
            files.push(OpenOptions::new().read(true).write(true).open(&path)?);
            window_offsets.push(offs);
            records.push(bucket.len() as u64);
        }

        Ok(ShardedGraph {
            intervals,
            meta: PswMeta {
                n_vertices: n as u64,
                n_edges: el.len() as u64,
            },
            shards: ShardSet {
                files,
                window_offsets,
                records,
            },
            dir: dir.to_path_buf(),
        })
    }

    /// Number of shards / intervals.
    pub fn n_shards(&self) -> usize {
        self.intervals.len()
    }

    /// Record-index range of the window of interval `i` inside shard `q`.
    pub fn window_range(&self, q: usize, i: usize) -> Range<u64> {
        self.shards.window_offsets[q][i]..self.shards.window_offsets[q][i + 1]
    }

    /// Read one whole shard (the in-edges of its interval).
    pub fn read_shard(&self, q: usize) -> io::Result<Vec<Record>> {
        self.read_records(q, 0..self.shards.records[q])
    }

    /// Read the window of interval `i` from shard `q` (out-edges of
    /// interval `i` whose destinations land in interval `q`).
    pub fn read_window(&self, q: usize, i: usize) -> io::Result<Vec<Record>> {
        self.read_records(q, self.window_range(q, i))
    }

    /// Write a window back (must be the same length it was read at).
    pub fn write_window(&self, q: usize, i: usize, records: &[Record]) -> io::Result<()> {
        let range = self.window_range(q, i);
        assert_eq!(records.len() as u64, range.end - range.start);
        let mut bytes = vec![0u8; records.len() * RECORD_BYTES];
        for (k, r) in records.iter().enumerate() {
            r.write_to(&mut bytes[k * RECORD_BYTES..(k + 1) * RECORD_BYTES]);
        }
        self.shards.files[q].write_all_at(&bytes, range.start * RECORD_BYTES as u64)
    }

    fn read_records(&self, q: usize, range: Range<u64>) -> io::Result<Vec<Record>> {
        let len = (range.end - range.start) as usize;
        let mut bytes = vec![0u8; len * RECORD_BYTES];
        self.shards.files[q].read_exact_at(&mut bytes, range.start * RECORD_BYTES as u64)?;
        Ok(bytes
            .chunks_exact(RECORD_BYTES)
            .map(Record::read_from)
            .collect())
    }

    /// Total bytes on disk across all shard files.
    pub fn shard_bytes(&self) -> u64 {
        self.shards.records.iter().sum::<u64>() * RECORD_BYTES as u64
    }

    /// The shard (= interval index) owning vertex `v`.
    pub fn shard_of(&self, v: VertexId) -> usize {
        // Intervals are contiguous and sorted; binary search the starts.
        match self.intervals.binary_search_by(|r| {
            if v < r.start {
                std::cmp::Ordering::Greater
            } else if v >= r.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => self.intervals.len() - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsa_graph::{generate, Edge};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gpsa-shard-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn shards_partition_edges_by_destination() {
        let el = generate::rmat(100, 600, generate::RmatParams::default(), 3);
        let g = ShardedGraph::build(&el, 4, 7, &tmpdir("part")).unwrap();
        let mut seen = 0;
        for q in 0..4 {
            let recs = g.read_shard(q).unwrap();
            let iv = &g.intervals[q];
            for r in &recs {
                assert!(iv.contains(&r.dst), "dst {} outside interval {iv:?}", r.dst);
                assert_eq!(r.val, 7, "edge value initialized");
            }
            // Sorted by src.
            assert!(recs.windows(2).all(|w| w[0].src <= w[1].src));
            seen += recs.len();
        }
        assert_eq!(seen, 600);
    }

    #[test]
    fn windows_cover_out_edges_exactly() {
        let el = generate::rmat(80, 400, generate::RmatParams::default(), 5);
        let g = ShardedGraph::build(&el, 3, 0, &tmpdir("win")).unwrap();
        // Union over q of window(q, i) == all edges with src in interval i.
        for i in 0..3 {
            let iv = g.intervals[i].clone();
            let mut got: Vec<(u32, u32)> = Vec::new();
            for q in 0..3 {
                for r in g.read_window(q, i).unwrap() {
                    assert!(iv.contains(&r.src));
                    got.push((r.src, r.dst));
                }
            }
            got.sort_unstable();
            let mut want: Vec<(u32, u32)> = el
                .edges
                .iter()
                .filter(|e| iv.contains(&e.src))
                .map(|e| (e.src, e.dst))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "interval {i}");
        }
    }

    #[test]
    fn window_writeback_persists() {
        let el = EdgeList::from_edges(vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(2, 0),
        ]);
        let g = ShardedGraph::build(&el, 2, 0, &tmpdir("wb")).unwrap();
        for q in 0..2 {
            for i in 0..2 {
                let mut w = g.read_window(q, i).unwrap();
                for r in &mut w {
                    r.val = r.src * 100 + r.dst;
                }
                g.write_window(q, i, &w).unwrap();
            }
        }
        for q in 0..2 {
            for r in g.read_shard(q).unwrap() {
                assert_eq!(r.val, r.src * 100 + r.dst);
            }
        }
    }

    #[test]
    fn shard_of_is_consistent_with_intervals() {
        let el = generate::erdos_renyi(50, 300, 8);
        let g = ShardedGraph::build(&el, 4, 0, &tmpdir("of")).unwrap();
        for v in 0..50u32 {
            let p = g.shard_of(v);
            assert!(
                g.intervals[p].contains(&v),
                "v={v} p={p} iv={:?}",
                g.intervals[p]
            );
        }
    }

    #[test]
    fn skewed_graph_balances_by_in_degree() {
        // Star reversed: everyone points at vertex 0 => shard 0 gets all.
        let el = EdgeList::from_edges((1..100).map(|i| Edge::new(i, 0)).collect::<Vec<_>>());
        let g = ShardedGraph::build(&el, 4, 0, &tmpdir("skew")).unwrap();
        assert_eq!(g.intervals[0], 0..1, "hub isolated into its own interval");
        assert_eq!(g.read_shard(0).unwrap().len(), 99);
    }

    #[test]
    fn more_shards_than_vertices() {
        let el = generate::chain(3);
        let g = ShardedGraph::build(&el, 8, 0, &tmpdir("many")).unwrap();
        assert_eq!(g.n_shards(), 8);
        let total: usize = (0..8).map(|q| g.read_shard(q).unwrap().len()).sum();
        assert_eq!(total, 2);
    }
}
