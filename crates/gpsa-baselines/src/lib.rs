#![warn(missing_docs)]

//! Re-implementations of the paper's two comparator systems.
//!
//! The GPSA evaluation (paper §VI) compares against GraphChi 0.2.6 and
//! X-Stream. Neither C++ codebase is part of this reproduction, so this
//! crate rebuilds the *algorithmic shape* of each — the properties the
//! paper's analysis leans on:
//!
//! * [`graphchi`] — a vertex-centric, out-of-core engine with interval
//!   shards and Parallel Sliding Windows: communication through **edge
//!   values**, sequential shard I/O with explicit buffer management (not
//!   mmap), and selective scheduling that skips inactive vertices.
//! * [`xstream`] — an edge-centric scatter–gather engine with streaming
//!   partitions: every iteration **streams all edges** (no inactive-vertex
//!   skipping — the behaviour behind the paper's BFS/CC results), shuffles
//!   updates into per-partition buffers, then gathers them into vertex
//!   state; all partitions stream in parallel (the near-100% CPU profile
//!   of paper Fig. 11).
//!
//! Both engines share the value-bit conventions of the GPSA core (32-bit
//! payloads; `f32` via bit casts) so the same algorithms can be validated
//! across all three engines.

pub mod graphchi;
pub mod seq;
pub mod xstream;
