//! The COST baseline: one tuned thread over flat in-memory CSR arrays.
//!
//! "Scalability! But at what COST?" (and its actor-flavored follow-up in
//! PAPERS.md) asks the embarrassing question every parallel graph engine
//! must answer: how many cores does it need to beat a competent
//! single-threaded implementation? This module is that implementation for
//! the three paper benchmarks — no actors, no channels, no mmap, no
//! per-superstep bitmaps; just `offsets`/`targets` arrays, a worklist
//! where one helps, and tight loops the compiler can see through.
//!
//! The algorithms compute the *same fixpoints* as the engine's vertex
//! programs (`gpsa::programs`): BFS hop levels, min-label connected
//! components over directed propagation, and the "simplified PageRank"
//! where sinks generate no messages and a vertex with no inbound
//! contribution falls back to the base term. BFS and CC reach identical
//! integer fixpoints; PageRank agrees up to f32 summation order.

use gpsa_graph::{Csr, VertexId};

/// Level/label used for unreached vertices — mirrors
/// `gpsa::programs::UNREACHED` (largest 31-bit payload; gpsa-baselines
/// deliberately does not depend on gpsa-core).
pub const UNREACHED: u32 = 0x7FFF_FFFF;

/// The baseline's inner loops, shaped exactly like the engine's batch
/// fold kernels: one uniform message applied to a run of destinations,
/// with the next destinations' state lines prefetched ahead of the fold.
/// Keeping the COST denominator on the same kernel discipline as the
/// engine means the COST ratio measures actor overhead, not loop style.
mod kernel {
    /// How many destinations ahead to prefetch — matches the engine's
    /// fold kernels (`gpsa-core/src/kernels.rs`).
    const PREFETCH_AHEAD: usize = 8;

    #[inline(always)]
    fn prefetch<T>(state: &[T], v: u32) {
        #[cfg(target_arch = "x86_64")]
        {
            let i = v as usize;
            if i < state.len() {
                unsafe {
                    core::arch::x86_64::_mm_prefetch(
                        state.as_ptr().add(i) as *const i8,
                        core::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (state, v);
        }
    }

    /// BFS relaxation: assign `level` to every still-unreached
    /// destination in the run and append it to the next frontier.
    #[inline]
    pub fn bfs_relax_run(dsts: &[u32], level: u32, levels: &mut [u32], next: &mut Vec<u32>) {
        for (i, &v) in dsts.iter().enumerate() {
            if let Some(&ahead) = dsts.get(i + PREFETCH_AHEAD) {
                prefetch(levels, ahead);
            }
            if levels[v as usize] == super::UNREACHED {
                levels[v as usize] = level;
                next.push(v);
            }
        }
    }

    /// CC relaxation: lower every destination whose label exceeds
    /// `label`, enqueueing vertices that are not already queued.
    #[inline]
    pub fn cc_relax_run(
        dsts: &[u32],
        label: u32,
        labels: &mut [u32],
        queued: &mut [bool],
        next: &mut Vec<u32>,
    ) {
        for (i, &v) in dsts.iter().enumerate() {
            if let Some(&ahead) = dsts.get(i + PREFETCH_AHEAD) {
                prefetch(labels, ahead);
            }
            if label < labels[v as usize] {
                labels[v as usize] = label;
                if !queued[v as usize] {
                    queued[v as usize] = true;
                    next.push(v);
                }
            }
        }
    }

    /// PageRank scatter: add the damped uniform contribution to every
    /// destination's inbound sum and mark it as having received mass.
    #[inline]
    pub fn pr_scatter_run(dsts: &[u32], contrib: f32, next: &mut [f32], touched: &mut [bool]) {
        for (i, &v) in dsts.iter().enumerate() {
            if let Some(&ahead) = dsts.get(i + PREFETCH_AHEAD) {
                prefetch(next, ahead);
            }
            next[v as usize] += contrib;
            touched[v as usize] = true;
        }
    }
}

/// What a baseline run did, for throughput accounting: every edge relaxed
/// counts as one "message", making rates comparable with the engine's
/// `RunReport::messages`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqStats {
    /// Edge relaxations performed (message-equivalents).
    pub messages: u64,
    /// Rounds / supersteps executed (1 for the worklist algorithms'
    /// whole-run accounting).
    pub rounds: u64,
}

/// Single-thread BFS from `root`: classic two-queue frontier sweep.
/// Returns per-vertex hop levels ([`UNREACHED`] where unreachable).
pub fn bfs(csr: &Csr, root: VertexId) -> (Vec<u32>, SeqStats) {
    let n = csr.n_vertices();
    let mut levels = vec![UNREACHED; n];
    let mut messages = 0u64;
    let mut rounds = 0u64;
    if (root as usize) >= n {
        return (levels, SeqStats { messages, rounds });
    }
    levels[root as usize] = 0;
    let mut frontier = vec![root];
    let mut next = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        rounds += 1;
        level += 1;
        for &u in &frontier {
            let nbrs = csr.neighbors(u);
            messages += nbrs.len() as u64;
            kernel::bfs_relax_run(nbrs, level, &mut levels, &mut next);
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    (levels, SeqStats { messages, rounds })
}

/// Single-thread connected components: min-label propagation along
/// directed edges, driven by a worklist of vertices whose label just
/// dropped. Reaches the same fixpoint as the engine's
/// `ConnectedComponents` program (run both on a symmetrized graph for
/// undirected components).
pub fn connected_components(csr: &Csr) -> (Vec<u32>, SeqStats) {
    let n = csr.n_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut messages = 0u64;
    // Every vertex starts active (the program's init activates all).
    let mut worklist: Vec<VertexId> = (0..n as VertexId).collect();
    let mut queued = vec![true; n];
    let mut next = Vec::new();
    let mut rounds = 0u64;
    while !worklist.is_empty() {
        rounds += 1;
        for &u in &worklist {
            queued[u as usize] = false;
            let lu = labels[u as usize];
            let nbrs = csr.neighbors(u);
            messages += nbrs.len() as u64;
            kernel::cc_relax_run(nbrs, lu, &mut labels, &mut queued, &mut next);
        }
        worklist.clear();
        std::mem::swap(&mut worklist, &mut next);
    }
    (labels, SeqStats { messages, rounds })
}

/// Single-thread PageRank, `supersteps` rounds of the engine's simplified
/// semantics: sinks send nothing; a vertex receiving no contribution
/// scores the bare base term `(1 - d)/n`; otherwise
/// `base + d * Σ rank(u)/deg(u)`. Two flat arrays, push-style.
pub fn pagerank(csr: &Csr, damping: f32, supersteps: u64) -> (Vec<f32>, SeqStats) {
    let n = csr.n_vertices();
    if n == 0 {
        return (
            Vec::new(),
            SeqStats {
                messages: 0,
                rounds: 0,
            },
        );
    }
    let base = (1.0 - damping) / n as f32;
    let mut ranks = vec![1.0 / n as f32; n];
    // `next` holds the damped inbound sum; `touched` distinguishes a true
    // zero sum from "no message", which the engine maps to the bare base
    // term.
    let mut next = vec![0.0f32; n];
    let mut touched = vec![false; n];
    let mut messages = 0u64;
    for _ in 0..supersteps {
        next.fill(0.0);
        touched.fill(false);
        for (u, &rank) in ranks.iter().enumerate() {
            let nbrs = csr.neighbors(u as VertexId);
            if nbrs.is_empty() {
                continue; // sink: no messages (gen_msg -> None)
            }
            let share = rank / nbrs.len() as f32;
            messages += nbrs.len() as u64;
            kernel::pr_scatter_run(nbrs, damping * share, &mut next, &mut touched);
        }
        for v in 0..n {
            // `compute` folds base + d*msg...; `no_message_value` is the
            // bare base term either way.
            ranks[v] = base + if touched[v] { next[v] } else { 0.0 };
        }
    }
    (
        ranks,
        SeqStats {
            messages,
            rounds: supersteps,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsa_graph::{generate, EdgeList};

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4
        let el = EdgeList::from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]
                .iter()
                .map(|&(s, d)| gpsa_graph::Edge::new(s, d))
                .collect(),
        );
        Csr::from_edge_list(&el)
    }

    #[test]
    fn bfs_levels_on_diamond() {
        let (levels, stats) = bfs(&diamond(), 0);
        assert_eq!(levels, vec![0, 1, 1, 2, 3]);
        assert_eq!(stats.messages, 5); // every edge relaxed exactly once
        let (levels, _) = bfs(&diamond(), 4);
        assert_eq!(levels, vec![UNREACHED, UNREACHED, UNREACHED, UNREACHED, 0]);
    }

    #[test]
    fn cc_labels_min_propagation() {
        // Two directed chains: 2 -> 3 and 0 -> 1 -> 0 (cycle).
        let el = EdgeList::from_edges(
            [(0, 1), (1, 0), (2, 3)]
                .iter()
                .map(|&(s, d)| gpsa_graph::Edge::new(s, d))
                .collect(),
        );
        let (labels, _) = connected_components(&Csr::from_edge_list(&el));
        assert_eq!(labels, vec![0, 0, 2, 2]);
    }

    #[test]
    fn pagerank_mass_with_sink_retention() {
        let csr = diamond();
        let (ranks, stats) = pagerank(&csr, 0.85, 5);
        assert_eq!(ranks.len(), 5);
        assert!(ranks.iter().all(|r| r.is_finite() && *r > 0.0));
        // Vertex 3 receives from both branches: strictly the largest
        // non-sink inflow.
        assert!(ranks[3] > ranks[1] && ranks[3] > ranks[2]);
        assert_eq!(stats.rounds, 5);
    }

    #[test]
    fn worklists_converge_on_random_graphs() {
        let el = generate::symmetrize(&generate::erdos_renyi(300, 900, 11));
        let csr = Csr::from_edge_list(&el);
        let (labels, _) = connected_components(&csr);
        // Symmetric graph: label must be idempotent under one more sweep.
        for u in 0..csr.n_vertices() as u32 {
            for &v in csr.neighbors(u) {
                assert_eq!(
                    labels[u as usize].min(labels[v as usize]),
                    labels[v as usize].min(labels[u as usize])
                );
                assert!(labels[v as usize] <= labels[u as usize].max(v));
            }
        }
        let (levels, _) = bfs(&csr, 0);
        // Triangle inequality over edges for reached vertices.
        for u in 0..csr.n_vertices() as u32 {
            if levels[u as usize] == UNREACHED {
                continue;
            }
            for &v in csr.neighbors(u) {
                assert!(levels[v as usize] <= levels[u as usize] + 1);
            }
        }
    }
}
