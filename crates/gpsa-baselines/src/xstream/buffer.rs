//! Spillable update buffers for the shuffle between scatter and gather.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// A buffer of `(dst, value)` updates that spills to a file once it
/// exceeds its in-memory budget — X-Stream's out-of-core update streams.
#[derive(Debug)]
pub struct UpdateBuffer {
    mem: Vec<(u32, u32)>,
    budget: usize,
    spill: Option<File>,
    spill_path: Option<PathBuf>,
    spilled: u64,
}

impl UpdateBuffer {
    /// An in-memory-only buffer (budget = unlimited).
    pub fn in_memory() -> Self {
        UpdateBuffer {
            mem: Vec::new(),
            budget: usize::MAX,
            spill: None,
            spill_path: None,
            spilled: 0,
        }
    }

    /// A buffer that spills to `path` beyond `budget` entries.
    pub fn spilling(path: PathBuf, budget: usize) -> Self {
        UpdateBuffer {
            mem: Vec::new(),
            budget: budget.max(1),
            spill: None,
            spill_path: Some(path),
            spilled: 0,
        }
    }

    /// Append one update.
    pub fn push(&mut self, dst: u32, val: u32) -> io::Result<()> {
        self.mem.push((dst, val));
        if self.mem.len() >= self.budget {
            self.spill_now()?;
        }
        Ok(())
    }

    fn spill_now(&mut self) -> io::Result<()> {
        let path = self
            .spill_path
            .as_ref()
            .expect("spilling buffer has a path");
        if self.spill.is_none() {
            self.spill = Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .read(true)
                    .write(true)
                    .open(path)?,
            );
        }
        let f = self.spill.as_mut().unwrap();
        let mut bytes = Vec::with_capacity(self.mem.len() * 8);
        for &(d, v) in &self.mem {
            bytes.extend_from_slice(&d.to_le_bytes());
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        f.write_all(&bytes)?;
        self.spilled += self.mem.len() as u64;
        self.mem.clear();
        Ok(())
    }

    /// Total updates held (memory + spilled).
    pub fn len(&self) -> u64 {
        self.spilled + self.mem.len() as u64
    }

    /// `true` when no updates are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain every update through `f` (spilled first, then in-memory),
    /// leaving the buffer empty for the next iteration.
    pub fn drain<F: FnMut(u32, u32)>(&mut self, mut f: F) -> io::Result<()> {
        if let Some(file) = self.spill.as_mut() {
            file.seek(SeekFrom::Start(0))?;
            let mut reader = std::io::BufReader::new(&*file);
            let mut buf = [0u8; 8];
            for _ in 0..self.spilled {
                reader.read_exact(&mut buf)?;
                f(
                    u32::from_le_bytes(buf[0..4].try_into().unwrap()),
                    u32::from_le_bytes(buf[4..8].try_into().unwrap()),
                );
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            self.spilled = 0;
        }
        for &(d, v) in &self.mem {
            f(d, v);
        }
        self.mem.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gpsa-xsbuf-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn in_memory_roundtrip() {
        let mut b = UpdateBuffer::in_memory();
        for i in 0..100u32 {
            b.push(i, i * 2).unwrap();
        }
        assert_eq!(b.len(), 100);
        let mut got = Vec::new();
        b.drain(|d, v| got.push((d, v))).unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got[7], (7, 14));
        assert!(b.is_empty());
    }

    #[test]
    fn spills_beyond_budget_and_preserves_order() {
        let mut b = UpdateBuffer::spilling(tmp("spill.bin"), 16);
        for i in 0..100u32 {
            b.push(i, !i).unwrap();
        }
        assert_eq!(b.len(), 100);
        let mut got = Vec::new();
        b.drain(|d, v| got.push((d, v))).unwrap();
        let want: Vec<(u32, u32)> = (0..100u32).map(|i| (i, !i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn buffer_reusable_across_iterations() {
        let mut b = UpdateBuffer::spilling(tmp("reuse.bin"), 4);
        for round in 0..3u32 {
            for i in 0..10u32 {
                b.push(i, round).unwrap();
            }
            let mut count = 0;
            b.drain(|_, v| {
                assert_eq!(v, round);
                count += 1;
            })
            .unwrap();
            assert_eq!(count, 10);
            assert!(b.is_empty());
        }
    }
}
