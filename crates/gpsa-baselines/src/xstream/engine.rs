//! The scatter–gather execution loop.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gpsa_graph::{EdgeList, VertexId};

use super::buffer::UpdateBuffer;
use super::program::{XsMeta, XsProgram};

/// Stop condition for an X-Stream run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsTermination {
    /// Run exactly this many iterations.
    Iterations(u64),
    /// Run until a gather phase changes no vertex, bounded by `max`.
    Quiescence {
        /// Upper bound on iterations.
        max: u64,
    },
}

/// X-Stream engine configuration.
#[derive(Debug, Clone)]
pub struct XsConfig {
    /// Number of streaming partitions.
    pub n_partitions: usize,
    /// Worker threads (clamped to the partition count per phase).
    pub threads: usize,
    /// Keep edge streams in memory instead of files.
    pub in_memory: bool,
    /// In-memory updates per shuffle buffer before spilling to disk
    /// (ignored when `in_memory`).
    pub update_budget: usize,
    /// Stop condition.
    pub termination: XsTermination,
    /// Directory for edge-stream and spill files.
    pub work_dir: PathBuf,
}

impl XsConfig {
    /// Defaults: 4 partitions, 1 thread, out-of-core, quiescence-bounded.
    pub fn new<P: Into<PathBuf>>(work_dir: P) -> Self {
        XsConfig {
            n_partitions: 4,
            threads: 1,
            in_memory: false,
            update_budget: 1 << 20,
            termination: XsTermination::Quiescence { max: 10_000 },
            work_dir: work_dir.into(),
        }
    }
}

/// Results of an X-Stream run.
#[derive(Debug, Clone)]
pub struct XsReport {
    /// Final vertex states (raw 32-bit payloads).
    pub values: Vec<u32>,
    /// Iterations executed.
    pub iterations: u64,
    /// Wall time per iteration.
    pub step_times: Vec<Duration>,
    /// Total edges streamed across all scatter phases — X-Stream pays this
    /// every iteration regardless of how few vertices are still active.
    pub edges_streamed: u64,
    /// Updates emitted by scatter.
    pub updates_emitted: u64,
}

/// The X-Stream-like engine.
#[derive(Debug, Clone)]
pub struct XsEngine {
    config: XsConfig,
}

enum EdgeStore {
    Memory(Vec<Vec<(u32, u32)>>),
    Disk { files: Vec<File>, counts: Vec<u64> },
}

impl EdgeStore {
    /// Stream every edge of partition `k` through `f`.
    fn stream<F: FnMut(u32, u32)>(&mut self, k: usize, mut f: F) -> io::Result<u64> {
        match self {
            EdgeStore::Memory(parts) => {
                for &(s, d) in &parts[k] {
                    f(s, d);
                }
                Ok(parts[k].len() as u64)
            }
            EdgeStore::Disk { files, counts } => {
                files[k].seek(SeekFrom::Start(0))?;
                let mut r = BufReader::new(&files[k]);
                let mut buf = [0u8; 8];
                for _ in 0..counts[k] {
                    r.read_exact(&mut buf)?;
                    f(
                        u32::from_le_bytes(buf[0..4].try_into().unwrap()),
                        u32::from_le_bytes(buf[4..8].try_into().unwrap()),
                    );
                }
                Ok(counts[k])
            }
        }
    }
}

impl XsEngine {
    /// Create an engine.
    pub fn new(config: XsConfig) -> Self {
        XsEngine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &XsConfig {
        &self.config
    }

    fn partition_of(&self, v: VertexId, per: usize) -> usize {
        (v as usize / per).min(self.config.n_partitions - 1)
    }

    /// Run `program` over `el` to termination.
    pub fn run<P: XsProgram>(&self, el: &EdgeList, program: P) -> io::Result<XsReport> {
        let k_parts = self.config.n_partitions.max(1);
        let n = el.n_vertices;
        let per = n.div_ceil(k_parts).max(1);
        let meta = XsMeta {
            n_vertices: n as u64,
            n_edges: el.len() as u64,
        };
        std::fs::create_dir_all(&self.config.work_dir)?;

        // Partition the edge streams by source (unordered within a
        // partition — X-Stream never sorts).
        let mut edge_store = if self.config.in_memory {
            let mut parts: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k_parts];
            for e in &el.edges {
                parts[self.partition_of(e.src, per)].push((e.src, e.dst));
            }
            EdgeStore::Memory(parts)
        } else {
            let mut writers: Vec<BufWriter<File>> = (0..k_parts)
                .map(|k| {
                    let path = self.config.work_dir.join(format!("edges-{k}.bin"));
                    Ok(BufWriter::new(
                        std::fs::OpenOptions::new()
                            .create(true)
                            .truncate(true)
                            .read(true)
                            .write(true)
                            .open(path)?,
                    ))
                })
                .collect::<io::Result<_>>()?;
            let mut counts = vec![0u64; k_parts];
            for e in &el.edges {
                let k = self.partition_of(e.src, per);
                writers[k].write_all(&e.src.to_le_bytes())?;
                writers[k].write_all(&e.dst.to_le_bytes())?;
                counts[k] += 1;
            }
            let files = writers
                .into_iter()
                .map(|w| w.into_inner().map_err(|e| e.into_error()))
                .collect::<io::Result<Vec<_>>>()?;
            EdgeStore::Disk { files, counts }
        };

        // Vertex state: previous and next iteration copies, plus
        // out-degrees (X-Stream computes degrees in a setup pass).
        let mut prev: Vec<u32> = (0..n as u32).map(|v| program.init(v, &meta)).collect();
        let mut next: Vec<u32> = prev.clone();
        let mut out_deg = vec![0u32; n];
        for e in &el.edges {
            out_deg[e.src as usize] += 1;
        }

        // K×K shuffle buffers; slot (k, j) carries scatter output of
        // partition k destined for partition j. Uncontended mutexes: each
        // slot has exactly one writer (k) in scatter and one reader (j) in
        // gather.
        let outbox: Vec<Mutex<UpdateBuffer>> = (0..k_parts * k_parts)
            .map(|slot| {
                Mutex::new(if self.config.in_memory {
                    UpdateBuffer::in_memory()
                } else {
                    UpdateBuffer::spilling(
                        self.config.work_dir.join(format!("updates-{slot}.bin")),
                        self.config.update_budget,
                    )
                })
            })
            .collect();

        let edges_streamed = AtomicU64::new(0);
        let updates_emitted = AtomicU64::new(0);
        let mut step_times = Vec::new();
        let mut iterations = 0u64;

        loop {
            let t_step = Instant::now();

            // --- scatter phase: stream ALL edges of every partition ---
            // (Partition parallelism: X-Stream keeps one thread per
            // streaming partition busy for the whole phase.)
            let threads = self.config.threads.clamp(1, k_parts);
            if threads == 1 {
                for k in 0..k_parts {
                    let streamed = edge_store.stream(k, |s, d| {
                        if let Some(u) =
                            program.scatter(s, prev[s as usize], out_deg[s as usize], d, &meta)
                        {
                            let j = self.partition_of(d, per);
                            outbox[k * k_parts + j]
                                .lock()
                                .push(d, u)
                                .expect("update push");
                            updates_emitted.fetch_add(1, Ordering::Relaxed);
                        }
                    })?;
                    edges_streamed.fetch_add(streamed, Ordering::Relaxed);
                }
            } else {
                // Parallel scatter needs per-thread edge readers; memory
                // mode shares the slices, disk mode reopens the files.
                let prev_ref = &prev;
                let out_deg_ref = &out_deg;
                let outbox_ref = &outbox;
                let program_ref = &program;
                let updates_ref = &updates_emitted;
                let streamed_ref = &edges_streamed;
                match &edge_store {
                    EdgeStore::Memory(parts) => {
                        crossbeam_utils::thread::scope(|s| {
                            for (k, part) in parts.iter().enumerate() {
                                s.spawn(move |_| {
                                    for &(src, dst) in part {
                                        if let Some(u) = program_ref.scatter(
                                            src,
                                            prev_ref[src as usize],
                                            out_deg_ref[src as usize],
                                            dst,
                                            &meta,
                                        ) {
                                            let j = self.partition_of(dst, per);
                                            outbox_ref[k * k_parts + j]
                                                .lock()
                                                .push(dst, u)
                                                .expect("update push");
                                            updates_ref.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                    streamed_ref.fetch_add(part.len() as u64, Ordering::Relaxed);
                                });
                            }
                        })
                        .expect("scatter scope");
                    }
                    EdgeStore::Disk { counts, .. } => {
                        crossbeam_utils::thread::scope(|s| {
                            for k in 0..k_parts {
                                let count = counts[k];
                                let path = self.config.work_dir.join(format!("edges-{k}.bin"));
                                s.spawn(move |_| {
                                    let file = File::open(path).expect("edge stream");
                                    let mut r = BufReader::new(file);
                                    let mut buf = [0u8; 8];
                                    for _ in 0..count {
                                        r.read_exact(&mut buf).expect("edge read");
                                        let src = u32::from_le_bytes(buf[0..4].try_into().unwrap());
                                        let dst = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                                        if let Some(u) = program_ref.scatter(
                                            src,
                                            prev_ref[src as usize],
                                            out_deg_ref[src as usize],
                                            dst,
                                            &meta,
                                        ) {
                                            let j = self.partition_of(dst, per);
                                            outbox_ref[k * k_parts + j]
                                                .lock()
                                                .push(dst, u)
                                                .expect("update push");
                                            updates_ref.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                    streamed_ref.fetch_add(count, Ordering::Relaxed);
                                });
                            }
                        })
                        .expect("scatter scope");
                    }
                }
            }

            // --- gather phase: per destination partition ---
            for (v, slot) in next.iter_mut().enumerate() {
                *slot = program.reset(v as u32, prev[v], &meta);
            }
            let changed = AtomicU64::new(0);
            {
                // Hand each gather thread its contiguous state slice.
                let mut rest: &mut [u32] = &mut next;
                let mut slices: Vec<(usize, &mut [u32])> = Vec::with_capacity(k_parts);
                let mut offset = 0usize;
                for j in 0..k_parts {
                    let hi = ((j + 1) * per).min(n);
                    let take = hi.saturating_sub(offset);
                    let (head, tail) = rest.split_at_mut(take);
                    slices.push((offset, head));
                    rest = tail;
                    offset = hi;
                }
                let outbox_ref = &outbox;
                let program_ref = &program;
                let prev_ref = &prev;
                let changed_ref = &changed;
                crossbeam_utils::thread::scope(|s| {
                    for (j, (base, slice)) in slices.into_iter().enumerate() {
                        s.spawn(move |_| {
                            for k in 0..k_parts {
                                let mut buf = outbox_ref[k * k_parts + j].lock();
                                buf.drain(|dst, upd| {
                                    let i = dst as usize - base;
                                    slice[i] = program_ref.gather(dst, slice[i], upd, &meta);
                                })
                                .expect("update drain");
                            }
                            let mut local_changed = 0u64;
                            for (i, v) in slice.iter().enumerate() {
                                if program_ref.changed(prev_ref[base + i], *v) {
                                    local_changed += 1;
                                }
                            }
                            changed_ref.fetch_add(local_changed, Ordering::Relaxed);
                        });
                    }
                })
                .expect("gather scope");
            }
            std::mem::swap(&mut prev, &mut next);

            step_times.push(t_step.elapsed());
            iterations += 1;
            let more = match self.config.termination {
                XsTermination::Iterations(k) => iterations < k,
                XsTermination::Quiescence { max } => {
                    iterations < max && changed.load(Ordering::Relaxed) > 0
                }
            };
            if !more {
                break;
            }
        }

        Ok(XsReport {
            values: prev,
            iterations,
            step_times,
            edges_streamed: edges_streamed.load(Ordering::Relaxed),
            updates_emitted: updates_emitted.load(Ordering::Relaxed),
        })
    }
}
