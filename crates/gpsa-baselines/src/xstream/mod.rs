//! An X-Stream-like engine: edge-centric scatter–gather over streaming
//! partitions.
//!
//! Faithful properties (per Roy et al., SOSP'13, as characterized by the
//! GPSA paper):
//!
//! * vertices are split into `K` streaming partitions; each partition owns
//!   the edges whose *source* lies in it, stored as a completely unordered
//!   stream (no preprocessing sort — X-Stream's pitch);
//! * every iteration has a **scatter** phase that streams *all* edges of
//!   every partition (inactive sources still cost a read — the behaviour
//!   behind the paper's BFS/CC results) emitting `(dst, value)` updates
//!   into per-destination-partition buffers, a shuffle, and a **gather**
//!   phase that streams the update buffers into vertex state;
//! * partitions stream in parallel, keeping all cores busy regardless of
//!   how little useful work remains (the paper's Fig. 11 CPU profile);
//! * updates optionally spill to disk (out-of-core mode).

mod buffer;
mod engine;
mod program;

pub use buffer::UpdateBuffer;
pub use engine::{XsConfig, XsEngine, XsReport, XsTermination};
pub use program::{XsMeta, XsProgram};
