//! The X-Stream-style user program: edge-centric scatter and gather.

use gpsa_graph::VertexId;

/// Static graph facts passed to every hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsMeta {
    /// Number of vertices.
    pub n_vertices: u64,
    /// Number of edges.
    pub n_edges: u64,
}

/// An edge-centric scatter–gather program. All state is 32-bit words;
/// float programs bit-cast.
pub trait XsProgram: Send + Sync + 'static {
    /// Initial vertex state.
    fn init(&self, v: VertexId, meta: &XsMeta) -> u32;

    /// Scatter: inspect the source state of an edge and optionally emit an
    /// update value for the destination. Called for **every** edge, every
    /// iteration — X-Stream has no way to skip edges of inactive vertices.
    fn scatter(
        &self,
        src: VertexId,
        src_state: u32,
        src_out_degree: u32,
        dst: VertexId,
        meta: &XsMeta,
    ) -> Option<u32>;

    /// Gather: fold one update into the destination's next state.
    fn gather(&self, dst: VertexId, state: u32, update: u32, meta: &XsMeta) -> u32;

    /// Next-iteration state of a vertex before any gathers are applied.
    /// Default keeps the previous state (BFS/CC); PageRank resets to its
    /// base term so ranks are rebuilt from this iteration's updates.
    fn reset(&self, _v: VertexId, prev: u32, _meta: &XsMeta) -> u32 {
        prev
    }

    /// Does the transition count as a change (drives quiescence)?
    fn changed(&self, old: u32, new: u32) -> bool {
        old != new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Min;
    impl XsProgram for Min {
        fn init(&self, v: VertexId, _m: &XsMeta) -> u32 {
            v
        }
        fn scatter(
            &self,
            _s: VertexId,
            st: u32,
            _d: u32,
            _dst: VertexId,
            _m: &XsMeta,
        ) -> Option<u32> {
            Some(st)
        }
        fn gather(&self, _d: VertexId, state: u32, update: u32, _m: &XsMeta) -> u32 {
            state.min(update)
        }
    }

    #[test]
    fn defaults_keep_state() {
        let p = Min;
        let m = XsMeta {
            n_vertices: 3,
            n_edges: 2,
        };
        assert_eq!(p.reset(1, 42, &m), 42);
        assert!(p.changed(1, 2));
        assert!(!p.changed(2, 2));
        assert_eq!(p.gather(0, 5, 3, &m), 3);
    }
}
