//! Behavioural tests for the two baseline engines using small inline
//! programs (the full algorithm suite lives in `gpsa-algorithms`).

use gpsa_baselines::graphchi::{PswConfig, PswEngine, PswMeta, PswProgram, PswTermination};
use gpsa_baselines::xstream::{XsConfig, XsEngine, XsMeta, XsProgram, XsTermination};
use gpsa_graph::{generate, EdgeList, VertexId};
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-bl-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Sequential min-label fixpoint (directed), the shared oracle.
fn ref_min_label(el: &EdgeList) -> Vec<u32> {
    let mut label: Vec<u32> = (0..el.n_vertices as u32).collect();
    loop {
        let mut changed = false;
        for e in &el.edges {
            if label[e.src as usize] < label[e.dst as usize] {
                label[e.dst as usize] = label[e.src as usize];
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    label
}

// --- min-label (CC) on PSW ---

struct PswMin;
impl PswProgram for PswMin {
    fn init(&self, v: VertexId, _m: &PswMeta) -> u32 {
        v
    }
    fn initially_active(&self, _v: VertexId, _m: &PswMeta) -> bool {
        true
    }
    fn update(&self, _v: VertexId, value: u32, in_vals: &[u32], _m: &PswMeta) -> u32 {
        in_vals.iter().copied().fold(value, u32::min)
    }
    fn out_signal(&self, _v: VertexId, new: u32, _d: u32, _m: &PswMeta) -> Option<u32> {
        Some(new)
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
}

// --- min-label (CC) on X-Stream ---

struct XsMin;
impl XsProgram for XsMin {
    fn init(&self, v: VertexId, _m: &XsMeta) -> u32 {
        v
    }
    fn scatter(
        &self,
        _s: VertexId,
        st: u32,
        _deg: u32,
        _dst: VertexId,
        _m: &XsMeta,
    ) -> Option<u32> {
        Some(st)
    }
    fn gather(&self, _d: VertexId, state: u32, update: u32, _m: &XsMeta) -> u32 {
        state.min(update)
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
}

#[test]
fn psw_min_label_matches_reference() {
    for (tag, el) in [
        ("cycle", generate::cycle(40)),
        ("two", generate::two_components(15, 25)),
        (
            "rmat",
            generate::symmetrize(&generate::rmat(
                200,
                900,
                generate::RmatParams::default(),
                4,
            )),
        ),
    ] {
        let engine = PswEngine::new(PswConfig::new(workdir(&format!("psw-{tag}"))));
        let report = engine.run(&el, PswMin).unwrap();
        assert_eq!(report.values, ref_min_label(&el), "{tag}");
        assert!(report.iterations > 0);
        assert_eq!(report.step_times.len() as u64, report.iterations);
    }
}

#[test]
fn psw_parallel_updates_agree_with_sequential() {
    let el = generate::symmetrize(&generate::rmat(
        400,
        2000,
        generate::RmatParams::default(),
        6,
    ));
    let mut cfg = PswConfig::new(workdir("psw-par"));
    cfg.threads = 4;
    cfg.n_shards = 3;
    let report = PswEngine::new(cfg).run(&el, PswMin).unwrap();
    assert_eq!(report.values, ref_min_label(&el));
}

/// BFS whose wave moves *against* the interval processing order, so it
/// cannot collapse within one async iteration — the selective-scheduling
/// stress case.
struct PswBfsDown {
    root: u32,
}
const FAR: u32 = u32::MAX;
impl PswProgram for PswBfsDown {
    fn init(&self, v: VertexId, _m: &PswMeta) -> u32 {
        if v == self.root {
            0
        } else {
            FAR
        }
    }
    fn initially_active(&self, v: VertexId, _m: &PswMeta) -> bool {
        v == self.root
    }
    fn update(&self, _v: VertexId, value: u32, in_vals: &[u32], _m: &PswMeta) -> u32 {
        in_vals
            .iter()
            .map(|&l| if l == FAR { FAR } else { l + 1 })
            .fold(value, u32::min)
    }
    fn out_signal(&self, _v: VertexId, new: u32, _d: u32, _m: &PswMeta) -> Option<u32> {
        if new == FAR {
            None
        } else {
            Some(new)
        }
    }
    fn changed(&self, old: u32, new: u32) -> bool {
        new < old
    }
    fn init_edge(&self, _m: &PswMeta) -> u32 {
        FAR
    }
}

#[test]
fn psw_selective_scheduling_reduces_updates() {
    // Descending chain n-1 -> n-2 -> ... -> 0, BFS from n-1: the frontier
    // is one vertex per iteration, so total update calls stay near n while
    // a dense engine would pay iterations * n.
    let n = 60u32;
    let el = EdgeList::with_vertices((1..n).map(|i| (i, i - 1).into()).collect(), n as usize);
    let engine = PswEngine::new(PswConfig::new(workdir("psw-sel")));
    let report = engine.run(&el, PswBfsDown { root: n - 1 }).unwrap();
    let expect: Vec<u32> = (0..n).map(|v| n - 1 - v).collect();
    assert_eq!(report.values, expect);
    let dense_cost = report.iterations * n as u64;
    assert!(
        report.updates * 4 < dense_cost,
        "selective scheduling should skip most work: {} updates vs dense {}",
        report.updates,
        dense_cost
    );
}

#[test]
fn psw_fixed_iterations_mode() {
    let el = generate::cycle(30);
    let mut cfg = PswConfig::new(workdir("psw-fixed"));
    cfg.termination = PswTermination::Iterations(3);
    let report = PswEngine::new(cfg).run(&el, PswMin).unwrap();
    assert_eq!(report.iterations, 3);
}

#[test]
fn xstream_min_label_matches_reference() {
    for (tag, el) in [
        ("cycle", generate::cycle(40)),
        ("two", generate::two_components(15, 25)),
        (
            "rmat",
            generate::symmetrize(&generate::rmat(
                200,
                900,
                generate::RmatParams::default(),
                4,
            )),
        ),
    ] {
        for in_memory in [true, false] {
            let mut cfg = XsConfig::new(workdir(&format!("xs-{tag}-{in_memory}")));
            cfg.in_memory = in_memory;
            let report = XsEngine::new(cfg).run(&el, XsMin).unwrap();
            assert_eq!(report.values, ref_min_label(&el), "{tag} mem={in_memory}");
        }
    }
}

#[test]
fn xstream_parallel_agrees_with_sequential() {
    let el = generate::symmetrize(&generate::rmat(
        400,
        2000,
        generate::RmatParams::default(),
        8,
    ));
    let mut cfg = XsConfig::new(workdir("xs-par"));
    cfg.threads = 4;
    cfg.n_partitions = 4;
    let report = XsEngine::new(cfg).run(&el, XsMin).unwrap();
    assert_eq!(report.values, ref_min_label(&el));
}

#[test]
fn xstream_streams_all_edges_every_iteration() {
    // The paper's key X-Stream property: edges streamed = E * iterations,
    // no matter how little useful work remains.
    let el = generate::chain(50);
    let mut cfg = XsConfig::new(workdir("xs-stream"));
    cfg.in_memory = true;
    let report = XsEngine::new(cfg).run(&el, XsMin).unwrap();
    assert_eq!(
        report.edges_streamed,
        el.len() as u64 * report.iterations,
        "X-Stream must pay the full edge stream every iteration"
    );
    assert!(
        report.iterations as usize >= 49,
        "chain needs ~n iterations"
    );
}

#[test]
fn xstream_spilling_buffers_match_in_memory() {
    let el = generate::symmetrize(&generate::erdos_renyi(150, 800, 12));
    let mut mem_cfg = XsConfig::new(workdir("xs-mem"));
    mem_cfg.in_memory = true;
    let mem = XsEngine::new(mem_cfg).run(&el, XsMin).unwrap();

    let mut disk_cfg = XsConfig::new(workdir("xs-disk"));
    disk_cfg.in_memory = false;
    disk_cfg.update_budget = 16; // force heavy spilling
    let disk = XsEngine::new(disk_cfg).run(&el, XsMin).unwrap();
    assert_eq!(mem.values, disk.values);
    assert_eq!(mem.iterations, disk.iterations);
}

#[test]
fn xstream_fixed_iterations_mode() {
    let el = generate::cycle(30);
    let mut cfg = XsConfig::new(workdir("xs-fixed"));
    cfg.termination = XsTermination::Iterations(4);
    cfg.in_memory = true;
    let report = XsEngine::new(cfg).run(&el, XsMin).unwrap();
    assert_eq!(report.iterations, 4);
    assert_eq!(report.edges_streamed, 30 * 4);
}

// --- PageRank smoke on both engines (full parity tested in algorithms) ---

struct PswPr;
impl PswProgram for PswPr {
    fn init(&self, _v: VertexId, m: &PswMeta) -> u32 {
        (1.0f32 / m.n_vertices as f32).to_bits()
    }
    fn initially_active(&self, _v: VertexId, _m: &PswMeta) -> bool {
        true
    }
    fn update(&self, _v: VertexId, _value: u32, in_vals: &[u32], m: &PswMeta) -> u32 {
        let sum: f32 = in_vals.iter().map(|&b| f32::from_bits(b)).sum();
        (0.15 / m.n_vertices as f32 + 0.85 * sum).to_bits()
    }
    fn out_signal(&self, _v: VertexId, new: u32, d: u32, _m: &PswMeta) -> Option<u32> {
        if d == 0 {
            None
        } else {
            Some((f32::from_bits(new) / d as f32).to_bits())
        }
    }
    fn always_active(&self) -> bool {
        true
    }
}

#[test]
fn psw_pagerank_mass_is_sane() {
    let el = generate::symmetrize(&generate::erdos_renyi(100, 500, 3));
    let mut cfg = PswConfig::new(workdir("psw-pr"));
    cfg.termination = PswTermination::Iterations(20);
    let report = PswEngine::new(cfg).run(&el, PswPr).unwrap();
    let total: f32 = report.values.iter().map(|&b| f32::from_bits(b)).sum();
    assert!(total > 0.5 && total < 1.5, "total rank {total}");
    assert_eq!(report.iterations, 20);
}
