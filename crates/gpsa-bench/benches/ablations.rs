//! Ablations of GPSA's individual design choices (DESIGN.md §4):
//!
//! * flag-based inactive-vertex skipping vs dense dispatch (late BFS
//!   supersteps are where the paper's BFS wins come from);
//! * mod vs range compute routing, uniform vs edge-balanced dispatch
//!   intervals (paper §V-A);
//! * CSR with inlined degrees vs separate degree lookups (paper Fig. 4);
//! * mmap streaming vs explicit buffered reads (paper §IV-C).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::io::Read;

use gpsa::programs::Bfs;
use gpsa::{
    Engine, EngineConfig, GraphMeta, IntervalStrategy, RouterStrategy, Termination, VertexProgram,
};
use gpsa_graph::datasets::Dataset;
use gpsa_graph::{generate, preprocess, DiskCsr, VertexId};

fn workdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-abl-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// BFS with the flag optimization disabled: every vertex is streamed and
/// re-sent every superstep (what GPSA would cost without §IV-F's flag
/// protocol).
struct DenseBfs {
    root: VertexId,
}

impl VertexProgram for DenseBfs {
    type Value = u32;
    type MsgVal = u32;
    fn init(&self, v: VertexId, meta: &GraphMeta) -> (u32, bool) {
        Bfs { root: self.root }.init(v, meta)
    }
    fn gen_msg(&self, src: VertexId, value: u32, d: u32, meta: &GraphMeta) -> Option<u32> {
        Bfs { root: self.root }.gen_msg(src, value, d, meta)
    }
    fn compute(
        &self,
        v: VertexId,
        acc: Option<u32>,
        basis: u32,
        msg: u32,
        meta: &GraphMeta,
    ) -> u32 {
        Bfs { root: self.root }.compute(v, acc, basis, msg, meta)
    }
    fn changed(&self, basis: u32, new: u32) -> bool {
        new < basis
    }
    fn freshest(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn always_dispatch(&self) -> bool {
        true // the ablation: no inactive-vertex skipping
    }
}

fn bench_flag_skipping(c: &mut Criterion) {
    let el = gpsa_bench::dataset_edges(Dataset::Google, 1024);
    let root = gpsa_bench::bfs_root(&el);
    let mut g = c.benchmark_group("flag_skipping_bfs");
    g.sample_size(10);
    let term = Termination::Quiescence {
        max_supersteps: 1000,
    };
    g.bench_function("with_flags(sparse)", |b| {
        let engine = Engine::new(EngineConfig::new(workdir("flags-on")).with_termination(term));
        b.iter(|| engine.run_edge_list(el.clone(), "g", Bfs { root }).unwrap());
    });
    g.bench_function("without_flags(dense)", |b| {
        // Fixed superstep count equal to the sparse run's depth, so both
        // traverse the same number of rounds.
        let engine = Engine::new(EngineConfig::new(workdir("flags-off")).with_termination(term));
        b.iter(|| {
            engine
                .run_edge_list(el.clone(), "g", DenseBfs { root })
                .unwrap()
        });
    });
    g.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let el = gpsa_bench::dataset_edges(Dataset::Google, 1024);
    let root = gpsa_bench::bfs_root(&el);
    let mut g = c.benchmark_group("partitioning");
    g.sample_size(10);
    for (tag, router, intervals) in [
        (
            "mod+uniform",
            RouterStrategy::Mod,
            IntervalStrategy::Uniform,
        ),
        (
            "mod+edge_balanced",
            RouterStrategy::Mod,
            IntervalStrategy::EdgeBalanced,
        ),
        (
            "range+edge_balanced",
            RouterStrategy::Range,
            IntervalStrategy::EdgeBalanced,
        ),
        (
            "mod+strided",
            RouterStrategy::Mod,
            IntervalStrategy::Strided,
        ),
    ] {
        g.bench_function(tag, |b| {
            let mut config = EngineConfig::new(workdir(tag));
            config.router = router;
            config.intervals = intervals;
            let engine = Engine::new(config);
            b.iter(|| engine.run_edge_list(el.clone(), "g", Bfs { root }).unwrap());
        });
    }
    g.finish();
}

fn bench_csr_degree_inlining(c: &mut Criterion) {
    // Paper Fig. 4: storing the out-degree inline avoids a second lookup
    // when generating messages. Measure a full PageRank-style sweep that
    // needs the degree for every active vertex.
    let el = generate::rmat(20_000, 200_000, generate::RmatParams::default(), 5);
    let dir = workdir("csr");
    let with = dir.join("with.gcsr");
    let without = dir.join("without.gcsr");
    preprocess::edges_to_csr(
        el.clone(),
        &with,
        &preprocess::PreprocessOptions {
            with_degrees: true,
            ..preprocess::PreprocessOptions::uncompressed()
        },
    )
    .unwrap();
    preprocess::edges_to_csr(
        el.clone(),
        &without,
        &preprocess::PreprocessOptions {
            with_degrees: false,
            ..preprocess::PreprocessOptions::uncompressed()
        },
    )
    .unwrap();
    let d_with = DiskCsr::open(&with).unwrap();
    let d_without = DiskCsr::open(&without).unwrap();
    // Degrees from a separate array — the "extra lookup" alternative.
    let sep_degrees = el.out_degrees();

    let mut g = c.benchmark_group("csr_degree_inlining");
    g.throughput(Throughput::Elements(el.len() as u64));
    let sweep = |csr: &DiskCsr, degrees: Option<&[u32]>| -> u64 {
        let mut acc = 0u64;
        let mut cursor = csr.cursor(0..csr.n_vertices() as u32);
        while let Some(rec) = cursor.next_rec() {
            let deg = match degrees {
                Some(d) => d[rec.vid as usize],
                None => rec.degree,
            };
            for &t in rec.targets {
                acc = acc.wrapping_add((t as u64).wrapping_mul(deg as u64));
            }
        }
        acc
    };
    g.bench_function("inlined_degrees", |b| {
        b.iter(|| std::hint::black_box(sweep(&d_with, None)))
    });
    g.bench_function("separate_degree_array", |b| {
        b.iter(|| std::hint::black_box(sweep(&d_without, Some(&sep_degrees))))
    });
    g.finish();
}

fn bench_mmap_vs_read(c: &mut Criterion) {
    // Paper §IV-C: GPSA streams the edge file through a memory mapping
    // instead of explicit buffered reads.
    let el = generate::rmat(20_000, 400_000, generate::RmatParams::default(), 9);
    let dir = workdir("mmap");
    let path = dir.join("g.gcsr");
    // v1 layout: the raw-sum and buffered-read variants below assume a
    // word-array body.
    preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::uncompressed()).unwrap();
    let bytes = std::fs::metadata(&path).unwrap().len();

    let mut g = c.benchmark_group("edge_stream_io");
    g.throughput(Throughput::Bytes(bytes));
    // Raw word sum over the mapping — same work as buffered_read, no
    // record parsing, to separate mmap-vs-read() cost from cursor cost.
    g.bench_function("mmap_raw_sum", |b| {
        let map = gpsa_mmap::Mmap::open(&path).unwrap();
        b.iter(|| {
            let words: &[u32] = map.as_slice_of().unwrap();
            let mut acc = 0u64;
            for &w in words {
                acc = acc.wrapping_add(w as u64);
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("mmap_cursor", |b| {
        let csr = DiskCsr::open(&path).unwrap();
        b.iter(|| {
            let mut acc = 0u64;
            let mut cursor = csr.cursor(0..csr.n_vertices() as u32);
            while let Some(rec) = cursor.next_rec() {
                for &t in rec.targets {
                    acc = acc.wrapping_add(t as u64);
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("buffered_read", |b| {
        b.iter(|| {
            let f = std::fs::File::open(&path).unwrap();
            let mut r = std::io::BufReader::with_capacity(1 << 20, f);
            let mut acc = 0u64;
            let mut buf = [0u8; 4096];
            loop {
                let n = r.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                for w in buf[..n].chunks_exact(4) {
                    acc = acc.wrapping_add(u32::from_le_bytes(w.try_into().unwrap()) as u64);
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

fn bench_overlap(c: &mut Criterion) {
    // The paper's core claim (§III/Fig. 2): decoupling dispatch from
    // compute overlaps the two phases. Three points on the spectrum:
    // the strictly-sequential conventional BSP engine (same VertexProgram
    // trait, Fig. 1 semantics), the actor engine pinned to one worker,
    // and the actor engine with workers to overlap on.
    let el = gpsa_bench::dataset_edges(Dataset::Google, 512);
    let root = gpsa_bench::bfs_root(&el);
    let term = Termination::Quiescence {
        max_supersteps: 1000,
    };
    let mut g = c.benchmark_group("dispatch_compute_overlap");
    g.sample_size(10);
    g.bench_function("sequential_bsp_engine", |b| {
        let engine = gpsa::SyncEngine::new(term);
        b.iter(|| engine.run(&el, Bfs { root }));
    });
    for (tag, workers) in [("actors_1_worker", 1usize), ("actors_4_workers", 4)] {
        g.bench_function(tag, |b| {
            let config = EngineConfig::new(workdir(tag))
                .with_workers(workers)
                .with_actors(2, 2)
                .with_termination(term);
            let engine = Engine::new(config);
            b.iter(|| engine.run_edge_list(el.clone(), "g", Bfs { root }).unwrap());
        });
    }
    g.finish();
}

fn bench_combiner(c: &mut Criterion) {
    // Pregel-style message combining (DESIGN.md extension): same-dst
    // messages within a batch are merged at the dispatcher before hitting
    // compute mailboxes. Hub-heavy R-MAT graphs give real combining work.
    let el = gpsa_bench::dataset_edges(Dataset::Google, 512);
    let mut g = c.benchmark_group("message_combining_cc");
    g.sample_size(10);
    for (tag, combine) in [("combiner_on", true), ("combiner_off", false)] {
        g.bench_function(tag, |b| {
            let mut config = EngineConfig::new(workdir(tag));
            config.combine_messages = combine;
            config.msg_batch = 4096;
            let engine = Engine::new(config);
            b.iter(|| {
                engine
                    .run_edge_list(el.clone(), "g", gpsa::programs::ConnectedComponents)
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_chunked_dispatch(c: &mut Criterion) {
    // Tentpole ablation: cooperative ~N-edge dispatch chunks + recycled
    // message slabs vs one monolithic activation per dispatcher. With more
    // workers than dispatchers, chunking lets freed workers interleave
    // compute batches between chunks (and steal dispatch work); monolithic
    // dispatch caps dispatch parallelism at n_dispatchers.
    use gpsa::programs::PageRank;
    for (ds, scale, tag) in [
        (Dataset::Twitter, 4096u64, "twitter-s"),
        (Dataset::Google, 256, "google-s"),
    ] {
        let el = gpsa_bench::dataset_edges(ds, scale);
        let mut g = c.benchmark_group(format!("chunked_dispatch_{tag}"));
        g.sample_size(10);
        for (sub, chunk) in [
            ("monolithic", EngineConfig::MONOLITHIC_DISPATCH),
            ("chunk64k", 65_536),
            ("chunk16k", 16_384),
        ] {
            g.bench_function(sub, |b| {
                let config = EngineConfig::new(workdir(&format!("cd-{tag}-{sub}")))
                    .with_workers(4)
                    .with_actors(2, 2)
                    .with_termination(Termination::Supersteps(5))
                    .with_dispatch_chunk(chunk);
                let engine = Engine::new(config);
                b.iter(|| {
                    engine
                        .run_edge_list(el.clone(), "g", PageRank::default())
                        .unwrap()
                });
            });
        }
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_flag_skipping,
    bench_partitioning,
    bench_csr_degree_inlining,
    bench_mmap_vs_read,
    bench_overlap,
    bench_combiner,
    bench_chunked_dispatch
);
criterion_main!(benches);
