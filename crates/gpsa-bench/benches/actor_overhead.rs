//! Ablation: actor-runtime message overhead vs a raw channel, plus
//! scheduling throughput with many actors — validating that the Kilim
//! substitute is cheap enough to carry the engine's message volume.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::mpsc;

use actor::{Actor, Ctx, System};

struct Counter {
    remaining: u64,
    done: Option<mpsc::Sender<()>>,
}

impl Actor for Counter {
    type Msg = u64;
    fn handle(&mut self, msg: u64, _ctx: &mut Ctx<'_, Self>) {
        self.remaining = self.remaining.saturating_sub(msg);
        if self.remaining == 0 {
            if let Some(d) = self.done.take() {
                let _ = d.send(());
            }
        }
    }
}

fn bench_actor_vs_channel(c: &mut Criterion) {
    let n: u64 = 100_000;
    let mut g = c.benchmark_group("message_throughput");
    g.throughput(Throughput::Elements(n));
    g.sample_size(10);

    g.bench_function("actor_system", |b| {
        let sys = System::builder().workers(4).build();
        b.iter(|| {
            let (tx, rx) = mpsc::channel();
            let addr = sys.spawn(Counter {
                remaining: n,
                done: Some(tx),
            });
            for _ in 0..n {
                addr.send(1).unwrap();
            }
            rx.recv().unwrap();
        });
        sys.shutdown();
    });

    g.bench_function("crossbeam_channel_baseline", |b| {
        b.iter(|| {
            let (tx, rx) = crossbeam_channel::unbounded::<u64>();
            let h = std::thread::spawn(move || {
                let mut remaining = n;
                while remaining > 0 {
                    remaining -= rx.recv().unwrap();
                }
            });
            for _ in 0..n {
                tx.send(1).unwrap();
            }
            h.join().unwrap();
        });
    });
    g.finish();
}

fn bench_many_actors(c: &mut Criterion) {
    // Fan messages over many mailboxes: the paper's "thousands of actors"
    // claim as a scheduling benchmark.
    let msgs: u64 = 100_000;
    let mut g = c.benchmark_group("fanout_actors");
    g.throughput(Throughput::Elements(msgs));
    g.sample_size(10);
    for actors in [8usize, 64, 512, 2048] {
        g.bench_with_input(BenchmarkId::from_parameter(actors), &actors, |b, &k| {
            let sys = System::builder().workers(4).build();
            b.iter(|| {
                let (tx, rx) = mpsc::channel();
                let per = msgs / k as u64;
                let addrs: Vec<_> = (0..k)
                    .map(|_| {
                        sys.spawn(Counter {
                            remaining: per,
                            done: Some(tx.clone()),
                        })
                    })
                    .collect();
                for a in &addrs {
                    for _ in 0..per {
                        a.send(1).unwrap();
                    }
                }
                for _ in 0..k {
                    rx.recv().unwrap();
                }
            });
            sys.shutdown();
        });
    }
    g.finish();
}

criterion_group!(benches, bench_actor_vs_channel, bench_many_actors);
criterion_main!(benches);
