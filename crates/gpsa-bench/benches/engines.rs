//! Per-engine microbenches: the three algorithms on a small google-graph
//! stand-in, one full run per iteration — criterion-tracked versions of
//! the Figs. 7–10 cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpsa_bench::{run_on_edges, Algo, EngineKind, HarnessConfig};
use gpsa_graph::datasets::Dataset;

fn cfg() -> HarnessConfig {
    HarnessConfig {
        scale: 1024,
        runs: 1,
        supersteps: 5,
        threads: 4,
        data_dir: std::env::temp_dir().join(format!("gpsa-bench-eng-{}", std::process::id())),
    }
}

fn bench_engines(c: &mut Criterion) {
    let cfg = cfg();
    let el = gpsa_bench::dataset_edges(Dataset::Google, cfg.scale);
    for algo in Algo::ALL {
        let mut g = c.benchmark_group(format!("google_s1024_{}", algo.name()));
        g.sample_size(10);
        for kind in EngineKind::ALL {
            g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
                b.iter(|| {
                    run_on_edges(&el, "bench", algo, k, &cfg, false).unwrap();
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
