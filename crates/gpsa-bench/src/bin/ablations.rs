//! Ablations of GPSA's hot-path design choices, one self-gating case per
//! `--case` value (default: all).
//!
//! ## `fold_kernels`
//!
//! Isolates the batch-native hot path introduced for the COST work: the
//! same graph × algorithm grid runs under three configurations,
//!
//! * **scalar** — per-message fold oracle (`batch_fold = false`), no
//!   dispatcher-side combining;
//! * **batch** — `fold_batch` kernels over message-slab runs, no
//!   combining;
//! * **combined** — batch kernels plus dispatcher-side same-destination
//!   combining (the engine default).
//!
//! All cells run a 1-dispatcher / 1-computer / 1-worker fleet so the
//! message stream order is deterministic and the comparison isolates the
//! fold path rather than scheduling noise. Gates (process exits non-zero
//! on violation):
//!
//! * batch values bit-identical to scalar for every algorithm — the
//!   `fold_batch` contract;
//! * combined values bit-identical to scalar for BFS/CC (u32 min is
//!   association-free); PageRank within 1e-4 (combining reassociates the
//!   f32 summation).
//!
//! Speedups are reported in `BENCH_ablations.json` but not gated: CI
//! smoke boxes are too noisy to gate raw speed on.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin ablations -- \
//!     [--scale N] [--runs N] [--data-dir D] [--case fold_kernels]
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use gpsa::programs::{Bfs, ConnectedComponents, PageRank};
use gpsa::{Engine, EngineConfig, Termination};
use gpsa_bench::{fmt_dur, HarnessConfig};
use gpsa_graph::datasets::Dataset;
use gpsa_graph::preprocess;
use gpsa_metrics::Table;

const ALGOS: [&str; 3] = ["bfs", "cc", "pagerank"];
const VARIANTS: [&str; 3] = ["scalar", "batch", "combined"];
const PR_TOLERANCE: f32 = 1e-4;

/// One (algo, variant) measurement.
struct Cell {
    algo: &'static str,
    variant: &'static str,
    total: Duration,
    messages: u64,
    /// Values as u32 bit patterns, for exact comparison.
    bits: Vec<u32>,
}

fn main() {
    if let Err(e) = run() {
        eprintln!("ablations: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let case = argv
        .iter()
        .position(|a| a == "--case")
        .and_then(|i| argv.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    std::fs::create_dir_all(&cfg.data_dir)?;

    let mut gate_errors = Vec::new();
    let mut sections = Vec::new();
    match case {
        "all" | "fold_kernels" => {
            sections.push(fold_kernels(&cfg, &mut gate_errors)?);
        }
        other => return Err(format!("unknown --case {other:?} (fold_kernels)").into()),
    }

    let json = render_json(&cfg, &sections, &gate_errors);
    let out = cfg.data_dir.join("BENCH_ablations.json");
    std::fs::write(&out, &json)?;
    println!("wrote {}", out.display());

    if !gate_errors.is_empty() {
        for e in &gate_errors {
            eprintln!("GATE FAILED: {e}");
        }
        return Err(format!("{} gate(s) failed", gate_errors.len()).into());
    }
    Ok(())
}

/// The `fold_kernels` case: scalar vs batch vs combined fold paths.
fn fold_kernels(
    cfg: &HarnessConfig,
    gate_errors: &mut Vec<String>,
) -> Result<(&'static str, Vec<Cell>), Box<dyn std::error::Error>> {
    let el = gpsa_bench::dataset_edges(Dataset::Twitter, 16 * cfg.scale);
    let root = gpsa_bench::bfs_root(&el);
    eprintln!(
        "fold_kernels graph: {} vertices, {} edges (twitter-s R-MAT), bfs root {root}",
        el.n_vertices,
        el.len()
    );
    let path = cfg.data_dir.join("ablations-v2.gcsr");
    preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default())?;

    let mut cells = Vec::new();
    for algo in ALGOS {
        for variant in VARIANTS {
            let mut totals = Vec::new();
            let mut messages = 0u64;
            let mut bits = Vec::new();
            for run in 0..cfg.runs.max(1) {
                let dir: PathBuf = cfg.data_dir.join(format!("abl-{algo}-{variant}-{run}"));
                let mut config = EngineConfig::new(&dir)
                    .with_workers(1)
                    .with_actors(1, 1)
                    .with_batch_fold(variant != "scalar")
                    .with_termination(match algo {
                        "pagerank" => Termination::Supersteps(cfg.supersteps),
                        _ => Termination::Quiescence {
                            max_supersteps: 10_000,
                        },
                    });
                config.combine_messages = variant == "combined";
                let engine = Engine::new(config);
                let t0 = Instant::now();
                let (m, b) = match algo {
                    "bfs" => {
                        let r = engine.run(&path, Bfs { root }).map_err(|e| e.to_string())?;
                        (r.messages, r.values)
                    }
                    "cc" => {
                        let r = engine
                            .run(&path, ConnectedComponents)
                            .map_err(|e| e.to_string())?;
                        (r.messages, r.values)
                    }
                    _ => {
                        let r = engine
                            .run(&path, PageRank::default())
                            .map_err(|e| e.to_string())?;
                        (r.messages, r.values.iter().map(|v| v.to_bits()).collect())
                    }
                };
                totals.push(t0.elapsed());
                messages = m;
                if run == 0 {
                    bits = b;
                }
            }
            let total = totals.iter().sum::<Duration>() / totals.len().max(1) as u32;
            cells.push(Cell {
                algo,
                variant,
                total,
                messages,
                bits,
            });
        }
    }

    // Gates: batch ≡ scalar exactly; combined ≡ scalar exactly for the
    // min algorithms, within tolerance for PageRank.
    for algo in ALGOS {
        let of = |variant: &str| {
            cells
                .iter()
                .find(|c| c.algo == algo && c.variant == variant)
                .expect("cell grid is complete")
        };
        let (scalar, batch, combined) = (of("scalar"), of("batch"), of("combined"));
        if batch.bits != scalar.bits {
            gate_errors.push(format!("{algo}: batch values differ from scalar fold"));
        }
        if algo == "pagerank" {
            let off = combined
                .bits
                .iter()
                .zip(&scalar.bits)
                .filter(|(a, b)| (f32::from_bits(**a) - f32::from_bits(**b)).abs() > PR_TOLERANCE)
                .count();
            if off > 0 {
                gate_errors.push(format!(
                    "pagerank: {off} combined values beyond {PR_TOLERANCE} of scalar"
                ));
            }
        } else if combined.bits != scalar.bits {
            gate_errors.push(format!("{algo}: combined values differ from scalar fold"));
        }
    }

    let mut t = Table::new(&["algo", "variant", "total", "messages", "speedup vs scalar"]);
    for algo in ALGOS {
        let scalar_total = cells
            .iter()
            .find(|c| c.algo == algo && c.variant == "scalar")
            .map(|c| c.total)
            .unwrap_or_default();
        for c in cells.iter().filter(|c| c.algo == algo) {
            t.row(&[
                c.algo.to_string(),
                c.variant.to_string(),
                fmt_dur(c.total),
                c.messages.to_string(),
                format!(
                    "{:.2}x",
                    scalar_total.as_secs_f64() / c.total.as_secs_f64().max(1e-9)
                ),
            ]);
        }
    }
    print!("{t}");
    Ok(("fold_kernels", cells))
}

fn render_json(
    cfg: &HarnessConfig,
    sections: &[(&'static str, Vec<Cell>)],
    gate_errors: &[String],
) -> String {
    // Hand-rolled JSON: the workspace deliberately has no serde dependency.
    let case_entries: Vec<String> = sections
        .iter()
        .map(|(name, cells)| {
            let cell_entries: Vec<String> = cells
                .iter()
                .map(|c| {
                    format!(
                        concat!(
                            "      {{ \"algo\": \"{}\", \"variant\": \"{}\", ",
                            "\"total_us\": {}, \"messages\": {} }}"
                        ),
                        c.algo,
                        c.variant,
                        c.total.as_micros(),
                        c.messages,
                    )
                })
                .collect();
            format!(
                "    {{ \"case\": \"{}\", \"cells\": [\n{}\n    ] }}",
                name,
                cell_entries.join(",\n")
            )
        })
        .collect();
    let gate_entries: Vec<String> = gate_errors
        .iter()
        .map(|e| format!("    \"{}\"", e.replace('"', "'")))
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"ablations\",\n",
            "  \"runs\": {},\n",
            "  \"supersteps\": {},\n",
            "  \"cases\": [\n{}\n  ],\n",
            "  \"gate_failures\": [\n{}\n  ]\n",
            "}}\n"
        ),
        cfg.runs,
        cfg.supersteps,
        case_entries.join(",\n"),
        if gate_entries.is_empty() {
            String::new()
        } else {
            gate_entries.join(",\n")
        },
    )
}
