//! COST benchmark: the engine vs one tuned thread, across edge formats.
//!
//! "Scalability! But at what COST?" — for BFS, CC, and PageRank on a
//! power-law R-MAT graph, this bin measures the tuned single-thread
//! baseline (`gpsa_baselines::seq`, flat in-memory CSR) against the full
//! actor engine at ≥2 core counts, for both the v1 word-array and v2
//! delta-varint edge formats, and reports the headline COST number: the
//! smallest core count at which the engine beats the single thread.
//!
//! Writes `BENCH_cost.json` into `--data-dir` and enforces hard gates
//! (process exits non-zero on violation):
//!
//! * **bit-identity** — engine BFS/CC values equal the `SyncEngine`
//!   oracle exactly, in every cell; PageRank is bitwise identical between
//!   v1 and v2 at 1 dispatcher + 1 computer and within tolerance of the
//!   oracle elsewhere;
//! * **compression** — the v2 edge file is ≥1.5x smaller than v1 on this
//!   power-law graph, and a dense run streams fewer bytes under v2;
//! * **COST reported** — every algorithm gets a COST entry (a core count
//!   or an explicit "not beaten within N cores").
//!
//! `--strict-cost` additionally fails the run when any algorithm's COST
//! exceeds the measured core range (off by default: CI smoke boxes are
//! too small and too noisy to gate raw speed on).
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin bench_cost -- \
//!     [--scale N] [--runs N] [--threads N] [--data-dir D] [--strict-cost]
//! ```

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use gpsa::programs::{Bfs, ConnectedComponents, PageRank};
use gpsa::{Engine, EngineConfig, RunReport, SyncEngine, Termination};
use gpsa_baselines::seq;
use gpsa_bench::{fmt_dur, HarnessConfig};
use gpsa_graph::datasets::Dataset;
use gpsa_graph::{preprocess, Csr, EdgeList};
use gpsa_metrics::Table;

/// One engine measurement cell.
struct Cell {
    algo: &'static str,
    format: &'static str,
    cores: usize,
    total: Duration,
    messages: u64,
    msgs_per_sec: f64,
    edge_bytes_streamed: u64,
    edges_streamed: u64,
}

/// One single-thread baseline measurement.
struct Baseline {
    algo: &'static str,
    total: Duration,
    messages: u64,
    msgs_per_sec: f64,
}

const ALGOS: [&str; 3] = ["bfs", "cc", "pagerank"];
const PR_TOLERANCE: f32 = 1e-4;

fn main() {
    if let Err(e) = run() {
        eprintln!("bench_cost: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let strict_cost = argv.iter().any(|a| a == "--strict-cost");
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    std::fs::create_dir_all(&cfg.data_dir)?;

    // The twitter stand-in: R-MAT with the default skewed quadrant
    // probabilities — the power-law regime where delta-varint runs pay off.
    let el = gpsa_bench::dataset_edges(Dataset::Twitter, 16 * cfg.scale);
    let root = gpsa_bench::bfs_root(&el);
    eprintln!(
        "cost graph: {} vertices, {} edges (twitter-s R-MAT), bfs root {root}",
        el.n_vertices,
        el.len()
    );

    // --- Preprocess once per format; the compression gate reads the stats.
    let v1_path = cfg.data_dir.join("cost-v1.gcsr");
    let v2_path = cfg.data_dir.join("cost-v2.gcsr");
    let v1_stats = preprocess::edges_to_csr(
        el.clone(),
        &v1_path,
        &preprocess::PreprocessOptions::uncompressed(),
    )?;
    let v2_stats = preprocess::edges_to_csr(
        el.clone(),
        &v2_path,
        &preprocess::PreprocessOptions::default(),
    )?;
    let file_ratio = v1_stats.output_bytes as f64 / v2_stats.output_bytes.max(1) as f64;
    eprintln!(
        "edge files: v1 {} bytes, v2 {} bytes ({file_ratio:.2}x smaller)",
        v1_stats.output_bytes, v2_stats.output_bytes
    );

    // --- Sequential oracle (also the correctness reference for values).
    let oracle_bfs = SyncEngine::new(quiesce()).run(&el, Bfs { root }).values;
    let oracle_cc = SyncEngine::new(quiesce())
        .run(&el, ConnectedComponents)
        .values;
    let oracle_pr = SyncEngine::new(Termination::Supersteps(cfg.supersteps))
        .run(&el, PageRank::default())
        .values;

    // --- Tuned single-thread baseline on the in-memory CSR.
    let csr = Csr::from_edge_list(&el);
    let baselines = run_baselines(&csr, root, &cfg, &oracle_bfs, &oracle_cc)?;

    // --- Engine cells: {1, N} cores × {v1, v2} × {bfs, cc, pagerank}.
    let mut core_counts = vec![1usize, cfg.threads.max(2)];
    core_counts.dedup();
    let mut cells: Vec<Cell> = Vec::new();
    let mut gate_errors: Vec<String> = Vec::new();
    for &cores in &core_counts {
        // PageRank v1-vs-v2 bitwise comparison at the same core count.
        let mut pr_values: Vec<(u64, Vec<f32>)> = Vec::new();
        for (format, path) in [("v1", &v1_path), ("v2", &v2_path)] {
            for algo in ALGOS {
                let (report_total, messages, values_err, bytes, words, pr_vals) = run_engine_cell(
                    algo,
                    format,
                    path,
                    cores,
                    root,
                    &cfg,
                    &oracle_bfs,
                    &oracle_cc,
                    &oracle_pr,
                )?;
                if let Some(err) = values_err {
                    gate_errors.push(err);
                }
                if let Some(vals) = pr_vals {
                    pr_values.push((cores as u64, vals));
                }
                let msgs_per_sec = messages as f64 / report_total.as_secs_f64().max(1e-9);
                cells.push(Cell {
                    algo,
                    format,
                    cores,
                    total: report_total,
                    messages,
                    msgs_per_sec,
                    edge_bytes_streamed: bytes,
                    edges_streamed: words,
                });
            }
        }
        // Gate: v1 and v2 PageRank values bitwise identical at 1 core
        // (1 dispatcher + 1 computer makes the fold order deterministic).
        if cores == 1 {
            if let [(_, a), (_, b)] = &pr_values[..] {
                let same =
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
                if !same {
                    gate_errors
                        .push("pagerank v1 vs v2 values not bitwise identical at 1 core".into());
                }
            } else {
                gate_errors.push("pagerank v1/v2 single-core cells missing".into());
            }
        }
    }

    // Gate: a dense full-graph run must stream fewer bytes under v2.
    for algo in ALGOS {
        let bytes_of = |fmt: &str| {
            cells
                .iter()
                .find(|c| c.algo == algo && c.format == fmt && c.cores == core_counts[0])
                .map(|c| c.edge_bytes_streamed)
                .unwrap_or(0)
        };
        let (b1, b2) = (bytes_of("v1"), bytes_of("v2"));
        if b2 >= b1 {
            gate_errors.push(format!(
                "{algo}: v2 streamed {b2} bytes, not less than v1's {b1}"
            ));
        }
    }

    // Gate: v2 edge file ≥1.5x smaller on this power-law graph.
    if file_ratio < 1.5 {
        gate_errors.push(format!(
            "v2 edge file only {file_ratio:.2}x smaller than v1 (need >= 1.5x)"
        ));
    }

    // --- COST: smallest measured core count where the v2 engine beats the
    // single thread. The baseline's time covers the same work (no CSR
    // build, no preprocessing on either side).
    let mut costs: Vec<(&'static str, Option<usize>)> = Vec::new();
    for b in &baselines {
        let mut cost = None;
        for &cores in &core_counts {
            let cell = cells
                .iter()
                .find(|c| c.algo == b.algo && c.format == "v2" && c.cores == cores);
            if let Some(c) = cell {
                if c.total < b.total {
                    cost = Some(cores);
                    break;
                }
            }
        }
        if strict_cost && cost.is_none() {
            gate_errors.push(format!(
                "{}: engine never beat the single-thread baseline within {} cores",
                b.algo,
                core_counts.last().copied().unwrap_or(1)
            ));
        }
        costs.push((b.algo, cost));
    }
    // Headline COST: the worst algorithm. An unbeaten baseline dominates
    // any finite core count.
    let max_cores = core_counts.last().copied().unwrap_or(1);
    let headline = if costs.iter().any(|(_, c)| c.is_none()) {
        format!(">{max_cores}")
    } else {
        costs
            .iter()
            .filter_map(|(_, c)| *c)
            .max()
            .map(|n| n.to_string())
            .unwrap_or_else(|| "-".into())
    };

    print_tables(&baselines, &cells, &costs, &core_counts);
    let json = render_json(
        &cfg,
        &el,
        file_ratio,
        v1_stats.output_bytes,
        v2_stats.output_bytes,
        &baselines,
        &cells,
        &costs,
        &core_counts,
        &gate_errors,
    );
    let out = cfg.data_dir.join("BENCH_cost.json");
    std::fs::write(&out, &json)?;
    println!("\nheadline COST (cores to beat one tuned thread): {headline}");
    println!("wrote {}", out.display());

    if !gate_errors.is_empty() {
        for e in &gate_errors {
            eprintln!("GATE FAILED: {e}");
        }
        return Err(format!("{} gate(s) failed", gate_errors.len()).into());
    }
    Ok(())
}

fn quiesce() -> Termination {
    Termination::Quiescence {
        max_supersteps: 10_000,
    }
}

/// Run the tuned single-thread baselines, checking them against the oracle
/// (they must compute the same fixpoints or COST is meaningless).
fn run_baselines(
    csr: &Csr,
    root: u32,
    cfg: &HarnessConfig,
    oracle_bfs: &[u32],
    oracle_cc: &[u32],
) -> Result<Vec<Baseline>, Box<dyn std::error::Error>> {
    let mut out = Vec::new();
    for algo in ALGOS {
        let mut totals = Vec::new();
        let mut messages = 0u64;
        for _ in 0..cfg.runs.max(1) {
            let t0 = Instant::now();
            match algo {
                "bfs" => {
                    let (values, stats) = seq::bfs(csr, root);
                    totals.push(t0.elapsed());
                    messages = stats.messages;
                    if values != oracle_bfs {
                        return Err("seq bfs disagrees with the SyncEngine oracle".into());
                    }
                }
                "cc" => {
                    let (values, stats) = seq::connected_components(csr);
                    totals.push(t0.elapsed());
                    messages = stats.messages;
                    if values != oracle_cc {
                        return Err("seq cc disagrees with the SyncEngine oracle".into());
                    }
                }
                _ => {
                    let (_values, stats) = seq::pagerank(csr, 0.85, cfg.supersteps);
                    totals.push(t0.elapsed());
                    messages = stats.messages;
                }
            }
        }
        let total = totals.iter().sum::<Duration>() / totals.len().max(1) as u32;
        out.push(Baseline {
            algo,
            total,
            messages,
            msgs_per_sec: messages as f64 / total.as_secs_f64().max(1e-9),
        });
    }
    Ok(out)
}

/// One engine cell's measurements: `(superstep_total, messages,
/// gate_error, bytes_streamed, words_streamed, pagerank_values)`.
type CellResult = (Duration, u64, Option<String>, u64, u64, Option<Vec<f32>>);

/// Run one engine cell and verify its values.
#[allow(clippy::too_many_arguments)]
fn run_engine_cell(
    algo: &'static str,
    format: &'static str,
    path: &Path,
    cores: usize,
    root: u32,
    cfg: &HarnessConfig,
    oracle_bfs: &[u32],
    oracle_cc: &[u32],
    oracle_pr: &[f32],
) -> Result<CellResult, Box<dyn std::error::Error>> {
    let actors = (cores / 2).max(1);
    let mut totals = Vec::new();
    let mut messages = 0u64;
    let mut bytes = 0u64;
    let mut words = 0u64;
    let mut err = None;
    let mut pr_vals = None;
    for run in 0..cfg.runs.max(1) {
        // Fresh work dir per repetition: a leftover value file must never
        // turn a timing run into a recovery run.
        let dir: PathBuf = cfg
            .data_dir
            .join(format!("cost-{algo}-{format}-c{cores}-{run}"));
        let config = EngineConfig::new(&dir)
            .with_workers(cores)
            .with_actors(actors, actors)
            .with_termination(match algo {
                "pagerank" => Termination::Supersteps(cfg.supersteps),
                _ => quiesce(),
            });
        let engine = Engine::new(config);
        match algo {
            "bfs" => {
                let r = engine.run(path, Bfs { root }).map_err(|e| e.to_string())?;
                tally(&r, &mut totals, &mut messages, &mut bytes, &mut words);
                if run == 0 && r.values != oracle_bfs {
                    err = Some(format!(
                        "bfs {format} at {cores} cores disagrees with the oracle"
                    ));
                }
            }
            "cc" => {
                let r = engine
                    .run(path, ConnectedComponents)
                    .map_err(|e| e.to_string())?;
                tally(&r, &mut totals, &mut messages, &mut bytes, &mut words);
                if run == 0 && r.values != oracle_cc {
                    err = Some(format!(
                        "cc {format} at {cores} cores disagrees with the oracle"
                    ));
                }
            }
            _ => {
                let r = engine
                    .run(path, PageRank::default())
                    .map_err(|e| e.to_string())?;
                tally(&r, &mut totals, &mut messages, &mut bytes, &mut words);
                if run == 0 {
                    let off = r
                        .values
                        .iter()
                        .zip(oracle_pr)
                        .filter(|(a, b)| (*a - *b).abs() > PR_TOLERANCE)
                        .count();
                    if off > 0 {
                        err = Some(format!(
                            "pagerank {format} at {cores} cores: {off} values \
                             beyond {PR_TOLERANCE} of the oracle"
                        ));
                    }
                    pr_vals = Some(r.values);
                }
            }
        }
    }
    let total = totals.iter().sum::<Duration>() / totals.len().max(1) as u32;
    Ok((total, messages, err, bytes, words, pr_vals))
}

fn tally<V>(
    r: &RunReport<V>,
    totals: &mut Vec<Duration>,
    messages: &mut u64,
    bytes: &mut u64,
    words: &mut u64,
) {
    totals.push(r.superstep_total());
    *messages = r.messages;
    *bytes = r.edge_bytes_streamed;
    *words = r.edges_streamed;
}

fn print_tables(
    baselines: &[Baseline],
    cells: &[Cell],
    costs: &[(&'static str, Option<usize>)],
    core_counts: &[usize],
) {
    let mut t = Table::new(&[
        "algo",
        "runner",
        "format",
        "total",
        "messages/sec",
        "bytes streamed",
    ]);
    for b in baselines {
        t.row(&[
            b.algo.to_string(),
            "1 tuned thread".into(),
            "ram".into(),
            fmt_dur(b.total),
            format!("{:.0}", b.msgs_per_sec),
            "-".into(),
        ]);
    }
    for c in cells {
        t.row(&[
            c.algo.to_string(),
            format!("engine x{}", c.cores),
            c.format.to_string(),
            fmt_dur(c.total),
            format!("{:.0}", c.msgs_per_sec),
            c.edge_bytes_streamed.to_string(),
        ]);
    }
    print!("{t}");
    for (algo, cost) in costs {
        let shown = cost
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!(">{}", core_counts.last().copied().unwrap_or(1)));
        println!("COST[{algo}] = {shown} cores");
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &HarnessConfig,
    el: &EdgeList,
    file_ratio: f64,
    v1_bytes: u64,
    v2_bytes: u64,
    baselines: &[Baseline],
    cells: &[Cell],
    costs: &[(&'static str, Option<usize>)],
    core_counts: &[usize],
    gate_errors: &[String],
) -> String {
    // Hand-rolled JSON: the workspace deliberately has no serde dependency.
    let baseline_entries: Vec<String> = baselines
        .iter()
        .map(|b| {
            format!(
                concat!(
                    "    {{ \"algo\": \"{}\", \"total_us\": {}, ",
                    "\"messages\": {}, \"messages_per_sec\": {:.1} }}"
                ),
                b.algo,
                b.total.as_micros(),
                b.messages,
                b.msgs_per_sec,
            )
        })
        .collect();
    let cell_entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{ \"algo\": \"{}\", \"format\": \"{}\", \"cores\": {}, ",
                    "\"superstep_total_us\": {}, \"messages\": {}, ",
                    "\"messages_per_sec\": {:.1}, \"edge_bytes_streamed\": {}, ",
                    "\"edge_words_streamed\": {} }}"
                ),
                c.algo,
                c.format,
                c.cores,
                c.total.as_micros(),
                c.messages,
                c.msgs_per_sec,
                c.edge_bytes_streamed,
                c.edges_streamed,
            )
        })
        .collect();
    let cost_entries: Vec<String> = costs
        .iter()
        .map(|(algo, cost)| {
            format!(
                "    {{ \"algo\": \"{algo}\", \"cores\": {} }}",
                cost.map(|n| n.to_string()).unwrap_or_else(|| "null".into())
            )
        })
        .collect();
    let gate_entries: Vec<String> = gate_errors
        .iter()
        .map(|e| format!("    \"{}\"", e.replace('"', "'")))
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"cost\",\n",
            "  \"graph\": {{ \"vertices\": {}, \"edges\": {}, \"kind\": \"rmat-twitter-s\" }},\n",
            "  \"runs\": {},\n",
            "  \"supersteps\": {},\n",
            "  \"core_counts\": [{}],\n",
            "  \"compression\": {{ \"v1_edge_file_bytes\": {}, \"v2_edge_file_bytes\": {}, \"file_ratio\": {:.4} }},\n",
            "  \"baseline\": [\n{}\n  ],\n",
            "  \"engine\": [\n{}\n  ],\n",
            "  \"cost\": [\n{}\n  ],\n",
            "  \"gate_failures\": [\n{}\n  ]\n",
            "}}\n"
        ),
        el.n_vertices,
        el.len(),
        cfg.runs,
        cfg.supersteps,
        core_counts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        v1_bytes,
        v2_bytes,
        file_ratio,
        baseline_entries.join(",\n"),
        cell_entries.join(",\n"),
        cost_entries.join(",\n"),
        if gate_entries.is_empty() {
            String::new()
        } else {
            gate_entries.join(",\n")
        },
    )
}
