//! Chunked-dispatch benchmark: monolithic vs cooperative ~N-edge chunks,
//! with recycled message slabs, on the scaled twitter/google stand-ins.
//!
//! Writes `BENCH_dispatch.json` (messages/sec, time-to-first-compute-batch,
//! slab-pool hit rate per configuration) into `--data-dir` to seed the perf
//! trajectory, and prints the same numbers as a table.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin bench_dispatch -- \
//!     [--scale N] [--runs N] [--threads N] [--data-dir D]
//! ```

use std::time::Duration;

use gpsa::programs::PageRank;
use gpsa::{Engine, EngineConfig, Termination};
use gpsa_bench::{fmt_dur, HarnessConfig};
use gpsa_graph::datasets::Dataset;
use gpsa_metrics::Table;

struct Cell {
    dataset: &'static str,
    mode: &'static str,
    chunk: usize,
    total: Duration,
    messages: u64,
    msgs_per_sec: f64,
    first_batch: Option<Duration>,
    pool_hit_rate: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    std::fs::create_dir_all(&cfg.data_dir)?;

    // More workers than dispatchers, so freed workers can interleave
    // compute batches between dispatch chunks — the regime the tentpole
    // targets.
    let workers = cfg.threads.max(4);
    let dispatchers = (workers / 2).max(2) - 1;
    let computers = dispatchers;

    let modes: [(&'static str, usize); 3] = [
        ("monolithic", EngineConfig::MONOLITHIC_DISPATCH),
        ("chunk64k", 65_536),
        ("chunk16k", 16_384),
    ];
    // twitter-s is the headline (chunked should win); google-s is the
    // regression guard (chunked must stay within 5% of monolithic).
    let datasets = [
        (Dataset::Twitter, 16 * cfg.scale, "twitter-s"),
        (Dataset::Google, cfg.scale, "google-s"),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for (ds, scale, tag) in datasets {
        let el = gpsa_bench::dataset_edges(ds, scale);
        eprintln!(
            "{tag}: {} vertices, {} edges; workers={workers} dispatchers={dispatchers}",
            el.n_vertices,
            el.len()
        );
        for (mode, chunk) in modes {
            let mut totals = Vec::new();
            let mut first = Vec::new();
            let mut messages = 0u64;
            let mut hit_rate = 0.0f64;
            for run in 0..cfg.runs.max(1) {
                let dir = cfg.data_dir.join(format!("bd-{tag}-{mode}-{run}"));
                let config = EngineConfig::new(&dir)
                    .with_workers(workers)
                    .with_actors(dispatchers, computers)
                    .with_termination(Termination::Supersteps(cfg.supersteps))
                    .with_dispatch_chunk(chunk);
                let r = Engine::new(config)
                    .run_edge_list(el.clone(), tag, PageRank::default())
                    .map_err(|e| e.to_string())?;
                totals.push(r.step_times.iter().sum::<Duration>());
                if let Some(fb) = r.mean_first_batch() {
                    first.push(fb);
                }
                messages = r.messages;
                hit_rate = r.pool_hit_rate();
            }
            let total = totals.iter().sum::<Duration>() / totals.len().max(1) as u32;
            let first_batch = if first.is_empty() {
                None
            } else {
                Some(first.iter().sum::<Duration>() / first.len() as u32)
            };
            let msgs_per_sec = messages as f64 / total.as_secs_f64().max(1e-9);
            cells.push(Cell {
                dataset: tag,
                mode,
                chunk,
                total,
                messages,
                msgs_per_sec,
                first_batch,
                pool_hit_rate: hit_rate,
            });
        }
    }

    let mut t = Table::new(&[
        "dataset",
        "dispatch",
        "superstep total",
        "messages/sec",
        "first batch",
        "pool hit rate",
    ]);
    for c in &cells {
        t.row(&[
            c.dataset.to_string(),
            c.mode.to_string(),
            fmt_dur(c.total),
            format!("{:.0}", c.msgs_per_sec),
            c.first_batch.map(fmt_dur).unwrap_or_else(|| "-".into()),
            format!("{:.1}%", c.pool_hit_rate * 100.0),
        ]);
    }
    print!("{t}");

    // Hand-rolled JSON: the workspace deliberately has no serde dependency.
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"dataset\": \"{}\",\n",
                    "      \"mode\": \"{}\",\n",
                    "      \"dispatch_chunk\": {},\n",
                    "      \"superstep_total_us\": {},\n",
                    "      \"messages\": {},\n",
                    "      \"messages_per_sec\": {:.1},\n",
                    "      \"first_batch_us\": {},\n",
                    "      \"pool_hit_rate\": {:.4}\n",
                    "    }}"
                ),
                c.dataset,
                c.mode,
                if c.chunk == EngineConfig::MONOLITHIC_DISPATCH {
                    "null".to_string()
                } else {
                    c.chunk.to_string()
                },
                c.total.as_micros(),
                c.messages,
                c.msgs_per_sec,
                c.first_batch
                    .map(|d| d.as_micros().to_string())
                    .unwrap_or_else(|| "null".into()),
                c.pool_hit_rate,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"chunked_dispatch\",\n  \"supersteps\": {},\n  \"runs\": {},\n  \"workers\": {},\n  \"dispatchers\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cfg.supersteps,
        cfg.runs,
        workers,
        dispatchers,
        entries.join(",\n")
    );
    let out = cfg.data_dir.join("BENCH_dispatch.json");
    std::fs::write(&out, &json)?;
    println!("\nwrote {}", out.display());
    Ok(())
}
