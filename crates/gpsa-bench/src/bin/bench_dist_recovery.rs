//! Distributed-recovery benchmark and gate: drive the simulated cluster
//! through scripted node kills, mid-fold panics, dropped batches, and
//! torn manifest tails, and verify three properties hard enough to fail
//! the process on:
//!
//! 1. **Bit-identity under faults** — every faulted run's values equal
//!    the sequential `SyncEngine` oracle's, with the recovery recorded
//!    honestly in the report counters.
//! 2. **Bounded recovery latency** — a faulted run finishes within
//!    `20 × fault-free elapsed + 2s`.
//! 3. **Cheap barriers** — the cluster commit (per-node dual-slot commits
//!    plus manifest append) costs < 5% of fault-free superstep time; the
//!    paper's "dispatch column is a free checkpoint" claim, measured.
//!
//! Writes `BENCH_dist_recovery.json` into `--data-dir` and exits
//! non-zero if any gate fails. Requires `--features chaos`.
//!
//! ```text
//! cargo run --release -p gpsa-bench --features chaos \
//!     --bin bench_dist_recovery -- [--scale N] [--nodes N] [--data-dir D]
//! ```

#[cfg(not(feature = "chaos"))]
fn main() {
    eprintln!(
        "bench_dist_recovery needs the scripted fault plans; rebuild with \
         `--features chaos`."
    );
}

#[cfg(feature = "chaos")]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    chaos::run()
}

#[cfg(feature = "chaos")]
mod chaos {
    use std::fmt::Write as _;
    use std::path::PathBuf;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use gpsa::fault::{FaultPlan, FaultSpec};
    use gpsa::programs::ConnectedComponents;
    use gpsa::{SyncEngine, Termination};
    use gpsa_bench::HarnessConfig;
    use gpsa_dist::{Cluster, ClusterConfig, DistReport};
    use gpsa_graph::generate;
    use gpsa_metrics::Table;

    const RECOVERY_LATENCY_FACTOR: f64 = 20.0;
    const RECOVERY_LATENCY_SLACK: Duration = Duration::from_secs(2);
    const COMMIT_OVERHEAD_CAP: f64 = 0.05;

    struct Scenario {
        name: &'static str,
        plan: FaultPlan,
        /// Whether the plan's fault is guaranteed to fire on this
        /// workload (scripted seeds may place points past quiescence).
        must_recover: bool,
    }

    fn scenarios(n_nodes: u32) -> Vec<Scenario> {
        let far = n_nodes.saturating_sub(1);
        vec![
            Scenario {
                name: "node_kill",
                plan: FaultPlan::new(11).with(FaultSpec::NodeKill {
                    node: far,
                    superstep: 1,
                }),
                must_recover: true,
            },
            Scenario {
                name: "computer_panic",
                plan: FaultPlan::new(12).with(FaultSpec::DistComputerPanic {
                    node: 0,
                    after_messages: 64,
                }),
                must_recover: true,
            },
            Scenario {
                name: "batch_drop",
                plan: FaultPlan::new(13).with(FaultSpec::BatchDrop {
                    src_node: 0,
                    superstep: 1,
                }),
                must_recover: n_nodes > 1,
            },
            Scenario {
                name: "torn_manifest",
                plan: FaultPlan::new(14).with(FaultSpec::TornManifest { superstep: 1 }),
                must_recover: true,
            },
            Scenario {
                name: "double_kill",
                plan: FaultPlan::new(15)
                    .with(FaultSpec::NodeKill {
                        node: 0,
                        superstep: 1,
                    })
                    .with(FaultSpec::NodeKill {
                        node: far,
                        superstep: 2,
                    }),
                must_recover: true,
            },
            Scenario {
                name: "scripted_mix",
                plan: FaultPlan::scripted_dist(0xFEED, 3, 4, n_nodes),
                must_recover: false,
            },
        ]
    }

    fn base_config(nodes: usize, dir: PathBuf) -> ClusterConfig {
        ClusterConfig::new(nodes, dir)
            .with_termination(Termination::Quiescence {
                max_supersteps: 10_000,
            })
            .with_max_node_retries(8)
    }

    pub fn run() -> Result<(), Box<dyn std::error::Error>> {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let cfg = HarnessConfig::default().apply_flags(&argv)?;
        let nodes = argv
            .iter()
            .position(|a| a == "--nodes")
            .and_then(|i| argv.get(i + 1))
            .map(|v| v.parse::<usize>())
            .transpose()?
            .unwrap_or(4);
        std::fs::create_dir_all(&cfg.data_dir)?;

        // A graph big enough that a superstep dwarfs its barrier commit,
        // scaled the same way as the paper-table benches.
        let n_vertices = (200_000 / cfg.scale.max(1) as usize).max(5_000);
        let el = generate::symmetrize(&generate::rmat(
            n_vertices,
            n_vertices * 8,
            generate::RmatParams::default(),
            7,
        ));
        eprintln!(
            "graph: {} vertices, {} edges; {nodes} nodes",
            el.n_vertices,
            el.len()
        );

        let term = Termination::Quiescence {
            max_supersteps: 10_000,
        };
        let oracle = SyncEngine::new(term).run(&el, ConnectedComponents).values;

        // Fault-free baseline: elapsed time and the commit-overhead gate.
        let t0 = Instant::now();
        let clean: DistReport<u32> =
            Cluster::new(base_config(nodes, cfg.data_dir.join("dist-recovery-clean")))
                .run(&el, ConnectedComponents)?;
        let clean_elapsed = t0.elapsed();
        if clean.values != oracle {
            return Err("fault-free distributed run diverged from oracle".into());
        }
        let step_total: Duration = clean.step_times.iter().sum();
        let commit_total: Duration = clean.commit_times.iter().sum();
        let overhead = commit_total.as_secs_f64() / step_total.as_secs_f64().max(1e-9);
        let overhead_ok = overhead < COMMIT_OVERHEAD_CAP;

        let budget = clean_elapsed.mul_f64(RECOVERY_LATENCY_FACTOR) + RECOVERY_LATENCY_SLACK;
        let mut rows = Vec::new();
        let mut all_ok = overhead_ok;
        for sc in scenarios(nodes as u32) {
            let t0 = Instant::now();
            let report: DistReport<u32> = Cluster::new(
                base_config(
                    nodes,
                    cfg.data_dir.join(format!("dist-recovery-{}", sc.name)),
                )
                .with_fault_plan(Arc::new(sc.plan)),
            )
            .run(&el, ConnectedComponents)?;
            let elapsed = t0.elapsed();
            let identical = report.values == oracle;
            let recovered = !report.retry_causes.is_empty();
            let within_budget = elapsed <= budget;
            let ok = identical && within_budget && (recovered || !sc.must_recover);
            all_ok &= ok;
            eprintln!(
                "{:>16}: {:?} restarts={} rolled_back={} retries={} {}",
                sc.name,
                elapsed,
                report.node_restarts,
                report.supersteps_rolled_back,
                report.retry_causes.len(),
                if ok { "ok" } else { "FAIL" },
            );
            rows.push((sc.name, elapsed, report, identical, within_budget, ok));
        }

        let mut t = Table::new(&[
            "scenario",
            "elapsed",
            "restarts",
            "rolled back",
            "retries",
            "bit-identical",
            "ok",
        ]);
        t.row(&[
            "fault-free",
            &format!("{clean_elapsed:.2?}"),
            "0",
            "0",
            "0",
            "yes",
            if overhead_ok { "yes" } else { "NO" },
        ]);
        for (name, elapsed, report, identical, _, ok) in &rows {
            t.row(&[
                *name,
                &format!("{elapsed:.2?}"),
                &report.node_restarts.to_string(),
                &report.supersteps_rolled_back.to_string(),
                &report.retry_causes.len().to_string(),
                if *identical { "yes" } else { "NO" },
                if *ok { "yes" } else { "NO" },
            ]);
        }
        print!("{t}");
        eprintln!(
            "barrier commit overhead: {:.3}% of superstep time (cap {:.0}%) — {}",
            overhead * 100.0,
            COMMIT_OVERHEAD_CAP * 100.0,
            if overhead_ok { "ok" } else { "FAIL" },
        );

        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"dist_recovery\",");
        let _ = writeln!(json, "  \"n_vertices\": {},", el.n_vertices);
        let _ = writeln!(json, "  \"n_edges\": {},", el.len());
        let _ = writeln!(json, "  \"n_nodes\": {nodes},");
        let _ = writeln!(
            json,
            "  \"fault_free_elapsed_us\": {},",
            clean_elapsed.as_micros()
        );
        let _ = writeln!(json, "  \"commit_overhead\": {overhead:.6},");
        let _ = writeln!(json, "  \"commit_overhead_cap\": {COMMIT_OVERHEAD_CAP},");
        let _ = writeln!(json, "  \"recovery_budget_us\": {},", budget.as_micros());
        let _ = writeln!(json, "  \"scenarios\": [");
        for (i, (name, elapsed, report, identical, within_budget, ok)) in rows.iter().enumerate() {
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"name\": \"{name}\",");
            let _ = writeln!(json, "      \"elapsed_us\": {},", elapsed.as_micros());
            let _ = writeln!(json, "      \"node_restarts\": {},", report.node_restarts);
            let _ = writeln!(
                json,
                "      \"supersteps_rolled_back\": {},",
                report.supersteps_rolled_back
            );
            let _ = writeln!(json, "      \"retries\": {},", report.retry_causes.len());
            let _ = writeln!(json, "      \"bit_identical\": {identical},");
            let _ = writeln!(json, "      \"within_budget\": {within_budget},");
            let _ = writeln!(json, "      \"ok\": {ok}");
            let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
        }
        let _ = writeln!(json, "  ],");
        let _ = writeln!(json, "  \"all_ok\": {all_ok}");
        json.push_str("}\n");
        let out = cfg.data_dir.join("BENCH_dist_recovery.json");
        std::fs::write(&out, json)?;
        eprintln!("wrote {}", out.display());

        if !all_ok {
            return Err("dist recovery gates failed".into());
        }
        Ok(())
    }
}
