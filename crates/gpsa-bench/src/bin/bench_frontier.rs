//! Frontier-aware selective dispatch benchmark: Dense vs Sparse vs Auto
//! dispatch on a synthetic grid BFS, whose wavefront frontier stays far
//! below 1% of the vertices for most of the traversal — the workload the
//! sparse path exists for.
//!
//! Writes `BENCH_frontier.json` (edge words streamed/skipped, stream
//! ratio vs dense, mean frontier density, superstep totals per mode) into
//! `--data-dir`, prints the same numbers as a table, and **exits
//! non-zero** if any mode diverges bit-wise from Dense, if Sparse/Auto
//! stream more words than Dense, or if a sub-1% mean frontier fails to
//! yield a >=10x stream reduction — so CI can simply run it.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin bench_frontier -- \
//!     [--scale N] [--threads N] [--data-dir D]
//! ```
//!
//! `--scale 1` is the headline configuration: a ~500x500 grid, ~1M
//! directed edges. The default scale (256) is a seconds-long smoke run.

use std::time::Duration;

use gpsa::programs::Bfs;
use gpsa::{DispatchMode, Engine, EngineConfig, RunReport, Termination};
use gpsa_bench::{fmt_dur, HarnessConfig};
use gpsa_graph::generate;
use gpsa_metrics::Table;

struct Cell {
    mode: &'static str,
    report: RunReport<u32>,
}

fn run_mode(
    cfg: &HarnessConfig,
    el: &gpsa_graph::EdgeList,
    mode: DispatchMode,
    tag: &'static str,
) -> Result<Cell, String> {
    let dir = cfg.data_dir.join(format!("bf-{tag}"));
    let workers = cfg.threads.max(2);
    let actors = (workers / 2).max(1);
    let config = EngineConfig::new(&dir)
        .with_workers(workers)
        .with_actors(actors, actors)
        .with_termination(Termination::Quiescence {
            max_supersteps: 10_000,
        })
        .with_dispatch_mode(mode);
    let report = Engine::new(config)
        .run_edge_list(el.clone(), tag, Bfs { root: 0 })
        .map_err(|e| e.to_string())?;
    Ok(Cell { mode: tag, report })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    std::fs::create_dir_all(&cfg.data_dir)?;

    // A side x side grid has ~4*side^2 directed edges; scale 1 targets
    // ~1M edges (side 500), larger scales shrink the graph for smoke runs.
    let side = (((250_000 / cfg.scale.max(1)) as f64).sqrt() as usize).max(16);
    let el = generate::grid(side, side);
    eprintln!(
        "grid {side}x{side}: {} vertices, {} edges",
        el.n_vertices,
        el.len()
    );

    let cells = [
        run_mode(&cfg, &el, DispatchMode::Dense, "dense")?,
        run_mode(&cfg, &el, DispatchMode::Sparse, "sparse")?,
        run_mode(&cfg, &el, DispatchMode::Auto, "auto")?,
    ];
    let dense = &cells[0].report;

    let mut t = Table::new(&[
        "mode",
        "supersteps",
        "edge words streamed",
        "edge words skipped",
        "vs dense",
        "mean frontier",
        "superstep total",
    ]);
    for c in &cells {
        let r = &c.report;
        let ratio = dense.edges_streamed as f64 / r.edges_streamed.max(1) as f64;
        t.row(&[
            c.mode.to_string(),
            r.supersteps.to_string(),
            r.edges_streamed.to_string(),
            r.edges_skipped.to_string(),
            format!("{ratio:.1}x"),
            format!("{:.3}%", 100.0 * r.mean_frontier_density()),
            fmt_dur(r.step_times.iter().sum::<Duration>()),
        ]);
    }
    print!("{t}");

    // Hand-rolled JSON: the workspace deliberately has no serde dependency.
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            format!(
                concat!(
                    "    {{\n",
                    "      \"mode\": \"{}\",\n",
                    "      \"supersteps\": {},\n",
                    "      \"edges_streamed\": {},\n",
                    "      \"edges_skipped\": {},\n",
                    "      \"stream_ratio_vs_dense\": {:.2},\n",
                    "      \"mean_frontier_density\": {:.6},\n",
                    "      \"superstep_total_us\": {}\n",
                    "    }}"
                ),
                c.mode,
                r.supersteps,
                r.edges_streamed,
                r.edges_skipped,
                dense.edges_streamed as f64 / r.edges_streamed.max(1) as f64,
                r.mean_frontier_density(),
                r.step_times.iter().sum::<Duration>().as_micros(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"frontier_dispatch\",\n  \"grid_side\": {},\n  \"n_vertices\": {},\n  \"n_edges\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        side,
        el.n_vertices,
        el.len(),
        entries.join(",\n")
    );
    let out = cfg.data_dir.join("BENCH_frontier.json");
    std::fs::write(&out, &json)?;
    println!("\nwrote {}", out.display());

    // --- Gates (CI runs this binary and trusts the exit code) ---
    let mut failures = Vec::new();
    for c in &cells[1..] {
        let r = &c.report;
        if r.values != dense.values {
            failures.push(format!("{}: values diverged from dense", c.mode));
        }
        if r.edges_streamed > dense.edges_streamed {
            failures.push(format!(
                "{}: streamed {} > dense {}",
                c.mode, r.edges_streamed, dense.edges_streamed
            ));
        }
        // The headline claim, enforced only where it applies: on a sub-1%
        // mean frontier a seek-based pass must beat the sweep 10x on I/O.
        if r.mean_frontier_density() < 0.01 {
            let ratio = dense.edges_streamed as f64 / r.edges_streamed.max(1) as f64;
            if ratio < 10.0 {
                failures.push(format!(
                    "{}: only {ratio:.1}x fewer words on a {:.3}% frontier (want >=10x)",
                    c.mode,
                    100.0 * r.mean_frontier_density()
                ));
            }
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all gates passed");
    Ok(())
}
