//! Live-graph ingest benchmark: streaming edge deltas into a resident
//! CSR and re-converging BFS / CC / SSSP incrementally from the prior
//! run's values, against the full-recompute oracle on the same merged
//! snapshot.
//!
//! Writes `BENCH_ingest.json` (ingest throughput through the fsync'd
//! delta log, per-algorithm incremental vs scratch wall times and
//! speedups) into `--data-dir`, prints the same numbers as a table, and
//! **exits non-zero** if any incremental run diverges bit-wise from the
//! scratch oracle or if the aggregate incremental speedup on a <=1%
//! additions-only delta falls below 2x — so CI can simply run it.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin bench_ingest -- \
//!     [--scale N] [--threads N] [--data-dir D]
//! ```
//!
//! `--scale 1` is the headline configuration (~2M base edges). The
//! default scale (256) clamps to a ~100k-edge smoke run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpsa::programs::{Bfs, ConnectedComponents, Sssp};
use gpsa::{Engine, EngineConfig, Termination, VertexProgram};
use gpsa_bench::{fmt_dur, HarnessConfig};
use gpsa_graph::{generate, open_live, preprocess, DeltaBatch, Edge, GraphSnapshot};
use gpsa_metrics::Table;

struct Cell {
    algo: &'static str,
    incr: Duration,
    scratch: Duration,
    seeded: u64,
    supersteps_incr: u64,
    supersteps_scratch: u64,
    identical: bool,
}

fn engine(cfg: &HarnessConfig, tag: &str) -> Engine {
    let workers = cfg.threads.max(2);
    let actors = (workers / 2).max(1);
    let config = EngineConfig::new(cfg.data_dir.join(format!("bi-{tag}")))
        .with_workers(workers)
        .with_actors(actors, actors)
        .with_termination(Termination::Quiescence {
            max_supersteps: 10_000,
        });
    Engine::new(config)
}

/// Prior run on the frozen base, then timed incremental vs scratch runs
/// on the mutated snapshot.
fn run_algo<P: VertexProgram + Clone>(
    cfg: &HarnessConfig,
    frozen: &Arc<GraphSnapshot>,
    mutated: &Arc<GraphSnapshot>,
    algo: &'static str,
    program: P,
) -> Result<Cell, String>
where
    P::Value: PartialEq,
{
    let eng = engine(cfg, algo);
    let dir = cfg.data_dir.join(format!("bi-{algo}"));
    let prior = eng
        .run_snapshot(frozen, &dir.join("prior.gval"), program.clone())
        .map_err(|e| e.to_string())?;

    let t = Instant::now();
    let incr = eng
        .run_incremental(
            mutated,
            &dir.join("incr.gval"),
            program.clone(),
            &prior.values,
        )
        .map_err(|e| e.to_string())?;
    let incr_time = t.elapsed();

    let t = Instant::now();
    let scratch = eng
        .run_snapshot(mutated, &dir.join("scratch.gval"), program)
        .map_err(|e| e.to_string())?;
    let scratch_time = t.elapsed();

    Ok(Cell {
        algo,
        incr: incr_time,
        scratch: scratch_time,
        seeded: incr.seeded_frontier,
        supersteps_incr: incr.supersteps,
        supersteps_scratch: scratch.supersteps,
        identical: incr.values == scratch.values,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    std::fs::create_dir_all(&cfg.data_dir)?;

    // Scale 1 targets ~2M edges; smoke scales clamp to ~100k so the
    // incremental-vs-scratch ratio is not dominated by actor setup.
    let n_edges = (2_000_000 / cfg.scale.max(1) as usize).max(100_000);
    let n_vertices = n_edges / 5;
    let el = generate::erdos_renyi(n_vertices, n_edges, 42);
    eprintln!(
        "erdos-renyi base: {} vertices, {} edges",
        el.n_vertices,
        el.len()
    );
    let csr = cfg.data_dir.join("bi-base.gcsr");
    preprocess::edges_to_csr(el, &csr, &preprocess::PreprocessOptions::default())?;

    // Stream a <=1% additions-only delta through the durable log, the
    // way `gpsa mutate` would: framed, CRC'd, fsync'd per batch.
    let n_delta = (n_edges / 100).max(64);
    let batch_size = (n_delta / 8).max(1);
    let edges: Vec<Edge> = (0..n_delta)
        .map(|i| {
            Edge::new(
                ((i * 7919 + 3) % n_vertices) as u32,
                ((i * 104_729 + 13) % n_vertices) as u32,
            )
        })
        .collect();
    let (snapshot, mut log) = open_live(&csr)?;
    let frozen = Arc::new(GraphSnapshot::from_csr(snapshot.base().clone()));
    let t = Instant::now();
    let mut overlay = snapshot.overlay().as_ref().clone();
    for chunk in edges.chunks(batch_size) {
        let batch = DeltaBatch::Add(chunk.to_vec());
        log.append(&batch)?;
        overlay.apply(snapshot.base(), &batch);
    }
    let ingest_time = t.elapsed();
    let mutated = Arc::new(GraphSnapshot::new(
        snapshot.base().clone(),
        Arc::new(overlay),
    ));
    let ingest_rate = n_delta as f64 / ingest_time.as_secs_f64().max(1e-9);
    eprintln!(
        "ingested {n_delta} edges in {} batches: {} ({ingest_rate:.0} edges/s, fsync per batch)",
        n_delta.div_ceil(batch_size),
        fmt_dur(ingest_time)
    );

    let cells = [
        run_algo(&cfg, &frozen, &mutated, "bfs", Bfs { root: 0 })?,
        run_algo(&cfg, &frozen, &mutated, "cc", ConnectedComponents)?,
        run_algo(&cfg, &frozen, &mutated, "sssp", Sssp { root: 0 })?,
    ];

    let mut t = Table::new(&[
        "algorithm",
        "seeded frontier",
        "incr supersteps",
        "scratch supersteps",
        "incremental",
        "scratch",
        "speedup",
        "bit-identical",
    ]);
    for c in &cells {
        let speedup = c.scratch.as_secs_f64() / c.incr.as_secs_f64().max(1e-9);
        t.row(&[
            c.algo.to_string(),
            c.seeded.to_string(),
            c.supersteps_incr.to_string(),
            c.supersteps_scratch.to_string(),
            fmt_dur(c.incr),
            fmt_dur(c.scratch),
            format!("{speedup:.1}x"),
            c.identical.to_string(),
        ]);
    }
    print!("{t}");

    let incr_total: Duration = cells.iter().map(|c| c.incr).sum();
    let scratch_total: Duration = cells.iter().map(|c| c.scratch).sum();
    let aggregate = scratch_total.as_secs_f64() / incr_total.as_secs_f64().max(1e-9);
    println!(
        "aggregate: incremental {} vs scratch {} ({aggregate:.1}x)",
        fmt_dur(incr_total),
        fmt_dur(scratch_total)
    );

    // Hand-rolled JSON: the workspace deliberately has no serde dependency.
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"algorithm\": \"{}\",\n",
                    "      \"seeded_frontier\": {},\n",
                    "      \"supersteps_incremental\": {},\n",
                    "      \"supersteps_scratch\": {},\n",
                    "      \"incremental_us\": {},\n",
                    "      \"scratch_us\": {},\n",
                    "      \"speedup\": {:.2},\n",
                    "      \"bit_identical\": {}\n",
                    "    }}"
                ),
                c.algo,
                c.seeded,
                c.supersteps_incr,
                c.supersteps_scratch,
                c.incr.as_micros(),
                c.scratch.as_micros(),
                c.scratch.as_secs_f64() / c.incr.as_secs_f64().max(1e-9),
                c.identical,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"live_ingest\",\n",
            "  \"n_vertices\": {},\n",
            "  \"n_base_edges\": {},\n",
            "  \"n_delta_edges\": {},\n",
            "  \"ingest_us\": {},\n",
            "  \"ingest_edges_per_sec\": {:.0},\n",
            "  \"aggregate_speedup\": {:.2},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        n_vertices,
        n_edges,
        n_delta,
        ingest_time.as_micros(),
        ingest_rate,
        aggregate,
        entries.join(",\n")
    );
    let out = cfg.data_dir.join("BENCH_ingest.json");
    std::fs::write(&out, &json)?;
    println!("wrote {}", out.display());

    // --- Gates (CI runs this binary and trusts the exit code) ---
    let mut failures = Vec::new();
    for c in &cells {
        if !c.identical {
            failures.push(format!(
                "{}: incremental values diverged from the scratch oracle",
                c.algo
            ));
        }
    }
    // The headline claim: on a <=1% additions-only delta, warm-starting
    // from prior values beats recomputing from scratch at least 2x.
    // Gated on the aggregate so a single noisy cell cannot flake CI.
    if aggregate < 2.0 {
        failures.push(format!(
            "aggregate incremental speedup {aggregate:.1}x < 2x on a <=1% delta"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all gates passed");
    Ok(())
}
