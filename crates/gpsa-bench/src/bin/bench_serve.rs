//! Serving-layer benchmark: boot a resident-graph job server in-process,
//! replay a deterministic synthetic job trace against it over the wire,
//! and report end-to-end submit latency (p50/p99), throughput, and the
//! result-cache hit rate.
//!
//! Writes `BENCH_serve.json` into `--data-dir` and prints the same
//! numbers as a table.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin bench_serve -- \
//!     [--scale N] [--threads N] [--jobs N] [--clients N] [--data-dir D]
//! ```

use gpsa::EngineConfig;
use gpsa_bench::HarnessConfig;
use gpsa_dist::{replay_against_server, synthetic_jobs, ReplayConfig};
use gpsa_graph::datasets::Dataset;
use gpsa_graph::preprocess;
use gpsa_metrics::Table;
use gpsa_serve::{Client, ServeConfig};

fn scan_flag(argv: &[String], key: &str, default: usize) -> Result<usize, String> {
    match argv.iter().position(|a| a == key) {
        None => Ok(default),
        Some(i) => argv
            .get(i + 1)
            .ok_or_else(|| format!("{key} needs a value"))?
            .parse()
            .map_err(|_| format!("bad value for {key}")),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    let n_jobs = scan_flag(&argv, "--jobs", 64)?;
    let clients = scan_flag(&argv, "--clients", 4)?;
    std::fs::create_dir_all(&cfg.data_dir)?;

    // Two resident graphs: the mixed trace alternates between them, so
    // the registry's one-mmap-many-jobs sharing is actually exercised.
    let mut graph_ids = Vec::new();
    for ds in [Dataset::Google, Dataset::Pokec] {
        let el = gpsa_bench::dataset_edges(ds, cfg.scale);
        let path = cfg.data_dir.join(format!("serve-{}.gcsr", ds.name()));
        preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default())?;
        graph_ids.push((ds.name().to_string(), path));
    }

    let work = cfg.data_dir.join("serve-work");
    let max_jobs = (cfg.threads / 2).max(1);
    let actors = (cfg.threads / 2).max(1);
    let config = ServeConfig::new(&work)
        .with_max_concurrent_jobs(max_jobs)
        .with_queue_capacity(n_jobs.max(64))
        .with_engine(EngineConfig::new(&work).with_actors(actors, actors));
    let handle = gpsa_serve::start(config)?;
    let addr = handle.addr();
    eprintln!(
        "serving on {addr}: {max_jobs} concurrent jobs, {clients} replay clients, {n_jobs} jobs"
    );

    let mut admin = Client::connect(addr)?;
    for (id, path) in &graph_ids {
        let info = admin.register_graph(id, path.to_str().ok_or("non-utf8 path")?)?;
        eprintln!(
            "  resident {:?}: {} vertices, {} edges, {} bytes",
            info.graph_id, info.n_vertices, info.n_edges, info.bytes
        );
    }

    let ids: Vec<String> = graph_ids.iter().map(|(id, _)| id.clone()).collect();
    let jobs = synthetic_jobs(&ids, n_jobs, 42);
    let report = replay_against_server(
        addr,
        &jobs,
        &ReplayConfig {
            concurrency: clients.max(1),
            deadline: None,
        },
    )?;

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["jobs total", &report.jobs_total.to_string()]);
    t.row(&["jobs ok", &report.jobs_ok.to_string()]);
    t.row(&["jobs rejected", &report.jobs_rejected.to_string()]);
    t.row(&["jobs failed", &report.jobs_failed.to_string()]);
    t.row(&["p50 latency", &format!("{}us", report.p50_us)]);
    t.row(&["p99 latency", &format!("{}us", report.p99_us)]);
    t.row(&[
        "throughput",
        &format!("{:.2} jobs/s", report.jobs_per_sec()),
    ]);
    t.row(&["cache hits", &report.cache_hits.to_string()]);
    t.row(&[
        "cache hit rate",
        &format!("{:.1}%", 100.0 * report.cache_hit_rate),
    ]);
    print!("{t}");

    let out = cfg.data_dir.join("BENCH_serve.json");
    std::fs::write(&out, report.to_bench_json())?;
    eprintln!("wrote {}", out.display());
    Ok(())
}
