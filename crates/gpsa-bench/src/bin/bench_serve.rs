//! Serving-layer benchmark: boot a resident-graph job server in-process,
//! replay a deterministic synthetic job trace against it over the wire,
//! and report end-to-end submit latency (p50/p99), throughput, and the
//! result-cache hit rate.
//!
//! A second phase measures multi-tenant overload behavior: a `heavy`
//! tenant floods the server from many threads with cache-busting jobs
//! while a `light` tenant submits a short sequential stream. The report
//! includes per-tenant p50/p99 and how many of the flood's submissions
//! the admission controller shed (quota / busy) — the light tenant
//! should ride through with zero sheds.
//!
//! Writes `BENCH_serve.json` into `--data-dir` and prints the same
//! numbers as a table.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin bench_serve -- \
//!     [--scale N] [--threads N] [--jobs N] [--clients N] \
//!     [--flood-threads N] [--flood-rounds N] [--light-jobs N] [--data-dir D]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gpsa::EngineConfig;
use gpsa_bench::HarnessConfig;
use gpsa_dist::{replay_against_server, synthetic_jobs, ReplayConfig};
use gpsa_graph::datasets::Dataset;
use gpsa_graph::preprocess;
use gpsa_metrics::Table;
use gpsa_serve::{
    AlgorithmSpec, Client, ClientError, RetryPolicy, ServeConfig, ServeError, SubmitRequest,
};

fn scan_flag(argv: &[String], key: &str, default: usize) -> Result<usize, String> {
    match argv.iter().position(|a| a == key) {
        None => Ok(default),
        Some(i) => argv
            .get(i + 1)
            .ok_or_else(|| format!("{key} needs a value"))?
            .parse()
            .map_err(|_| format!("bad value for {key}")),
    }
}

fn pct(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[(sorted.len() - 1) * p / 100]
    }
}

/// What the contention phase measured for one tenant.
struct TenantReport {
    ok: usize,
    shed: usize,
    failed: usize,
    p50_us: u64,
    p99_us: u64,
}

fn tenant_report(mut latencies: Vec<u64>, ok: usize, shed: usize, failed: usize) -> TenantReport {
    latencies.sort_unstable();
    TenantReport {
        ok,
        shed,
        failed,
        p50_us: pct(&latencies, 50),
        p99_us: pct(&latencies, 99),
    }
}

/// Flood tenant `heavy` from `threads` clients while tenant `light`
/// submits `light_jobs` sequentially. Every submission carries a unique
/// damping factor so nothing cache-hits — the server has to schedule
/// real work and the quota path actually fires.
fn overload_phase(
    addr: std::net::SocketAddr,
    graph_id: &str,
    threads: usize,
    rounds: usize,
    light_jobs: usize,
) -> Result<(TenantReport, TenantReport), Box<dyn std::error::Error>> {
    let uniq = Arc::new(AtomicU64::new(0));
    let bust = |uniq: &AtomicU64| AlgorithmSpec::PageRank {
        damping: 0.5 + uniq.fetch_add(1, Ordering::Relaxed) as f32 * 1e-6,
        supersteps: 5,
    };

    let mut heavy_workers = Vec::new();
    for _ in 0..threads {
        let uniq = Arc::clone(&uniq);
        let graph_id = graph_id.to_string();
        heavy_workers.push(std::thread::spawn(
            move || -> std::io::Result<(Vec<u64>, usize, usize, usize)> {
                let mut client = Client::connect(addr)?;
                let (mut lat, mut ok, mut shed, mut failed) = (Vec::new(), 0, 0, 0);
                for _ in 0..rounds {
                    let req = SubmitRequest::new(&graph_id, bust(&uniq)).with_tenant("heavy");
                    let t0 = Instant::now();
                    match client.submit(&req) {
                        Ok(_) => {
                            lat.push(t0.elapsed().as_micros() as u64);
                            ok += 1;
                        }
                        Err(ClientError::Server(
                            ServeError::QuotaExceeded(_) | ServeError::ServerBusy(_),
                        )) => shed += 1,
                        Err(_) => failed += 1,
                    }
                }
                Ok((lat, ok, shed, failed))
            },
        ));
    }

    // The light tenant retries (honoring any retry_after_ms shed hint),
    // so a momentary global-queue rejection doesn't show up as a loss.
    let mut light = Client::connect_with(addr, RetryPolicy::default_enabled())?;
    let (mut lat, mut ok, mut shed, mut failed) = (Vec::new(), 0, 0, 0);
    for _ in 0..light_jobs {
        let req = SubmitRequest::new(graph_id, bust(&uniq)).with_tenant("light");
        let t0 = Instant::now();
        match light.submit(&req) {
            Ok(_) => {
                lat.push(t0.elapsed().as_micros() as u64);
                ok += 1;
            }
            Err(ClientError::Server(ServeError::QuotaExceeded(_) | ServeError::ServerBusy(_))) => {
                shed += 1
            }
            Err(_) => failed += 1,
        }
    }
    let light_report = tenant_report(lat, ok, shed, failed);

    let (mut lat, mut ok, mut shed, mut failed) = (Vec::new(), 0, 0, 0);
    for w in heavy_workers {
        let (l, o, s, f) = w.join().map_err(|_| "heavy flood worker panicked")??;
        lat.extend(l);
        ok += o;
        shed += s;
        failed += f;
    }
    Ok((tenant_report(lat, ok, shed, failed), light_report))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    let n_jobs = scan_flag(&argv, "--jobs", 64)?;
    let clients = scan_flag(&argv, "--clients", 4)?;
    let flood_threads = scan_flag(&argv, "--flood-threads", 6)?;
    let flood_rounds = scan_flag(&argv, "--flood-rounds", 8)?;
    let light_jobs = scan_flag(&argv, "--light-jobs", 12)?;
    std::fs::create_dir_all(&cfg.data_dir)?;

    // Two resident graphs: the mixed trace alternates between them, so
    // the registry's one-mmap-many-jobs sharing is actually exercised.
    let mut graph_ids = Vec::new();
    for ds in [Dataset::Google, Dataset::Pokec] {
        let el = gpsa_bench::dataset_edges(ds, cfg.scale);
        let path = cfg.data_dir.join(format!("serve-{}.gcsr", ds.name()));
        preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default())?;
        graph_ids.push((ds.name().to_string(), path));
    }

    let work = cfg.data_dir.join("serve-work");
    let max_jobs = (cfg.threads / 2).max(1);
    let actors = (cfg.threads / 2).max(1);
    // The per-tenant queue quota is what turns the heavy flood into
    // typed quota_exceeded sheds instead of unbounded queue growth; the
    // replay phase is unaffected (each replay connection submits
    // sequentially, so its per-connection tenant never queues deep).
    let config = ServeConfig::new(&work)
        .with_max_concurrent_jobs(max_jobs)
        .with_queue_capacity(n_jobs.max(64))
        .with_tenant_max_queued(4)
        .with_engine(EngineConfig::new(&work).with_actors(actors, actors));
    let handle = gpsa_serve::start(config)?;
    let addr = handle.addr();
    eprintln!(
        "serving on {addr}: {max_jobs} concurrent jobs, {clients} replay clients, {n_jobs} jobs"
    );

    let mut admin = Client::connect(addr)?;
    for (id, path) in &graph_ids {
        let info = admin.register_graph(id, path.to_str().ok_or("non-utf8 path")?)?;
        eprintln!(
            "  resident {:?}: {} vertices, {} edges, {} bytes",
            info.graph_id, info.n_vertices, info.n_edges, info.bytes
        );
    }

    let ids: Vec<String> = graph_ids.iter().map(|(id, _)| id.clone()).collect();
    let jobs = synthetic_jobs(&ids, n_jobs, 42);
    let report = replay_against_server(
        addr,
        &jobs,
        &ReplayConfig {
            concurrency: clients.max(1),
            deadline: None,
        },
    )?;

    eprintln!(
        "overload phase: {flood_threads} flood threads x {flood_rounds} rounds vs {light_jobs} light jobs"
    );
    let (heavy, light) = overload_phase(addr, &ids[0], flood_threads, flood_rounds, light_jobs)?;
    let stats = admin.stats()?;
    let tenant_shed = |name: &str| stats.tenant(name).map(|t| t.shed_quota).unwrap_or_default();

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["jobs total", &report.jobs_total.to_string()]);
    t.row(&["jobs ok", &report.jobs_ok.to_string()]);
    t.row(&["jobs rejected", &report.jobs_rejected.to_string()]);
    t.row(&["jobs failed", &report.jobs_failed.to_string()]);
    t.row(&["p50 latency", &format!("{}us", report.p50_us)]);
    t.row(&["p99 latency", &format!("{}us", report.p99_us)]);
    t.row(&[
        "throughput",
        &format!("{:.2} jobs/s", report.jobs_per_sec()),
    ]);
    t.row(&["cache hits", &report.cache_hits.to_string()]);
    t.row(&[
        "cache hit rate",
        &format!("{:.1}%", 100.0 * report.cache_hit_rate),
    ]);
    t.row(&["heavy p50", &format!("{}us", heavy.p50_us)]);
    t.row(&["heavy p99", &format!("{}us", heavy.p99_us)]);
    t.row(&[
        "heavy ok/shed/failed",
        &format!("{}/{}/{}", heavy.ok, heavy.shed, heavy.failed),
    ]);
    t.row(&["light p50", &format!("{}us", light.p50_us)]);
    t.row(&["light p99", &format!("{}us", light.p99_us)]);
    t.row(&[
        "light ok/shed/failed",
        &format!("{}/{}/{}", light.ok, light.shed, light.failed),
    ]);
    t.row(&["quota sheds (server)", &stats.jobs_quota_shed.to_string()]);
    print!("{t}");

    // Splice the overload numbers into the replay document rather than
    // nesting, so existing BENCH_serve.json consumers keep their keys.
    let base = report.to_bench_json();
    let base = base.trim_end().trim_end_matches('}').trim_end();
    let json = format!(
        "{base},\n  \"overload\": {{\n    \"flood_threads\": {flood_threads},\n    \
         \"flood_rounds\": {flood_rounds},\n    \
         \"heavy_p50_us\": {}, \"heavy_p99_us\": {},\n    \
         \"heavy_ok\": {}, \"heavy_shed\": {}, \"heavy_failed\": {},\n    \
         \"light_p50_us\": {}, \"light_p99_us\": {},\n    \
         \"light_ok\": {}, \"light_shed\": {}, \"light_failed\": {},\n    \
         \"quota_shed_total\": {}, \"heavy_shed_quota\": {}, \"light_shed_quota\": {}\n  }}\n}}\n",
        heavy.p50_us,
        heavy.p99_us,
        heavy.ok,
        heavy.shed,
        heavy.failed,
        light.p50_us,
        light.p99_us,
        light.ok,
        light.shed,
        light.failed,
        stats.jobs_quota_shed,
        tenant_shed("heavy"),
        tenant_shed("light"),
    );

    let out = cfg.data_dir.join("BENCH_serve.json");
    std::fs::write(&out, json)?;
    eprintln!("wrote {}", out.display());
    Ok(())
}
