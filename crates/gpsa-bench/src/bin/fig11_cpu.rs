//! Regenerates paper Fig. 11: CPU utilization of the three systems.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin fig11_cpu -- \
//!     [--graph pokec] [--scale N] [--threads N]
//! ```
//!
//! Expected shape (paper §VI-C): X-Stream pegs all cores regardless of
//! useful work; the GraphChi-like engine shows the lowest utilization
//! (I/O-bound sweeps); GPSA's utilization follows workload complexity.

use gpsa_bench::{run_one, Algo, EngineKind, HarnessConfig};
use gpsa_graph::datasets::Dataset;
use gpsa_metrics::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = HarnessConfig::default().apply_flags(&argv)?;
    cfg.runs = 1; // CPU is sampled over a single run per cell
    let which = argv
        .iter()
        .position(|a| a == "--graph")
        .and_then(|i| argv.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("pokec");
    let ds = Dataset::parse(which).ok_or("unknown --graph")?;
    let el = gpsa_bench::dataset_edges(ds, cfg.scale);

    println!(
        "Fig. 11 — CPU utilization on {} at 1/{} scale ({} vertices, {} edges), {} worker threads\n",
        ds.name(),
        cfg.scale,
        el.n_vertices,
        el.len(),
        cfg.threads,
    );
    let mut t = Table::new(&[
        "engine",
        "algorithm",
        "mean cores",
        "peak cores",
        "machine %",
        "wall",
    ]);
    for kind in EngineKind::ALL {
        for algo in Algo::ALL {
            let m = run_one(ds, algo, kind, &cfg, true)?;
            let cpu = m.cpu.expect("cpu sampled");
            t.row(&[
                kind.name().to_string(),
                algo.name().to_string(),
                format!("{:.2}", cpu.mean_cores),
                format!("{:.2}", cpu.peak_cores),
                format!("{:.0}%", cpu.mean_machine_frac * 100.0),
                format!("{:.2?}", cpu.wall),
            ]);
        }
    }
    print!("{t}");
    Ok(())
}
