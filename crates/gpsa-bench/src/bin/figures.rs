//! Regenerates paper Figs. 7–10: PageRank / CC / BFS runtime across the
//! three engines, one figure per dataset.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin figures -- \
//!     [--graph google|pokec|journal|twitter|all] [--scale N] [--runs N]
//! ```
//!
//! The headline cell is the paper's metric: the average elapsed time of
//! the first five supersteps, averaged over three repetitions. Speedup
//! columns are relative to GPSA (>1 means GPSA is faster).

use gpsa_bench::{fmt_dur, run_one, Algo, EngineKind, HarnessConfig, Measurement};
use gpsa_graph::datasets::Dataset;
use gpsa_metrics::Table;

fn figure_number(ds: Dataset) -> &'static str {
    match ds {
        Dataset::Google => "Fig. 7",
        Dataset::Pokec => "Fig. 8",
        Dataset::LiveJournal => "Fig. 9",
        Dataset::Twitter => "Fig. 10",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    let which = argv
        .iter()
        .position(|a| a == "--graph")
        .and_then(|i| argv.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");
    let datasets: Vec<Dataset> = if which == "all" {
        Dataset::ALL.to_vec()
    } else {
        vec![Dataset::parse(which).ok_or("unknown --graph")?]
    };

    for ds in datasets {
        let el = gpsa_bench::dataset_edges(ds, cfg.scale);
        println!(
            "\n{} — {} at 1/{} scale ({} vertices, {} edges); mean of first {} supersteps, {} runs\n",
            figure_number(ds),
            ds.name(),
            cfg.scale,
            el.n_vertices,
            el.len(),
            cfg.supersteps,
            cfg.runs,
        );
        let mut rows: Vec<(Algo, Vec<Measurement>)> = Vec::new();
        for algo in Algo::ALL {
            let mut ms = Vec::new();
            for kind in EngineKind::ALL {
                ms.push(run_one(ds, algo, kind, &cfg, false)?);
            }
            rows.push((algo, ms));
        }
        let mut t = Table::new(&[
            "algorithm",
            "GPSA",
            "GraphChi-like",
            "X-Stream-like",
            "vs GraphChi",
            "vs X-Stream",
            "GPSA steps",
        ]);
        for (algo, ms) in &rows {
            let gpsa = ms[0].mean_step.as_secs_f64();
            let gc = ms[1].mean_step.as_secs_f64();
            let xs = ms[2].mean_step.as_secs_f64();
            t.row(&[
                algo.name().to_string(),
                fmt_dur(ms[0].mean_step),
                fmt_dur(ms[1].mean_step),
                fmt_dur(ms[2].mean_step),
                format!("{:.2}x", gc / gpsa),
                format!("{:.2}x", xs / gpsa),
                ms[0].supersteps.to_string(),
            ]);
        }
        print!("{t}");
    }
    Ok(())
}
