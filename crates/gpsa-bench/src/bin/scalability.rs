//! Thread-scalability sweep (paper §VI text: "GPSA is not only faster but
//! more scalable than X-Stream"; §I: "X-Stream shows poor scalability").
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin scalability -- \
//!     [--graph pokec] [--scale N] [--max-threads N] [--runs N]
//! ```
//!
//! Runs 5-superstep PageRank on each engine at 1, 2, 4, … threads and
//! prints per-superstep time plus speedup over the single-threaded run.
//! (On a single-core container the sweep degenerates — the harness prints
//! the detected core count so the reader can judge.)

use gpsa_bench::{fmt_dur, run_one, Algo, EngineKind, HarnessConfig};
use gpsa_graph::datasets::Dataset;
use gpsa_metrics::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let base = HarnessConfig::default().apply_flags(&argv)?;
    let max_threads: usize = argv
        .iter()
        .position(|a| a == "--max-threads")
        .and_then(|i| argv.get(i + 1))
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(8);
    let which = argv
        .iter()
        .position(|a| a == "--graph")
        .and_then(|i| argv.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("pokec");
    let ds = Dataset::parse(which).ok_or("unknown --graph")?;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "Thread scalability — PageRank on {} at 1/{} scale ({} logical cores detected)\n",
        ds.name(),
        base.scale,
        cores
    );

    let mut threads = Vec::new();
    let mut t = 1;
    while t <= max_threads {
        threads.push(t);
        t *= 2;
    }

    let mut table = Table::new(&["engine", "threads", "mean step", "speedup vs 1T"]);
    for kind in EngineKind::ALL {
        let mut base_time = None;
        for &t in &threads {
            let mut cfg = base.clone();
            cfg.threads = t;
            let m = run_one(ds, Algo::PageRank, kind, &cfg, false)?;
            let secs = m.mean_step.as_secs_f64();
            let speedup = base_time.get_or_insert(secs).max(1e-12) / secs.max(1e-12);
            table.row(&[
                kind.name().to_string(),
                t.to_string(),
                fmt_dur(m.mean_step),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    print!("{table}");
    Ok(())
}
