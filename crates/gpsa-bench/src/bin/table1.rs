//! Regenerates paper Table I (the dataset table) for the scaled synthetic
//! stand-ins, plus the §VI-B CSR compression numbers with `--compression`.
//!
//! ```text
//! cargo run --release -p gpsa-bench --bin table1 -- [--scale N] [--compression]
//! ```

use gpsa_bench::HarnessConfig;
use gpsa_graph::datasets::Dataset;
use gpsa_graph::preprocess;
use gpsa_metrics::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::default().apply_flags(&argv)?;
    let compression = argv.iter().any(|a| a == "--compression");

    println!(
        "Table I — graphs used in the experiments (scaled 1/{} vs the paper)\n",
        cfg.scale
    );
    let mut t = Table::new(&[
        "Name",
        "Nodes (paper)",
        "Edges (paper)",
        "Nodes (ours)",
        "Edges (ours)",
    ]);
    for ds in Dataset::ALL {
        let el = ds.generate(cfg.scale);
        t.row(&[
            ds.name().to_string(),
            ds.paper_nodes().to_string(),
            ds.paper_edges().to_string(),
            el.n_vertices.to_string(),
            el.len().to_string(),
        ]);
    }
    print!("{t}");

    if compression {
        // §VI-B: "with CSR format data, we compress the twitter graph from
        // 26GB to 6.5GB" — reproduce the ratio on the scaled stand-in.
        println!("\nCSR compression (paper §VI-B: twitter 26GB -> 6.5GB, ~4x)\n");
        let mut t = Table::new(&["Name", "text edge list", "binary CSR", "ratio"]);
        std::fs::create_dir_all(&cfg.data_dir)?;
        for ds in Dataset::ALL {
            let el = ds.generate(cfg.scale);
            let txt = cfg.data_dir.join(format!("{}.txt", ds.name()));
            el.write_text_file(&txt)?;
            let csr = cfg.data_dir.join(format!("{}.gcsr", ds.name()));
            let stats =
                preprocess::text_to_csr(&txt, &csr, &preprocess::PreprocessOptions::default())?;
            t.row(&[
                ds.name().to_string(),
                format!("{} B", stats.input_bytes),
                format!("{} B", stats.output_bytes),
                format!(
                    "{:.2}x",
                    stats.input_bytes as f64 / stats.output_bytes as f64
                ),
            ]);
            let _ = std::fs::remove_file(&txt);
        }
        print!("{t}");
    }
    Ok(())
}
