//! Shared harness for the paper-reproduction benchmarks.
//!
//! Binaries (one per paper table/figure):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I (datasets) + §VI-B CSR compression numbers |
//! | `figures` | Figs. 7–10 (PR/CC/BFS × three engines per graph) |
//! | `fig11_cpu` | Fig. 11 (CPU utilization per engine) |
//!
//! Criterion benches (`benches/`): actor-runtime overhead, per-engine
//! superstep microbenches, and ablations of GPSA's design choices
//! (flag skipping, partitioning strategies, CSR degree inlining,
//! mmap vs explicit reads).
//!
//! Knobs (flags on the binaries, env vars for the benches):
//! `--scale N` / `GPSA_SCALE` — dataset divisor vs Table I (default 256);
//! `--runs N` — repetitions averaged (default 3, as in the paper);
//! `--threads N` — worker threads per engine.

use std::path::PathBuf;
use std::time::Duration;

use gpsa::{Engine, EngineConfig, Termination};
use gpsa_algorithms::gpsa_programs::{Bfs, ConnectedComponents, PageRank};
use gpsa_algorithms::psw::{PswBfs, PswCc, PswPageRank};
use gpsa_algorithms::xs::{XsBfs, XsCc, XsPageRank};
use gpsa_baselines::graphchi::{PswConfig, PswEngine, PswTermination};
use gpsa_baselines::xstream::{XsConfig, XsEngine, XsTermination};
use gpsa_graph::datasets::Dataset;
use gpsa_graph::EdgeList;
use gpsa_metrics::CpuReport;

/// Harness-wide configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Dataset divisor vs Table I sizes.
    pub scale: u64,
    /// Repetitions averaged per cell (the paper uses 3).
    pub runs: usize,
    /// Supersteps timed for the per-superstep mean (the paper uses 5).
    pub supersteps: u64,
    /// Worker threads per engine.
    pub threads: usize,
    /// Scratch directory.
    pub data_dir: PathBuf,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        let scale = std::env::var("GPSA_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        HarnessConfig {
            scale,
            runs: 3,
            supersteps: 5,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            data_dir: std::env::temp_dir().join("gpsa-bench"),
        }
    }
}

impl HarnessConfig {
    /// Apply common `--scale/--runs/--threads/--data-dir` flags.
    pub fn apply_flags(mut self, argv: &[String]) -> Result<Self, String> {
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    self.scale = next_val(argv, &mut i)?;
                }
                "--runs" => {
                    self.runs = next_val(argv, &mut i)?;
                }
                "--supersteps" => {
                    self.supersteps = next_val(argv, &mut i)?;
                }
                "--threads" => {
                    self.threads = next_val(argv, &mut i)?;
                }
                "--data-dir" => {
                    let v: String = next_val(argv, &mut i)?;
                    self.data_dir = PathBuf::from(v);
                }
                _ => i += 1,
            }
        }
        Ok(self)
    }
}

fn next_val<T: std::str::FromStr>(argv: &[String], i: &mut usize) -> Result<T, String> {
    let key = argv[*i].clone();
    let v = argv
        .get(*i + 1)
        .ok_or_else(|| format!("{key} needs a value"))?;
    let parsed = v.parse().map_err(|_| format!("bad value for {key}: {v}"))?;
    *i += 2;
    Ok(parsed)
}

/// The three benchmarked algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// PageRank (5 fixed supersteps).
    PageRank,
    /// Connected components (to quiescence).
    Cc,
    /// BFS from the max-out-degree vertex (to quiescence).
    Bfs,
}

impl Algo {
    /// All three, in the paper's figure order.
    pub const ALL: [Algo; 3] = [Algo::PageRank, Algo::Cc, Algo::Bfs];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::PageRank => "pagerank",
            Algo::Cc => "cc",
            Algo::Bfs => "bfs",
        }
    }
}

/// The three engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// This paper's system.
    Gpsa,
    /// The GraphChi-like PSW baseline.
    GraphChi,
    /// The X-Stream-like scatter-gather baseline.
    XStream,
}

impl EngineKind {
    /// All three, GPSA first.
    pub const ALL: [EngineKind; 3] = [EngineKind::Gpsa, EngineKind::GraphChi, EngineKind::XStream];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Gpsa => "GPSA",
            EngineKind::GraphChi => "GraphChi-like",
            EngineKind::XStream => "X-Stream-like",
        }
    }
}

/// One (engine, algo, dataset) measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Engine measured.
    pub engine: EngineKind,
    /// Algorithm measured.
    pub algo: Algo,
    /// Mean wall time of the first `supersteps` supersteps, averaged over
    /// `runs` repetitions — the paper's headline number.
    pub mean_step: Duration,
    /// Mean total superstep time per repetition.
    pub total: Duration,
    /// Supersteps/iterations per repetition (from the last run).
    pub supersteps: u64,
    /// CPU profile, when sampled.
    pub cpu: Option<CpuReport>,
}

/// Generate (and memoize per process) the scaled dataset.
pub fn dataset_edges(ds: Dataset, scale: u64) -> EdgeList {
    ds.generate(scale)
}

/// Pick the BFS root the way the harness does everywhere: the vertex with
/// the highest out-degree (guarantees a non-trivial traversal on R-MAT).
pub fn bfs_root(el: &EdgeList) -> u32 {
    let deg = el.out_degrees();
    (0..el.n_vertices as u32)
        .max_by_key(|&v| deg[v as usize])
        .unwrap_or(0)
}

/// Run one engine × algo on a dataset, `runs` times; report averages.
pub fn run_one(
    ds: Dataset,
    algo: Algo,
    kind: EngineKind,
    cfg: &HarnessConfig,
    measure_cpu: bool,
) -> std::io::Result<Measurement> {
    let el = dataset_edges(ds, cfg.scale);
    run_on_edges(
        &el,
        &format!("{}-s{}", ds.name(), cfg.scale),
        algo,
        kind,
        cfg,
        measure_cpu,
    )
}

/// Run one engine × algo on an explicit edge list.
pub fn run_on_edges(
    el: &EdgeList,
    tag: &str,
    algo: Algo,
    kind: EngineKind,
    cfg: &HarnessConfig,
    measure_cpu: bool,
) -> std::io::Result<Measurement> {
    std::fs::create_dir_all(&cfg.data_dir)?;
    let root = bfs_root(el);
    let mut mean_steps = Vec::new();
    let mut totals = Vec::new();
    let mut supersteps = 0u64;
    let mut cpu = None;

    for run in 0..cfg.runs.max(1) {
        let monitor = if measure_cpu && run == 0 {
            gpsa_metrics::CpuMonitor::start(Duration::from_millis(50))
        } else {
            None
        };
        let (times, steps) = match kind {
            EngineKind::Gpsa => run_gpsa(el, tag, algo, root, cfg, run)?,
            EngineKind::GraphChi => run_psw(el, algo, root, cfg, run)?,
            EngineKind::XStream => run_xs(el, algo, root, cfg, run)?,
        };
        if let Some(m) = monitor {
            cpu = Some(m.finish());
        }
        let k = (cfg.supersteps as usize).min(times.len()).max(1);
        mean_steps.push(times[..k].iter().sum::<Duration>() / k as u32);
        totals.push(times.iter().sum::<Duration>());
        supersteps = steps;
    }
    let avg = |v: &[Duration]| v.iter().sum::<Duration>() / v.len().max(1) as u32;
    Ok(Measurement {
        engine: kind,
        algo,
        mean_step: avg(&mean_steps),
        total: avg(&totals),
        supersteps,
        cpu,
    })
}

fn run_gpsa(
    el: &EdgeList,
    tag: &str,
    algo: Algo,
    root: u32,
    cfg: &HarnessConfig,
    run: usize,
) -> std::io::Result<(Vec<Duration>, u64)> {
    let dir = cfg
        .data_dir
        .join(format!("gpsa-{tag}-{}-{run}", algo.name()));
    let actors = (cfg.threads / 2).max(1);
    let mut config = EngineConfig::new(&dir)
        .with_workers(cfg.threads)
        .with_actors(actors, actors);
    config.termination = match algo {
        Algo::PageRank => Termination::Supersteps(cfg.supersteps),
        _ => Termination::Quiescence {
            max_supersteps: 10_000,
        },
    };
    let engine = Engine::new(config);
    let report = match algo {
        Algo::PageRank => {
            let r = engine
                .run_edge_list(el.clone(), tag, PageRank::default())
                .map_err(io_err)?;
            (r.step_times, r.supersteps)
        }
        Algo::Cc => {
            let r = engine
                .run_edge_list(el.clone(), tag, ConnectedComponents)
                .map_err(io_err)?;
            (r.step_times, r.supersteps)
        }
        Algo::Bfs => {
            let r = engine
                .run_edge_list(el.clone(), tag, Bfs { root })
                .map_err(io_err)?;
            (r.step_times, r.supersteps)
        }
    };
    Ok(report)
}

fn run_psw(
    el: &EdgeList,
    algo: Algo,
    root: u32,
    cfg: &HarnessConfig,
    run: usize,
) -> std::io::Result<(Vec<Duration>, u64)> {
    let mut config = PswConfig::new(cfg.data_dir.join(format!("psw-{}-{run}", algo.name())));
    config.threads = cfg.threads;
    config.termination = match algo {
        Algo::PageRank => PswTermination::Iterations(cfg.supersteps),
        _ => PswTermination::Quiescence { max: 10_000 },
    };
    let engine = PswEngine::new(config);
    let report = match algo {
        Algo::PageRank => engine.run(el, PswPageRank::default())?,
        Algo::Cc => engine.run(el, PswCc)?,
        Algo::Bfs => engine.run(el, PswBfs { root })?,
    };
    Ok((report.step_times, report.iterations))
}

fn run_xs(
    el: &EdgeList,
    algo: Algo,
    root: u32,
    cfg: &HarnessConfig,
    run: usize,
) -> std::io::Result<(Vec<Duration>, u64)> {
    let mut config = XsConfig::new(cfg.data_dir.join(format!("xs-{}-{run}", algo.name())));
    config.threads = cfg.threads;
    config.termination = match algo {
        Algo::PageRank => XsTermination::Iterations(cfg.supersteps),
        _ => XsTermination::Quiescence { max: 10_000 },
    };
    let engine = XsEngine::new(config);
    let report = match algo {
        Algo::PageRank => engine.run(el, XsPageRank::default())?,
        Algo::Cc => engine.run(el, XsCc)?,
        Algo::Bfs => engine.run(el, XsBfs { root })?,
    };
    Ok((report.step_times, report.iterations))
}

fn io_err(e: gpsa::EngineError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// Format a duration in engineering style for tables.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}us", d.as_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_all_cells_on_a_tiny_dataset() {
        let cfg = HarnessConfig {
            scale: 16384,
            runs: 1,
            supersteps: 2,
            threads: 2,
            data_dir: std::env::temp_dir().join(format!("gpsa-hn-{}", std::process::id())),
        };
        for kind in EngineKind::ALL {
            for algo in Algo::ALL {
                let m = run_one(Dataset::Google, algo, kind, &cfg, false).unwrap();
                assert!(m.supersteps >= 1, "{kind:?} {algo:?}");
                assert!(m.mean_step > Duration::ZERO);
            }
        }
    }

    #[test]
    fn flags_parse() {
        let cfg = HarnessConfig::default()
            .apply_flags(&[
                "--scale".into(),
                "128".into(),
                "--runs".into(),
                "2".into(),
                "--threads".into(),
                "3".into(),
            ])
            .unwrap();
        assert_eq!(cfg.scale, 128);
        assert_eq!(cfg.runs, 2);
        assert_eq!(cfg.threads, 3);
        assert!(HarnessConfig::default()
            .apply_flags(&["--scale".into()])
            .is_err());
    }

    #[test]
    fn bfs_root_picks_hub() {
        let el = gpsa_graph::generate::star(10);
        assert_eq!(bfs_root(&el), 0);
    }

    #[test]
    fn fmt_dur_tiers() {
        assert_eq!(fmt_dur(Duration::from_micros(5)), "5us");
        assert_eq!(fmt_dur(Duration::from_millis(50)), "50ms");
        assert_eq!(fmt_dur(Duration::from_secs(12)), "12.0s");
    }
}
