//! Tiny flag parser: `--key value` pairs and `--flag` booleans.

use std::collections::BTreeMap;

/// Parsed `--key value` / `--flag` arguments.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse everything after the subcommand. `known_flags` lists the
    /// boolean switches (which consume no value).
    pub fn parse(argv: &[String], known_flags: &[&str]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {a:?}"))?;
            if known_flags.contains(&key) {
                out.flags.push(key.to_string());
                i += 1;
            } else {
                let val = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                out.values.insert(key.to_string(), val.clone());
                i += 2;
            }
        }
        Ok(out)
    }

    /// The string value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// The string value of `--key`, or an error naming it.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Parse `--key` as `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("bad value for --{key}: {s:?}")),
        }
    }

    /// Was the boolean `--flag` given?
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = Args::parse(
            &v(&["--graph", "g.gcsr", "--durable", "--workers", "4"]),
            &["durable"],
        )
        .unwrap();
        assert_eq!(a.require("graph").unwrap(), "g.gcsr");
        assert!(a.flag("durable"));
        assert_eq!(a.get_parsed("workers", 1usize).unwrap(), 4);
        assert_eq!(a.get_parsed("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&v(&["graph"]), &[]).is_err());
        assert!(Args::parse(&v(&["--graph"]), &[]).is_err());
        let a = Args::parse(&v(&["--workers", "x"]), &[]).unwrap();
        assert!(a.get_parsed("workers", 1usize).is_err());
        assert!(a.require("absent").is_err());
    }
}
