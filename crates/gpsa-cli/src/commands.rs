//! Subcommand implementations.

use std::path::{Path, PathBuf};

use gpsa::programs::{Bfs, ConnectedComponents, PageRank, Sssp, UNREACHED};
use gpsa::{Engine, EngineConfig, Termination, VertexProgram};
use gpsa_graph::datasets::Dataset;
use gpsa_graph::{preprocess, DiskCsr};
use gpsa_metrics::Table;

use crate::args::Args;

const USAGE: &str = "\
gpsa — a graph processing system with actors (GPSA, ICPP'15)

USAGE:
  gpsa generate   --dataset <google|pokec|journal|twitter> [--scale N] [--out DIR]
  gpsa preprocess --input <edges.txt|edges.bin|adj.txt> --output <graph.gcsr>
                  [--format text|binary|adjacency] [--no-degrees]
                  [--no-compress (write the v1 word-array layout)]
                  [--run-capacity N]
  gpsa info       --graph <graph.gcsr>
  gpsa run        --graph <graph.gcsr> --algo <pagerank|bfs|cc|sssp>
                  [--engine gpsa|graphchi|xstream|sync|dist]
                  [--root N] [--supersteps N] [--max-supersteps N]
                  [--dispatchers N] [--computers N] [--workers N]
                  [--nodes N (dist engine)]
                  [--work-dir DIR] [--durable] [--resume] [--top N]
                  [--verbose (per-superstep phase breakdown)]
  gpsa serve      --listen <host:port> [--work-dir DIR] [--max-jobs N]
                  [--queue-capacity N] [--cache-capacity N] [--budget-mb N]
                  [--deadline-ms N] [--graphs id=path[,id=path...]]
                  [--no-durable (skip journaling; no crash recovery)]
                  [--tenant-max-queued N] [--tenant-max-inflight N]
                  [--tenant-scratch-mb N (per-tenant scratch budget)]
                  [--tenant-weights id=w[,id=w...] (fair-queue weights)]
                  [--auto-compact-ratio F (delta/base edges; 0 disables)]
                  [--stream-chunk N (values per streamed result frame)]
  gpsa submit     --addr <host:port> --graph <id> --algo <pagerank|bfs|cc|sssp>
                  [--register PATH (make <id> resident first)]
                  [--root N] [--damping F] [--supersteps N]
                  [--priority normal|high] [--deadline-ms N] [--top N]
                  [--key K (idempotency key; safe resubmission)]
                  [--tenant T (bill the job to tenant T)]
                  [--stream (chunked result frames; bounded memory)]
                  [--no-retry (fail fast instead of backing off)]
                  [--verbose (per-superstep phase breakdown)]
  gpsa mutate     --addr <host:port> --graph <id>
                  [--add \"u:v,u:v,...\"] [--remove \"u:v,u:v,...\"]
                  [--compact (fold the delta log into a fresh CSR epoch)]
  gpsa stats      --addr <host:port> [--tenants (per-tenant breakdown)]
  gpsa help
";

/// Route a command line to its implementation.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv.first().map(|s| s.as_str()) {
        Some("generate") => generate(&argv[1..]),
        Some("preprocess") => preprocess_cmd(&argv[1..]),
        Some("info") => info(&argv[1..]),
        Some("run") => run(&argv[1..]),
        Some("serve") => serve(&argv[1..]),
        Some("submit") => submit(&argv[1..]),
        Some("mutate") => mutate(&argv[1..]),
        Some("stats") => stats(&argv[1..]),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn generate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let ds = Dataset::parse(args.require("dataset")?)
        .ok_or_else(|| "unknown dataset (google|pokec|journal|twitter)".to_string())?;
    let scale: u64 = args.get_parsed("scale", 64)?;
    let out = PathBuf::from(args.get("out").unwrap_or("data"));
    let (path, stats) = ds.materialize(&out, scale).map_err(|e| e.to_string())?;
    println!(
        "generated {} at 1/{scale} scale: {} vertices, {} edges -> {}",
        ds.name(),
        stats.n_vertices,
        stats.n_edges,
        path.display()
    );
    Ok(())
}

fn preprocess_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["binary", "no-degrees", "no-compress", "compress"])?;
    let input = PathBuf::from(args.require("input")?);
    let output = PathBuf::from(args.require("output")?);
    let opts = preprocess::PreprocessOptions {
        run_capacity: args.get_parsed("run-capacity", 8usize << 20)?,
        with_degrees: !args.flag("no-degrees"),
        compress: !args.flag("no-compress"),
        temp_dir: None,
    };
    let format = if args.flag("binary") {
        "binary" // legacy alias for --format binary
    } else {
        args.get("format").unwrap_or("text")
    };
    let stats = match format {
        "binary" => preprocess::binary_to_csr(&input, &output, &opts),
        "adjacency" | "adj" => preprocess::adjacency_to_csr(&input, &output, &opts),
        "text" | "edgelist" => preprocess::text_to_csr(&input, &output, &opts),
        other => {
            return Err(format!(
                "unknown --format {other:?} (text|binary|adjacency)"
            ))
        }
    }
    .map_err(|e| e.to_string())?;
    println!(
        "preprocessed {} -> {}: {} vertices, {} edges, {} runs",
        input.display(),
        output.display(),
        stats.n_vertices,
        stats.n_edges,
        stats.runs,
    );
    println!(
        "storage: {} input bytes -> {} edge-file bytes + {} index bytes ({})",
        stats.input_bytes,
        stats.output_bytes,
        stats.index_bytes,
        if stats.compressed {
            format!(
                "v2 delta-varint, {:.2}x smaller than v1",
                stats.compression_ratio()
            )
        } else {
            "v1 word array".to_string()
        }
    );
    Ok(())
}

fn info(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let path = PathBuf::from(args.require("graph")?);
    let g = DiskCsr::open(&path).map_err(|e| e.to_string())?;
    let mut max_deg = 0u32;
    let mut sinks = 0usize;
    let mut cursor = g.cursor(0..g.n_vertices() as u32);
    while let Some(r) = cursor.next_rec() {
        max_deg = max_deg.max(r.degree);
        if r.degree == 0 {
            sinks += 1;
        }
    }
    let mut t = Table::new(&["property", "value"]);
    t.row(&["file", &path.display().to_string()]);
    t.row(&[
        "format",
        if g.compressed() {
            "v2 (delta-varint)"
        } else {
            "v1 (word array)"
        },
    ]);
    t.row(&["vertices", &g.n_vertices().to_string()]);
    t.row(&["edges", &g.n_edges().to_string()]);
    t.row(&["with degrees", &g.with_degrees().to_string()]);
    t.row(&["file bytes", &g.file_bytes().to_string()]);
    t.row(&["index bytes", &g.index_bytes().to_string()]);
    t.row(&["max out-degree", &max_deg.to_string()]);
    t.row(&["sinks", &sinks.to_string()]);
    print!("{t}");
    Ok(())
}

fn engine_from(args: &Args) -> Result<Engine, String> {
    let work_dir = PathBuf::from(args.get("work-dir").unwrap_or("gpsa-work"));
    let mut config = EngineConfig::new(&work_dir);
    config.n_dispatchers = args.get_parsed("dispatchers", config.n_dispatchers)?;
    config.n_computers = args.get_parsed("computers", config.n_computers)?;
    config.workers = args.get_parsed("workers", config.workers)?;
    config.durable = args.flag("durable");
    config.resume = args.flag("resume");
    let max: u64 = args.get_parsed("max-supersteps", 10_000u64)?;
    config.termination = match args.get("supersteps") {
        Some(s) => Termination::Supersteps(s.parse().map_err(|_| "bad --supersteps".to_string())?),
        None => Termination::Quiescence {
            max_supersteps: max,
        },
    };
    Ok(Engine::new(config))
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["durable", "resume", "verbose"])?;
    let graph = PathBuf::from(args.require("graph")?);
    let algo = args.require("algo")?.to_string();
    let root: u32 = args.get_parsed("root", 0u32)?;
    let top: usize = args.get_parsed("top", 5usize)?;
    let which = args.get("engine").unwrap_or("gpsa").to_string();
    if which != "gpsa" {
        return run_alternative_engine(&which, &args, &graph, &algo, root, top);
    }
    let engine = engine_from(&args)?;
    match algo.as_str() {
        "pagerank" | "pr" => {
            // PageRank defaults to the paper's 5-superstep methodology.
            let engine = if args.get("supersteps").is_none() {
                let mut c = engine.config().clone();
                c.termination = Termination::Supersteps(5);
                Engine::new(c)
            } else {
                engine
            };
            let report = run_program(&engine, &graph, PageRank::default(), args.flag("verbose"))?;
            print_top_f32("rank", &report, top);
        }
        "bfs" => {
            let report = run_program(&engine, &graph, Bfs { root }, args.flag("verbose"))?;
            print_levels("level", &report, top);
        }
        "cc" => {
            let report = run_program(&engine, &graph, ConnectedComponents, args.flag("verbose"))?;
            let mut sizes = std::collections::BTreeMap::new();
            for &l in &report.values {
                *sizes.entry(l).or_insert(0u64) += 1;
            }
            println!("components: {}", sizes.len());
            let mut by_size: Vec<_> = sizes.into_iter().collect();
            by_size.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
            for (label, size) in by_size.into_iter().take(top) {
                println!("  component {label}: {size} vertices");
            }
        }
        "sssp" => {
            let report = run_program(&engine, &graph, Sssp { root }, args.flag("verbose"))?;
            print_levels("distance", &report, top);
        }
        other => {
            return Err(format!(
                "unknown algorithm {other:?} (pagerank|bfs|cc|sssp)"
            ))
        }
    }
    Ok(())
}

/// Boot a resident-graph job server and block until a client sends the
/// `shutdown` op (or the process is killed).
fn serve(argv: &[String]) -> Result<(), String> {
    use gpsa_serve::{Client, ServeConfig};

    let args = Args::parse(argv, &["no-durable"])?;
    let listen = args.get("listen").unwrap_or("127.0.0.1:7171").to_string();
    let work_dir = PathBuf::from(args.get("work-dir").unwrap_or("gpsa-serve-work"));
    let mut config = ServeConfig::new(&work_dir).with_listen(&listen);
    let (max_jobs, queue_cap, cache_cap) = (
        config.max_concurrent_jobs,
        config.queue_capacity,
        config.cache_capacity,
    );
    config = config
        .with_max_concurrent_jobs(args.get_parsed("max-jobs", max_jobs)?)
        .with_queue_capacity(args.get_parsed("queue-capacity", queue_cap)?)
        .with_cache_capacity(args.get_parsed("cache-capacity", cache_cap)?)
        .with_durable(!args.flag("no-durable"));
    if let Some(mb) = args.get("budget-mb") {
        let mb: u64 = mb.parse().map_err(|_| "bad --budget-mb".to_string())?;
        config = config.with_memory_budget(mb.saturating_mul(1 << 20));
    }
    if let Some(ms) = args.get("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --deadline-ms".to_string())?;
        config = config.with_default_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = args.get("tenant-max-queued") {
        let n: usize = n
            .parse()
            .map_err(|_| "bad --tenant-max-queued".to_string())?;
        config = config.with_tenant_max_queued(n);
    }
    if let Some(n) = args.get("tenant-max-inflight") {
        let n: usize = n
            .parse()
            .map_err(|_| "bad --tenant-max-inflight".to_string())?;
        config = config.with_tenant_max_inflight(n);
    }
    if let Some(mb) = args.get("tenant-scratch-mb") {
        let mb: u64 = mb
            .parse()
            .map_err(|_| "bad --tenant-scratch-mb".to_string())?;
        config = config.with_tenant_scratch_budget(mb.saturating_mul(1 << 20));
    }
    if let Some(spec) = args.get("tenant-weights") {
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (id, w) = pair
                .split_once('=')
                .ok_or_else(|| format!("--tenant-weights entry {pair:?} is not id=weight"))?;
            let w: u32 = w.parse().map_err(|_| format!("bad weight in {pair:?}"))?;
            config = config.with_tenant_weight(id, w);
        }
    }
    if let Some(r) = args.get("auto-compact-ratio") {
        let r: f64 = r
            .parse()
            .map_err(|_| "bad --auto-compact-ratio".to_string())?;
        config = config.with_auto_compact_ratio(r);
    }
    if let Some(n) = args.get("stream-chunk") {
        let n: usize = n.parse().map_err(|_| "bad --stream-chunk".to_string())?;
        config = config.with_stream_chunk_values(n);
    }
    let max_jobs = config.max_concurrent_jobs;
    let durable = config.durable;
    let mut handle = gpsa_serve::start(config).map_err(|e| e.to_string())?;
    println!(
        "gpsa-serve listening on {} ({} concurrent jobs, work dir {}, {})",
        handle.addr(),
        max_jobs,
        work_dir.display(),
        if durable {
            "durable: crash recovery on"
        } else {
            "NOT durable: no crash recovery"
        }
    );

    // Preload graphs through the wire path, same as any client would.
    if let Some(spec) = args.get("graphs") {
        let mut client = Client::connect(handle.addr()).map_err(|e| e.to_string())?;
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (id, path) = pair
                .split_once('=')
                .ok_or_else(|| format!("--graphs entry {pair:?} is not id=path"))?;
            let info = client.register_graph(id, path).map_err(|e| e.to_string())?;
            println!(
                "  resident {:?}: {} vertices, {} edges, {} bytes (epoch {})",
                info.graph_id, info.n_vertices, info.n_edges, info.bytes, info.epoch
            );
        }
    }

    while !handle.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    println!("gpsa-serve: shutdown requested, draining");
    handle.shutdown();
    Ok(())
}

/// Submit one job to a running server and print the result.
fn submit(argv: &[String]) -> Result<(), String> {
    use gpsa_serve::{AlgorithmSpec, Client, Priority, RetryPolicy, SubmitRequest, ValueType};

    let args = Args::parse(argv, &["no-retry", "stream", "verbose"])?;
    let addr = args.require("addr")?;
    let graph_id = args.require("graph")?.to_string();
    let algo = args.require("algo")?;
    let root: u32 = args.get_parsed("root", 0u32)?;
    let top: usize = args.get_parsed("top", 5usize)?;
    let algorithm = match algo {
        "pagerank" | "pr" => AlgorithmSpec::PageRank {
            damping: args.get_parsed("damping", 0.85f32)?,
            supersteps: args.get_parsed("supersteps", 5u64)?,
        },
        "bfs" => AlgorithmSpec::Bfs { root },
        "cc" => AlgorithmSpec::Cc,
        "sssp" => AlgorithmSpec::Sssp { root },
        other => {
            return Err(format!(
                "unknown algorithm {other:?} (pagerank|bfs|cc|sssp)"
            ))
        }
    };

    // Interactive submissions ride out transient trouble (admission
    // bursts, a server mid-restart) by default; --no-retry surfaces the
    // first failure instead.
    let policy = if args.flag("no-retry") {
        RetryPolicy::disabled()
    } else {
        RetryPolicy::default_enabled()
    };
    let mut client = Client::connect_with(addr, policy).map_err(|e| e.to_string())?;
    if let Some(path) = args.get("register") {
        let info = client
            .register_graph(&graph_id, path)
            .map_err(|e| e.to_string())?;
        println!(
            "registered {:?}: {} vertices, {} edges (epoch {})",
            info.graph_id, info.n_vertices, info.n_edges, info.epoch
        );
    }

    let mut req = SubmitRequest::new(&graph_id, algorithm)
        .with_priority(Priority::parse(args.get("priority").unwrap_or("normal")));
    if let Some(ms) = args.get("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --deadline-ms".to_string())?;
        req = req.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(key) = args.get("key") {
        req = req.with_idempotency_key(key);
    }
    if let Some(tenant) = args.get("tenant") {
        req = req.with_tenant(tenant);
    }
    if args.flag("stream") {
        req = req.with_stream();
    }
    let resp = client.submit(&req).map_err(|e| e.to_string())?;
    println!(
        "job {}: {} ({} supersteps, {} messages; queue {:?}, run {:?})",
        resp.job_id,
        if resp.cache_hit {
            "cache hit"
        } else {
            "computed"
        },
        resp.outcome.supersteps,
        resp.outcome.messages,
        resp.queue_wait,
        resp.run_time
    );
    if !resp.cache_hit {
        println!(
            "dispatch I/O: {} edge words streamed, {} skipped ({:.1}% mean frontier density)",
            resp.outcome.edges_streamed,
            resp.outcome.edges_skipped,
            100.0 * resp.outcome.mean_frontier_density
        );
    }
    if args.flag("verbose") {
        print_phases(&resp.outcome.phases);
    }
    match resp.outcome.value_type {
        ValueType::F32 => {
            let ranks = resp.outcome.values_f32().unwrap_or_default();
            let mut idx: Vec<u32> = (0..ranks.len() as u32).collect();
            idx.sort_by(|&a, &b| {
                ranks[b as usize]
                    .partial_cmp(&ranks[a as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            println!("top {top} vertices by value:");
            for &v in idx.iter().take(top) {
                println!("  v{v}: {:.6}", ranks[v as usize]);
            }
        }
        ValueType::U32 => {
            let values = &resp.outcome.values_u32;
            let reached = values.iter().filter(|&&l| l < UNREACHED).count();
            println!("reached/nontrivial {reached}/{} vertices", values.len());
            for (v, l) in values
                .iter()
                .enumerate()
                .filter(|(_, &l)| l < UNREACHED)
                .take(top)
            {
                println!("  v{v}: {l}");
            }
        }
    }
    let s = &resp.stats;
    println!(
        "server: {} running, {} queued, {} completed, cache {:.0}% of {} lookups",
        s.running,
        s.queue_depth,
        s.jobs_completed,
        100.0 * s.cache_hit_rate(),
        s.cache_hits + s.cache_misses
    );
    Ok(())
}

/// Mutate a resident graph on a running server: append edge additions
/// and removals to its delta log, and optionally compact the log into a
/// fresh CSR epoch.
fn mutate(argv: &[String]) -> Result<(), String> {
    use gpsa_serve::Client;

    let args = Args::parse(argv, &["compact"])?;
    let addr = args.require("addr")?;
    let graph_id = args.require("graph")?.to_string();
    let adds = parse_edge_pairs(args.get("add").unwrap_or(""))?;
    let removes = parse_edge_pairs(args.get("remove").unwrap_or(""))?;
    if adds.is_empty() && removes.is_empty() && !args.flag("compact") {
        return Err("nothing to do: give --add, --remove, or --compact".to_string());
    }

    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let print_info = |verb: &str, info: &gpsa_serve::GraphInfo| {
        println!(
            "{verb} {:?}: {} vertices, {} edges (epoch {}, delta seq {})",
            info.graph_id, info.n_vertices, info.n_edges, info.epoch, info.delta_seq
        );
    };
    if !adds.is_empty() {
        let info = client
            .add_edges(&graph_id, &adds)
            .map_err(|e| e.to_string())?;
        print_info(&format!("added {} edge(s) to", adds.len()), &info);
    }
    if !removes.is_empty() {
        let info = client
            .remove_edges(&graph_id, &removes)
            .map_err(|e| e.to_string())?;
        print_info(&format!("removed {} edge(s) from", removes.len()), &info);
    }
    if args.flag("compact") {
        let info = client.compact(&graph_id).map_err(|e| e.to_string())?;
        print_info("compacted", &info);
    }
    Ok(())
}

/// Snapshot a running server's counters: global load, cache efficacy,
/// sheds by cause, and (with `--tenants`, or whenever any tenant is
/// known) the per-tenant breakdown operators use to see *who* is
/// loading the server.
fn stats(argv: &[String]) -> Result<(), String> {
    use gpsa_serve::Client;

    let args = Args::parse(argv, &["tenants"])?;
    let addr = args.require("addr")?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let s = client.stats().map_err(|e| e.to_string())?;

    let mut t = Table::new(&["counter", "value"]);
    t.row(&[
        "running / max",
        &format!("{} / {}", s.running, s.max_concurrent_jobs),
    ]);
    t.row(&["queue depth", &s.queue_depth.to_string()]);
    t.row(&["jobs submitted", &s.jobs_submitted.to_string()]);
    t.row(&["jobs completed", &s.jobs_completed.to_string()]);
    t.row(&["shed: server_busy", &s.jobs_rejected.to_string()]);
    t.row(&["shed: quota_exceeded", &s.jobs_quota_shed.to_string()]);
    t.row(&["shed: deadline_exceeded", &s.jobs_deadline.to_string()]);
    t.row(&["shed: slow_client conns", &s.conns_shed.to_string()]);
    t.row(&["jobs cancelled/reaped", &s.jobs_cancelled.to_string()]);
    t.row(&["jobs failed", &s.jobs_failed.to_string()]);
    t.row(&[
        "cache hit rate",
        &format!(
            "{:.1}% of {} lookups ({} entries)",
            100.0 * s.cache_hit_rate(),
            s.cache_hits + s.cache_misses,
            s.cache_len
        ),
    ]);
    t.row(&["idempotent hits", &s.idempotent_hits.to_string()]);
    t.row(&["jobs replayed at boot", &s.jobs_replayed.to_string()]);
    t.row(&["auto-compactions", &s.auto_compactions.to_string()]);
    t.row(&[
        "graphs resident",
        &format!("{} ({} bytes)", s.graphs_resident, s.resident_bytes),
    ]);
    print!("{t}");

    if args.flag("tenants") || !s.tenants.is_empty() {
        let mut t = Table::new(&[
            "tenant",
            "weight",
            "queued",
            "running",
            "scratch B",
            "submitted",
            "completed",
            "shed",
            "cancelled",
        ]);
        for row in &s.tenants {
            t.row(&[
                &row.tenant,
                &row.weight.to_string(),
                &row.queued.to_string(),
                &row.running.to_string(),
                &row.scratch_bytes.to_string(),
                &row.submitted.to_string(),
                &row.completed.to_string(),
                &row.shed_quota.to_string(),
                &row.cancelled.to_string(),
            ]);
        }
        print!("{t}");
    }
    Ok(())
}

/// Parse a `u:v,u:v,...` list into edge pairs (empty input is fine).
fn parse_edge_pairs(spec: &str) -> Result<Vec<(u32, u32)>, String> {
    spec.split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|pair| {
            let (src, dst) = pair
                .trim()
                .split_once(':')
                .ok_or_else(|| format!("edge {pair:?} is not src:dst"))?;
            let src = src.parse().map_err(|_| format!("bad vertex in {pair:?}"))?;
            let dst = dst.parse().map_err(|_| format!("bad vertex in {pair:?}"))?;
            Ok((src, dst))
        })
        .collect()
}

/// Run on one of the non-default engines by bridging the CSR back to an
/// edge list (the baselines and the cluster consume edge lists).
fn run_alternative_engine(
    which: &str,
    args: &Args,
    graph: &Path,
    algo: &str,
    root: u32,
    top: usize,
) -> Result<(), String> {
    use gpsa_algorithms::psw::{PswBfs, PswCc, PswPageRank, PswSssp};
    use gpsa_algorithms::xs::{XsBfs, XsCc, XsPageRank, XsSssp};
    use gpsa_baselines::graphchi::{PswConfig, PswEngine, PswTermination};
    use gpsa_baselines::xstream::{XsConfig, XsEngine, XsTermination};

    let el = DiskCsr::open(graph)
        .map_err(|e| e.to_string())?
        .to_edge_list();
    let work_dir = PathBuf::from(args.get("work-dir").unwrap_or("gpsa-work"));
    let steps: u64 = args.get_parsed("supersteps", 5u64)?;
    let max: u64 = args.get_parsed("max-supersteps", 10_000u64)?;
    let fixed = args.get("supersteps").is_some() || algo == "pagerank" || algo == "pr";

    let print_u32 = |name: &str, values: &[u32], iterations: u64| {
        println!("{which}: {iterations} iterations");
        let reached = values.iter().filter(|&&l| l < UNREACHED).count();
        println!("reached/nontrivial {reached}/{} vertices", values.len());
        for (v, l) in values
            .iter()
            .enumerate()
            .filter(|(_, &l)| l < UNREACHED)
            .take(top)
        {
            println!("  v{v}: {name} {l}");
        }
    };

    match which {
        "graphchi" | "psw" => {
            let mut cfg = PswConfig::new(&work_dir);
            cfg.termination = if fixed {
                PswTermination::Iterations(steps)
            } else {
                PswTermination::Quiescence { max }
            };
            let engine = PswEngine::new(cfg);
            match algo {
                "pagerank" | "pr" => {
                    let r = engine
                        .run(&el, PswPageRank::default())
                        .map_err(|e| e.to_string())?;
                    println!("{which}: {} iterations", r.iterations);
                    print_top_ranks(&r.values, top);
                }
                "bfs" => {
                    let r = engine
                        .run(&el, PswBfs { root })
                        .map_err(|e| e.to_string())?;
                    print_u32("level", &r.values, r.iterations);
                }
                "cc" => {
                    let r = engine.run(&el, PswCc).map_err(|e| e.to_string())?;
                    print_u32("label", &r.values, r.iterations);
                }
                "sssp" => {
                    let r = engine
                        .run(&el, PswSssp { root })
                        .map_err(|e| e.to_string())?;
                    print_u32("distance", &r.values, r.iterations);
                }
                other => return Err(format!("unknown algorithm {other:?}")),
            }
        }
        "xstream" | "xs" => {
            let mut cfg = XsConfig::new(&work_dir);
            cfg.termination = if fixed {
                XsTermination::Iterations(steps)
            } else {
                XsTermination::Quiescence { max }
            };
            let engine = XsEngine::new(cfg);
            match algo {
                "pagerank" | "pr" => {
                    let r = engine
                        .run(&el, XsPageRank::default())
                        .map_err(|e| e.to_string())?;
                    println!("{which}: {} iterations", r.iterations);
                    print_top_ranks(&r.values, top);
                }
                "bfs" => {
                    let r = engine.run(&el, XsBfs { root }).map_err(|e| e.to_string())?;
                    print_u32("level", &r.values, r.iterations);
                }
                "cc" => {
                    let r = engine.run(&el, XsCc).map_err(|e| e.to_string())?;
                    print_u32("label", &r.values, r.iterations);
                }
                "sssp" => {
                    let r = engine
                        .run(&el, XsSssp { root })
                        .map_err(|e| e.to_string())?;
                    print_u32("distance", &r.values, r.iterations);
                }
                other => return Err(format!("unknown algorithm {other:?}")),
            }
        }
        "sync" => {
            let term = if fixed {
                Termination::Supersteps(steps)
            } else {
                Termination::Quiescence {
                    max_supersteps: max,
                }
            };
            let engine = gpsa::SyncEngine::new(term);
            match algo {
                "pagerank" | "pr" => {
                    let r = engine.run(&el, PageRank::default());
                    println!("{which}: {} supersteps", r.supersteps);
                    let mut idx: Vec<u32> = (0..r.values.len() as u32).collect();
                    idx.sort_by(|&a, &b| {
                        r.values[b as usize]
                            .partial_cmp(&r.values[a as usize])
                            .unwrap()
                    });
                    for &v in idx.iter().take(top) {
                        println!("  v{v}: {:.6}", r.values[v as usize]);
                    }
                }
                "bfs" => {
                    let r = engine.run(&el, Bfs { root });
                    print_u32("level", &r.values, r.supersteps);
                }
                "cc" => {
                    let r = engine.run(&el, ConnectedComponents);
                    print_u32("label", &r.values, r.supersteps);
                }
                "sssp" => {
                    let r = engine.run(&el, Sssp { root });
                    print_u32("distance", &r.values, r.supersteps);
                }
                other => return Err(format!("unknown algorithm {other:?}")),
            }
        }
        "dist" | "cluster" => {
            let nodes: usize = args.get_parsed("nodes", 2usize)?;
            let term = if fixed {
                Termination::Supersteps(steps)
            } else {
                Termination::Quiescence {
                    max_supersteps: max,
                }
            };
            let config = gpsa_dist::ClusterConfig::new(nodes, &work_dir).with_termination(term);
            let cluster = gpsa_dist::Cluster::new(config);
            match algo {
                "cc" => {
                    let r = cluster
                        .run(&el, ConnectedComponents)
                        .map_err(|e| e.to_string())?;
                    print_u32("label", &r.values, r.supersteps);
                    println!(
                        "traffic: {} local, {} remote messages across {nodes} nodes",
                        r.traffic.local(),
                        r.traffic.remote()
                    );
                }
                "bfs" => {
                    let r = cluster.run(&el, Bfs { root }).map_err(|e| e.to_string())?;
                    print_u32("level", &r.values, r.supersteps);
                    println!(
                        "traffic: {} local, {} remote messages across {nodes} nodes",
                        r.traffic.local(),
                        r.traffic.remote()
                    );
                }
                "pagerank" | "pr" => {
                    let r = cluster
                        .run(&el, PageRank::default())
                        .map_err(|e| e.to_string())?;
                    println!("{which}: {} supersteps", r.supersteps);
                    println!(
                        "traffic: {} local, {} remote messages across {nodes} nodes",
                        r.traffic.local(),
                        r.traffic.remote()
                    );
                }
                "sssp" => {
                    let r = cluster.run(&el, Sssp { root }).map_err(|e| e.to_string())?;
                    print_u32("distance", &r.values, r.supersteps);
                }
                other => return Err(format!("unknown algorithm {other:?}")),
            }
        }
        other => {
            return Err(format!(
                "unknown engine {other:?} (gpsa|graphchi|xstream|sync|dist)"
            ))
        }
    }
    Ok(())
}

fn print_top_ranks(bits: &[u32], top: usize) {
    let ranks: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
    let mut idx: Vec<u32> = (0..ranks.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        ranks[b as usize]
            .partial_cmp(&ranks[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("top {top} vertices by rank:");
    for &v in idx.iter().take(top) {
        println!("  v{v}: {:.6}", ranks[v as usize]);
    }
}

fn run_program<P: VertexProgram>(
    engine: &Engine,
    graph: &Path,
    program: P,
    verbose: bool,
) -> Result<gpsa::RunReport<P::Value>, String> {
    let report = engine.run(graph, program).map_err(|e| e.to_string())?;
    println!(
        "{} supersteps in {:?} ({:?}/superstep avg of first 5); {} messages",
        report.supersteps,
        report.superstep_total(),
        report.mean_superstep(5),
        report.messages
    );
    if report.edges_streamed > 0 {
        println!(
            "dispatch I/O: {} edge words ({} bytes) streamed, {} words skipped",
            report.edges_streamed, report.edge_bytes_streamed, report.edges_skipped
        );
    }
    if verbose {
        print_phases(&report.phases);
    }
    Ok(report)
}

/// Render the per-superstep phase breakdown an engine run recorded, plus
/// the run-wide totals. Slab wait is the slice of dispatch time spent
/// blocked acquiring a message slab from the pool (backpressure).
fn print_phases(phases: &[gpsa::PhaseBreakdown]) {
    if phases.is_empty() {
        return;
    }
    let mut t = Table::new(&[
        "superstep",
        "dispatch us",
        "fold us",
        "commit us",
        "slab wait us",
    ]);
    let mut total = gpsa::PhaseBreakdown::default();
    for (i, p) in phases.iter().enumerate() {
        total.add(p);
        t.row(&[
            &i.to_string(),
            &p.dispatch_us.to_string(),
            &p.fold_us.to_string(),
            &p.commit_us.to_string(),
            &p.slab_wait_us.to_string(),
        ]);
    }
    t.row(&[
        "total",
        &total.dispatch_us.to_string(),
        &total.fold_us.to_string(),
        &total.commit_us.to_string(),
        &total.slab_wait_us.to_string(),
    ]);
    print!("{t}");
}

fn print_top_f32(name: &str, report: &gpsa::RunReport<f32>, top: usize) {
    let mut idx: Vec<u32> = (0..report.values.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        report.values[b as usize]
            .partial_cmp(&report.values[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("top {top} vertices by {name}:");
    for &v in idx.iter().take(top) {
        println!("  v{v}: {:.6}", report.values[v as usize]);
    }
}

fn print_levels(name: &str, report: &gpsa::RunReport<u32>, top: usize) {
    let reached = report.values.iter().filter(|&&l| l < UNREACHED).count();
    let max = report
        .values
        .iter()
        .filter(|&&l| l < UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    println!(
        "reached {reached}/{} vertices; max {name} {max}",
        report.values.len()
    );
    for (v, l) in report
        .values
        .iter()
        .enumerate()
        .filter(|(_, &l)| l < UNREACHED)
        .take(top)
    {
        println!("  v{v}: {l}");
    }
}
