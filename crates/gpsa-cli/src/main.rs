//! `gpsa` — command-line front end for the GPSA engine.
//!
//! ```text
//! gpsa generate   --dataset pokec --scale 64 --out data/
//! gpsa preprocess --input edges.txt --output graph.gcsr
//! gpsa info       --graph graph.gcsr
//! gpsa run        --graph graph.gcsr --algo pagerank --supersteps 5
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("gpsa: {e}");
            std::process::exit(1);
        }
    }
}
