//! The compute actor (paper Algorithm 3).
//!
//! A compute actor owns a disjoint set of vertices (defined by the
//! [`crate::Router`]) and is the only writer of their update-column slots.
//! It is purely message-driven: updates begin as soon as the first batch
//! arrives, while dispatchers are still streaming — the overlap that
//! motivates the paper.
//!
//! ## First-message protocol
//!
//! At superstep start every update-column slot is flagged ("no update
//! yet"). On a vertex's first message the accumulator is seeded from
//! [`crate::VertexProgram::freshest`] over the two buffered copies; from
//! then on the slot holds the running accumulator, written flag-clear.
//! When the COMPUTE_OVER token arrives (FIFO mailboxes guarantee it
//! follows every batch), the actor walks its dirty list, re-flags vertices
//! whose final value does not count as changed, and reports its tallies to
//! the manager. Deferring the changed/flag decision to the flush keeps
//! accumulation correct even when an intermediate fold lands exactly on
//! the old value — a case the paper's per-message re-flagging would
//! mis-handle as a fresh first message.

use std::sync::Arc;
use std::time::Instant;

use actor::{Actor, Addr, Ctx};
use gpsa_graph::VertexId;

use crate::kernels::FoldCtx;
use crate::manager::{Manager, ManagerMsg};
use crate::program::{GraphMeta, VertexProgram};
use crate::slab::{MsgSlab, MsgSlabPool, OverlapStats};
use crate::value_file::ValueFile;
use crate::word::{clear_flag, is_flagged};
use crate::VertexValue;

/// Mailbox protocol of a compute actor.
pub(crate) enum ComputeCmd<M> {
    /// A slab of message runs targeting the given update column. The
    /// buffer is on loan from the shared pool; the computer releases it
    /// back after folding.
    Batch { update_col: u32, slab: MsgSlab<M> },
    /// COMPUTE_OVER token: finalize the superstep, report to the manager.
    Flush { superstep: u64, update_col: u32 },
    /// SYSTEM_OVER.
    Shutdown,
}

pub(crate) struct Computer<P: VertexProgram> {
    pub program: Arc<P>,
    pub values: Arc<ValueFile>,
    pub meta: GraphMeta,
    pub manager: Addr<Manager<P>>,
    /// Vertices that received their first message this superstep, with
    /// the basis (freshest prior value) they were seeded from. The flush
    /// pass compares the final accumulator against this saved basis —
    /// comparing against the raw dispatch-column payload instead would
    /// use a possibly-stale copy and let two neighbors reactivate each
    /// other forever.
    pub dirty: Vec<(VertexId, P::Value)>,
    /// Messages folded this superstep.
    pub messages: u64,
    /// All vertices routed to this actor — only populated for
    /// always-dispatch (dense) programs, which must re-evaluate every
    /// owned vertex each superstep even if no message arrived.
    pub owned: Vec<VertexId>,
    /// Slab free-list shared with the dispatchers; folded batches are
    /// returned here.
    pub pool: Arc<MsgSlabPool<P::MsgVal>>,
    /// Superstep overlap statistics (time-to-first-batch).
    pub stats: Arc<OverlapStats>,
    /// Route batches through the program's [`VertexProgram::fold_batch`]
    /// kernel; `false` forces the scalar per-message oracle
    /// ([`FoldCtx::fold_scalar_slab`]) for A/B testing.
    pub batch_fold: bool,
    /// Wall-clock µs spent folding this superstep (reported with
    /// COMPUTE_OVER for the phase breakdown).
    pub fold_us: u64,
    /// Chaos harness: scripted computer panics (per-batch and at flush).
    #[cfg(feature = "chaos")]
    pub fault: Option<Arc<crate::fault::FaultPlan>>,
}

impl<P: VertexProgram> Computer<P> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        program: Arc<P>,
        values: Arc<ValueFile>,
        meta: GraphMeta,
        manager: Addr<Manager<P>>,
        owned: Vec<VertexId>,
        pool: Arc<MsgSlabPool<P::MsgVal>>,
        stats: Arc<OverlapStats>,
        batch_fold: bool,
    ) -> Self {
        Computer {
            program,
            values,
            meta,
            manager,
            dirty: Vec::new(),
            messages: 0,
            owned,
            pool,
            stats,
            batch_fold,
            fold_us: 0,
            #[cfg(feature = "chaos")]
            fault: None,
        }
    }

    /// Fold one slab of runs into the update column — the per-message
    /// first-message protocol itself lives in [`FoldCtx`], shared between
    /// the scalar oracle and the batch kernels.
    fn fold_slab(&mut self, update_col: u32, slab: &MsgSlab<P::MsgVal>) {
        let fold_start = Instant::now();
        let mut ctx = FoldCtx::new(&self.values, &self.meta, update_col, &mut self.dirty);
        if self.batch_fold {
            self.program.fold_batch(slab, &mut ctx);
        } else {
            ctx.fold_scalar_slab(&*self.program, slab);
        }
        self.messages += slab.len() as u64;
        self.fold_us += fold_start.elapsed().as_micros() as u64;
    }

    fn flush(&mut self, superstep: u64, update_col: u32) {
        let dispatch_col = 1 - update_col;
        let mut activated = 0u64;
        let mut delta = 0.0f64;
        // Dense-program sweep first: owned vertices whose update slot is
        // still flagged received no messages; give them their no-message
        // value (e.g. PageRank's base term). Runs before the dirty pass so
        // dirty-but-unchanged vertices (re-flagged below) are not mistaken
        // for message-less ones.
        for &v in &self.owned {
            let u_bits = self.values.load(update_col, v);
            if !is_flagged(u_bits) {
                continue;
            }
            let d = P::Value::from_bits(clear_flag(self.values.load(dispatch_col, v)));
            let u = P::Value::from_bits(clear_flag(u_bits));
            let basis = self.program.freshest(d, u);
            let new = self.program.no_message_value(v, basis, &self.meta);
            if self.program.changed(basis, new) {
                self.values.store(update_col, v, new.to_bits());
                self.values.frontier().mark(update_col, v);
                activated += 1;
                delta += self.program.delta(basis, new);
            } else {
                self.values
                    .store(update_col, v, crate::word::set_flag(new.to_bits()));
            }
        }
        for &(v, basis) in &self.dirty {
            let final_v = P::Value::from_bits(clear_flag(self.values.load(update_col, v)));
            if self.program.changed(basis, final_v) {
                activated += 1;
                delta += self.program.delta(basis, final_v);
            } else {
                // No real update: re-flag so next superstep's dispatcher
                // skips the vertex (and its first message re-seeds), and
                // lower its frontier bit to keep the bitmap exact.
                self.values.invalidate(update_col, v);
                self.values.frontier().unmark(update_col, v);
            }
        }
        self.dirty.clear();
        let messages = std::mem::take(&mut self.messages);
        let _ = self.manager.send(ManagerMsg::ComputeOver {
            superstep,
            activated,
            delta,
            messages,
            fold_us: std::mem::take(&mut self.fold_us),
        });
    }
}

impl<P: VertexProgram> Actor for Computer<P> {
    type Msg = ComputeCmd<P::MsgVal>;

    fn handle(&mut self, msg: ComputeCmd<P::MsgVal>, ctx: &mut Ctx<'_, Self>) {
        match msg {
            ComputeCmd::Batch { update_col, slab } => {
                self.stats.record_first_batch();
                self.fold_slab(update_col, &slab);
                self.pool.release(slab);
                // Batch boundary: the update column now holds a partial
                // fold that recovery must throw away.
                #[cfg(feature = "chaos")]
                if let Some(plan) = &self.fault {
                    plan.panic_if_due(crate::fault::FaultRole::Computer, 0, self.messages);
                }
            }
            ComputeCmd::Flush {
                superstep,
                update_col,
            } => {
                #[cfg(feature = "chaos")]
                if let Some(plan) = &self.fault {
                    plan.panic_if_due(
                        crate::fault::FaultRole::Computer,
                        superstep,
                        crate::fault::FaultPlan::AT_FLUSH,
                    );
                }
                self.flush(superstep, update_col)
            }
            ComputeCmd::Shutdown => ctx.stop(),
        }
    }
}
