//! Engine configuration.

use std::path::{Path, PathBuf};
use std::time::Duration;

/// When does a run stop?
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Run exactly this many supersteps (the paper's timing methodology:
    /// "the average elapsed time of five supersteps").
    Supersteps(u64),
    /// Run until a superstep activates no vertex (BFS, CC), bounded by
    /// `max_supersteps`.
    Quiescence {
        /// Upper bound on supersteps.
        max_supersteps: u64,
    },
    /// Run until the summed per-vertex delta falls to `epsilon` or below
    /// (PageRank-style convergence), bounded by `max_supersteps`.
    Delta {
        /// Convergence threshold.
        epsilon: f64,
        /// Upper bound on supersteps.
        max_supersteps: u64,
    },
}

/// How destination vertices map to compute actors (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterStrategy {
    /// `v mod n_computers` — the paper's default.
    Mod,
    /// Contiguous id ranges — better value-file locality.
    Range,
}

/// How vertex intervals map to dispatch actors (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalStrategy {
    /// Near-equal id ranges.
    Uniform,
    /// Ranges balanced by out-edge count so every dispatcher sends about
    /// the same number of messages.
    EdgeBalanced,
    /// The paper's "simple mod algorithm": dispatcher `i` owns every
    /// vertex `v` with `v % k == i`. Convenient but gives up sequential
    /// edge-file streaming.
    Strided,
}

/// How dispatchers read their CSR interval each superstep (frontier-aware
/// selective dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Always sweep the whole interval sequentially, skipping flagged
    /// vertices after their record is read — the original behaviour.
    Dense,
    /// Always iterate the active-vertex bitmap and seek to each active
    /// vertex's edge run. (Programs whose
    /// [`crate::VertexProgram::always_dispatch`] is true fall back to
    /// dense: their frontier is the whole interval by definition.)
    Sparse,
    /// Per dispatcher per superstep: go sparse when the interval's
    /// frontier density is below
    /// [`EngineConfig::sparse_density_threshold`], dense otherwise
    /// (Beamer-style direction switching, applied to I/O).
    Auto,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of dispatch actors.
    pub n_dispatchers: usize,
    /// Number of compute actors.
    pub n_computers: usize,
    /// Kernel worker threads multiplexing all actors.
    pub workers: usize,
    /// Actor-runtime fairness batch (messages per activation).
    pub actor_batch: usize,
    /// `(dst, msg)` pairs per batch sent dispatcher → computer.
    pub msg_batch: usize,
    /// Edges (CSR body words) per cooperative dispatch chunk. Each
    /// dispatcher streams its interval as a sequence of roughly
    /// this-many-edge slices, re-enqueueing itself between slices, so
    /// dispatch work is subject to scheduler fairness and work stealing
    /// and compute batches interleave with later chunks.
    /// [`EngineConfig::MONOLITHIC_DISPATCH`] disables chunking (one
    /// activation scans the whole interval, the original behaviour).
    pub dispatch_chunk: usize,
    /// Stop condition.
    pub termination: Termination,
    /// Destination routing strategy.
    pub router: RouterStrategy,
    /// Dispatch interval strategy.
    pub intervals: IntervalStrategy,
    /// Directory for the value file.
    pub work_dir: PathBuf,
    /// `msync` the value file at every superstep commit (cheap checkpoint;
    /// required for crash recovery across process death).
    pub durable: bool,
    /// Resume from an existing value file instead of reinitializing.
    pub resume: bool,
    /// Test hook: simulate a crash right after the dispatch phase of this
    /// superstep.
    pub crash_after_dispatch: Option<u64>,
    /// Test hook: simulate a crash in the middle of the compute phase of
    /// this superstep (after the first computer finishes, before the
    /// superstep commits).
    pub crash_in_compute: Option<u64>,
    /// Combine same-destination messages per batch when the program
    /// supports it ([`crate::VertexProgram::combines`]). Off by default
    /// since run emission landed: merging at push time forces the
    /// dispatcher back onto a per-destination loop, which costs more than
    /// the duplicate folds it saves now that slabs are emitted as bulk
    /// `(dst_run, msg)` copies and folded by batch kernels. Worth
    /// re-enabling only when cross-actor message volume dominates.
    pub combine_messages: bool,
    /// How dispatchers read their interval: dense sweep, sparse
    /// bitmap-driven seeks, or a per-superstep density-based choice.
    pub dispatch_mode: DispatchMode,
    /// In [`DispatchMode::Auto`], an interval goes sparse when
    /// `active_vertices / interval_len` is strictly below this
    /// (seek-per-vertex beats a full sweep only when most records are
    /// skippable; 5% is conservative for 4 KiB pages).
    pub sparse_density_threshold: f64,
    /// Watchdog: if no superstep completes for this long, the engine
    /// declares the fleet wedged, abandons it, and retries from the last
    /// committed superstep. `None` disables the watchdog (failures are
    /// still caught via the actor runtime's `FailureEvent` escalation).
    /// Set it well above the worst-case superstep time.
    pub superstep_deadline: Option<Duration>,
    /// How many in-process recovery attempts (`ValueFile::recover` +
    /// fleet re-spawn, with exponential backoff) the engine makes before
    /// giving up and surfacing the causes in the error.
    pub max_superstep_retries: u32,
    /// Fold message slabs through the program's batch kernel
    /// ([`crate::VertexProgram::fold_batch`]). `false` forces the scalar
    /// per-message oracle — the two are bit-identical by contract, so
    /// this exists for A/B benchmarking and the equivalence test suite.
    pub batch_fold: bool,
    /// Advise the kernel to back the CSR and value-file mappings with
    /// transparent huge pages (`madvise(MADV_HUGEPAGE)`). Best-effort:
    /// ignored where unsupported. Off by default — THP compaction stalls
    /// can hurt small runs; worth flipping for multi-GB graphs.
    pub hugepages: bool,
    /// Chaos harness: scripted fault injections consulted by the
    /// dispatcher/computer/manager hooks and `ValueFile::commit`.
    #[cfg(feature = "chaos")]
    pub fault_plan: Option<std::sync::Arc<crate::fault::FaultPlan>>,
}

impl EngineConfig {
    /// `dispatch_chunk` value that disables chunking entirely.
    pub const MONOLITHIC_DISPATCH: usize = usize::MAX;

    /// Sensible defaults sized to the machine: one dispatcher and one
    /// computer per two cores, quiescence-bounded termination.
    pub fn new<P: AsRef<Path>>(work_dir: P) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        EngineConfig {
            n_dispatchers: (cores / 2).max(1),
            n_computers: (cores / 2).max(1),
            workers: cores,
            actor_batch: 64,
            msg_batch: 4096,
            dispatch_chunk: 32_768,
            termination: Termination::Quiescence {
                max_supersteps: 10_000,
            },
            router: RouterStrategy::Mod,
            intervals: IntervalStrategy::EdgeBalanced,
            work_dir: work_dir.as_ref().to_path_buf(),
            durable: false,
            resume: false,
            crash_after_dispatch: None,
            crash_in_compute: None,
            combine_messages: false,
            dispatch_mode: DispatchMode::Auto,
            sparse_density_threshold: 0.05,
            superstep_deadline: None,
            max_superstep_retries: 2,
            batch_fold: true,
            hugepages: false,
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }

    /// A small fixed configuration for tests and doctests: 2 dispatchers,
    /// 2 computers, 2 workers.
    pub fn small<P: AsRef<Path>>(work_dir: P) -> Self {
        EngineConfig {
            n_dispatchers: 2,
            n_computers: 2,
            workers: 2,
            msg_batch: 64,
            // Small enough that the test graphs exercise multi-chunk
            // supersteps, not just the single-chunk fast path.
            dispatch_chunk: 512,
            ..EngineConfig::new(work_dir)
        }
    }

    /// Builder-style: set the termination mode.
    pub fn with_termination(mut self, t: Termination) -> Self {
        self.termination = t;
        self
    }

    /// Builder-style: set actor counts.
    pub fn with_actors(mut self, dispatchers: usize, computers: usize) -> Self {
        self.n_dispatchers = dispatchers.max(1);
        self.n_computers = computers.max(1);
        self
    }

    /// Builder-style: set worker thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style: set the edges-per-chunk dispatch granularity
    /// (clamped to at least 1; pass
    /// [`EngineConfig::MONOLITHIC_DISPATCH`] to disable chunking).
    pub fn with_dispatch_chunk(mut self, edges: usize) -> Self {
        self.dispatch_chunk = edges.max(1);
        self
    }

    /// Builder-style: force a dispatch mode (the default is
    /// [`DispatchMode::Auto`]).
    pub fn with_dispatch_mode(mut self, mode: DispatchMode) -> Self {
        self.dispatch_mode = mode;
        self
    }

    /// Builder-style: set the auto-mode sparse/dense density threshold
    /// (clamped to `[0, 1]`).
    pub fn with_sparse_density_threshold(mut self, threshold: f64) -> Self {
        self.sparse_density_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Builder-style: arm the per-superstep watchdog.
    pub fn with_superstep_deadline(mut self, deadline: Duration) -> Self {
        self.superstep_deadline = Some(deadline);
        self
    }

    /// Builder-style: set the recovery retry budget.
    pub fn with_max_superstep_retries(mut self, retries: u32) -> Self {
        self.max_superstep_retries = retries;
        self
    }

    /// Builder-style: enable or disable the batch fold kernels (`true`
    /// is the default; `false` runs the scalar per-message oracle).
    pub fn with_batch_fold(mut self, on: bool) -> Self {
        self.batch_fold = on;
        self
    }

    /// Builder-style: request transparent-hugepage backing for the CSR
    /// and value-file mappings.
    pub fn with_hugepages(mut self, on: bool) -> Self {
        self.hugepages = on;
        self
    }

    /// Builder-style: install a chaos fault plan.
    #[cfg(feature = "chaos")]
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<crate::fault::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = EngineConfig::new("/tmp");
        assert!(c.n_dispatchers >= 1);
        assert!(c.n_computers >= 1);
        assert!(c.workers >= 1);
        assert!(c.msg_batch >= 1);
        assert!(c.dispatch_chunk >= 1);
        assert!(!c.durable);
        assert_eq!(c.dispatch_mode, DispatchMode::Auto);
        assert!(c.sparse_density_threshold > 0.0 && c.sparse_density_threshold < 1.0);
        assert!(c.batch_fold);
        assert!(!c.hugepages);
        let c = c.with_batch_fold(false).with_hugepages(true);
        assert!(!c.batch_fold);
        assert!(c.hugepages);
    }

    #[test]
    fn density_threshold_clamps() {
        let c = EngineConfig::new("/tmp").with_sparse_density_threshold(7.0);
        assert_eq!(c.sparse_density_threshold, 1.0);
        let c = EngineConfig::new("/tmp").with_sparse_density_threshold(-1.0);
        assert_eq!(c.sparse_density_threshold, 0.0);
        let c = EngineConfig::new("/tmp").with_dispatch_mode(DispatchMode::Sparse);
        assert_eq!(c.dispatch_mode, DispatchMode::Sparse);
    }

    #[test]
    fn builders_clamp_to_one() {
        let c = EngineConfig::new("/tmp")
            .with_actors(0, 0)
            .with_workers(0)
            .with_dispatch_chunk(0);
        assert_eq!(c.n_dispatchers, 1);
        assert_eq!(c.n_computers, 1);
        assert_eq!(c.workers, 1);
        assert_eq!(c.dispatch_chunk, 1);
    }

    #[test]
    fn monolithic_dispatch_survives_the_builder() {
        let c = EngineConfig::new("/tmp").with_dispatch_chunk(EngineConfig::MONOLITHIC_DISPATCH);
        assert_eq!(c.dispatch_chunk, EngineConfig::MONOLITHIC_DISPATCH);
    }
}
