//! The dispatch actor (paper Algorithm 2), chunked.
//!
//! Each dispatcher owns a vertex-id interval of the mmap'ed CSR edge
//! file. On ITERATION_START it streams its interval: skips vertices whose
//! dispatch-column value carries the not-updated flag, otherwise generates
//! one message value via the program's `genMsg` and routes a copy to the
//! compute actor owning each out-neighbor, batching per destination actor.
//! After a vertex is dispatched its dispatch-column slot is invalidated
//! (flag set) — pre-clearing the slot for its next life as the update
//! column.
//!
//! ## Chunked dispatch
//!
//! The interval is not scanned in one activation. Each activation covers a
//! slice of roughly `dispatch_chunk` edges and then self-sends a
//! [`DispatchCmd::Chunk`] for the remainder, so (a) the actor scheduler's
//! fairness batch and work stealing apply to dispatch work, (b) compute
//! batches interleave with later chunks for deeper dispatch/compute
//! overlap, and (c) a long interval cannot monopolize a worker thread.
//! DISPATCH_OVER is only reported after the final chunk. Chunk
//! self-messages never interleave with the next superstep's START: the
//! manager does not start superstep `s+1` until every dispatcher reported
//! DISPATCH_OVER for `s` and every computer flushed.
//!
//! ## Run emission
//!
//! Messages within one source's record are *uniform* (`gen_msg` is called
//! once per vertex), so outgoing buffers are struct-of-arrays
//! [`MsgSlab`]s: each dispatched record appends its destination ids as one
//! *run* sharing a single message value, instead of pushing a
//! `(dst, msg)` tuple per edge. On the dense single-computer path the CSR
//! record is decoded **directly into the slab's destination column**
//! (`take_rec_into`), and flagged records are skipped without decoding at
//! all (`skip_rec`). Buffers are recycled through the shared
//! [`MsgSlabPool`](crate::MsgSlabPool) rather than allocated per flush,
//! and when combining is enabled same-destination messages are merged at
//! push time by an adjacent-duplicate check that exploits CSR source
//! ordering instead of sorting every batch.
//!
//! ## Sparse (frontier-driven) dispatch
//!
//! When the superstep's frontier is sparse, sweeping the whole interval
//! reads mostly-skippable records. In **sparse mode** the dispatcher
//! instead iterates the set bits of the active-vertex bitmap
//! ([`crate::Frontier`]) and *seeks* to each active vertex's edge run via
//! the CSR word-offset index, with adjacent active vertices coalesced into
//! one contiguous read ([`gpsa_graph::SeekCursor`]); the touched window is
//! `madvise(Random)`d instead of the whole map. The mode is chosen per
//! dispatcher per superstep from the interval's bitmap popcount carried on
//! START ([`crate::DispatchMode`]); dense sweeps re-advise `Sequential`.
//! Because the bitmap is a superset of the flag-clear set and both modes
//! visit candidates in ascending id order with the same flag check, the
//! two modes dispatch byte-identical message streams. Programs with
//! `always_dispatch` and strided assignments always use the dense path
//! (their frontier is the whole interval / non-contiguous).

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use actor::{Actor, Addr, Ctx};
use gpsa_graph::{GraphSnapshot, VertexId};
use gpsa_mmap::Advice;

use crate::computer::{ComputeCmd, Computer};
use crate::config::DispatchMode;
use crate::manager::{Manager, ManagerMsg};
use crate::partition::DispatchAssignment;
use crate::program::{GraphMeta, VertexProgram};
use crate::slab::{MsgSlab, MsgSlabPool};
use crate::value_file::ValueFile;
use crate::word::{clear_flag, is_flagged};
use crate::Router;
use crate::VertexValue;

/// Mailbox protocol of a dispatch actor.
#[derive(Debug)]
pub(crate) enum DispatchCmd {
    /// ITERATION_START for `superstep`, reading the given dispatch column.
    /// `active` is the manager's popcount of this dispatcher's assignment
    /// in the frontier bitmap — the density input for the sparse/dense
    /// choice.
    Start {
        superstep: u64,
        dispatch_col: u32,
        active: u64,
    },
    /// Continue the current superstep's scan over `range` (a cooperative
    /// self-message; the first ~chunk's worth of `range` is processed and
    /// the rest re-enqueued). The sparse/dense choice made at START holds
    /// for every chunk of the superstep.
    Chunk {
        superstep: u64,
        dispatch_col: u32,
        range: Range<VertexId>,
    },
    /// SYSTEM_OVER.
    Shutdown,
}

pub(crate) struct Dispatcher<P: VertexProgram> {
    /// Index of this dispatcher (stable; used for per-actor statistics).
    pub id: usize,
    pub program: Arc<P>,
    /// The merged live-graph view: the immutable CSR plus any delta
    /// overlay, so every dispatch mode sees mutations without
    /// re-preprocessing.
    pub graph: Arc<GraphSnapshot>,
    pub values: Arc<ValueFile>,
    pub meta: GraphMeta,
    pub assignment: DispatchAssignment,
    pub router: Arc<dyn Router>,
    pub computers: Vec<Addr<Computer<P>>>,
    pub manager: Addr<Manager<P>>,
    /// Per-computer output buffers, flushed at `msg_batch` destinations.
    pub buffers: Vec<MsgSlab<P::MsgVal>>,
    pub msg_batch: usize,
    /// Shared slab free-list backing `buffers` (see [`MsgSlabPool`]).
    pub pool: Arc<MsgSlabPool<P::MsgVal>>,
    /// Edges per cooperative chunk; `u64::MAX` scans the whole interval
    /// in one activation.
    pub chunk_edges: u64,
    /// Messages sent so far in the in-flight superstep (accumulated
    /// across chunks, reported with DISPATCH_OVER).
    pub step_sent: u64,
    /// CSR body words actually read this superstep (accumulated across
    /// chunks, reported with DISPATCH_OVER).
    pub step_streamed: u64,
    /// CSR body *bytes* actually read this superstep. Words measure
    /// logical work; bytes measure physical I/O, which is what the v2
    /// compressed format shrinks.
    pub step_bytes: u64,
    /// Wall-clock µs spent inside this superstep's chunks (accumulated,
    /// reported with DISPATCH_OVER for the phase breakdown).
    pub step_dispatch_us: u64,
    /// Of that, µs spent waiting on [`MsgSlabPool::acquire`] during
    /// flushes — backpressure from computers still holding slabs.
    pub step_slab_wait_us: u64,
    /// Scratch buffer for random-access record decodes on the strided
    /// path (reused across vertices; v2 decodes into it, v1 borrows the
    /// map directly).
    pub scratch: Vec<VertexId>,
    /// Dense sweep, bitmap seeks, or per-superstep choice.
    pub mode: DispatchMode,
    /// Auto-mode density cutoff (below ⇒ sparse).
    pub density_threshold: f64,
    /// The choice made at START, sticky across this superstep's chunks.
    pub sparse_now: bool,
    /// Whether the last madvise issued for our window was `Random` (so a
    /// dense superstep after a sparse one restores `Sequential`).
    pub advised_random: bool,
    /// Dispatch every vertex regardless of its flag (dense programs like
    /// PageRank; see `VertexProgram::always_dispatch`).
    pub always_dispatch: bool,
    /// Merge same-destination messages per batch before sending
    /// (`VertexProgram::combines` && config opt-in).
    pub combine: bool,
    /// Chaos harness: scripted dispatcher panics (per-chunk check).
    #[cfg(feature = "chaos")]
    pub fault: Option<Arc<crate::fault::FaultPlan>>,
}

impl<P: VertexProgram> Dispatcher<P> {
    /// Flush one per-computer buffer, returning how many messages went
    /// out. The buffer is replaced with a recycled slab from the pool;
    /// the computer releases the sent one back after folding it.
    fn flush_buffer(&mut self, owner: usize, update_col: u32) -> u64 {
        if self.buffers[owner].is_empty() {
            return 0;
        }
        debug_assert!(
            !self.buffers[owner].has_open_run(),
            "flush with an unsealed run"
        );
        let wait = Instant::now();
        let fresh = self.pool.acquire();
        self.step_slab_wait_us += wait.elapsed().as_micros() as u64;
        let slab = std::mem::replace(&mut self.buffers[owner], fresh);
        let sent = slab.len() as u64;
        let _ = self.computers[owner].send(ComputeCmd::Batch { update_col, slab });
        sent
    }

    /// Append one dispatched record's messages to the outgoing buffers:
    /// a whole run per owner in run mode, or per-destination combining
    /// pushes when the program combines. Combining merges *adjacent*
    /// duplicates only — the buffer fills in CSR scan order, so one
    /// source's parallel edges and consecutive sources hitting the same
    /// destination merge without sorting; non-adjacent duplicates still
    /// fold correctly at the computer. Combining is an optimization,
    /// never required for correctness.
    fn emit(&mut self, targets: &[VertexId], msg: P::MsgVal, update_col: u32, sent: &mut u64) {
        if self.combine {
            let program = self.program.clone();
            for &dst in targets {
                let owner = self.router.route(dst);
                self.buffers[owner].push_combined(dst, msg, |a, b| program.combine(a, b));
                if self.buffers[owner].len() >= self.msg_batch {
                    *sent += self.flush_buffer(owner, update_col);
                }
            }
        } else if self.computers.len() == 1 {
            self.buffers[0].extend_run(targets, msg);
            if self.buffers[0].len() >= self.msg_batch {
                *sent += self.flush_buffer(0, update_col);
            }
        } else {
            for &dst in targets {
                let owner = self.router.route(dst);
                self.buffers[owner].dst_buf_mut().push(dst);
            }
            for owner in 0..self.buffers.len() {
                self.buffers[owner].close_run(msg);
                if self.buffers[owner].len() >= self.msg_batch {
                    *sent += self.flush_buffer(owner, update_col);
                }
            }
        }
    }

    /// Process one vertex record: skip-or-dispatch, then invalidate
    /// (Algorithm 2's loop body). Used by the sparse and strided paths,
    /// which materialize [`gpsa_graph::VertexEdges`] records; the dense
    /// sequential path is fused into [`run_chunk`](Self::run_chunk).
    #[inline]
    fn dispatch_vertex(
        &mut self,
        rec: gpsa_graph::VertexEdges<'_>,
        dispatch_col: u32,
        update_col: u32,
        sent: &mut u64,
    ) {
        let bits = self.values.load(dispatch_col, rec.vid);
        if !self.always_dispatch && is_flagged(bits) {
            return; // not updated last superstep — skip (Alg. 2 l.8)
        }
        let value = P::Value::from_bits(clear_flag(bits));
        if let Some(msg) = self.program.gen_msg(rec.vid, value, rec.degree, &self.meta) {
            self.emit(rec.targets, msg, update_col, sent);
        }
        // Invalidate after dispatching (Alg. 2 l.20): the slot is now
        // "no update yet" for its next role as update column.
        self.values.invalidate(dispatch_col, rec.vid);
    }

    /// The id range the whole superstep must cover for this assignment.
    /// For strided assignments this is the global `offset..n_vertices`
    /// span; the per-chunk loop applies the stride.
    fn full_range(&self) -> Range<VertexId> {
        match &self.assignment {
            DispatchAssignment::Range(interval) => interval.clone(),
            DispatchAssignment::Strided {
                offset, n_vertices, ..
            } => (*offset).min(*n_vertices)..*n_vertices,
        }
    }

    /// The sparse/dense decision for this superstep. Only contiguous
    /// (Range) assignments without `always_dispatch` are eligible: a dense
    /// program's frontier is its whole interval, and a strided
    /// assignment's active set is non-contiguous in the bitmap anyway.
    fn choose_sparse(&self, active: u64) -> bool {
        if self.always_dispatch || !matches!(self.assignment, DispatchAssignment::Range(_)) {
            return false;
        }
        match self.mode {
            DispatchMode::Dense => false,
            DispatchMode::Sparse => true,
            DispatchMode::Auto => {
                let len = self.assignment.len() as f64;
                len > 0.0 && (active as f64) < self.density_threshold * len
            }
        }
    }

    /// Issue the superstep's madvise: `Random` over just the seek window
    /// (sparse and strided paths), `Sequential` over the interval when a
    /// dense sweep follows a sparse superstep. Advice is a hint; failures
    /// are ignored.
    fn apply_advice(&mut self, dispatch_col: u32) {
        match &self.assignment {
            DispatchAssignment::Strided { .. } => {
                // Hops between records every superstep — advise `Random`
                // over our span once instead of demoting the whole map.
                if !self.advised_random {
                    let _ = self
                        .graph
                        .advise_vertex_range(self.full_range(), Advice::Random);
                    self.advised_random = true;
                }
            }
            DispatchAssignment::Range(interval) => {
                if self.sparse_now {
                    if let Some(window) = self
                        .values
                        .frontier()
                        .bounds(dispatch_col, interval.clone())
                    {
                        let _ = self.graph.advise_vertex_range(window, Advice::Random);
                        self.advised_random = true;
                    }
                } else if self.advised_random {
                    let _ = self
                        .graph
                        .advise_vertex_range(interval.clone(), Advice::Sequential);
                    self.advised_random = false;
                }
            }
        }
    }

    /// Where the current chunk of `range` should stop.
    fn chunk_end(&self, range: &Range<VertexId>) -> VertexId {
        if self.chunk_edges == u64::MAX || range.start >= range.end {
            return range.end;
        }
        match &self.assignment {
            DispatchAssignment::Range(_) => self.graph.chunk_end(range.clone(), self.chunk_edges),
            DispatchAssignment::Strided { stride, .. } => {
                // Random-access path: per-chunk edge counts would cost an
                // index lookup per vertex, so budget by vertex count at the
                // graph's mean degree instead.
                let n = self.graph.n_vertices().max(1) as u64;
                let mean_degree = (self.graph.n_edges() as u64 / n).max(1);
                let vertices = (self.chunk_edges / mean_degree).max(1);
                let span = vertices.saturating_mul(u64::from(*stride));
                (u64::from(range.start).saturating_add(span)).min(u64::from(range.end)) as VertexId
            }
        }
    }

    /// Run one cooperative chunk: scan `[range.start, chunk_end)`, then
    /// either self-send the remainder or finish the superstep (flush all
    /// buffers, report DISPATCH_OVER).
    fn run_chunk(
        &mut self,
        superstep: u64,
        dispatch_col: u32,
        range: Range<VertexId>,
        ctx: &mut Ctx<'_, Self>,
    ) {
        let chunk_start = Instant::now();
        let update_col = 1 - dispatch_col;
        let mut sent = 0u64;
        let graph = self.graph.clone();
        // Remainder to re-enqueue, `None` when this chunk ends the
        // superstep.
        let mut remainder: Option<Range<VertexId>> = None;
        if self.sparse_now {
            // Frontier-driven seeks: visit only bitmap-set vertices, in
            // the same ascending order the dense sweep would, coalescing
            // adjacent runs. The budget is on words actually read, so a
            // sparse chunk does about as much I/O as a dense one.
            let values = self.values.clone();
            let mut cursor = graph.seek_cursor();
            for v in values.frontier().iter_set(dispatch_col, range.clone()) {
                if self.chunk_edges != u64::MAX && cursor.words_read() >= self.chunk_edges {
                    remainder = Some(v..range.end);
                    break;
                }
                let rec = cursor.record(v);
                self.dispatch_vertex(rec, dispatch_col, update_col, &mut sent);
            }
            self.step_streamed += cursor.words_read();
            self.step_bytes += cursor.bytes_read();
        } else {
            let end = self.chunk_end(&range);
            match self.assignment.clone() {
                // Sequential streaming over a contiguous interval — the
                // hot path, fused with the slab: the flag is checked
                // *before* the record is decoded (`skip_rec` advances the
                // cursor without touching edge bytes beyond the index),
                // and a dispatched record's targets decode straight into
                // the outgoing slab's destination column.
                DispatchAssignment::Range(_) => {
                    let values = self.values.clone();
                    let single = !self.combine && self.computers.len() == 1;
                    let mut cursor = graph.cursor(range.start..end);
                    while let Some(vid) = cursor.peek_vid() {
                        let bits = values.load(dispatch_col, vid);
                        if !self.always_dispatch && is_flagged(bits) {
                            cursor.skip_rec(); // Alg. 2 l.8, sans decode
                            continue;
                        }
                        let value = P::Value::from_bits(clear_flag(bits));
                        let degree = graph.degree(vid);
                        match self.program.gen_msg(vid, value, degree, &self.meta) {
                            None => cursor.skip_rec(),
                            Some(msg) if single => {
                                cursor.take_rec_into(self.buffers[0].dst_buf_mut());
                                self.buffers[0].close_run(msg);
                                if self.buffers[0].len() >= self.msg_batch {
                                    sent += self.flush_buffer(0, update_col);
                                }
                            }
                            Some(msg) => {
                                let mut scratch = std::mem::take(&mut self.scratch);
                                scratch.clear();
                                cursor.take_rec_into(&mut scratch);
                                self.emit(&scratch, msg, update_col, &mut sent);
                                self.scratch = scratch;
                            }
                        }
                        values.invalidate(dispatch_col, vid);
                    }
                    self.step_streamed += cursor.words_read();
                    self.step_bytes += cursor.bytes_read();
                }
                // The paper's "simple mod algorithm": random-access reads of
                // every stride-th vertex record. Chunk boundaries are always
                // `offset + k*stride`, so `range.start` stays on-stride.
                DispatchAssignment::Strided { stride, .. } => {
                    let rec_overhead = graph.record_overhead_words();
                    let mut scratch = std::mem::take(&mut self.scratch);
                    let mut v = range.start;
                    while v < end {
                        self.step_streamed += u64::from(graph.degree(v)) + rec_overhead;
                        self.step_bytes += graph.bytes_in_range(v..v + 1);
                        let rec = graph.record_into(v, &mut scratch);
                        self.dispatch_vertex(rec, dispatch_col, update_col, &mut sent);
                        v = match v.checked_add(stride) {
                            Some(next) => next,
                            None => break,
                        };
                    }
                    self.scratch = scratch;
                }
            }
            if end < range.end {
                remainder = Some(end..range.end);
            }
        }
        self.step_sent += sent;
        // Chunk boundary: a panic here leaves the interval part-scanned
        // and part-invalidated — the messiest mid-superstep state the
        // recovery path must absorb.
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault {
            plan.panic_if_due(
                crate::fault::FaultRole::Dispatcher,
                superstep,
                self.step_sent,
            );
        }
        if let Some(rest) = remainder {
            self.step_dispatch_us += chunk_start.elapsed().as_micros() as u64;
            let _ = ctx.addr().send(DispatchCmd::Chunk {
                superstep,
                dispatch_col,
                range: rest,
            });
        } else {
            for owner in 0..self.buffers.len() {
                self.step_sent += self.flush_buffer(owner, update_col);
            }
            self.step_dispatch_us += chunk_start.elapsed().as_micros() as u64;
            let streamed = std::mem::take(&mut self.step_streamed);
            let skipped = match &self.assignment {
                // What a full sweep of the interval would have read,
                // minus what we did read. Zero for dense supersteps.
                DispatchAssignment::Range(interval) => graph
                    .words_in_range(interval.clone())
                    .saturating_sub(streamed),
                // A strided assignment's skipped records interleave other
                // dispatchers' — "skipped" has no per-actor meaning there.
                DispatchAssignment::Strided { .. } => 0,
            };
            let _ = self.manager.send(ManagerMsg::DispatchOver {
                superstep,
                dispatcher: self.id,
                sent: std::mem::take(&mut self.step_sent),
                streamed,
                bytes: std::mem::take(&mut self.step_bytes),
                skipped,
                dispatch_us: std::mem::take(&mut self.step_dispatch_us),
                slab_wait_us: std::mem::take(&mut self.step_slab_wait_us),
            });
        }
    }
}

impl<P: VertexProgram> Actor for Dispatcher<P> {
    type Msg = DispatchCmd;

    fn handle(&mut self, msg: DispatchCmd, ctx: &mut Ctx<'_, Self>) {
        match msg {
            DispatchCmd::Start {
                superstep,
                dispatch_col,
                active,
            } => {
                self.step_sent = 0;
                self.step_streamed = 0;
                self.step_bytes = 0;
                self.step_dispatch_us = 0;
                self.step_slab_wait_us = 0;
                self.sparse_now = self.choose_sparse(active);
                self.apply_advice(dispatch_col);
                let full = self.full_range();
                self.run_chunk(superstep, dispatch_col, full, ctx);
            }
            DispatchCmd::Chunk {
                superstep,
                dispatch_col,
                range,
            } => self.run_chunk(superstep, dispatch_col, range, ctx),
            DispatchCmd::Shutdown => ctx.stop(),
        }
    }
}
