//! The dispatch actor (paper Algorithm 2).
//!
//! Each dispatcher owns a contiguous vertex-id interval of the mmap'ed CSR
//! edge file. On ITERATION_START it streams its interval sequentially:
//! skips vertices whose dispatch-column value carries the not-updated
//! flag, otherwise generates one message value via the program's `genMsg`
//! and routes a copy to the compute actor owning each out-neighbor,
//! batching per destination actor. After a vertex is dispatched its
//! dispatch-column slot is invalidated (flag set) — pre-clearing the slot
//! for its next life as the update column.

use std::sync::Arc;

use actor::{Actor, Addr, Ctx};
use gpsa_graph::{DiskCsr, VertexId};

use crate::computer::{ComputeCmd, Computer};
use crate::manager::{Manager, ManagerMsg};
use crate::program::{GraphMeta, VertexProgram};
use crate::partition::DispatchAssignment;
use crate::value_file::ValueFile;
use crate::word::{clear_flag, is_flagged};
use crate::Router;
use crate::VertexValue;

/// Mailbox protocol of a dispatch actor.
#[derive(Debug)]
pub(crate) enum DispatchCmd {
    /// ITERATION_START for `superstep`, reading the given dispatch column.
    Start { superstep: u64, dispatch_col: u32 },
    /// SYSTEM_OVER.
    Shutdown,
}

pub(crate) struct Dispatcher<P: VertexProgram> {
    /// Index of this dispatcher (stable; used for per-actor statistics).
    pub id: usize,
    pub program: Arc<P>,
    pub graph: Arc<DiskCsr>,
    pub values: Arc<ValueFile>,
    pub meta: GraphMeta,
    pub assignment: DispatchAssignment,
    pub router: Arc<dyn Router>,
    pub computers: Vec<Addr<Computer<P>>>,
    pub manager: Addr<Manager<P>>,
    /// Per-computer output buffers, flushed at `msg_batch` entries.
    pub buffers: Vec<Vec<(VertexId, P::MsgVal)>>,
    pub msg_batch: usize,
    /// Dispatch every vertex regardless of its flag (dense programs like
    /// PageRank; see `VertexProgram::always_dispatch`).
    pub always_dispatch: bool,
    /// Merge same-destination messages per batch before sending
    /// (`VertexProgram::combines` && config opt-in).
    pub combine: bool,
}

impl<P: VertexProgram> Dispatcher<P> {
    /// Flush one per-computer buffer, optionally combining
    /// same-destination messages first (Pregel-combiner style: sort by
    /// destination, fold adjacent duplicates).
    /// Flush one per-computer buffer, returning how many messages went out.
    fn flush_buffer(&mut self, owner: usize, update_col: u32) -> u64 {
        let mut buf = std::mem::take(&mut self.buffers[owner]);
        if buf.is_empty() {
            return 0;
        }
        if self.combine {
            buf.sort_unstable_by_key(|&(dst, _)| dst);
            let mut out: Vec<(VertexId, P::MsgVal)> = Vec::with_capacity(buf.len());
            for (dst, msg) in buf {
                match out.last_mut() {
                    Some((d, m)) if *d == dst => *m = self.program.combine(*m, msg),
                    _ => out.push((dst, msg)),
                }
            }
            buf = out;
        }
        let sent = buf.len() as u64;
        let _ = self.computers[owner].send(ComputeCmd::Batch {
            update_col,
            msgs: buf.into_boxed_slice(),
        });
        sent
    }

    /// Process one vertex record: skip-or-dispatch, then invalidate
    /// (Algorithm 2's loop body).
    #[inline]
    fn dispatch_vertex(
        &mut self,
        rec: gpsa_graph::VertexEdges<'_>,
        dispatch_col: u32,
        update_col: u32,
        sent: &mut u64,
    ) {
        let bits = self.values.load(dispatch_col, rec.vid);
        if !self.always_dispatch && is_flagged(bits) {
            return; // not updated last superstep — skip (Alg. 2 l.8)
        }
        let value = P::Value::from_bits(clear_flag(bits));
        if let Some(msg) = self.program.gen_msg(rec.vid, value, rec.degree, &self.meta) {
            for &dst in rec.targets {
                let owner = self.router.route(dst);
                self.buffers[owner].push((dst, msg));
                if self.buffers[owner].len() >= self.msg_batch {
                    *sent += self.flush_buffer(owner, update_col);
                }
            }
        }
        // Invalidate after dispatching (Alg. 2 l.20): the slot is now
        // "no update yet" for its next role as update column.
        self.values.invalidate(dispatch_col, rec.vid);
    }

    fn run_superstep(&mut self, superstep: u64, dispatch_col: u32) {
        let update_col = 1 - dispatch_col;
        let mut sent = 0u64;
        let graph = self.graph.clone();
        match self.assignment.clone() {
            // Sequential streaming over a contiguous interval — the
            // efficient path.
            DispatchAssignment::Range(interval) => {
                for rec in graph.cursor(interval) {
                    self.dispatch_vertex(rec, dispatch_col, update_col, &mut sent);
                }
            }
            // The paper's "simple mod algorithm": random-access reads of
            // every stride-th vertex record.
            strided @ DispatchAssignment::Strided { .. } => {
                for v in strided.iter() {
                    let rec = graph.vertex_edges(v);
                    self.dispatch_vertex(rec, dispatch_col, update_col, &mut sent);
                }
            }
        }
        for owner in 0..self.buffers.len() {
            sent += self.flush_buffer(owner, update_col);
        }
        let _ = self.manager.send(ManagerMsg::DispatchOver {
            superstep,
            dispatcher: self.id,
            sent,
        });
    }
}

impl<P: VertexProgram> Actor for Dispatcher<P> {
    type Msg = DispatchCmd;

    fn handle(&mut self, msg: DispatchCmd, ctx: &mut Ctx<'_, Self>) {
        match msg {
            DispatchCmd::Start {
                superstep,
                dispatch_col,
            } => self.run_superstep(superstep, dispatch_col),
            DispatchCmd::Shutdown => ctx.stop(),
        }
    }
}
