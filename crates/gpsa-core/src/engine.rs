//! Engine front end: wires the actor graph, blocks for the result,
//! extracts final values, and handles crash recovery / resume.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use actor::System;

use crate::computer::Computer;
use crate::config::{EngineConfig, IntervalStrategy, RouterStrategy, Termination};
use crate::dispatcher::Dispatcher;
use crate::manager::{Manager, ManagerMsg, ManagerReport};
use crate::partition::{
    edge_balanced_intervals, strided_assignments, uniform_intervals, DispatchAssignment, ModRouter,
    RangeRouter, Router,
};
use crate::program::{GraphMeta, VertexProgram};
use crate::report::{RunOutcome, RunReport};
use crate::slab::{MsgSlabPool, OverlapStats};
use crate::value_file::ValueFile;
use crate::word::{clear_flag, is_flagged};
use crate::VertexValue;
use gpsa_graph::{DiskCsr, EdgeList, GraphSnapshot};

/// Errors surfaced by [`Engine::run`].
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem / mapping failure.
    Io(std::io::Error),
    /// Inconsistent inputs (e.g. value file does not match the graph).
    Config(String),
    /// The actor pipeline failed to report (worker panic or deadlock).
    Protocol(String),
    /// The self-healing loop exhausted its retry budget; each element is
    /// the cause of one failed attempt, in order.
    RetriesExhausted(Vec<String>),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "engine I/O error: {e}"),
            EngineError::Config(m) => write!(f, "engine configuration error: {m}"),
            EngineError::Protocol(m) => write!(f, "engine protocol error: {m}"),
            EngineError::RetriesExhausted(causes) => write!(
                f,
                "self-healing gave up after {} failed attempt(s): [{}]",
                causes.len(),
                causes.join("; ")
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<crate::value_file::ValueFileError> for EngineError {
    fn from(e: crate::value_file::ValueFileError) -> Self {
        match e {
            crate::value_file::ValueFileError::Io(e) => EngineError::Io(e),
            other => EngineError::Config(other.to_string()),
        }
    }
}

/// The GPSA engine. Construct once with a config, run programs against
/// on-disk CSR graphs.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
}

/// How long the caller waits for the actor pipeline before declaring a
/// protocol failure (a worker panicked and the manager can never finish).
/// Generous: full-scale datasets legitimately run for minutes; the
/// timeout only exists so a panicked worker cannot hang the caller
/// forever.
const RUN_TIMEOUT: Duration = Duration::from_secs(4 * 3600);

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Path of the value file used for the CSR at `csr_path`.
    pub fn value_file_path(&self, csr_path: &Path) -> PathBuf {
        let stem = csr_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "graph".to_string());
        self.config.work_dir.join(format!("{stem}.gval"))
    }

    /// Convenience: materialize `edges` as a CSR in the work dir under
    /// `name`, then [`run`](Self::run) the program on it.
    pub fn run_edge_list<P: VertexProgram>(
        &self,
        edges: EdgeList,
        name: &str,
        program: P,
    ) -> Result<RunReport<P::Value>, EngineError> {
        std::fs::create_dir_all(&self.config.work_dir)?;
        let csr_path = self.config.work_dir.join(format!("{name}.gcsr"));
        gpsa_graph::preprocess::edges_to_csr(
            edges,
            &csr_path,
            &gpsa_graph::preprocess::PreprocessOptions::default(),
        )?;
        self.run(&csr_path, program)
    }

    /// Run `program` over the on-disk CSR at `csr_path` until the
    /// configured termination condition, and return the final values.
    ///
    /// With `config.resume` set and a recoverable value file present, the
    /// run resumes from the last committed superstep (paper §IV-G);
    /// otherwise the value file is (re)initialized from
    /// [`VertexProgram::init`].
    pub fn run<P: VertexProgram>(
        &self,
        csr_path: &Path,
        program: P,
    ) -> Result<RunReport<P::Value>, EngineError> {
        std::fs::create_dir_all(&self.config.work_dir)?;
        let graph = Arc::new(DiskCsr::open(csr_path)?);
        let vf_path = self.value_file_path(csr_path);
        self.run_shared(&graph, &vf_path, program)
    }

    /// Run `program` over a merged live-graph snapshot (CSR ⊕ delta
    /// overlay). This is what [`Engine::run_shared`] wraps; callers that
    /// already hold a [`GraphSnapshot`] (the serving layer, live-graph
    /// benches) come here directly so mutated graphs run without
    /// re-preprocessing.
    pub fn run_snapshot<P: VertexProgram>(
        &self,
        graph: &Arc<GraphSnapshot>,
        value_file: &Path,
        program: P,
    ) -> Result<RunReport<P::Value>, EngineError> {
        self.run_inner(graph, value_file, program, None)
    }

    /// Incrementally re-converge `program` on a mutated snapshot from the
    /// `prior` committed values of a run on the pre-mutation graph,
    /// instead of recomputing from scratch.
    ///
    /// The initial frontier is seeded from the delta: every source of an
    /// added edge that holds a non-initial prior value re-dispatches its
    /// value, and convergence propagates from there. This is sound only
    /// for monotone frontier-driven programs (BFS / CC / SSSP — values
    /// only improve as edges are added), so it rejects
    /// `always_dispatch` programs (PageRank) and snapshots whose delta
    /// contains removals — both need a full recompute. `prior` must come
    /// from the same program on the same graph id (its length may be
    /// smaller than the snapshot's vertex count when the delta grew the
    /// graph; new vertices fall back to [`VertexProgram::init`]).
    ///
    /// The run's [`RunReport::seeded_frontier`] counts the seeds; the
    /// correctness oracle is a full [`Engine::run_snapshot`] on the same
    /// snapshot, which must produce bit-identical values.
    pub fn run_incremental<P: VertexProgram>(
        &self,
        graph: &Arc<GraphSnapshot>,
        value_file: &Path,
        program: P,
        prior: &[P::Value],
    ) -> Result<RunReport<P::Value>, EngineError> {
        if program.always_dispatch() {
            return Err(EngineError::Config(
                "incremental recompute needs a frontier-driven program; \
                 always-dispatch programs (PageRank) must recompute in full"
                    .into(),
            ));
        }
        if graph.overlay().has_removals() {
            return Err(EngineError::Config(
                "incremental recompute is additions-only; a delta with \
                 removals needs a full recompute (or compaction first)"
                    .into(),
            ));
        }
        if prior.len() > graph.n_vertices() {
            return Err(EngineError::Config(format!(
                "prior values cover {} vertices but the snapshot has {}",
                prior.len(),
                graph.n_vertices()
            )));
        }
        let meta = GraphMeta {
            n_vertices: graph.n_vertices() as u64,
            n_edges: graph.n_edges() as u64,
        };
        // Seed the sources of effectively-added edges. A source still at
        // its inactive initial value (e.g. BFS-unreached) has nothing to
        // re-send — if the delta later reaches it, the normal update
        // path re-activates it with its whole merged edge list.
        let mut seeds = std::collections::HashSet::new();
        graph.overlay().for_each_added(|src, _dst| {
            if (src as usize) < prior.len() && !seeds.contains(&src) {
                let (init_val, init_active) = program.init(src, &meta);
                let untouched = prior[src as usize].to_bits() == init_val.to_bits() && !init_active;
                if !untouched {
                    seeds.insert(src);
                }
            }
        });
        self.run_inner(graph, value_file, program, Some((prior, seeds)))
    }

    /// Run `program` over an **already-opened, shared** graph, writing the
    /// per-run state to an explicit value-file path.
    ///
    /// This is the serving-layer entry point: a resident [`DiskCsr`] is one
    /// mmap shared read-only by any number of concurrent runs, while each
    /// run keeps its own private scratch state in `value_file`. Callers are
    /// responsible for handing every *concurrent* run a distinct
    /// `value_file` path (e.g. a job-scoped temp dir) — the value file is
    /// mutated in place and two runs sharing one path would corrupt each
    /// other. [`Engine::run`] derives a per-graph path under
    /// `config.work_dir` and delegates here.
    pub fn run_shared<P: VertexProgram>(
        &self,
        graph: &Arc<DiskCsr>,
        value_file: &Path,
        program: P,
    ) -> Result<RunReport<P::Value>, EngineError> {
        let snapshot = Arc::new(GraphSnapshot::from_csr(graph.clone()));
        self.run_inner(&snapshot, value_file, program, None)
    }

    /// The shared run body behind [`run_snapshot`](Self::run_snapshot),
    /// [`run_shared`](Self::run_shared) and
    /// [`run_incremental`](Self::run_incremental). When `incremental` is
    /// set, the value file is created from the prior values with the seed
    /// set as the initial frontier (resume is bypassed — an incremental
    /// run is its own fresh state).
    fn run_inner<P: VertexProgram>(
        &self,
        graph: &Arc<GraphSnapshot>,
        value_file: &Path,
        program: P,
        incremental: Option<(&[P::Value], std::collections::HashSet<u32>)>,
    ) -> Result<RunReport<P::Value>, EngineError> {
        let t0 = Instant::now();
        if let Termination::Supersteps(0) = self.config.termination {
            return Err(EngineError::Config("Termination::Supersteps(0)".into()));
        }
        if let Some(parent) = value_file.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let graph = graph.clone();
        // Readahead hint: Range assignments stream the edge file
        // sequentially. Strided dispatch hops between records — each
        // dispatcher advises `Random` over just its own span on its first
        // START (see `Dispatcher::apply_advice`) instead of demoting the
        // whole map here; likewise sparse supersteps advise `Random` over
        // only the seek window they actually touch.
        if !matches!(self.config.intervals, IntervalStrategy::Strided) {
            let _ = graph.advise_sequential();
        }
        if self.config.hugepages {
            // Best-effort THP backing for the big mappings; ignored where
            // the kernel or filesystem can't honor it.
            let _ = graph.advise_hugepage();
        }
        let meta = GraphMeta {
            n_vertices: graph.n_vertices() as u64,
            n_edges: graph.n_edges() as u64,
        };
        let program = Arc::new(program);

        // Create or recover the value file.
        let (values, resume_superstep, dispatch_col) =
            if incremental.is_none() && self.config.resume && value_file.exists() {
                let vf = ValueFile::open(value_file)?;
                if vf.n_vertices() != graph.n_vertices() {
                    return Err(EngineError::Config(format!(
                        "value file has {} vertices, graph has {}",
                        vf.n_vertices(),
                        graph.n_vertices()
                    )));
                }
                let resume = vf.recover();
                let col = vf.header().next_dispatch_col;
                (Arc::new(vf), resume, col)
            } else {
                let p = program.clone();
                let m = meta;
                let vf = match &incremental {
                    Some((prior, seeds)) => {
                        // Warm start: carry the prior run's committed values
                        // and wake only the delta's seed vertices.
                        ValueFile::create(value_file, graph.n_vertices(), |v| {
                            if (v as usize) < prior.len() {
                                (prior[v as usize], seeds.contains(&v))
                            } else {
                                p.init(v, &m)
                            }
                        })?
                    }
                    None => ValueFile::create(value_file, graph.n_vertices(), |v| p.init(v, &m))?,
                };
                (Arc::new(vf), 0, 0)
            };
        if self.config.hugepages {
            let _ = values.advise_hugepage();
        }

        // Routing and vertex ownership are attempt-invariant.
        let router: Arc<dyn Router> = match self.config.router {
            RouterStrategy::Mod => Arc::new(ModRouter::new(self.config.n_computers)),
            RouterStrategy::Range => Arc::new(RangeRouter::new(
                self.config.n_computers,
                graph.n_vertices(),
            )),
        };
        // Dense programs need each computer to sweep its owned vertices at
        // flush; sparse programs skip the sweep entirely (empty lists).
        let mut owned_template: Vec<Vec<u32>> = vec![Vec::new(); self.config.n_computers];
        if program.always_dispatch() {
            for v in 0..graph.n_vertices() as u32 {
                owned_template[router.route(v)].push(v);
            }
        }
        let assignments: Vec<DispatchAssignment> = match self.config.intervals {
            IntervalStrategy::Uniform => {
                uniform_intervals(graph.n_vertices(), self.config.n_dispatchers)
                    .into_iter()
                    .map(DispatchAssignment::Range)
                    .collect()
            }
            IntervalStrategy::EdgeBalanced => {
                edge_balanced_intervals(&graph, self.config.n_dispatchers)
                    .into_iter()
                    .map(DispatchAssignment::Range)
                    .collect()
            }
            IntervalStrategy::Strided => {
                strided_assignments(graph.n_vertices(), self.config.n_dispatchers)
            }
        };

        // Self-healing loop: spin up the actor fleet and wait for its
        // report; if the fleet dies (FailureEvent escalation from the
        // actor runtime) or wedges (no superstep commits within the
        // watchdog deadline), tear it down, roll the value file back to
        // the last committed superstep, and re-run — with exponential
        // backoff, up to `max_superstep_retries` times.
        enum Attempt {
            Done(ManagerReport),
            /// Actors died but their worker threads are healthy (a join
            /// is safe).
            Failed(String),
            /// A worker may be stuck inside a handler; joining could hang.
            Wedged(String),
        }

        let pool = Arc::new(MsgSlabPool::<P::MsgVal>::new(self.config.msg_batch.max(1)));
        let overlap = Arc::new(OverlapStats::new());
        let mut resume_superstep = resume_superstep;
        let mut dispatch_col = dispatch_col;
        let mut retry_causes: Vec<String> = Vec::new();

        let report = 'attempts: loop {
            let system = System::builder()
                .workers(self.config.workers)
                .batch(self.config.actor_batch)
                .name("gpsa")
                .build();
            // Escalations arrive from the dying actor's worker thread;
            // the channel is drained by the select below.
            let (failure_tx, failure_rx) = crossbeam_channel::bounded::<String>(64);
            system.set_failure_handler(move |ev| {
                let restarts = if ev.supervised {
                    format!(" after {} restart(s)", ev.restarts_used)
                } else {
                    String::new()
                };
                let detail = ev
                    .detail
                    .as_deref()
                    .map(|d| format!(": {d}"))
                    .unwrap_or_default();
                let _ = failure_tx.try_send(format!("{} died{restarts}{detail}", ev.actor));
            });
            let (report_tx, report_rx) = crossbeam_channel::bounded(1);
            let progress = Arc::new(AtomicU64::new(0));
            #[allow(unused_mut)]
            let mut mgr = Manager::<P>::new(
                values.clone(),
                self.config.termination,
                self.config.durable,
                self.config.crash_after_dispatch,
                self.config.crash_in_compute,
                report_tx,
                overlap.clone(),
                resume_superstep,
                dispatch_col,
                progress.clone(),
            );
            #[cfg(feature = "chaos")]
            {
                mgr.fault = self.config.fault_plan.clone();
                values.set_fault_plan(self.config.fault_plan.clone());
            }
            let manager = system.spawn(mgr);

            let computers: Vec<_> = owned_template
                .iter()
                .map(|owned| {
                    #[allow(unused_mut)]
                    let mut comp = Computer::new(
                        program.clone(),
                        values.clone(),
                        meta,
                        manager.clone(),
                        owned.clone(),
                        pool.clone(),
                        overlap.clone(),
                        self.config.batch_fold,
                    );
                    #[cfg(feature = "chaos")]
                    {
                        comp.fault = self.config.fault_plan.clone();
                    }
                    system.spawn(comp)
                })
                .collect();

            let dispatchers: Vec<_> = assignments
                .iter()
                .cloned()
                .enumerate()
                .map(|(id, assignment)| {
                    system.spawn(Dispatcher {
                        id,
                        program: program.clone(),
                        graph: graph.clone(),
                        values: values.clone(),
                        meta,
                        assignment,
                        router: router.clone(),
                        computers: computers.clone(),
                        manager: manager.clone(),
                        buffers: (0..self.config.n_computers)
                            .map(|_| crate::slab::MsgSlab::new())
                            .collect(),
                        msg_batch: self.config.msg_batch.max(1),
                        pool: pool.clone(),
                        chunk_edges: if self.config.dispatch_chunk
                            == EngineConfig::MONOLITHIC_DISPATCH
                        {
                            u64::MAX
                        } else {
                            self.config.dispatch_chunk.max(1) as u64
                        },
                        step_sent: 0,
                        step_streamed: 0,
                        step_bytes: 0,
                        step_dispatch_us: 0,
                        step_slab_wait_us: 0,
                        scratch: Vec::new(),
                        always_dispatch: program.always_dispatch(),
                        combine: self.config.combine_messages && program.combines(),
                        mode: self.config.dispatch_mode,
                        density_threshold: self.config.sparse_density_threshold,
                        sparse_now: false,
                        advised_random: false,
                        #[cfg(feature = "chaos")]
                        fault: self.config.fault_plan.clone(),
                    })
                })
                .collect();

            let wired = manager
                .send(ManagerMsg::Wire {
                    dispatchers,
                    computers,
                    assignments: assignments.clone(),
                })
                .is_ok();

            let outcome = if !wired {
                Attempt::Failed("manager died before wiring".into())
            } else {
                let mut last_progress = progress.load(Ordering::Relaxed);
                let mut last_commit = Instant::now();
                'wait: loop {
                    crossbeam_channel::select! {
                        recv(report_rx) -> r => match r {
                            Ok(rep) => break 'wait Attempt::Done(rep),
                            Err(_) => {
                                // A dying manager drops its report channel a
                                // hair before its FailureEvent lands; give
                                // the escalation a beat and prefer its
                                // richer cause over the bare disconnect.
                                let cause = failure_rx
                                    .recv_timeout(Duration::from_millis(200))
                                    .unwrap_or_else(|_| {
                                        "manager terminated without reporting".into()
                                    });
                                break 'wait Attempt::Failed(cause);
                            }
                        },
                        recv(failure_rx) -> f => break 'wait Attempt::Failed(
                            f.unwrap_or_else(|_| "actor failure".into()),
                        ),
                        default(Duration::from_millis(20)) => {
                            if t0.elapsed() > RUN_TIMEOUT {
                                break 'wait Attempt::Wedged(
                                    "run exceeded the global timeout".into(),
                                );
                            }
                            if let Some(deadline) = self.config.superstep_deadline {
                                let p = progress.load(Ordering::Relaxed);
                                if p != last_progress {
                                    last_progress = p;
                                    last_commit = Instant::now();
                                } else if last_commit.elapsed() >= deadline {
                                    break 'wait Attempt::Wedged(format!(
                                        "watchdog: no superstep committed within {deadline:?}",
                                    ));
                                }
                            }
                        },
                    }
                }
            };

            let cause = match outcome {
                Attempt::Done(report) => {
                    system.shutdown();
                    break 'attempts report;
                }
                Attempt::Failed(cause) => {
                    // The dead actor's thread already unwound; the rest of
                    // the fleet is responsive, so a joining shutdown is
                    // safe and leaves no thread touching the value file.
                    system.shutdown();
                    cause
                }
                Attempt::Wedged(cause) => {
                    // A wedged worker cannot be joined without hanging the
                    // caller; signal shutdown and leak the threads. They
                    // may still run actor code briefly, so the deadline
                    // must be set well above the worst-case superstep
                    // time (see EngineConfig::superstep_deadline).
                    system.abandon();
                    cause
                }
            };
            retry_causes.push(cause);
            if retry_causes.len() as u32 > self.config.max_superstep_retries {
                return Err(EngineError::RetriesExhausted(retry_causes));
            }
            // Exponential backoff: 10ms, 20ms, ... capped at 640ms.
            let shift = (retry_causes.len() as u32 - 1).min(6);
            std::thread::sleep(Duration::from_millis(10u64 << shift));
            // Roll back to the last committed superstep and go again.
            resume_superstep = values.recover();
            dispatch_col = values.header().next_dispatch_col;
        };

        // Extract final values: the freshest column is the one the *next*
        // superstep would dispatch from.
        let outcome = if report.crashed {
            RunOutcome::Crashed
        } else {
            RunOutcome::Completed
        };
        let values_out = if report.crashed {
            Vec::new()
        } else {
            let fresh = report.final_dispatch_col;
            let old = 1 - fresh;
            (0..graph.n_vertices() as u32)
                .map(|v| {
                    let f_bits = values.load(fresh, v);
                    let f_val = P::Value::from_bits(clear_flag(f_bits));
                    if !is_flagged(f_bits) {
                        // Updated in the final superstep: authoritative.
                        f_val
                    } else {
                        let o_val = P::Value::from_bits(clear_flag(values.load(old, v)));
                        program.freshest(o_val, f_val)
                    }
                })
                .collect()
        };

        Ok(RunReport {
            values: values_out,
            outcome,
            supersteps: report.supersteps_run,
            step_times: report.step_times,
            activated: report.activated,
            deltas: report.deltas,
            messages: report.messages,
            dispatcher_messages: report.dispatcher_messages,
            edges_streamed: report.edges_streamed,
            edge_bytes_streamed: report.edge_bytes_streamed,
            edges_skipped: report.edges_skipped,
            frontier_density: report.frontier_density,
            seeded_frontier: incremental
                .as_ref()
                .map(|(_, seeds)| seeds.len() as u64)
                .unwrap_or(0),
            pool_hit_bytes: pool.hit_bytes(),
            pool_miss_bytes: pool.miss_bytes(),
            phases: report.phases,
            first_batch: report.first_batch,
            elapsed: t0.elapsed(),
            retry_attempts: retry_causes.len() as u32,
            retry_causes,
        })
    }
}
