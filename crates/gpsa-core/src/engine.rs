//! Engine front end: wires the actor graph, blocks for the result,
//! extracts final values, and handles crash recovery / resume.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use actor::System;

use crate::computer::Computer;
use crate::config::{EngineConfig, IntervalStrategy, RouterStrategy, Termination};
use crate::dispatcher::Dispatcher;
use crate::manager::{Manager, ManagerMsg};
use crate::partition::{
    edge_balanced_intervals, strided_assignments, uniform_intervals, DispatchAssignment,
    ModRouter, RangeRouter, Router,
};
use crate::program::{GraphMeta, VertexProgram};
use crate::report::{RunOutcome, RunReport};
use crate::slab::{MsgSlabPool, OverlapStats};
use crate::value_file::ValueFile;
use crate::word::{clear_flag, is_flagged};
use crate::VertexValue;
use gpsa_graph::{DiskCsr, EdgeList};

/// Errors surfaced by [`Engine::run`].
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem / mapping failure.
    Io(std::io::Error),
    /// Inconsistent inputs (e.g. value file does not match the graph).
    Config(String),
    /// The actor pipeline failed to report (worker panic or deadlock).
    Protocol(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "engine I/O error: {e}"),
            EngineError::Config(m) => write!(f, "engine configuration error: {m}"),
            EngineError::Protocol(m) => write!(f, "engine protocol error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// The GPSA engine. Construct once with a config, run programs against
/// on-disk CSR graphs.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
}

/// How long the caller waits for the actor pipeline before declaring a
/// protocol failure (a worker panicked and the manager can never finish).
/// Generous: full-scale datasets legitimately run for minutes; the
/// timeout only exists so a panicked worker cannot hang the caller
/// forever.
const RUN_TIMEOUT: Duration = Duration::from_secs(4 * 3600);

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Path of the value file used for the CSR at `csr_path`.
    pub fn value_file_path(&self, csr_path: &Path) -> PathBuf {
        let stem = csr_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "graph".to_string());
        self.config.work_dir.join(format!("{stem}.gval"))
    }

    /// Convenience: materialize `edges` as a CSR in the work dir under
    /// `name`, then [`run`](Self::run) the program on it.
    pub fn run_edge_list<P: VertexProgram>(
        &self,
        edges: EdgeList,
        name: &str,
        program: P,
    ) -> Result<RunReport<P::Value>, EngineError> {
        std::fs::create_dir_all(&self.config.work_dir)?;
        let csr_path = self.config.work_dir.join(format!("{name}.gcsr"));
        gpsa_graph::preprocess::edges_to_csr(
            edges,
            &csr_path,
            &gpsa_graph::preprocess::PreprocessOptions::default(),
        )?;
        self.run(&csr_path, program)
    }

    /// Run `program` over the on-disk CSR at `csr_path` until the
    /// configured termination condition, and return the final values.
    ///
    /// With `config.resume` set and a recoverable value file present, the
    /// run resumes from the last committed superstep (paper §IV-G);
    /// otherwise the value file is (re)initialized from
    /// [`VertexProgram::init`].
    pub fn run<P: VertexProgram>(
        &self,
        csr_path: &Path,
        program: P,
    ) -> Result<RunReport<P::Value>, EngineError> {
        let t0 = Instant::now();
        if let Termination::Supersteps(0) = self.config.termination {
            return Err(EngineError::Config("Termination::Supersteps(0)".into()));
        }
        std::fs::create_dir_all(&self.config.work_dir)?;
        let graph = Arc::new(DiskCsr::open(csr_path)?);
        // Readahead hint: Range assignments stream the edge file
        // sequentially; Strided dispatch hops between records, where
        // sequential readahead would only pollute the page cache.
        match self.config.intervals {
            IntervalStrategy::Strided => {
                let _ = graph.advise_random();
            }
            IntervalStrategy::Uniform | IntervalStrategy::EdgeBalanced => {
                let _ = graph.advise_sequential();
            }
        }
        let meta = GraphMeta {
            n_vertices: graph.n_vertices() as u64,
            n_edges: graph.n_edges() as u64,
        };
        let program = Arc::new(program);

        // Create or recover the value file.
        let vf_path = self.value_file_path(csr_path);
        let (values, resume_superstep, dispatch_col) =
            if self.config.resume && vf_path.exists() {
                let vf = ValueFile::open(&vf_path)?;
                if vf.n_vertices() != graph.n_vertices() {
                    return Err(EngineError::Config(format!(
                        "value file has {} vertices, graph has {}",
                        vf.n_vertices(),
                        graph.n_vertices()
                    )));
                }
                let resume = vf.recover();
                let col = vf.header().next_dispatch_col;
                (Arc::new(vf), resume, col)
            } else {
                let p = program.clone();
                let m = meta;
                let vf = ValueFile::create(&vf_path, graph.n_vertices(), |v| p.init(v, &m))?;
                (Arc::new(vf), 0, 0)
            };

        // Spin up the actor system and the three roles.
        let system = System::builder()
            .workers(self.config.workers)
            .batch(self.config.actor_batch)
            .name("gpsa")
            .build();
        let (report_tx, report_rx) = crossbeam_channel::bounded(1);
        let pool = Arc::new(MsgSlabPool::<P::MsgVal>::new(self.config.msg_batch.max(1)));
        let overlap = Arc::new(OverlapStats::new());
        let manager = system.spawn(Manager::<P>::new(
            values.clone(),
            self.config.termination,
            self.config.durable,
            self.config.crash_after_dispatch,
            report_tx,
            overlap.clone(),
            resume_superstep,
            dispatch_col,
        ));

        let router: Arc<dyn Router> = match self.config.router {
            RouterStrategy::Mod => Arc::new(ModRouter::new(self.config.n_computers)),
            RouterStrategy::Range => Arc::new(RangeRouter::new(
                self.config.n_computers,
                graph.n_vertices(),
            )),
        };
        // Dense programs need each computer to sweep its owned vertices at
        // flush; sparse programs skip the sweep entirely (empty lists).
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); self.config.n_computers];
        if program.always_dispatch() {
            for v in 0..graph.n_vertices() as u32 {
                owned[router.route(v)].push(v);
            }
        }
        let computers: Vec<_> = owned
            .into_iter()
            .map(|owned| {
                system.spawn(Computer::new(
                    program.clone(),
                    values.clone(),
                    meta,
                    manager.clone(),
                    owned,
                    pool.clone(),
                    overlap.clone(),
                ))
            })
            .collect();

        let assignments: Vec<DispatchAssignment> = match self.config.intervals {
            IntervalStrategy::Uniform => uniform_intervals(graph.n_vertices(), self.config.n_dispatchers)
                .into_iter()
                .map(DispatchAssignment::Range)
                .collect(),
            IntervalStrategy::EdgeBalanced => edge_balanced_intervals(&graph, self.config.n_dispatchers)
                .into_iter()
                .map(DispatchAssignment::Range)
                .collect(),
            IntervalStrategy::Strided => {
                strided_assignments(graph.n_vertices(), self.config.n_dispatchers)
            }
        };
        let dispatchers: Vec<_> = assignments
            .into_iter()
            .enumerate()
            .map(|(id, assignment)| {
                system.spawn(Dispatcher {
                    id,
                    program: program.clone(),
                    graph: graph.clone(),
                    values: values.clone(),
                    meta,
                    assignment,
                    router: router.clone(),
                    computers: computers.clone(),
                    manager: manager.clone(),
                    buffers: vec![Vec::new(); self.config.n_computers],
                    msg_batch: self.config.msg_batch.max(1),
                    pool: pool.clone(),
                    chunk_edges: if self.config.dispatch_chunk == EngineConfig::MONOLITHIC_DISPATCH
                    {
                        u64::MAX
                    } else {
                        self.config.dispatch_chunk.max(1) as u64
                    },
                    step_sent: 0,
                    always_dispatch: program.always_dispatch(),
                    combine: self.config.combine_messages && program.combines(),
                })
            })
            .collect();

        manager
            .send(ManagerMsg::Wire {
                dispatchers,
                computers,
            })
            .map_err(|_| EngineError::Protocol("manager died before wiring".into()))?;

        let report = report_rx
            .recv_timeout(RUN_TIMEOUT)
            .map_err(|_| EngineError::Protocol("run did not complete (worker panic?)".into()));
        system.shutdown();
        let report = report?;

        // Extract final values: the freshest column is the one the *next*
        // superstep would dispatch from.
        let outcome = if report.crashed {
            RunOutcome::Crashed
        } else {
            RunOutcome::Completed
        };
        let values_out = if report.crashed {
            Vec::new()
        } else {
            let fresh = report.final_dispatch_col;
            let old = 1 - fresh;
            (0..graph.n_vertices() as u32)
                .map(|v| {
                    let f_bits = values.load(fresh, v);
                    let f_val = P::Value::from_bits(clear_flag(f_bits));
                    if !is_flagged(f_bits) {
                        // Updated in the final superstep: authoritative.
                        f_val
                    } else {
                        let o_val = P::Value::from_bits(clear_flag(values.load(old, v)));
                        program.freshest(o_val, f_val)
                    }
                })
                .collect()
        };

        Ok(RunReport {
            values: values_out,
            outcome,
            supersteps: report.supersteps_run,
            step_times: report.step_times,
            activated: report.activated,
            deltas: report.deltas,
            messages: report.messages,
            dispatcher_messages: report.dispatcher_messages,
            pool_hits: pool.hits(),
            pool_misses: pool.misses(),
            first_batch: report.first_batch,
            elapsed: t0.elapsed(),
        })
    }
}
