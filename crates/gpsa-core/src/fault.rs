//! Deterministic, seeded fault injection — the chaos harness
//! (`--features chaos`).
//!
//! A [`FaultPlan`] is a fixed list of injection points, each of which
//! fires **at most once** per plan. Points are either scripted explicitly
//! (builder methods) or derived from a seed via splitmix64, so a failing
//! run is reproducible from its seed alone — the failpoint discipline of
//! production storage engines (FoundationDB-style simulation), scaled
//! down to one process.
//!
//! The hooks live in the dispatcher (per chunk), computer (per batch and
//! at flush), manager (at superstep start), and
//! [`crate::ValueFile::commit`] (msync failure, torn header). All of them
//! compile away without the `chaos` feature.

use std::sync::atomic::{AtomicBool, Ordering};

/// Which actor role a panic injection targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRole {
    /// A dispatch actor, mid-interval.
    Dispatcher,
    /// A compute actor, mid-fold or at flush.
    Computer,
    /// The manager, at superstep start.
    Manager,
}

/// One scripted injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Panic a dispatcher during `superstep` once the role has sent at
    /// least `after_messages` messages in that superstep.
    DispatcherPanic {
        /// Superstep the panic arms in.
        superstep: u64,
        /// Per-superstep sent-message threshold.
        after_messages: u64,
    },
    /// Panic a computer once it has folded at least `after_messages`
    /// messages within one superstep (checked per batch, any superstep).
    ComputerPanic {
        /// Per-superstep folded-message threshold.
        after_messages: u64,
    },
    /// Panic a computer while it finalizes `superstep` (the flush barrier).
    ComputerFlushPanic {
        /// Superstep whose flush dies.
        superstep: u64,
    },
    /// Panic the manager as it starts `superstep`.
    ManagerPanic {
        /// Superstep whose kickoff dies.
        superstep: u64,
    },
    /// The durable commit of `superstep` fails its data msync.
    MsyncFail {
        /// Superstep whose commit fails.
        superstep: u64,
    },
    /// The commit of `superstep` writes a torn (bad-CRC) header slot and
    /// then dies — a crash mid-header-write.
    TornCommit {
        /// Superstep whose commit tears.
        superstep: u64,
    },
    /// Distributed: kill simulated node `node` as it starts `superstep` —
    /// its first dispatcher to arm the superstep panics, taking the whole
    /// node's system down via failure escalation.
    NodeKill {
        /// Node to kill.
        node: u32,
        /// Superstep the kill arms in.
        superstep: u64,
    },
    /// Distributed: panic a `DistComputer` on `node` mid-fold once it has
    /// folded at least `after_messages` messages in one superstep.
    DistComputerPanic {
        /// Node whose computer dies.
        node: u32,
        /// Per-superstep folded-message threshold.
        after_messages: u64,
    },
    /// Distributed: drop an inter-node message batch leaving `src_node`
    /// during `superstep`. A dropped batch is a *detected* network
    /// failure (the send path panics), never silent loss — silent loss
    /// would let the cluster quiesce on wrong values.
    BatchDrop {
        /// Sending node.
        src_node: u32,
        /// Superstep the drop arms in.
        superstep: u64,
    },
    /// Distributed: delay an inter-node batch leaving `src_node` during
    /// `superstep` by `millis` — a stall the superstep watchdog must
    /// catch if the delay exceeds the configured deadline.
    BatchDelay {
        /// Sending node.
        src_node: u32,
        /// Superstep the delay arms in.
        superstep: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Distributed: the cluster-manifest append for `superstep`'s barrier
    /// writes a torn (short, bad-CRC) record tail and then dies.
    TornManifest {
        /// Superstep whose barrier record tears.
        superstep: u64,
    },
}

/// How a chaos-selected inter-node batch misbehaves (see
/// [`FaultSpec::BatchDrop`] / [`FaultSpec::BatchDelay`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFault {
    /// The batch is lost; the sender treats it as a detected link failure.
    Drop,
    /// The batch is held for this many milliseconds before delivery.
    Delay(u64),
}

/// A seeded, fire-once fault schedule shared by the whole fleet.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<(FaultSpec, AtomicBool)>,
}

/// One step of the splitmix64 sequence — the workspace's standard source
/// of cheap deterministic pseudo-randomness. Public so other chaos
/// harnesses (the serving layer's [`FaultPlan`] counterpart, client retry
/// jitter) derive their schedules from the same generator and stay
/// reproducible from a seed alone.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan tagged with `seed` (fill in points with the `with_*`
    /// builders).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            points: Vec::new(),
        }
    }

    /// Derive `n_points` injections from `seed` alone, targeting
    /// supersteps below `max_superstep`. The same seed always yields the
    /// same schedule.
    pub fn scripted(seed: u64, n_points: usize, max_superstep: u64) -> Self {
        let mut plan = FaultPlan::new(seed);
        let mut state = seed;
        let max_step = max_superstep.max(1);
        for _ in 0..n_points {
            let kind = splitmix64(&mut state) % 6;
            let superstep = splitmix64(&mut state) % max_step;
            let after_messages = splitmix64(&mut state) % 512;
            let spec = match kind {
                0 => FaultSpec::DispatcherPanic {
                    superstep,
                    after_messages,
                },
                1 => FaultSpec::ComputerPanic { after_messages },
                2 => FaultSpec::ComputerFlushPanic { superstep },
                3 => FaultSpec::ManagerPanic { superstep },
                4 => FaultSpec::MsyncFail { superstep },
                _ => FaultSpec::TornCommit { superstep },
            };
            plan = plan.with(spec);
        }
        plan
    }

    /// Derive `n_points` *distributed* injections from `seed` alone,
    /// targeting supersteps below `max_superstep` on nodes below
    /// `n_nodes`. Random plans never include [`FaultSpec::BatchDelay`] —
    /// delays exercise the watchdog's deadline, which a test must size
    /// explicitly; everything else recovers on its own.
    pub fn scripted_dist(seed: u64, n_points: usize, max_superstep: u64, n_nodes: u32) -> Self {
        let mut plan = FaultPlan::new(seed);
        let mut state = seed ^ 0xD157_0000_0000_0000;
        let max_step = max_superstep.max(1);
        let nodes = n_nodes.max(1);
        for _ in 0..n_points {
            let kind = splitmix64(&mut state) % 6;
            let superstep = splitmix64(&mut state) % max_step;
            let node = (splitmix64(&mut state) % nodes as u64) as u32;
            let after_messages = splitmix64(&mut state) % 256;
            let spec = match kind {
                0 => FaultSpec::NodeKill { node, superstep },
                1 => FaultSpec::DistComputerPanic {
                    node,
                    after_messages,
                },
                2 => FaultSpec::BatchDrop {
                    src_node: node,
                    superstep,
                },
                3 => FaultSpec::TornManifest { superstep },
                4 => FaultSpec::MsyncFail { superstep },
                _ => FaultSpec::TornCommit { superstep },
            };
            plan = plan.with(spec);
        }
        plan
    }

    /// Add one injection point.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.points.push((spec, AtomicBool::new(false)));
        self
    }

    /// The seed this plan was built from (reporting only).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injection points in this plan.
    pub fn specs(&self) -> impl Iterator<Item = FaultSpec> + '_ {
        self.points.iter().map(|(s, _)| *s)
    }

    /// Total number of injection points (each costs the engine at most
    /// one recovery attempt, a lower bound for the retry budget).
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    fn fire(&self, idx: usize) -> bool {
        self.points[idx]
            .1
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Panic (once) if a point matching `role` at (`superstep`,
    /// `messages`) is due. Called from inside actor handlers, so the
    /// panic rides the runtime's supervision / escalation path.
    pub fn panic_if_due(&self, role: FaultRole, superstep: u64, messages: u64) {
        for (i, (spec, _)) in self.points.iter().enumerate() {
            let due = match (*spec, role) {
                (
                    FaultSpec::DispatcherPanic {
                        superstep: s,
                        after_messages,
                    },
                    FaultRole::Dispatcher,
                ) => s == superstep && messages >= after_messages,
                (FaultSpec::ComputerPanic { after_messages }, FaultRole::Computer) => {
                    messages >= after_messages
                }
                (FaultSpec::ComputerFlushPanic { superstep: s }, FaultRole::Computer) => {
                    s == superstep && messages == u64::MAX
                }
                (FaultSpec::ManagerPanic { superstep: s }, FaultRole::Manager) => s == superstep,
                _ => false,
            };
            if due && self.fire(i) {
                panic!(
                    "chaos-injected panic: seed={} role={role:?} superstep={superstep} messages={messages}",
                    self.seed
                );
            }
        }
    }

    /// Sentinel passed as `messages` by the computer's flush hook so
    /// [`FaultSpec::ComputerFlushPanic`] points (and only those) match.
    pub const AT_FLUSH: u64 = u64::MAX;

    /// True (once) if the durable commit of `superstep` should fail its
    /// msync.
    pub fn take_msync_failure(&self, superstep: u64) -> bool {
        self.take_commit_fault(superstep, true)
    }

    /// True (once) if the commit of `superstep` should write a torn slot.
    pub fn take_torn_commit(&self, superstep: u64) -> bool {
        self.take_commit_fault(superstep, false)
    }

    fn take_commit_fault(&self, superstep: u64, msync: bool) -> bool {
        for (i, (spec, _)) in self.points.iter().enumerate() {
            let due = match *spec {
                FaultSpec::MsyncFail { superstep: s } => msync && s == superstep,
                FaultSpec::TornCommit { superstep: s } => !msync && s == superstep,
                _ => false,
            };
            if due && self.fire(i) {
                return true;
            }
        }
        false
    }

    /// True (once) if `node` should die as it starts `superstep`.
    pub fn take_node_kill(&self, node: u32, superstep: u64) -> bool {
        for (i, (spec, _)) in self.points.iter().enumerate() {
            if matches!(*spec, FaultSpec::NodeKill { node: n, superstep: s }
                    if n == node && s == superstep)
                && self.fire(i)
            {
                return true;
            }
        }
        false
    }

    /// Panic (once) if a [`FaultSpec::DistComputerPanic`] targeting
    /// `node` is due after `messages` folds this superstep.
    pub fn panic_if_due_on_node(&self, node: u32, messages: u64) {
        for (i, (spec, _)) in self.points.iter().enumerate() {
            if matches!(*spec, FaultSpec::DistComputerPanic { node: n, after_messages }
                    if n == node && messages >= after_messages)
                && self.fire(i)
            {
                panic!(
                    "chaos-injected dist-computer panic: seed={} node={node} messages={messages}",
                    self.seed
                );
            }
        }
    }

    /// The fault (if any, once) afflicting an inter-node batch leaving
    /// `src_node` during `superstep`.
    pub fn take_batch_fault(&self, src_node: u32, superstep: u64) -> Option<BatchFault> {
        for (i, (spec, _)) in self.points.iter().enumerate() {
            let hit = match *spec {
                FaultSpec::BatchDrop {
                    src_node: n,
                    superstep: s,
                } if n == src_node && s == superstep => Some(BatchFault::Drop),
                FaultSpec::BatchDelay {
                    src_node: n,
                    superstep: s,
                    millis,
                } if n == src_node && s == superstep => Some(BatchFault::Delay(millis)),
                _ => None,
            };
            if let Some(f) = hit {
                if self.fire(i) {
                    return Some(f);
                }
            }
        }
        None
    }

    /// True (once) if the cluster-manifest append for `superstep` should
    /// write a torn tail and die.
    pub fn take_torn_manifest(&self, superstep: u64) -> bool {
        for (i, (spec, _)) in self.points.iter().enumerate() {
            if matches!(*spec, FaultSpec::TornManifest { superstep: s } if s == superstep)
                && self.fire(i)
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plans_are_reproducible() {
        let a: Vec<_> = FaultPlan::scripted(42, 8, 5).specs().collect();
        let b: Vec<_> = FaultPlan::scripted(42, 8, 5).specs().collect();
        let c: Vec<_> = FaultPlan::scripted(43, 8, 5).specs().collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different schedules");
        assert!(a.iter().all(
            |s| !matches!(s, FaultSpec::DispatcherPanic { superstep, .. } if *superstep >= 5)
        ));
    }

    #[test]
    fn points_fire_at_most_once() {
        let plan = FaultPlan::new(1).with(FaultSpec::MsyncFail { superstep: 3 });
        assert!(!plan.take_msync_failure(2));
        assert!(plan.take_msync_failure(3));
        assert!(!plan.take_msync_failure(3), "second take must be a no-op");
    }

    #[test]
    fn panic_points_respect_role_and_threshold() {
        let plan = FaultPlan::new(7).with(FaultSpec::DispatcherPanic {
            superstep: 1,
            after_messages: 10,
        });
        // Wrong role, wrong superstep, under threshold: all quiet.
        plan.panic_if_due(FaultRole::Computer, 1, 100);
        plan.panic_if_due(FaultRole::Dispatcher, 0, 100);
        plan.panic_if_due(FaultRole::Dispatcher, 1, 9);
        let boom = std::panic::catch_unwind(|| plan.panic_if_due(FaultRole::Dispatcher, 1, 10));
        assert!(boom.is_err());
        // Fired once; never again.
        plan.panic_if_due(FaultRole::Dispatcher, 1, 10);
    }

    #[test]
    fn dist_points_match_node_and_superstep() {
        let plan = FaultPlan::new(11)
            .with(FaultSpec::NodeKill {
                node: 1,
                superstep: 2,
            })
            .with(FaultSpec::BatchDrop {
                src_node: 0,
                superstep: 1,
            })
            .with(FaultSpec::TornManifest { superstep: 0 });
        assert!(!plan.take_node_kill(0, 2), "wrong node");
        assert!(!plan.take_node_kill(1, 1), "wrong superstep");
        assert!(plan.take_node_kill(1, 2));
        assert!(!plan.take_node_kill(1, 2), "fire-once");
        assert_eq!(plan.take_batch_fault(1, 1), None);
        assert_eq!(plan.take_batch_fault(0, 1), Some(BatchFault::Drop));
        assert_eq!(plan.take_batch_fault(0, 1), None, "fire-once");
        assert!(!plan.take_torn_manifest(1));
        assert!(plan.take_torn_manifest(0));
        assert!(!plan.take_torn_manifest(0));
    }

    #[test]
    fn dist_computer_panic_targets_one_node() {
        let plan = FaultPlan::new(13).with(FaultSpec::DistComputerPanic {
            node: 2,
            after_messages: 5,
        });
        plan.panic_if_due_on_node(1, 100); // wrong node
        plan.panic_if_due_on_node(2, 4); // under threshold
        let boom = std::panic::catch_unwind(|| plan.panic_if_due_on_node(2, 5));
        assert!(boom.is_err());
        plan.panic_if_due_on_node(2, 5); // fired once, never again
    }

    #[test]
    fn scripted_dist_is_reproducible_and_bounded() {
        let a: Vec<_> = FaultPlan::scripted_dist(42, 10, 4, 3).specs().collect();
        let b: Vec<_> = FaultPlan::scripted_dist(42, 10, 4, 3).specs().collect();
        assert_eq!(a, b);
        for s in &a {
            match *s {
                FaultSpec::NodeKill { node, superstep }
                | FaultSpec::BatchDrop {
                    src_node: node,
                    superstep,
                } => {
                    assert!(node < 3 && superstep < 4);
                }
                FaultSpec::DistComputerPanic { node, .. } => assert!(node < 3),
                FaultSpec::TornManifest { superstep }
                | FaultSpec::MsyncFail { superstep }
                | FaultSpec::TornCommit { superstep } => assert!(superstep < 4),
                other => panic!("scripted_dist produced unexpected spec {other:?}"),
            }
        }
    }

    #[test]
    fn flush_points_only_match_the_sentinel() {
        let plan = FaultPlan::new(9).with(FaultSpec::ComputerFlushPanic { superstep: 2 });
        plan.panic_if_due(FaultRole::Computer, 2, 500);
        let boom = std::panic::catch_unwind(|| {
            plan.panic_if_due(FaultRole::Computer, 2, FaultPlan::AT_FLUSH)
        });
        assert!(boom.is_err());
    }
}
