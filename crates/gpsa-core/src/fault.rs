//! Deterministic, seeded fault injection — the chaos harness
//! (`--features chaos`).
//!
//! A [`FaultPlan`] is a fixed list of injection points, each of which
//! fires **at most once** per plan. Points are either scripted explicitly
//! (builder methods) or derived from a seed via splitmix64, so a failing
//! run is reproducible from its seed alone — the failpoint discipline of
//! production storage engines (FoundationDB-style simulation), scaled
//! down to one process.
//!
//! The hooks live in the dispatcher (per chunk), computer (per batch and
//! at flush), manager (at superstep start), and
//! [`crate::ValueFile::commit`] (msync failure, torn header). All of them
//! compile away without the `chaos` feature.

use std::sync::atomic::{AtomicBool, Ordering};

/// Which actor role a panic injection targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRole {
    /// A dispatch actor, mid-interval.
    Dispatcher,
    /// A compute actor, mid-fold or at flush.
    Computer,
    /// The manager, at superstep start.
    Manager,
}

/// One scripted injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Panic a dispatcher during `superstep` once the role has sent at
    /// least `after_messages` messages in that superstep.
    DispatcherPanic {
        /// Superstep the panic arms in.
        superstep: u64,
        /// Per-superstep sent-message threshold.
        after_messages: u64,
    },
    /// Panic a computer once it has folded at least `after_messages`
    /// messages within one superstep (checked per batch, any superstep).
    ComputerPanic {
        /// Per-superstep folded-message threshold.
        after_messages: u64,
    },
    /// Panic a computer while it finalizes `superstep` (the flush barrier).
    ComputerFlushPanic {
        /// Superstep whose flush dies.
        superstep: u64,
    },
    /// Panic the manager as it starts `superstep`.
    ManagerPanic {
        /// Superstep whose kickoff dies.
        superstep: u64,
    },
    /// The durable commit of `superstep` fails its data msync.
    MsyncFail {
        /// Superstep whose commit fails.
        superstep: u64,
    },
    /// The commit of `superstep` writes a torn (bad-CRC) header slot and
    /// then dies — a crash mid-header-write.
    TornCommit {
        /// Superstep whose commit tears.
        superstep: u64,
    },
}

/// A seeded, fire-once fault schedule shared by the whole fleet.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<(FaultSpec, AtomicBool)>,
}

/// One step of the splitmix64 sequence — the workspace's standard source
/// of cheap deterministic pseudo-randomness. Public so other chaos
/// harnesses (the serving layer's [`FaultPlan`] counterpart, client retry
/// jitter) derive their schedules from the same generator and stay
/// reproducible from a seed alone.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan tagged with `seed` (fill in points with the `with_*`
    /// builders).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            points: Vec::new(),
        }
    }

    /// Derive `n_points` injections from `seed` alone, targeting
    /// supersteps below `max_superstep`. The same seed always yields the
    /// same schedule.
    pub fn scripted(seed: u64, n_points: usize, max_superstep: u64) -> Self {
        let mut plan = FaultPlan::new(seed);
        let mut state = seed;
        let max_step = max_superstep.max(1);
        for _ in 0..n_points {
            let kind = splitmix64(&mut state) % 6;
            let superstep = splitmix64(&mut state) % max_step;
            let after_messages = splitmix64(&mut state) % 512;
            let spec = match kind {
                0 => FaultSpec::DispatcherPanic {
                    superstep,
                    after_messages,
                },
                1 => FaultSpec::ComputerPanic { after_messages },
                2 => FaultSpec::ComputerFlushPanic { superstep },
                3 => FaultSpec::ManagerPanic { superstep },
                4 => FaultSpec::MsyncFail { superstep },
                _ => FaultSpec::TornCommit { superstep },
            };
            plan = plan.with(spec);
        }
        plan
    }

    /// Add one injection point.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.points.push((spec, AtomicBool::new(false)));
        self
    }

    /// The seed this plan was built from (reporting only).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injection points in this plan.
    pub fn specs(&self) -> impl Iterator<Item = FaultSpec> + '_ {
        self.points.iter().map(|(s, _)| *s)
    }

    /// Total number of injection points (each costs the engine at most
    /// one recovery attempt, a lower bound for the retry budget).
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    fn fire(&self, idx: usize) -> bool {
        self.points[idx]
            .1
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Panic (once) if a point matching `role` at (`superstep`,
    /// `messages`) is due. Called from inside actor handlers, so the
    /// panic rides the runtime's supervision / escalation path.
    pub fn panic_if_due(&self, role: FaultRole, superstep: u64, messages: u64) {
        for (i, (spec, _)) in self.points.iter().enumerate() {
            let due = match (*spec, role) {
                (
                    FaultSpec::DispatcherPanic {
                        superstep: s,
                        after_messages,
                    },
                    FaultRole::Dispatcher,
                ) => s == superstep && messages >= after_messages,
                (FaultSpec::ComputerPanic { after_messages }, FaultRole::Computer) => {
                    messages >= after_messages
                }
                (FaultSpec::ComputerFlushPanic { superstep: s }, FaultRole::Computer) => {
                    s == superstep && messages == u64::MAX
                }
                (FaultSpec::ManagerPanic { superstep: s }, FaultRole::Manager) => s == superstep,
                _ => false,
            };
            if due && self.fire(i) {
                panic!(
                    "chaos-injected panic: seed={} role={role:?} superstep={superstep} messages={messages}",
                    self.seed
                );
            }
        }
    }

    /// Sentinel passed as `messages` by the computer's flush hook so
    /// [`FaultSpec::ComputerFlushPanic`] points (and only those) match.
    pub const AT_FLUSH: u64 = u64::MAX;

    /// True (once) if the durable commit of `superstep` should fail its
    /// msync.
    pub fn take_msync_failure(&self, superstep: u64) -> bool {
        self.take_commit_fault(superstep, true)
    }

    /// True (once) if the commit of `superstep` should write a torn slot.
    pub fn take_torn_commit(&self, superstep: u64) -> bool {
        self.take_commit_fault(superstep, false)
    }

    fn take_commit_fault(&self, superstep: u64, msync: bool) -> bool {
        for (i, (spec, _)) in self.points.iter().enumerate() {
            let due = match *spec {
                FaultSpec::MsyncFail { superstep: s } => msync && s == superstep,
                FaultSpec::TornCommit { superstep: s } => !msync && s == superstep,
                _ => false,
            };
            if due && self.fire(i) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plans_are_reproducible() {
        let a: Vec<_> = FaultPlan::scripted(42, 8, 5).specs().collect();
        let b: Vec<_> = FaultPlan::scripted(42, 8, 5).specs().collect();
        let c: Vec<_> = FaultPlan::scripted(43, 8, 5).specs().collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different schedules");
        assert!(a.iter().all(
            |s| !matches!(s, FaultSpec::DispatcherPanic { superstep, .. } if *superstep >= 5)
        ));
    }

    #[test]
    fn points_fire_at_most_once() {
        let plan = FaultPlan::new(1).with(FaultSpec::MsyncFail { superstep: 3 });
        assert!(!plan.take_msync_failure(2));
        assert!(plan.take_msync_failure(3));
        assert!(!plan.take_msync_failure(3), "second take must be a no-op");
    }

    #[test]
    fn panic_points_respect_role_and_threshold() {
        let plan = FaultPlan::new(7).with(FaultSpec::DispatcherPanic {
            superstep: 1,
            after_messages: 10,
        });
        // Wrong role, wrong superstep, under threshold: all quiet.
        plan.panic_if_due(FaultRole::Computer, 1, 100);
        plan.panic_if_due(FaultRole::Dispatcher, 0, 100);
        plan.panic_if_due(FaultRole::Dispatcher, 1, 9);
        let boom = std::panic::catch_unwind(|| plan.panic_if_due(FaultRole::Dispatcher, 1, 10));
        assert!(boom.is_err());
        // Fired once; never again.
        plan.panic_if_due(FaultRole::Dispatcher, 1, 10);
    }

    #[test]
    fn flush_points_only_match_the_sentinel() {
        let plan = FaultPlan::new(9).with(FaultSpec::ComputerFlushPanic { superstep: 2 });
        plan.panic_if_due(FaultRole::Computer, 2, 500);
        let boom = std::panic::catch_unwind(|| {
            plan.panic_if_due(FaultRole::Computer, 2, FaultPlan::AT_FLUSH)
        });
        assert!(boom.is_err());
    }
}
