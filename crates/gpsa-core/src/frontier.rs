//! Per-superstep active-vertex bitmaps (the engine's frontier).
//!
//! The value file's not-updated flag (paper Fig. 5) tells a dispatcher
//! whether to *skip* a vertex — but only after its record has already been
//! streamed from disk. The [`Frontier`] keeps the same information in a
//! word-packed bitset per column so a dispatcher can decide *before*
//! touching the edge file which vertices need their adjacency at all, and
//! seek straight to them when the frontier is sparse.
//!
//! Like the value columns, the two bitmap columns are double-buffered in
//! lockstep: while computers mark first updates in the update column, the
//! dispatch column is read-only for the superstep, and the manager clears
//! the just-dispatched column when the superstep commits (it becomes the
//! next update column). The invariant the dispatcher relies on is
//! *superset*: at superstep start, every flag-clear vertex in the dispatch
//! value column has its bit set. Extra set bits are harmless — the
//! dispatcher still checks the flag word before generating messages, so
//! dense and sparse modes dispatch identical vertex sequences.
//!
//! The bitmap lives in memory, not in the value file: recovery never needs
//! to read it back. [`crate::ValueFile::recover`] conservatively
//! re-activates *every* vertex in the good column, so the recovered
//! frontier is simply all-ones on the dispatch column and all-zeros on the
//! other — consistent with the recovered flags by construction.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Two word-packed active-vertex bitsets, one per value column, covering a
/// global vertex id range. All operations are atomic; computers mark
/// concurrently while dispatchers read the other column.
#[derive(Debug)]
pub struct Frontier {
    cols: [Vec<AtomicU64>; 2],
    base: u32,
    n: usize,
}

impl Frontier {
    /// An all-zeros frontier for the global id range `range`.
    pub fn new(range: Range<u32>) -> Frontier {
        let n = (range.end - range.start) as usize;
        let words = n.div_ceil(64);
        let mk = || (0..words).map(|_| AtomicU64::new(0)).collect();
        Frontier {
            cols: [mk(), mk()],
            base: range.start,
            n,
        }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn locate(&self, v: u32) -> (usize, u64) {
        debug_assert!(
            v >= self.base && ((v - self.base) as usize) < self.n,
            "vertex {v} outside frontier range"
        );
        let idx = (v - self.base) as usize;
        (idx / 64, 1u64 << (idx % 64))
    }

    /// Set vertex `v`'s bit in `col` (idempotent).
    #[inline]
    pub fn mark(&self, col: u32, v: u32) {
        let (w, bit) = self.locate(v);
        self.cols[col as usize][w].fetch_or(bit, Ordering::Relaxed);
    }

    /// Clear vertex `v`'s bit in `col`.
    #[inline]
    pub fn unmark(&self, col: u32, v: u32) {
        let (w, bit) = self.locate(v);
        self.cols[col as usize][w].fetch_and(!bit, Ordering::Relaxed);
    }

    /// Whether vertex `v`'s bit is set in `col`.
    #[inline]
    pub fn is_marked(&self, col: u32, v: u32) -> bool {
        let (w, bit) = self.locate(v);
        self.cols[col as usize][w].load(Ordering::Relaxed) & bit != 0
    }

    /// Clear every bit in `col`.
    pub fn clear(&self, col: u32) {
        for w in &self.cols[col as usize] {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Set every (in-range) bit in `col` — the conservative
    /// "everything might be active" state used after open/recover. Bits
    /// past `n` in the tail word stay clear so popcounts are exact.
    pub fn fill(&self, col: u32) {
        let words = &self.cols[col as usize];
        for w in words {
            w.store(u64::MAX, Ordering::Relaxed);
        }
        let tail = self.n % 64;
        if tail != 0 {
            if let Some(last) = words.last() {
                last.store((1u64 << tail) - 1, Ordering::Relaxed);
            }
        }
    }

    /// Popcount of `col` over the whole range.
    pub fn count(&self, col: u32) -> u64 {
        self.cols[col as usize]
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }

    /// Popcount of `col` over the global id range `range` (clamped to the
    /// frontier's own range). Word-at-a-time with masked ends — the
    /// manager's per-assignment density probe.
    pub fn count_range(&self, col: u32, range: Range<u32>) -> u64 {
        let start = range.start.max(self.base);
        let end = range.end.min(self.base + self.n as u32);
        if start >= end {
            return 0;
        }
        let lo = (start - self.base) as usize;
        let hi = (end - self.base) as usize;
        let words = &self.cols[col as usize];
        let (lw, hw) = (lo / 64, (hi - 1) / 64);
        let lo_mask = u64::MAX << (lo % 64);
        let hi_mask = u64::MAX >> (63 - (hi - 1) % 64);
        if lw == hw {
            return (words[lw].load(Ordering::Relaxed) & lo_mask & hi_mask).count_ones() as u64;
        }
        let mut c = (words[lw].load(Ordering::Relaxed) & lo_mask).count_ones() as u64;
        for w in &words[lw + 1..hw] {
            c += w.load(Ordering::Relaxed).count_ones() as u64;
        }
        c + (words[hw].load(Ordering::Relaxed) & hi_mask).count_ones() as u64
    }

    /// Smallest half-open global id range containing every set bit of
    /// `col` within `range`; `None` if no bit is set there. This is the
    /// seek window a sparse dispatcher advises `Random` over.
    pub fn bounds(&self, col: u32, range: Range<u32>) -> Option<Range<u32>> {
        let mut it = self.iter_set(col, range.clone());
        let first = it.next()?;
        // Scan backward for the last set bit; cheap (word at a time).
        let start = (range.start.max(self.base) - self.base) as usize;
        let end = (range.end.min(self.base + self.n as u32) - self.base) as usize;
        let words = &self.cols[col as usize];
        for w in (start / 64..=(end - 1) / 64).rev() {
            let mut bits = words[w].load(Ordering::Relaxed);
            // Mask out bits outside [start, end).
            if w == (end - 1) / 64 {
                bits &= u64::MAX >> (63 - (end - 1) % 64);
            }
            if w == start / 64 {
                bits &= u64::MAX << (start % 64);
            }
            if bits != 0 {
                let last = w * 64 + (63 - bits.leading_zeros() as usize);
                return Some(first..self.base + last as u32 + 1);
            }
        }
        Some(first..first + 1)
    }

    /// Iterate the set bits of `col` within the global id range `range`,
    /// in ascending order.
    pub fn iter_set(&self, col: u32, range: Range<u32>) -> SetBits<'_> {
        let start = range.start.max(self.base);
        let end = range.end.min(self.base + self.n as u32);
        let (lo, hi) = if start >= end {
            (0, 0)
        } else {
            ((start - self.base) as usize, (end - self.base) as usize)
        };
        let words = &self.cols[col as usize];
        let mut cur = if hi == 0 {
            0
        } else {
            words[lo / 64].load(Ordering::Relaxed) & (u64::MAX << (lo % 64))
        };
        if hi != 0 && lo / 64 == (hi - 1) / 64 {
            cur &= u64::MAX >> (63 - (hi - 1) % 64);
        }
        SetBits {
            words,
            base: self.base,
            word: lo / 64,
            cur,
            hi,
        }
    }
}

/// Ascending iterator over set bits. See [`Frontier::iter_set`].
#[derive(Debug)]
pub struct SetBits<'a> {
    words: &'a [AtomicU64],
    base: u32,
    /// Index of the word `cur` was loaded from.
    word: usize,
    /// Remaining bits of the current word (already range-masked).
    cur: u64,
    /// Exclusive end, as a local bit index.
    hi: usize,
}

impl Iterator for SetBits<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.cur == 0 {
            let next = self.word + 1;
            if next * 64 >= self.hi {
                return None;
            }
            self.word = next;
            let mut bits = self.words[next].load(Ordering::Relaxed);
            if next == (self.hi - 1) / 64 {
                bits &= u64::MAX >> (63 - (self.hi - 1) % 64);
            }
            self.cur = bits;
        }
        let bit = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        let idx = self.word * 64 + bit;
        if idx >= self.hi {
            self.cur = 0;
            return self.next();
        }
        Some(self.base + idx as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_unmark_count() {
        let f = Frontier::new(0..200);
        assert_eq!(f.count(0), 0);
        for v in [0, 63, 64, 130, 199] {
            f.mark(0, v);
        }
        assert_eq!(f.count(0), 5);
        assert_eq!(f.count(1), 0, "columns are independent");
        assert!(f.is_marked(0, 63));
        assert!(!f.is_marked(0, 62));
        f.mark(0, 63); // idempotent
        assert_eq!(f.count(0), 5);
        f.unmark(0, 63);
        assert!(!f.is_marked(0, 63));
        assert_eq!(f.count(0), 4);
    }

    #[test]
    fn fill_and_clear_respect_tail() {
        let f = Frontier::new(0..130);
        f.fill(1);
        assert_eq!(f.count(1), 130, "tail word past n stays clear");
        assert!(f.is_marked(1, 129));
        f.clear(1);
        assert_eq!(f.count(1), 0);
        // Exact multiple of 64: no tail masking needed.
        let g = Frontier::new(0..128);
        g.fill(0);
        assert_eq!(g.count(0), 128);
    }

    #[test]
    fn count_range_masks_both_ends() {
        let f = Frontier::new(0..300);
        f.fill(0);
        assert_eq!(f.count_range(0, 0..300), 300);
        assert_eq!(f.count_range(0, 10..10), 0);
        assert_eq!(f.count_range(0, 10..75), 65);
        assert_eq!(f.count_range(0, 64..128), 64);
        assert_eq!(f.count_range(0, 63..65), 2);
        assert_eq!(f.count_range(0, 290..400), 10, "clamped to n");
        let g = Frontier::new(0..300);
        for v in [5, 70, 71, 255] {
            g.mark(1, v);
        }
        assert_eq!(g.count_range(1, 0..300), 4);
        assert_eq!(g.count_range(1, 6..255), 2);
        assert_eq!(g.count_range(1, 70..72), 2);
    }

    #[test]
    fn iter_set_ascends_within_range() {
        let f = Frontier::new(0..300);
        for v in [3, 64, 65, 191, 192, 299] {
            f.mark(0, v);
        }
        let all: Vec<u32> = f.iter_set(0, 0..300).collect();
        assert_eq!(all, vec![3, 64, 65, 191, 192, 299]);
        let mid: Vec<u32> = f.iter_set(0, 64..192).collect();
        assert_eq!(mid, vec![64, 65, 191]);
        let none: Vec<u32> = f.iter_set(0, 4..64).collect();
        assert!(none.is_empty());
        let empty: Vec<u32> = f.iter_set(0, 10..10).collect();
        assert!(empty.is_empty());
        // Single-word range with both ends masked.
        let one: Vec<u32> = f.iter_set(0, 65..66).collect();
        assert_eq!(one, vec![65]);
    }

    #[test]
    fn bounds_names_the_seek_window() {
        let f = Frontier::new(0..300);
        assert_eq!(f.bounds(0, 0..300), None);
        f.mark(0, 70);
        assert_eq!(f.bounds(0, 0..300), Some(70..71));
        f.mark(0, 250);
        assert_eq!(f.bounds(0, 0..300), Some(70..251));
        assert_eq!(f.bounds(0, 0..200), Some(70..71));
        assert_eq!(f.bounds(0, 71..300), Some(250..251));
        assert_eq!(f.bounds(0, 0..70), None);
    }

    #[test]
    fn based_range_addressing() {
        let f = Frontier::new(100..200);
        f.mark(0, 100);
        f.mark(0, 199);
        assert_eq!(f.count(0), 2);
        assert_eq!(f.count_range(0, 0..1000), 2);
        let got: Vec<u32> = f.iter_set(0, 0..1000).collect();
        assert_eq!(got, vec![100, 199]);
        assert_eq!(f.bounds(0, 100..200), Some(100..200));
    }

    #[test]
    fn empty_frontier_is_fine() {
        let f = Frontier::new(5..5);
        assert_eq!(f.count(0), 0);
        f.fill(0);
        assert_eq!(f.count(0), 0);
        assert!(f.iter_set(0, 0..10).next().is_none());
        assert_eq!(f.bounds(0, 0..10), None);
    }
}
