//! Batch fold kernels — the compute side of the batch-native hot path.
//!
//! The computer actor used to pull one `(VertexId, MsgVal)` tuple at a
//! time through [`crate::VertexProgram::compute`], paying a virtual-ish
//! hook call, two value-file loads, and full first-message bookkeeping
//! per *message*. With struct-of-arrays slabs ([`crate::MsgSlab`]) the
//! fold becomes a pass over a flat destination column, and the common
//! algebraic shapes collapse into tight inner loops:
//!
//! * **u32 min** (BFS, CC, SSSP): the flag bit makes flagged words
//!   (`>= 0x8000_0000`) strictly greater than any payload
//!   (`<= 0x7FFF_FFFF`), so one unsigned compare both detects the
//!   first-message slow path *and* decides the min. The unflagged hot
//!   path is load → compare → conditional store; min-`compute` ignores
//!   `basis` once an accumulator exists and storing an unchanged min is
//!   a no-op, so eliding the store is bit-identical.
//! * **f32 damped sum** (PageRank): values are non-negative, so payload
//!   bits never carry the sign/flag bit and the same `< FLAG_BIT` test
//!   splits hot and slow paths; the hot path is load → add → store.
//!
//! Both kernels software-prefetch the value-file cache line a few
//! destinations ahead ([`crate::value_file::ValueFile::prefetch`]) —
//! destination order is CSR order, effectively random in the value file.
//!
//! Run order is preserved exactly: integer min is order-independent, and
//! the f32 kernel performs the same per-destination add sequence as the
//! scalar replay, which is what keeps engine results bit-identical to
//! the [`crate::SyncEngine`] oracle.

use gpsa_graph::VertexId;

use crate::program::{GraphMeta, VertexProgram};
use crate::slab::MsgSlab;
use crate::value::VertexValue;
use crate::value_file::ValueFile;
use crate::word::{clear_flag, is_flagged, FLAG_BIT};

/// How far ahead of the fold position to prefetch value slots. One
/// cache line holds 8 consecutive slot words (4 vertices' slot pairs);
/// a small fixed distance keeps the prefetch inside the run without a
/// second pass.
const PREFETCH_AHEAD: usize = 8;

/// The per-batch fold state handed to
/// [`VertexProgram::fold_batch`]: the value file, update column, and the
/// computer's first-message bookkeeping (dirty list + frontier marks).
/// Kernels read destinations straight off the slab and go through
/// [`FoldCtx::first_message_basis`] exactly once per newly-touched
/// vertex, so the flush pass downstream sees the same state the scalar
/// path would produce.
pub struct FoldCtx<'a, P: VertexProgram> {
    values: &'a ValueFile,
    meta: &'a GraphMeta,
    update_col: u32,
    dirty: &'a mut Vec<(VertexId, P::Value)>,
}

impl<'a, P: VertexProgram> FoldCtx<'a, P> {
    /// Bundle the fold state for one batch. `dirty` accumulates
    /// `(vertex, basis)` pairs for every vertex whose first message of
    /// the superstep arrives in this batch.
    pub fn new(
        values: &'a ValueFile,
        meta: &'a GraphMeta,
        update_col: u32,
        dirty: &'a mut Vec<(VertexId, P::Value)>,
    ) -> Self {
        FoldCtx {
            values,
            meta,
            update_col,
            dirty,
        }
    }

    /// The value file under fold.
    #[inline(always)]
    pub fn values(&self) -> &'a ValueFile {
        self.values
    }

    /// Graph facts for `compute`.
    #[inline(always)]
    pub fn meta(&self) -> &'a GraphMeta {
        self.meta
    }

    /// The column this batch folds into.
    #[inline(always)]
    pub fn update_col(&self) -> u32 {
        self.update_col
    }

    /// First-message slow path: seed the basis from the freshest of the
    /// two buffered copies, record the vertex on the dirty list, and mark
    /// it in the update-column frontier. `u_bits` is the still-flagged
    /// update-column word the caller already loaded.
    #[inline]
    pub fn first_message_basis(&mut self, program: &P, v: VertexId, u_bits: u32) -> P::Value {
        debug_assert!(is_flagged(u_bits));
        let d = P::Value::from_bits(clear_flag(self.values.load(1 - self.update_col, v)));
        let u = P::Value::from_bits(clear_flag(u_bits));
        let basis = program.freshest(d, u);
        self.dirty.push((v, basis));
        self.values.frontier().mark(self.update_col, v);
        basis
    }

    /// Fold one message through the full scalar protocol — exactly the
    /// per-tuple path the computer ran before batching.
    #[inline]
    pub fn fold_one(&mut self, program: &P, v: VertexId, msg: P::MsgVal) {
        let u_bits = self.values.load(self.update_col, v);
        let new = if is_flagged(u_bits) {
            let basis = self.first_message_basis(program, v, u_bits);
            program.compute(v, None, basis, msg, self.meta)
        } else {
            let acc = P::Value::from_bits(u_bits);
            let basis = P::Value::from_bits(clear_flag(self.values.load(1 - self.update_col, v)));
            program.compute(v, Some(acc), basis, msg, self.meta)
        };
        self.values.store(self.update_col, v, new.to_bits());
    }

    /// Replay a slab run-by-run through [`FoldCtx::fold_one`] — the
    /// default [`VertexProgram::fold_batch`] body and the correctness
    /// oracle every kernel override is tested against.
    pub fn fold_scalar_slab(&mut self, program: &P, slab: &MsgSlab<P::MsgVal>) {
        for (run, msg) in slab.runs() {
            for &v in run {
                self.fold_one(program, v, msg);
            }
        }
    }
}

/// u32 min-fold kernel with a per-message candidate function: folds
/// `candidate(v, msg)` into each destination by unsigned min. `candidate`
/// must return flag-free payloads (`< 0x8000_0000`), and the program's
/// `compute` must equal `acc.unwrap_or(basis).min(candidate(v, msg))` —
/// BFS/CC (identity candidate, see [`fold_min_u32`]) and SSSP
/// (edge-weight relaxation) all have this shape.
pub fn fold_min_u32_by<P, F>(
    program: &P,
    slab: &MsgSlab<P::MsgVal>,
    ctx: &mut FoldCtx<'_, P>,
    mut candidate: F,
) where
    P: VertexProgram<Value = u32>,
    F: FnMut(VertexId, P::MsgVal) -> u32,
{
    let values = ctx.values;
    let update_col = ctx.update_col;
    for (run, msg) in slab.runs() {
        for (i, &v) in run.iter().enumerate() {
            if let Some(&ahead) = run.get(i + PREFETCH_AHEAD) {
                values.prefetch(update_col, ahead);
            }
            let cand = candidate(v, msg);
            debug_assert!(cand < FLAG_BIT, "min candidates must be flag-free");
            let u_bits = values.load(update_col, v);
            if u_bits < FLAG_BIT {
                // Accumulator present: min-compute ignores basis, and
                // storing an unchanged min would be a no-op — elide it.
                if cand < u_bits {
                    values.store(update_col, v, cand);
                }
            } else {
                let basis = ctx.first_message_basis(program, v, u_bits);
                values.store(update_col, v, VertexValue::to_bits(basis.min(cand)));
            }
        }
    }
}

/// u32 min-fold kernel for programs whose message *is* the candidate
/// (BFS distance+1, CC labels).
pub fn fold_min_u32<P>(program: &P, slab: &MsgSlab<u32>, ctx: &mut FoldCtx<'_, P>)
where
    P: VertexProgram<Value = u32, MsgVal = u32>,
{
    fold_min_u32_by(program, slab, ctx, |_, m| m);
}

/// f32 damped-sum kernel (PageRank): folds `damping * msg` into each
/// destination's accumulator, seeding first messages with
/// `(1 - damping) / n_vertices` — the same expressions as
/// `PageRank::compute`, evaluated in the same order, so results are
/// bit-identical to the scalar replay.
pub fn fold_sum_f32<P>(program: &P, slab: &MsgSlab<f32>, ctx: &mut FoldCtx<'_, P>, damping: f32)
where
    P: VertexProgram<Value = f32, MsgVal = f32>,
{
    let values = ctx.values;
    let update_col = ctx.update_col;
    let base = (1.0 - damping) / ctx.meta.n_vertices.max(1) as f32;
    for (run, msg) in slab.runs() {
        for (i, &v) in run.iter().enumerate() {
            if let Some(&ahead) = run.get(i + PREFETCH_AHEAD) {
                values.prefetch(update_col, ahead);
            }
            let add = damping * msg;
            let u_bits = values.load(update_col, v);
            let new = if u_bits < FLAG_BIT {
                <f32 as VertexValue>::from_bits(u_bits) + add
            } else {
                // First message: seed bookkeeping; the damped sum starts
                // from the teleport base, not the basis.
                let _ = ctx.first_message_basis(program, v, u_bits);
                base + add
            };
            values.store(update_col, v, VertexValue::to_bits(new));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{Bfs, ConnectedComponents, PageRank, Sssp, UNREACHED};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-kernels-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    const N: usize = 16;

    /// Twin value files in mid-superstep state: some vertices already
    /// accumulated (unflagged), the rest untouched (flagged), with
    /// diverging dispatch/update copies so `freshest` matters.
    fn twin_files<V: VertexValue>(
        tag: &str,
        dispatch_val: impl Fn(u32) -> V,
        update_val: impl Fn(u32) -> V,
        accumulated: impl Fn(u32) -> bool,
    ) -> (ValueFile, ValueFile) {
        let mk = |name: String| {
            let vf = ValueFile::create(tmp(&name), N, |v| (dispatch_val(v), true)).unwrap();
            for v in 0..N as u32 {
                let bits = VertexValue::to_bits(update_val(v));
                if accumulated(v) {
                    vf.store(1, v, bits);
                    vf.frontier().mark(1, v);
                } else {
                    vf.store(1, v, crate::word::set_flag(bits));
                }
            }
            vf
        };
        (mk(format!("{tag}-a.gval")), mk(format!("{tag}-b.gval")))
    }

    /// Adversarial slab: duplicate destinations across runs, within a
    /// run, singleton and long runs, empty-adjacent patterns.
    fn adversarial_dsts() -> Vec<(Vec<u32>, u32)> {
        vec![
            (vec![3, 3, 3, 7, 1], 0),
            (vec![1], 1),
            (
                vec![0, 2, 4, 6, 8, 10, 12, 14, 15, 13, 11, 9, 7, 5, 3, 1],
                2,
            ),
            (vec![15, 15], 3),
            (vec![3], 4),
        ]
    }

    fn assert_files_identical(a: &ValueFile, b: &ValueFile, tag: &str) {
        for col in 0..2 {
            for v in 0..N as u32 {
                assert_eq!(
                    a.load(col, v),
                    b.load(col, v),
                    "{tag}: col {col} vertex {v}"
                );
            }
        }
        for v in 0..N as u32 {
            assert_eq!(
                a.frontier().is_marked(1, v),
                b.frontier().is_marked(1, v),
                "{tag}: frontier {v}"
            );
        }
    }

    fn run_kernel_vs_scalar<Pg: VertexProgram>(
        program: &Pg,
        slab: &MsgSlab<Pg::MsgVal>,
        files: (ValueFile, ValueFile),
        tag: &str,
    ) where
        Pg::MsgVal: Copy,
    {
        let meta = GraphMeta {
            n_vertices: N as u64,
            n_edges: 64,
        };
        let (kf, sf) = files;
        let mut kd: Vec<(VertexId, Pg::Value)> = Vec::new();
        let mut sd: Vec<(VertexId, Pg::Value)> = Vec::new();
        program.fold_batch(slab, &mut FoldCtx::new(&kf, &meta, 1, &mut kd));
        FoldCtx::new(&sf, &meta, 1, &mut sd).fold_scalar_slab(program, slab);
        assert_files_identical(&kf, &sf, tag);
        let k_dirty: Vec<(u32, u32)> = kd
            .iter()
            .map(|&(v, x)| (v, VertexValue::to_bits(x)))
            .collect();
        let s_dirty: Vec<(u32, u32)> = sd
            .iter()
            .map(|&(v, x)| (v, VertexValue::to_bits(x)))
            .collect();
        assert_eq!(k_dirty, s_dirty, "{tag}: dirty lists");
    }

    #[test]
    fn min_kernel_matches_scalar_for_bfs_labels() {
        let mut slab = MsgSlab::new();
        for (run, k) in adversarial_dsts() {
            slab.extend_run(&run, 2 + k);
        }
        let files = twin_files::<u32>(
            "bfs",
            |v| if v % 3 == 0 { v } else { UNREACHED },
            |v| if v % 2 == 0 { v / 2 } else { UNREACHED },
            |v| v % 4 == 0,
        );
        run_kernel_vs_scalar(&Bfs { root: 0 }, &slab, files, "bfs");
    }

    #[test]
    fn min_kernel_matches_scalar_for_cc() {
        let mut slab = MsgSlab::new();
        for (run, k) in adversarial_dsts() {
            slab.extend_run(&run, k);
        }
        let files = twin_files::<u32>("cc", |v| v, |v| v.saturating_sub(1), |v| v % 3 == 1);
        run_kernel_vs_scalar(&ConnectedComponents, &slab, files, "cc");
    }

    #[test]
    fn min_by_kernel_matches_scalar_for_sssp() {
        let mut slab = MsgSlab::<(u32, VertexId)>::new();
        for (run, k) in adversarial_dsts() {
            slab.extend_run(&run, (3 * k + 1, k));
        }
        let files = twin_files::<u32>(
            "sssp",
            |v| if v < 8 { 5 * v } else { UNREACHED },
            |v| if v % 2 == 1 { 4 * v } else { UNREACHED },
            |v| v % 5 == 2,
        );
        run_kernel_vs_scalar(&Sssp { root: 0 }, &slab, files, "sssp");
    }

    #[test]
    fn sum_kernel_matches_scalar_for_pagerank() {
        let mut slab = MsgSlab::<f32>::new();
        for (run, k) in adversarial_dsts() {
            slab.extend_run(&run, 0.01 * (k + 1) as f32);
        }
        let files = twin_files::<f32>(
            "pr",
            |v| 1.0 / (v + 1) as f32,
            |v| 0.25 + 0.001 * v as f32,
            |v| v % 2 == 0,
        );
        run_kernel_vs_scalar(&PageRank::default(), &slab, files, "pr");
    }
}
