#![warn(missing_docs)]

//! GPSA: a graph processing system with actors.
//!
//! This crate is the paper's contribution: a single-machine, vertex-centric
//! BSP engine in which the two halves of a superstep — *dispatching*
//! (streaming edges and emitting messages) and *computing* (folding
//! messages into vertex values) — are decoupled into separate actor roles
//! and overlap within the superstep, instead of running sequentially as in
//! conventional vertex-centric engines.
//!
//! # Architecture (paper §IV–V)
//!
//! * A **manager** actor coordinates supersteps (paper Algorithm 1).
//! * **Dispatch** actors each own a vertex-id interval of the mmap'ed CSR
//!   edge file; every superstep they stream their interval, skip vertices
//!   whose value carries the *not-updated* flag, call the program's
//!   [`VertexProgram::gen_msg`] and route messages to compute actors
//!   (Algorithm 2).
//! * **Compute** actors own disjoint vertex sets (mod/range routing); for
//!   every message they fold [`VertexProgram::compute`] into the vertex's
//!   slot in the update column of the mmap'ed value file (Algorithm 3).
//! * The **value file** stores two copies of every value side by side; the
//!   columns swap roles each superstep, and bit 31 of each 32-bit slot is
//!   the in-band "not updated" flag (paper Fig. 5). The always-immutable
//!   column doubles as a free checkpoint for crash recovery (Fig. 6).
//!
//! # Quickstart
//!
//! ```
//! use gpsa::{Engine, EngineConfig, programs::ConnectedComponents};
//! use gpsa_graph::{generate, preprocess};
//!
//! let dir = std::env::temp_dir().join(format!("gpsa-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let csr_path = dir.join("cycle.gcsr");
//! preprocess::edges_to_csr(
//!     generate::two_components(50, 30),
//!     &csr_path,
//!     &preprocess::PreprocessOptions::default(),
//! ).unwrap();
//!
//! let engine = Engine::new(EngineConfig::small(&dir));
//! let report = engine.run(&csr_path, ConnectedComponents).unwrap();
//! let labels = &report.values;
//! assert!(labels[..50].iter().all(|&l| l == 0));
//! assert!(labels[50..].iter().all(|&l| l == 50));
//! ```

mod computer;
mod config;
mod dispatcher;
mod engine;
#[cfg(feature = "chaos")]
pub mod fault;
pub mod frontier;
pub mod kernels;
mod manager;
mod partition;
mod program;
pub mod programs;
mod report;
mod slab;
pub mod sync_engine;
mod value;
mod value_file;
mod word;

pub use config::{DispatchMode, EngineConfig, IntervalStrategy, RouterStrategy, Termination};
pub use engine::{Engine, EngineError};
pub use frontier::Frontier;
pub use kernels::FoldCtx;
pub use partition::{
    edge_balanced_intervals, strided_assignments, uniform_intervals, DispatchAssignment, ModRouter,
    RangeRouter, Router,
};
pub use program::{GraphMeta, VertexProgram};
pub use report::{PhaseBreakdown, RunOutcome, RunReport};
pub use slab::{MsgSlab, MsgSlabPool};
pub use sync_engine::SyncEngine;
pub use value::VertexValue;
pub use value_file::{crc32, ValueFile, ValueFileError, ValueFileHeader};
pub use word::{clear_flag, is_flagged, set_flag, FLAG_BIT};
