//! The manager actor (paper Algorithm 1): superstep coordination,
//! termination, commit points, and the crash-injection hook used by the
//! fault-tolerance tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use actor::{Actor, Addr, Ctx};
use crossbeam_channel::Sender;

use crate::computer::{ComputeCmd, Computer};
use crate::config::Termination;
use crate::dispatcher::{DispatchCmd, Dispatcher};
use crate::partition::DispatchAssignment;
use crate::program::VertexProgram;
use crate::report::PhaseBreakdown;
use crate::slab::OverlapStats;
use crate::value_file::ValueFile;

/// Final report sent from the manager back to the blocking engine caller.
#[derive(Debug, Clone)]
pub(crate) struct ManagerReport {
    pub crashed: bool,
    pub supersteps_run: u64,
    pub step_times: Vec<Duration>,
    pub activated: Vec<u64>,
    pub deltas: Vec<f64>,
    pub messages: u64,
    /// Messages sent per dispatcher over the whole run (load balance).
    pub dispatcher_messages: Vec<u64>,
    /// Per superstep: time from ITERATION_START until the first compute
    /// batch was folded (`None` if the superstep produced no messages).
    pub first_batch: Vec<Option<Duration>>,
    /// CSR body words dispatchers actually read over the whole run.
    pub edges_streamed: u64,
    /// CSR body bytes dispatchers actually read over the whole run.
    pub edge_bytes_streamed: u64,
    /// CSR body words a full sweep would have read but sparse dispatch
    /// skipped over.
    pub edges_skipped: u64,
    /// Per superstep: frontier bitmap popcount / vertex count at
    /// superstep start.
    pub frontier_density: Vec<f64>,
    /// Per superstep: where the time went (dispatch / fold / commit /
    /// slab wait), summed across actors.
    pub phases: Vec<PhaseBreakdown>,
    /// Column holding the results of the last completed superstep.
    pub final_dispatch_col: u32,
}

/// Mailbox protocol of the manager.
pub(crate) enum ManagerMsg<P: VertexProgram> {
    /// Wiring + kick-off, sent by the engine once all actors exist.
    /// `assignments[i]` is dispatcher `i`'s vertex set, kept by the
    /// manager for per-interval frontier popcounts at superstep start.
    Wire {
        dispatchers: Vec<Addr<Dispatcher<P>>>,
        computers: Vec<Addr<Computer<P>>>,
        assignments: Vec<DispatchAssignment>,
    },
    /// DISPATCH_OVER from one dispatcher, with its message count for the
    /// superstep (per-actor load statistics) and its edge-word I/O
    /// counters (selective-dispatch effectiveness).
    DispatchOver {
        superstep: u64,
        dispatcher: usize,
        sent: u64,
        streamed: u64,
        bytes: u64,
        skipped: u64,
        dispatch_us: u64,
        slab_wait_us: u64,
    },
    /// COMPUTE_OVER reply from one compute actor.
    ComputeOver {
        superstep: u64,
        activated: u64,
        delta: f64,
        messages: u64,
        fold_us: u64,
    },
}

pub(crate) struct Manager<P: VertexProgram> {
    pub values: Arc<ValueFile>,
    pub termination: Termination,
    pub durable: bool,
    /// Test hook: stop abruptly (no commit, no flush) once all dispatchers
    /// of this superstep have reported — simulating a crash mid-superstep.
    pub crash_after_dispatch: Option<u64>,
    /// Test hook: stop abruptly once the *first* computer of this
    /// superstep reports — a crash in the middle of the compute phase,
    /// with the update column genuinely half-written.
    pub crash_in_compute: Option<u64>,
    pub report_tx: Sender<ManagerReport>,
    /// Shared with the computers; the manager owns the superstep epoch.
    pub overlap: Arc<OverlapStats>,
    /// Bumped once per committed superstep; the engine's watchdog reads
    /// it to tell "slow" from "wedged".
    pub progress: Arc<AtomicU64>,
    /// Chaos harness: scripted manager panics (superstep start).
    #[cfg(feature = "chaos")]
    pub fault: Option<Arc<crate::fault::FaultPlan>>,

    pub dispatchers: Vec<Addr<Dispatcher<P>>>,
    pub computers: Vec<Addr<Computer<P>>>,
    pub assignments: Vec<DispatchAssignment>,

    pub superstep: u64,
    pub dispatch_col: u32,
    pub pending_dispatch: usize,
    pub pending_compute: usize,
    pub step_started: Option<Instant>,

    pub step_times: Vec<Duration>,
    pub activated: Vec<u64>,
    pub deltas: Vec<f64>,
    pub messages: u64,
    pub dispatcher_messages: Vec<u64>,
    pub first_batch: Vec<Option<Duration>>,
    pub edges_streamed: u64,
    pub edge_bytes_streamed: u64,
    pub edges_skipped: u64,
    pub frontier_density: Vec<f64>,
    pub phases: Vec<PhaseBreakdown>,
    pub step_phase: PhaseBreakdown,
    pub step_activated: u64,
    pub step_delta: f64,
    pub steps_run: u64,
}

impl<P: VertexProgram> Manager<P> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        values: Arc<ValueFile>,
        termination: Termination,
        durable: bool,
        crash_after_dispatch: Option<u64>,
        crash_in_compute: Option<u64>,
        report_tx: Sender<ManagerReport>,
        overlap: Arc<OverlapStats>,
        resume_superstep: u64,
        dispatch_col: u32,
        progress: Arc<AtomicU64>,
    ) -> Self {
        Manager {
            values,
            termination,
            durable,
            crash_after_dispatch,
            crash_in_compute,
            report_tx,
            overlap,
            progress,
            #[cfg(feature = "chaos")]
            fault: None,
            dispatchers: Vec::new(),
            computers: Vec::new(),
            assignments: Vec::new(),
            superstep: resume_superstep,
            dispatch_col,
            pending_dispatch: 0,
            pending_compute: 0,
            step_started: None,
            step_times: Vec::new(),
            activated: Vec::new(),
            deltas: Vec::new(),
            messages: 0,
            dispatcher_messages: Vec::new(),
            first_batch: Vec::new(),
            edges_streamed: 0,
            edge_bytes_streamed: 0,
            edges_skipped: 0,
            frontier_density: Vec::new(),
            phases: Vec::new(),
            step_phase: PhaseBreakdown::default(),
            step_activated: 0,
            step_delta: 0.0,
            steps_run: 0,
        }
    }

    fn start_superstep(&mut self) {
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault {
            plan.panic_if_due(crate::fault::FaultRole::Manager, self.superstep, 0);
        }
        self.pending_dispatch = self.dispatchers.len();
        self.pending_compute = self.computers.len();
        self.step_activated = 0;
        self.step_delta = 0.0;
        self.step_phase = PhaseBreakdown::default();
        // Epoch first: every batch of the superstep must be timed against
        // a stamp taken before any dispatcher starts.
        self.overlap.begin_superstep();
        self.step_started = Some(Instant::now());
        // Frontier popcounts: global for the density trace, per-interval
        // as each dispatcher's sparse/dense input. The bitmap is stable
        // here — computers only mark the *other* column.
        let frontier = self.values.frontier();
        let n = self.values.n_vertices();
        let global_active = frontier.count(self.dispatch_col);
        self.frontier_density.push(if n == 0 {
            0.0
        } else {
            global_active as f64 / n as f64
        });
        for (i, d) in self.dispatchers.iter().enumerate() {
            let active = match self.assignments.get(i) {
                Some(DispatchAssignment::Range(r)) => {
                    frontier.count_range(self.dispatch_col, r.clone())
                }
                // Strided assignments always sweep dense; the global
                // count is only informational for them.
                _ => global_active,
            };
            let _ = d.send(DispatchCmd::Start {
                superstep: self.superstep,
                dispatch_col: self.dispatch_col,
                active,
            });
        }
    }

    fn shutdown_workers(&self) {
        for d in &self.dispatchers {
            let _ = d.send(DispatchCmd::Shutdown);
        }
        for c in &self.computers {
            let _ = c.send(ComputeCmd::Shutdown);
        }
    }

    fn finish(&mut self, crashed: bool, ctx: &mut Ctx<'_, Self>) {
        self.shutdown_workers();
        let _ = self.report_tx.send(ManagerReport {
            crashed,
            supersteps_run: self.steps_run,
            step_times: std::mem::take(&mut self.step_times),
            activated: std::mem::take(&mut self.activated),
            deltas: std::mem::take(&mut self.deltas),
            messages: self.messages,
            dispatcher_messages: std::mem::take(&mut self.dispatcher_messages),
            first_batch: std::mem::take(&mut self.first_batch),
            edges_streamed: self.edges_streamed,
            edge_bytes_streamed: self.edge_bytes_streamed,
            edges_skipped: self.edges_skipped,
            frontier_density: std::mem::take(&mut self.frontier_density),
            phases: std::mem::take(&mut self.phases),
            final_dispatch_col: self.dispatch_col,
        });
        ctx.stop();
    }

    /// Should another superstep run after the one that just completed?
    fn wants_more(&self) -> bool {
        let next = self.superstep + 1;
        match self.termination {
            Termination::Supersteps(n) => next < n,
            Termination::Quiescence { max_supersteps } => {
                self.step_activated > 0 && next < max_supersteps
            }
            Termination::Delta {
                epsilon,
                max_supersteps,
            } => self.step_delta > epsilon && next < max_supersteps,
        }
    }

    fn superstep_completed(&mut self, ctx: &mut Ctx<'_, Self>) {
        if let Some(t) = self.step_started.take() {
            self.step_times.push(t.elapsed());
        }
        self.activated.push(self.step_activated);
        self.deltas.push(self.step_delta);
        self.first_batch.push(self.overlap.take_first_batch());
        self.steps_run += 1;
        let next_dispatch = 1 - self.dispatch_col;
        // Commit point: the update column of this superstep becomes the
        // authoritative (dispatch) column of the next. A commit failure
        // panics rather than reporting a crash: the panic rides the actor
        // runtime's FailureEvent escalation, so the engine recovers from
        // the last *successful* commit and retries — the header on disk
        // is still the previous slot (dual-slot scheme), so nothing is
        // lost.
        let commit_start = Instant::now();
        if let Err(e) = self
            .values
            .commit(self.superstep, next_dispatch, self.durable)
        {
            panic!("superstep {} commit failed: {e}", self.superstep);
        }
        self.step_phase.commit_us += commit_start.elapsed().as_micros() as u64;
        self.phases.push(std::mem::take(&mut self.step_phase));
        // The just-dispatched column becomes the next superstep's update
        // column: wipe its bitmap so computers mark a fresh frontier into
        // it (its flags are all set too — dispatchers invalidate every
        // vertex they dispatch — keeping bitmap ⊇ flag-clear exact).
        self.values.frontier().clear(self.dispatch_col);
        self.progress.fetch_add(1, Ordering::Relaxed);
        if self.wants_more() {
            self.superstep += 1;
            self.dispatch_col = next_dispatch;
            self.start_superstep();
        } else {
            self.dispatch_col = next_dispatch;
            self.finish(false, ctx);
        }
    }
}

impl<P: VertexProgram> Actor for Manager<P> {
    type Msg = ManagerMsg<P>;

    fn handle(&mut self, msg: ManagerMsg<P>, ctx: &mut Ctx<'_, Self>) {
        match msg {
            ManagerMsg::Wire {
                dispatchers,
                computers,
                assignments,
            } => {
                self.dispatcher_messages = vec![0; dispatchers.len()];
                self.dispatchers = dispatchers;
                self.computers = computers;
                self.assignments = assignments;
                self.start_superstep();
            }
            ManagerMsg::DispatchOver {
                superstep,
                dispatcher,
                sent,
                streamed,
                bytes,
                skipped,
                dispatch_us,
                slab_wait_us,
            } => {
                debug_assert_eq!(superstep, self.superstep);
                if self.dispatcher_messages.len() <= dispatcher {
                    self.dispatcher_messages.resize(dispatcher + 1, 0);
                }
                self.dispatcher_messages[dispatcher] += sent;
                self.edges_streamed += streamed;
                self.edge_bytes_streamed += bytes;
                self.edges_skipped += skipped;
                self.step_phase.dispatch_us += dispatch_us;
                self.step_phase.slab_wait_us += slab_wait_us;
                self.pending_dispatch -= 1;
                if self.pending_dispatch == 0 {
                    if self.crash_after_dispatch == Some(self.superstep) {
                        // Simulated crash: no COMPUTE_OVER flush, no commit.
                        // The update column is left half-written, exactly
                        // the state of paper Fig. 6.
                        self.finish(true, ctx);
                        return;
                    }
                    let update_col = 1 - self.dispatch_col;
                    for c in &self.computers {
                        let _ = c.send(ComputeCmd::Flush {
                            superstep: self.superstep,
                            update_col,
                        });
                    }
                }
            }
            ManagerMsg::ComputeOver {
                superstep,
                activated,
                delta,
                messages,
                fold_us,
            } => {
                debug_assert_eq!(superstep, self.superstep);
                self.step_activated += activated;
                self.step_delta += delta;
                self.messages += messages;
                self.step_phase.fold_us += fold_us;
                if self.crash_in_compute == Some(self.superstep) {
                    // Simulated crash while sibling computers are still
                    // folding: no commit, update column half-written.
                    self.finish(true, ctx);
                    return;
                }
                self.pending_compute -= 1;
                if self.pending_compute == 0 {
                    self.superstep_completed(ctx);
                }
            }
        }
    }
}
