//! Work assignment (paper §V-A): vertex intervals for dispatch actors and
//! vertex → compute-actor routing.
//!
//! "The vertices can be read by the dispatching worker with a simple mod
//! algorithm. For efficiency, we can assign vertices to the dispatcher
//! worker by the average edges... There are also different strategies to
//! deliver a message to a specific computing worker. The easiest way is an
//! average assignment by mod according to the vertex id. ... we provide
//! interfaces for the developer to substitute the default implementation."

use std::ops::Range;

use gpsa_graph::{GraphSnapshot, VertexId};

/// The set of vertices one dispatch actor owns.
///
/// `Range` is the efficient option (one contiguous streaming read of the
/// CSR file); `Strided` is the paper's "simple mod algorithm" convenience
/// option — dispatcher `offset` of `stride` reads vertices
/// `offset, offset+stride, …`, at the cost of random accesses into the
/// edge file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchAssignment {
    /// A contiguous id interval (streamed sequentially).
    Range(Range<VertexId>),
    /// Every `stride`-th vertex starting at `offset` (random access).
    Strided {
        /// First vertex id.
        offset: u32,
        /// Step between owned vertices (= number of dispatchers).
        stride: u32,
        /// Total vertex count.
        n_vertices: u32,
    },
}

impl DispatchAssignment {
    /// The owned vertex ids, in increasing order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = VertexId> + Send + '_> {
        match self {
            DispatchAssignment::Range(r) => Box::new(r.clone()),
            DispatchAssignment::Strided {
                offset,
                stride,
                n_vertices,
            } => Box::new((*offset..*n_vertices).step_by(*stride as usize)),
        }
    }

    /// Number of owned vertices.
    pub fn len(&self) -> usize {
        match self {
            DispatchAssignment::Range(r) => (r.end - r.start) as usize,
            DispatchAssignment::Strided {
                offset,
                stride,
                n_vertices,
            } => {
                if offset >= n_vertices {
                    0
                } else {
                    ((n_vertices - offset - 1) / stride + 1) as usize
                }
            }
        }
    }

    /// `true` when no vertices are owned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The paper's "simple mod algorithm": dispatcher `i` of `k` owns every
/// vertex `v` with `v % k == i`.
pub fn strided_assignments(n_vertices: usize, k: usize) -> Vec<DispatchAssignment> {
    assert!(k > 0);
    (0..k)
        .map(|i| DispatchAssignment::Strided {
            offset: i as u32,
            stride: k as u32,
            n_vertices: n_vertices as u32,
        })
        .collect()
}

/// Maps a destination vertex to the compute actor that owns it. Must be a
/// function (same vertex → same actor) so each slot of the value file has
/// a single writer.
pub trait Router: Send + Sync + 'static {
    /// Index of the owning compute actor, `< n_computers`.
    fn route(&self, v: VertexId) -> usize;
    /// Number of compute actors routed over.
    fn n_computers(&self) -> usize;
}

/// The paper's default: `v mod k`.
#[derive(Debug, Clone)]
pub struct ModRouter {
    k: usize,
}

impl ModRouter {
    /// Route over `k` compute actors.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one compute actor");
        ModRouter { k }
    }
}

impl Router for ModRouter {
    #[inline(always)]
    fn route(&self, v: VertexId) -> usize {
        v as usize % self.k
    }
    fn n_computers(&self) -> usize {
        self.k
    }
}

/// Contiguous-range routing: vertex ids are split into `k` equal ranges.
/// Better value-file write locality, but skewed graphs can unbalance it.
#[derive(Debug, Clone)]
pub struct RangeRouter {
    k: usize,
    per: usize,
}

impl RangeRouter {
    /// Route `n_vertices` over `k` compute actors in contiguous ranges.
    pub fn new(k: usize, n_vertices: usize) -> Self {
        assert!(k > 0, "need at least one compute actor");
        RangeRouter {
            k,
            per: n_vertices.div_ceil(k).max(1),
        }
    }
}

impl Router for RangeRouter {
    #[inline(always)]
    fn route(&self, v: VertexId) -> usize {
        (v as usize / self.per).min(self.k - 1)
    }
    fn n_computers(&self) -> usize {
        self.k
    }
}

/// Split `0..n_vertices` into `k` near-equal contiguous intervals (the
/// paper's "simple" dispatch assignment).
pub fn uniform_intervals(n_vertices: usize, k: usize) -> Vec<Range<VertexId>> {
    assert!(k > 0);
    let per = n_vertices.div_ceil(k).max(1);
    (0..k)
        .map(|i| {
            let start = (i * per).min(n_vertices) as VertexId;
            let end = ((i + 1) * per).min(n_vertices) as VertexId;
            start..end
        })
        .collect()
}

/// Split vertices into `k` contiguous intervals balanced by **edge count**
/// (the paper's "assign vertices to the dispatcher worker by the average
/// edges to ensure that every dispatcher worker sends exactly the same
/// number of messages"). Takes the merged live-graph view so a delta
/// overlay's added/removed edges count toward the balance.
pub fn edge_balanced_intervals(csr: &GraphSnapshot, k: usize) -> Vec<Range<VertexId>> {
    assert!(k > 0);
    let n = csr.n_vertices();
    let total = csr.n_edges() as u64;
    let target = total.div_ceil(k as u64).max(1);
    let mut intervals = Vec::with_capacity(k);
    let mut start: usize = 0;
    for i in 0..k {
        if i == k - 1 {
            intervals.push(start as VertexId..n as VertexId);
            break;
        }
        let mut acc: u64 = 0;
        let mut end = start;
        while end < n && acc < target {
            acc += u64::from(csr.degree(end as VertexId));
            end += 1;
        }
        intervals.push(start as VertexId..end as VertexId);
        start = end;
    }
    // If the loop ended early (few vertices), pad with empty intervals.
    while intervals.len() < k {
        intervals.push(n as VertexId..n as VertexId);
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_assignments_partition_the_universe() {
        for (n, k) in [(10usize, 3usize), (0, 2), (7, 7), (100, 1)] {
            let asg = strided_assignments(n, k);
            assert_eq!(asg.len(), k);
            let mut seen = vec![false; n];
            let mut total = 0usize;
            for a in &asg {
                assert_eq!(a.iter().count(), a.len());
                for v in a.iter() {
                    assert!(!seen[v as usize], "vertex {v} owned twice");
                    seen[v as usize] = true;
                    total += 1;
                }
            }
            assert_eq!(total, n, "n={n} k={k}");
        }
    }

    #[test]
    fn assignment_len_and_empty() {
        let r = DispatchAssignment::Range(3..7);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        let s = DispatchAssignment::Strided {
            offset: 9,
            stride: 4,
            n_vertices: 8,
        };
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        let s = DispatchAssignment::Strided {
            offset: 1,
            stride: 3,
            n_vertices: 10,
        };
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
        assert_eq!(s.len(), 3);
    }
    use gpsa_graph::{generate, preprocess, DiskCsr};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn materialize(name: &str, el: gpsa_graph::EdgeList) -> GraphSnapshot {
        let dir = std::env::temp_dir().join(format!("gpsa-part-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path: PathBuf = dir.join(name);
        preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
        GraphSnapshot::from_csr(Arc::new(DiskCsr::open(&path).unwrap()))
    }

    #[test]
    fn mod_router_covers_all_computers() {
        let r = ModRouter::new(4);
        let mut hit = [false; 4];
        for v in 0..100u32 {
            let i = r.route(v);
            assert!(i < 4);
            hit[i] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn range_router_is_contiguous_and_total() {
        let r = RangeRouter::new(3, 10);
        let owners: Vec<usize> = (0..10u32).map(|v| r.route(v)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        // Ids past n_vertices still clamp into range.
        assert_eq!(r.route(1000), 2);
    }

    #[test]
    fn uniform_intervals_partition_the_universe() {
        for (n, k) in [(10, 3), (0, 2), (5, 8), (100, 1)] {
            let iv = uniform_intervals(n, k);
            assert_eq!(iv.len(), k);
            let mut covered = 0usize;
            let mut expect = 0 as VertexId;
            for r in &iv {
                assert!(r.start <= r.end);
                assert_eq!(r.start, expect.min(n as VertexId));
                expect = r.end;
                covered += (r.end - r.start) as usize;
            }
            assert_eq!(covered, n, "n={n} k={k}");
        }
    }

    #[test]
    fn edge_balanced_intervals_balance_skewed_graphs() {
        // A star graph: vertex 0 has all the edges. Uniform intervals give
        // dispatcher 0 everything; edge-balanced must give later
        // dispatchers nearly-empty ranges too, but the first interval must
        // stop right after the hub.
        let csr = materialize("star.gcsr", generate::star(1000));
        let iv = edge_balanced_intervals(&csr, 4);
        assert_eq!(iv.len(), 4);
        assert_eq!(iv[0], 0..1, "hub alone saturates the first interval");
        // Intervals tile 0..n.
        let mut expect = 0;
        for r in &iv {
            assert_eq!(r.start, expect);
            expect = r.end;
        }
        assert_eq!(expect, 1000);
    }

    #[test]
    fn edge_balanced_intervals_on_uniform_graph_are_roughly_uniform() {
        let csr = materialize("er.gcsr", generate::erdos_renyi(1000, 10_000, 77));
        let iv = edge_balanced_intervals(&csr, 4);
        let loads: Vec<u64> = iv.iter().map(|r| csr.edges_in_range(r.clone())).collect();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(
            max / min.max(1.0) < 1.5,
            "loads {loads:?} should be balanced"
        );
    }

    #[test]
    fn more_intervals_than_vertices() {
        let csr = materialize("tiny.gcsr", generate::chain(3));
        let iv = edge_balanced_intervals(&csr, 8);
        assert_eq!(iv.len(), 8);
        assert_eq!(
            iv.iter().map(|r| (r.end - r.start) as usize).sum::<usize>(),
            3
        );
    }
}
