//! The user-facing vertex program API (the paper's `initialize`,
//! `genMsg` and `compute` hooks, §IV-E/F).

use gpsa_graph::VertexId;

use crate::kernels::FoldCtx;
use crate::slab::MsgSlab;
use crate::value::VertexValue;

/// Static facts about the graph, available to every hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphMeta {
    /// Number of vertices.
    pub n_vertices: u64,
    /// Number of edges.
    pub n_edges: u64,
}

/// A vertex-centric program executed by the GPSA engine.
///
/// The engine drives the program as follows, per superstep:
///
/// 1. **Dispatch**: for every vertex whose value was updated in the
///    previous superstep, [`gen_msg`](Self::gen_msg) produces the message
///    value sent along each of the vertex's out-edges.
/// 2. **Compute** (overlapping with dispatch): for every arriving message,
///    [`compute`](Self::compute) folds it into the destination vertex's
///    accumulator in the update column. On the vertex's first message of
///    the superstep the accumulator is empty (`acc == None`) and `basis`
///    carries the vertex's freshest previous value.
/// 3. After each fold the engine stores the result and marks the vertex
///    updated iff [`changed`](Self::changed)`(basis, new)`.
///
/// Messages are uniform across a vertex's out-edges (the graph is
/// unweighted, as in all the paper's benchmarks); the out-degree is passed
/// so programs like PageRank can scale by it.
pub trait VertexProgram: Send + Sync + 'static {
    /// The per-vertex state, stored in the value file.
    type Value: VertexValue;
    /// The message payload.
    type MsgVal: Copy + Send + Sync + 'static;

    /// Initial value of `v`, and whether `v` starts active (dispatches in
    /// superstep 0).
    fn init(&self, v: VertexId, meta: &GraphMeta) -> (Self::Value, bool);

    /// Message value the active vertex `src` with value `value` and
    /// `out_degree` out-edges sends to **each** of its neighbors; `None`
    /// sends nothing.
    fn gen_msg(
        &self,
        src: VertexId,
        value: Self::Value,
        out_degree: u32,
        meta: &GraphMeta,
    ) -> Option<Self::MsgVal>;

    /// Fold `msg` into the accumulator of destination vertex `v`. `acc`
    /// is `None` on the first message `v` receives in a superstep; `basis`
    /// is the vertex's freshest value from previous supersteps.
    fn compute(
        &self,
        v: VertexId,
        acc: Option<Self::Value>,
        basis: Self::Value,
        msg: Self::MsgVal,
        meta: &GraphMeta,
    ) -> Self::Value;

    /// Does `new` count as an update relative to `basis`? Controls both
    /// the flag bit (whether the vertex dispatches next superstep) and the
    /// engine's quiescence detection. Default: plain inequality, as in
    /// paper Algorithm 3 (`if newVal != val then update()`).
    fn changed(&self, basis: Self::Value, new: Self::Value) -> bool {
        new != basis
    }

    /// Pick the fresher of the two buffered copies of a vertex's value.
    ///
    /// The two value-file columns hold the vertex's last two written
    /// values; for a vertex that skipped a superstep, the *older* column
    /// is the freshest (the paper's protocol glosses over this). Monotone
    /// programs (BFS, CC) should return the better value; programs that
    /// update every active vertex every superstep (PageRank) can keep the
    /// default, which trusts the dispatch-column copy as the paper does.
    fn freshest(&self, dispatch_copy: Self::Value, _update_copy: Self::Value) -> Self::Value {
        dispatch_copy
    }

    /// Contribution of one vertex update to the superstep's convergence
    /// metric (used by [`crate::Termination::Delta`]). Default `0`.
    fn delta(&self, _basis: Self::Value, _new: Self::Value) -> f64 {
        0.0
    }

    /// New value of a vertex that received **no** messages in a superstep.
    ///
    /// Only consulted for always-dispatch programs (see
    /// [`always_dispatch`](Self::always_dispatch)), where every vertex must
    /// be re-evaluated every superstep even without input: PageRank's rank
    /// of an in-degree-zero vertex is `(1-d)/N`, not its previous value.
    /// Sparse programs never see this called.
    fn no_message_value(&self, _v: VertexId, basis: Self::Value, _meta: &GraphMeta) -> Self::Value {
        basis
    }

    /// Does this program support message combining? When `true`, the
    /// dispatcher merges same-destination messages within each outgoing
    /// batch via [`combine`](Self::combine) before sending — the
    /// Pregel-combiner optimization, trading a sort per batch for fewer
    /// mailbox operations and folds. Sound only when `compute` folds
    /// messages associatively and commutatively (min for BFS/CC, sum for
    /// PageRank).
    fn combines(&self) -> bool {
        false
    }

    /// Merge two messages addressed to the same destination vertex. Only
    /// called when [`combines`](Self::combines) returns `true`.
    fn combine(&self, _a: Self::MsgVal, _b: Self::MsgVal) -> Self::MsgVal {
        unreachable!("combines() returned true but combine() is not implemented")
    }

    /// Fold one whole message slab into the update column — the batch
    /// hot path. The default replays the slab through the scalar
    /// per-message [`compute`](Self::compute) protocol via
    /// [`FoldCtx::fold_scalar_slab`] (always correct; also the oracle the
    /// kernel overrides are proptested against). Programs whose fold is
    /// a u32 min (BFS, CC, SSSP) or an f32 damped sum (PageRank) override
    /// this with the tight kernels in [`crate::kernels`]; overrides must
    /// be **bit-identical** to the scalar replay, including the
    /// first-message bookkeeping (`basis` seeding, dirty list, frontier
    /// mark) and run order (f32 folds are order-sensitive).
    fn fold_batch(&self, slab: &MsgSlab<Self::MsgVal>, ctx: &mut FoldCtx<'_, Self>)
    where
        Self: Sized,
    {
        ctx.fold_scalar_slab(self, slab);
    }

    /// Dispatch every vertex every superstep, ignoring the updated flag.
    ///
    /// Message-driven accumulators rebuild a vertex's value from the
    /// messages of one superstep, so a *dense* program like PageRank —
    /// where each rank is a sum over **all** in-neighbors — must keep all
    /// sources sending every superstep; selective scheduling would
    /// silently drop the contribution of any in-neighbor that went quiet.
    /// Sparse, monotone programs (BFS, CC) keep the default `false` and
    /// get the paper's inactive-vertex skipping.
    fn always_dispatch(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MinLabel;
    impl VertexProgram for MinLabel {
        type Value = u32;
        type MsgVal = u32;
        fn init(&self, v: VertexId, _m: &GraphMeta) -> (u32, bool) {
            (v, true)
        }
        fn gen_msg(&self, _src: VertexId, value: u32, _d: u32, _m: &GraphMeta) -> Option<u32> {
            Some(value)
        }
        fn compute(
            &self,
            _v: VertexId,
            acc: Option<u32>,
            basis: u32,
            msg: u32,
            _m: &GraphMeta,
        ) -> u32 {
            acc.unwrap_or(basis).min(msg)
        }
        fn freshest(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
    }

    #[test]
    fn default_changed_is_inequality() {
        let p = MinLabel;
        assert!(p.changed(5, 3));
        assert!(!p.changed(5, 5));
    }

    #[test]
    fn fold_sequence_behaves_like_min() {
        let p = MinLabel;
        let meta = GraphMeta {
            n_vertices: 10,
            n_edges: 0,
        };
        let a = p.compute(0, None, 7, 9, &meta);
        assert_eq!(a, 7);
        let b = p.compute(0, Some(a), 7, 2, &meta);
        assert_eq!(b, 2);
    }
}
