//! Built-in vertex programs: the paper's three benchmarks (PageRank,
//! BFS, Connected Components) plus SSSP and in-degree counting.

use gpsa_graph::VertexId;

use crate::kernels::{self, FoldCtx};
use crate::program::{GraphMeta, VertexProgram};
use crate::slab::MsgSlab;

/// PageRank with damping factor `d` (default 0.85):
/// `rank(v) = (1 - d)/N + d * Σ rank(u)/deg(u)` over in-neighbors `u`.
///
/// A *dense* program: every vertex dispatches every superstep
/// ([`VertexProgram::always_dispatch`]); run it with
/// [`crate::Termination::Supersteps`] (the paper times 5 supersteps) or
/// [`crate::Termination::Delta`].
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Damping factor, conventionally 0.85.
    pub damping: f32,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank { damping: 0.85 }
    }
}

impl VertexProgram for PageRank {
    type Value = f32;
    type MsgVal = f32;

    fn init(&self, _v: VertexId, meta: &GraphMeta) -> (f32, bool) {
        (1.0 / meta.n_vertices.max(1) as f32, true)
    }

    fn gen_msg(
        &self,
        _src: VertexId,
        value: f32,
        out_degree: u32,
        _meta: &GraphMeta,
    ) -> Option<f32> {
        if out_degree == 0 {
            None // sinks keep their mass (simplified PR, as in GraphChi's example)
        } else {
            Some(value / out_degree as f32)
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        acc: Option<f32>,
        _basis: f32,
        msg: f32,
        meta: &GraphMeta,
    ) -> f32 {
        let base = (1.0 - self.damping) / meta.n_vertices.max(1) as f32;
        match acc {
            None => base + self.damping * msg,
            Some(a) => a + self.damping * msg,
        }
    }

    fn changed(&self, _basis: f32, _new: f32) -> bool {
        true // rank sums are rebuilt every superstep; never deactivate
    }

    fn no_message_value(&self, _v: VertexId, _basis: f32, meta: &GraphMeta) -> f32 {
        // No in-contribution this superstep: the rank is the base term.
        (1.0 - self.damping) / meta.n_vertices.max(1) as f32
    }

    fn delta(&self, basis: f32, new: f32) -> f64 {
        (new - basis).abs() as f64
    }

    fn always_dispatch(&self) -> bool {
        true
    }

    fn combines(&self) -> bool {
        true
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b // rank shares sum; compute() is linear in the message
    }

    fn fold_batch(&self, slab: &MsgSlab<f32>, ctx: &mut FoldCtx<'_, Self>) {
        kernels::fold_sum_f32(self, slab, ctx, self.damping);
    }
}

/// Level value used for unreached vertices (largest 31-bit payload).
pub const UNREACHED: u32 = 0x7FFF_FFFF;

/// Breadth-first search from `root`: computes hop distance per vertex
/// ([`UNREACHED`] for unreachable vertices).
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    /// Source vertex.
    pub root: VertexId,
}

impl VertexProgram for Bfs {
    type Value = u32;
    type MsgVal = u32;

    fn init(&self, v: VertexId, _meta: &GraphMeta) -> (u32, bool) {
        if v == self.root {
            (0, true)
        } else {
            (UNREACHED, false)
        }
    }

    fn gen_msg(&self, _src: VertexId, value: u32, _d: u32, _meta: &GraphMeta) -> Option<u32> {
        if value >= UNREACHED {
            None
        } else {
            Some(value + 1)
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        acc: Option<u32>,
        basis: u32,
        msg: u32,
        _meta: &GraphMeta,
    ) -> u32 {
        acc.unwrap_or(basis).min(msg)
    }

    fn changed(&self, basis: u32, new: u32) -> bool {
        new < basis
    }

    fn freshest(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn combines(&self) -> bool {
        true
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn fold_batch(&self, slab: &MsgSlab<u32>, ctx: &mut FoldCtx<'_, Self>) {
        kernels::fold_min_u32(self, slab, ctx);
    }
}

/// Connected components by label propagation: every vertex converges to
/// the minimum vertex id reachable along (directed) edges. Run on a
/// symmetrized graph for undirected components, as the paper's CC does.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    type Value = u32;
    type MsgVal = u32;

    fn init(&self, v: VertexId, _meta: &GraphMeta) -> (u32, bool) {
        (v, true)
    }

    fn gen_msg(&self, _src: VertexId, value: u32, _d: u32, _meta: &GraphMeta) -> Option<u32> {
        Some(value)
    }

    fn compute(
        &self,
        _v: VertexId,
        acc: Option<u32>,
        basis: u32,
        msg: u32,
        _meta: &GraphMeta,
    ) -> u32 {
        acc.unwrap_or(basis).min(msg)
    }

    fn changed(&self, basis: u32, new: u32) -> bool {
        new < basis
    }

    fn freshest(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn combines(&self) -> bool {
        true
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn fold_batch(&self, slab: &MsgSlab<u32>, ctx: &mut FoldCtx<'_, Self>) {
        kernels::fold_min_u32(self, slab, ctx);
    }
}

/// Single-source shortest paths with deterministic synthetic edge weights
/// `w(u, v) = 1 + ((u ^ v) & 7)` — the graphs are unweighted, so weights
/// are derived on the fly; this exercises a non-unit-distance relaxation
/// path distinct from BFS.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    /// Source vertex.
    pub root: VertexId,
}

impl Sssp {
    /// The synthetic weight of edge `(u, v)`.
    #[inline]
    pub fn weight(u: VertexId, v: VertexId) -> u32 {
        1 + ((u ^ v) & 7)
    }
}

impl VertexProgram for Sssp {
    type Value = u32;
    /// `(distance at source, source id)` — the weight is applied at the
    /// destination, which knows both endpoints.
    type MsgVal = (u32, VertexId);

    fn init(&self, v: VertexId, _meta: &GraphMeta) -> (u32, bool) {
        if v == self.root {
            (0, true)
        } else {
            (UNREACHED, false)
        }
    }

    fn gen_msg(
        &self,
        src: VertexId,
        value: u32,
        _d: u32,
        _meta: &GraphMeta,
    ) -> Option<(u32, VertexId)> {
        if value >= UNREACHED {
            None
        } else {
            Some((value, src))
        }
    }

    fn compute(
        &self,
        v: VertexId,
        acc: Option<u32>,
        basis: u32,
        (dist, src): (u32, VertexId),
        _meta: &GraphMeta,
    ) -> u32 {
        let candidate = dist.saturating_add(Self::weight(src, v)).min(UNREACHED);
        acc.unwrap_or(basis).min(candidate)
    }

    fn changed(&self, basis: u32, new: u32) -> bool {
        new < basis
    }

    fn freshest(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn fold_batch(&self, slab: &MsgSlab<(u32, VertexId)>, ctx: &mut FoldCtx<'_, Self>) {
        kernels::fold_min_u32_by(self, slab, ctx, |v, (dist, src)| {
            dist.saturating_add(Self::weight(src, v)).min(UNREACHED)
        });
    }
}

/// In-degree counting: every vertex sends `1` to each out-neighbor in
/// superstep 0; sums arrive in one superstep. Run with
/// [`crate::Termination::Supersteps`]`(1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct InDegree;

impl VertexProgram for InDegree {
    type Value = u32;
    type MsgVal = u32;

    fn init(&self, _v: VertexId, _meta: &GraphMeta) -> (u32, bool) {
        (0, true)
    }

    fn gen_msg(&self, _src: VertexId, _value: u32, _d: u32, _meta: &GraphMeta) -> Option<u32> {
        Some(1)
    }

    fn compute(
        &self,
        _v: VertexId,
        acc: Option<u32>,
        _basis: u32,
        msg: u32,
        _meta: &GraphMeta,
    ) -> u32 {
        acc.unwrap_or(0) + msg
    }

    // In-degree accumulates from zero each superstep; the previous value
    // is irrelevant.
    fn freshest(&self, _a: u32, b: u32) -> u32 {
        b
    }

    fn combines(&self) -> bool {
        true
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a + b
    }
}

/// K-core decomposition membership by iterative peeling (an extension
/// beyond the paper's three benchmarks, showing the message-driven model
/// handles *retraction*-style algorithms too).
///
/// Run on a **symmetrized** graph. Vertex state encodes
/// `residual_degree + 1` while alive and `0` once removed; a vertex whose
/// residual degree drops below `k` is peeled and sends one decrement to
/// each neighbor. At quiescence, exactly the `k`-core has non-zero state.
///
/// Degrees must be supplied up front (the engine's `init` hook does not
/// see the graph): build with [`KCore::new`].
#[derive(Debug, Clone)]
pub struct KCore {
    /// Core parameter.
    pub k: u32,
    degrees: std::sync::Arc<Vec<u32>>,
}

impl KCore {
    /// A `k`-core program for a graph with the given per-vertex
    /// (out-)degrees — equal to undirected degrees on a symmetrized graph.
    pub fn new(k: u32, degrees: Vec<u32>) -> Self {
        KCore {
            k,
            degrees: std::sync::Arc::new(degrees),
        }
    }

    /// Decode an engine result value: `Some(residual_degree)` for members
    /// of the k-core, `None` for peeled vertices.
    pub fn decode(value: u32) -> Option<u32> {
        value.checked_sub(1)
    }
}

/// Encoded "peeled" state.
const REMOVED: u32 = 0;

impl VertexProgram for KCore {
    type Value = u32;
    /// Number of removed in-neighbors (decrement amount).
    type MsgVal = u32;

    fn init(&self, v: VertexId, _meta: &GraphMeta) -> (u32, bool) {
        let d = self.degrees[v as usize];
        if d < self.k {
            (REMOVED, true) // peeled immediately; dispatches its decrements
        } else {
            (d + 1, false)
        }
    }

    fn gen_msg(&self, _src: VertexId, value: u32, _d: u32, _meta: &GraphMeta) -> Option<u32> {
        // Only vertices that just transitioned to REMOVED announce; alive
        // vertices whose residual merely shrank stay silent.
        if value == REMOVED {
            Some(1)
        } else {
            None
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        acc: Option<u32>,
        basis: u32,
        msg: u32,
        _meta: &GraphMeta,
    ) -> u32 {
        let cur = acc.unwrap_or(basis);
        if cur == REMOVED {
            return REMOVED; // decrements to a peeled vertex are moot
        }
        let residual = (cur - 1).saturating_sub(msg);
        if residual < self.k {
            REMOVED
        } else {
            residual + 1
        }
    }

    fn changed(&self, basis: u32, new: u32) -> bool {
        new < basis
    }

    // Residuals only decrease, so min picks the freshest copy — and keeps
    // REMOVED (0) absorbing.
    fn freshest(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn combines(&self) -> bool {
        true
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a + b // decrements sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: GraphMeta = GraphMeta {
        n_vertices: 4,
        n_edges: 5,
    };

    #[test]
    fn pagerank_fold_accumulates_damped_sum() {
        let pr = PageRank::default();
        let (v0, active) = pr.init(0, &META);
        assert!(active);
        assert!((v0 - 0.25).abs() < 1e-6);
        let m = pr.gen_msg(0, 0.25, 2, &META).unwrap();
        assert!((m - 0.125).abs() < 1e-6);
        assert_eq!(pr.gen_msg(0, 0.25, 0, &META), None);
        let base = 0.15 / 4.0;
        let a = pr.compute(1, None, 0.25, 0.125, &META);
        assert!((a - (base + 0.85 * 0.125)).abs() < 1e-6);
        let b = pr.compute(1, Some(a), 0.25, 0.1, &META);
        assert!((b - (a + 0.085)).abs() < 1e-6);
        assert!(pr.always_dispatch());
        assert!(pr.changed(0.5, 0.5));
        assert!((pr.delta(0.5, 0.75) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn bfs_relaxes_min_levels() {
        let bfs = Bfs { root: 2 };
        assert_eq!(bfs.init(2, &META), (0, true));
        assert_eq!(bfs.init(0, &META), (UNREACHED, false));
        assert_eq!(bfs.gen_msg(2, 0, 3, &META), Some(1));
        assert_eq!(bfs.gen_msg(0, UNREACHED, 3, &META), None);
        assert_eq!(bfs.compute(1, None, UNREACHED, 1, &META), 1);
        assert_eq!(bfs.compute(1, Some(1), UNREACHED, 3, &META), 1);
        assert!(bfs.changed(UNREACHED, 1));
        assert!(!bfs.changed(1, 1));
        assert_eq!(bfs.freshest(5, 3), 3);
    }

    #[test]
    fn cc_propagates_min_label() {
        let cc = ConnectedComponents;
        assert_eq!(cc.init(3, &META), (3, true));
        assert_eq!(cc.gen_msg(3, 3, 1, &META), Some(3));
        assert_eq!(cc.compute(1, None, 7, 3, &META), 3);
        assert_eq!(cc.compute(1, Some(3), 7, 5, &META), 3);
    }

    #[test]
    fn sssp_weights_are_deterministic_and_bounded() {
        for u in 0..20u32 {
            for v in 0..20u32 {
                let w = Sssp::weight(u, v);
                assert!((1..=8).contains(&w));
                assert_eq!(w, Sssp::weight(u, v));
            }
        }
        let p = Sssp { root: 0 };
        let msg = p.gen_msg(0, 0, 2, &META).unwrap();
        assert_eq!(msg, (0, 0));
        let d = p.compute(3, None, UNREACHED, msg, &META);
        assert_eq!(d, Sssp::weight(0, 3));
    }

    #[test]
    fn sssp_saturates_at_unreached() {
        let p = Sssp { root: 0 };
        let d = p.compute(1, None, UNREACHED, (UNREACHED - 1, 0), &META);
        assert_eq!(d, UNREACHED);
    }

    #[test]
    fn indegree_counts_messages() {
        let p = InDegree;
        let a = p.compute(1, None, 0, 1, &META);
        let b = p.compute(1, Some(a), 0, 1, &META);
        assert_eq!(b, 2);
        assert_eq!(p.freshest(9, 4), 4);
    }
}
