//! Run results.

use std::time::Duration;

/// Where one superstep's time went, in wall-clock microseconds summed
/// across the actors of each role. `dispatch_us` covers the chunk scans
/// (including `gen_msg` and slab emission); `fold_us` the computers'
/// batch folds; `commit_us` the manager's end-of-superstep value-file
/// commit; `slab_wait_us` — a subset of `dispatch_us` — the time flushes
/// spent acquiring a replacement slab from the pool (backpressure from
/// computers still holding loaned slabs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// µs dispatchers spent scanning + emitting, summed across actors.
    pub dispatch_us: u64,
    /// µs computers spent folding slabs, summed across actors.
    pub fold_us: u64,
    /// µs the manager spent committing the value file.
    pub commit_us: u64,
    /// µs dispatch flushes spent waiting on the slab pool (⊆ dispatch).
    pub slab_wait_us: u64,
}

impl PhaseBreakdown {
    /// Element-wise sum, for whole-run totals.
    pub fn add(&mut self, other: &PhaseBreakdown) {
        self.dispatch_us += other.dispatch_us;
        self.fold_us += other.fold_us;
        self.commit_us += other.commit_us;
        self.slab_wait_us += other.slab_wait_us;
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The termination condition was met (fixed superstep count reached,
    /// quiescence, or delta convergence).
    Completed,
    /// The configured fault injection fired; the value file is left in a
    /// crashed state for recovery.
    Crashed,
}

/// Everything a completed (or crashed) run reports.
#[derive(Debug, Clone)]
pub struct RunReport<V> {
    /// Final vertex values (empty for crashed runs).
    pub values: Vec<V>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Supersteps executed in this run (excludes pre-crash runs resumed
    /// from).
    pub supersteps: u64,
    /// Wall time of each superstep.
    pub step_times: Vec<Duration>,
    /// Vertices activated (updated) per superstep.
    pub activated: Vec<u64>,
    /// Summed convergence deltas per superstep.
    pub deltas: Vec<f64>,
    /// Total messages folded by compute actors.
    pub messages: u64,
    /// Messages sent per dispatch actor over the whole run — the paper's
    /// §V-A load-balance story made observable.
    pub dispatcher_messages: Vec<u64>,
    /// CSR body words actually read by dispatchers over the whole run
    /// (degree words + targets + separators). Under sparse dispatch this
    /// counts only the records seeked to; under a dense sweep it is the
    /// full interval each superstep.
    pub edges_streamed: u64,
    /// CSR body *bytes* actually read by dispatchers over the whole run —
    /// the physical I/O behind `edges_streamed`'s logical words. With the
    /// v2 compressed edge format this is what shrinks; the ratio
    /// `edge_bytes_streamed / (4 * edges_streamed)` is the effective
    /// compression on the bytes the run actually touched.
    pub edge_bytes_streamed: u64,
    /// CSR body words dispatchers did *not* read thanks to frontier-driven
    /// seeks (interval total minus streamed, per Range dispatcher per
    /// superstep). 0 for dense sweeps and strided assignments.
    pub edges_skipped: u64,
    /// Per superstep: `active vertices / total vertices` at dispatch time
    /// — the frontier density the sparse/dense decision was made from.
    pub frontier_density: Vec<f64>,
    /// Vertices seeded into the initial frontier by an incremental run
    /// (`Engine::run_incremental`): the sources of the delta's added
    /// edges that had a committed prior value to re-send. 0 for full
    /// runs.
    pub seeded_frontier: u64,
    /// Message-slab *bytes* of capacity served from the pool's free-list
    /// (recycled buffers) over the whole run. Byte-weighted so slabs of
    /// different column widths (message types) compare honestly.
    pub pool_hit_bytes: u64,
    /// Slab capacity bytes that had to be freshly allocated. At steady
    /// state the pool holds the maximum number of in-flight batches and
    /// misses stop growing.
    pub pool_miss_bytes: u64,
    /// Per superstep: where the time went (dispatch / fold / commit /
    /// slab wait), summed across the actors of each role.
    pub phases: Vec<PhaseBreakdown>,
    /// Per superstep: time from superstep start until the first message
    /// batch reached a compute actor — the paper's dispatch/compute
    /// overlap made observable (`None` when a superstep sent no
    /// messages). With chunked dispatch this should be on the order of
    /// one chunk, not a whole interval scan.
    pub first_batch: Vec<Option<Duration>>,
    /// Total wall time of the run (setup + supersteps + teardown).
    pub elapsed: Duration,
    /// In-process recovery attempts the self-healing loop made (fleet
    /// teardown + `ValueFile::recover` + re-spawn). 0 for a clean run.
    pub retry_attempts: u32,
    /// Why each retry happened (failure escalations, watchdog deadlines),
    /// in order.
    pub retry_causes: Vec<String>,
}

impl<V> RunReport<V> {
    /// Mean superstep wall time over the first `n` supersteps (the paper's
    /// five-superstep methodology). Uses fewer if fewer ran.
    pub fn mean_superstep(&self, n: usize) -> Duration {
        let k = n.min(self.step_times.len());
        if k == 0 {
            return Duration::ZERO;
        }
        self.step_times[..k].iter().sum::<Duration>() / k as u32
    }

    /// Total superstep time (excluding setup/teardown).
    pub fn superstep_total(&self) -> Duration {
        self.step_times.iter().sum()
    }

    /// Fraction of slab capacity bytes served by recycling,
    /// `hit / (hit + miss)`; 0.0 if the pool was never used.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hit_bytes + self.pool_miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.pool_hit_bytes as f64 / total as f64
        }
    }

    /// Whole-run phase totals (element-wise sum over supersteps).
    pub fn phase_totals(&self) -> PhaseBreakdown {
        let mut total = PhaseBreakdown::default();
        for p in &self.phases {
            total.add(p);
        }
        total
    }

    /// Mean frontier density over the run's supersteps; 0.0 if none ran.
    pub fn mean_frontier_density(&self) -> f64 {
        if self.frontier_density.is_empty() {
            0.0
        } else {
            self.frontier_density.iter().sum::<f64>() / self.frontier_density.len() as f64
        }
    }

    /// Mean time-to-first-compute-batch over supersteps that sent
    /// messages, if any did.
    pub fn mean_first_batch(&self) -> Option<Duration> {
        let with: Vec<Duration> = self.first_batch.iter().flatten().copied().collect();
        if with.is_empty() {
            None
        } else {
            Some(with.iter().sum::<Duration>() / with.len() as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_superstep_handles_short_runs() {
        let r = RunReport::<u32> {
            values: vec![],
            outcome: RunOutcome::Completed,
            supersteps: 2,
            step_times: vec![Duration::from_millis(10), Duration::from_millis(30)],
            activated: vec![5, 0],
            deltas: vec![],
            messages: 12,
            dispatcher_messages: vec![6, 6],
            edges_streamed: 40,
            edge_bytes_streamed: 160,
            edges_skipped: 8,
            frontier_density: vec![0.5, 0.1],
            seeded_frontier: 0,
            pool_hit_bytes: 9216,
            pool_miss_bytes: 3072,
            phases: vec![
                PhaseBreakdown {
                    dispatch_us: 100,
                    fold_us: 40,
                    commit_us: 5,
                    slab_wait_us: 2,
                },
                PhaseBreakdown {
                    dispatch_us: 50,
                    fold_us: 10,
                    commit_us: 5,
                    slab_wait_us: 0,
                },
            ],
            first_batch: vec![Some(Duration::from_millis(1)), None],
            elapsed: Duration::from_millis(50),
            retry_attempts: 0,
            retry_causes: vec![],
        };
        assert_eq!(r.mean_superstep(5), Duration::from_millis(20));
        assert_eq!(r.mean_superstep(1), Duration::from_millis(10));
        assert_eq!(r.superstep_total(), Duration::from_millis(40));
        assert!((r.pool_hit_rate() - 0.75).abs() < 1e-9);
        assert!((r.mean_frontier_density() - 0.3).abs() < 1e-9);
        assert_eq!(r.mean_first_batch(), Some(Duration::from_millis(1)));
        let totals = r.phase_totals();
        assert_eq!(totals.dispatch_us, 150);
        assert_eq!(totals.fold_us, 50);
        assert_eq!(totals.commit_us, 10);
        assert_eq!(totals.slab_wait_us, 2);
    }
}
