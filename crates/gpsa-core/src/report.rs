//! Run results.

use std::time::Duration;

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The termination condition was met (fixed superstep count reached,
    /// quiescence, or delta convergence).
    Completed,
    /// The configured fault injection fired; the value file is left in a
    /// crashed state for recovery.
    Crashed,
}

/// Everything a completed (or crashed) run reports.
#[derive(Debug, Clone)]
pub struct RunReport<V> {
    /// Final vertex values (empty for crashed runs).
    pub values: Vec<V>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Supersteps executed in this run (excludes pre-crash runs resumed
    /// from).
    pub supersteps: u64,
    /// Wall time of each superstep.
    pub step_times: Vec<Duration>,
    /// Vertices activated (updated) per superstep.
    pub activated: Vec<u64>,
    /// Summed convergence deltas per superstep.
    pub deltas: Vec<f64>,
    /// Total messages folded by compute actors.
    pub messages: u64,
    /// Messages sent per dispatch actor over the whole run — the paper's
    /// §V-A load-balance story made observable.
    pub dispatcher_messages: Vec<u64>,
    /// Total wall time of the run (setup + supersteps + teardown).
    pub elapsed: Duration,
}

impl<V> RunReport<V> {
    /// Mean superstep wall time over the first `n` supersteps (the paper's
    /// five-superstep methodology). Uses fewer if fewer ran.
    pub fn mean_superstep(&self, n: usize) -> Duration {
        let k = n.min(self.step_times.len());
        if k == 0 {
            return Duration::ZERO;
        }
        self.step_times[..k].iter().sum::<Duration>() / k as u32
    }

    /// Total superstep time (excluding setup/teardown).
    pub fn superstep_total(&self) -> Duration {
        self.step_times.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_superstep_handles_short_runs() {
        let r = RunReport::<u32> {
            values: vec![],
            outcome: RunOutcome::Completed,
            supersteps: 2,
            step_times: vec![Duration::from_millis(10), Duration::from_millis(30)],
            activated: vec![5, 0],
            deltas: vec![],
            messages: 12,
            dispatcher_messages: vec![6, 6],
            elapsed: Duration::from_millis(50),
        };
        assert_eq!(r.mean_superstep(5), Duration::from_millis(20));
        assert_eq!(r.mean_superstep(1), Duration::from_millis(10));
        assert_eq!(r.superstep_total(), Duration::from_millis(40));
    }
}
