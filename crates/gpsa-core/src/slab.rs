//! Struct-of-arrays message slabs, their recycling pool, and
//! dispatch/compute overlap statistics.
//!
//! Messages are uniform across a vertex's out-edges (paper §IV-E), so a
//! dispatcher→computer batch is naturally a sequence of *runs*: one
//! message value paired with the run of destinations it goes to. A
//! [`MsgSlab`] stores the batch in struct-of-arrays form — a flat `dst`
//! column, a per-run `msg` column, and exclusive run-end offsets — so
//! the fold side can stream the destination column with tight,
//! SIMD-friendly inner loops instead of pulling one `(VertexId, MsgVal)`
//! tuple at a time, and the dispatch side can decode CSR records
//! straight into the `dst` column with no intermediate buffer
//! ([`MsgSlab::dst_buf_mut`] + [`MsgSlab::close_run`]).
//!
//! Every batch used to be a freshly allocated buffer, dropped by the
//! computer after folding. The [`MsgSlabPool`] closes that loop:
//! dispatchers pop an empty slab from a shared lock-free free-list
//! whenever they hand a full one off, and computers push slabs back
//! after folding them. The pool population converges to the maximum
//! number of batches ever in flight, after which flushing allocates
//! nothing — observable as a byte-weighted hit rate near 1 in
//! [`crate::RunReport::pool_hit_rate`]. Stats count *bytes* of slab
//! capacity, not slab counts: SoA columns make slab payload sizes
//! diverge (a run-heavy slab carries more `msg` bytes per destination),
//! so a slab tally would misstate how much allocation the pool avoids.
//!
//! [`OverlapStats`] makes the paper's dispatch/compute overlap claim
//! measurable: the manager stamps an epoch at superstep start and the
//! first compute batch of the superstep records its arrival time against
//! it (time-to-first-batch). With chunked dispatch this should sit near
//! one chunk's worth of work, not a full interval scan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam_queue::SegQueue;
use gpsa_graph::VertexId;
use parking_lot::Mutex;

/// One dispatcher→computer batch in struct-of-arrays run form.
///
/// Run `i` is the destination slice
/// `dst[run_ends[i-1]..run_ends[i]]` (with `run_ends[-1] == 0`) carrying
/// the single message value `msg[i]`. Runs preserve emission order —
/// the fold side must not reorder them (f32 bit-identity depends on the
/// per-destination fold sequence).
#[derive(Debug)]
pub struct MsgSlab<M> {
    /// Flat destination column, all runs concatenated.
    dst: Vec<VertexId>,
    /// One message value per run.
    msg: Vec<M>,
    /// Exclusive end offset of each run within `dst`.
    run_ends: Vec<u32>,
}

impl<M> Default for MsgSlab<M> {
    fn default() -> Self {
        MsgSlab::new()
    }
}

impl<M> MsgSlab<M> {
    /// An empty slab with no reserved capacity.
    pub fn new() -> Self {
        MsgSlab {
            dst: Vec::new(),
            msg: Vec::new(),
            run_ends: Vec::new(),
        }
    }

    /// An empty slab with room for `capacity` destinations (and as many
    /// runs, the singleton-run worst case).
    pub fn with_capacity(capacity: usize) -> Self {
        MsgSlab {
            dst: Vec::with_capacity(capacity),
            msg: Vec::with_capacity(capacity),
            run_ends: Vec::with_capacity(capacity),
        }
    }

    /// Destination messages in the slab (the old per-tuple batch
    /// length).
    pub fn len(&self) -> usize {
        self.dst.len()
    }

    /// No destinations at all.
    pub fn is_empty(&self) -> bool {
        self.dst.is_empty()
    }

    /// Closed runs in the slab.
    pub fn n_runs(&self) -> usize {
        self.msg.len()
    }

    /// Reserved bytes across all three columns — what the pool's
    /// byte-weighted hit/miss stats count.
    pub fn capacity_bytes(&self) -> u64 {
        (self.dst.capacity() * std::mem::size_of::<VertexId>()
            + self.msg.capacity() * std::mem::size_of::<M>()
            + self.run_ends.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Drop all contents, keeping the allocations.
    pub fn clear(&mut self) {
        self.dst.clear();
        self.msg.clear();
        self.run_ends.clear();
    }

    /// Append one singleton run.
    pub fn push(&mut self, dst: VertexId, msg: M) {
        debug_assert!(!self.has_open_run());
        self.dst.push(dst);
        self.msg.push(msg);
        self.run_ends.push(self.dst.len() as u32);
    }

    /// Append one run of `targets` sharing `msg` (no-op for an empty
    /// target slice).
    pub fn extend_run(&mut self, targets: &[VertexId], msg: M) {
        debug_assert!(!self.has_open_run());
        if targets.is_empty() {
            return;
        }
        self.dst.extend_from_slice(targets);
        self.msg.push(msg);
        self.run_ends.push(self.dst.len() as u32);
    }

    /// Direct access to the destination column for fused decode: CSR
    /// cursors append a record's targets here, then
    /// [`close_run`](MsgSlab::close_run) seals them as one run. The
    /// caller must close (or truncate away) whatever it appends before
    /// any other mutating call.
    pub fn dst_buf_mut(&mut self) -> &mut Vec<VertexId> {
        &mut self.dst
    }

    /// Destinations appended past the last closed run.
    pub fn open_len(&self) -> usize {
        self.dst.len() - self.run_ends.last().map_or(0, |&e| e as usize)
    }

    /// Whether an unsealed tail exists (see
    /// [`dst_buf_mut`](MsgSlab::dst_buf_mut)).
    pub fn has_open_run(&self) -> bool {
        self.open_len() > 0
    }

    /// Seal the open tail as one run carrying `msg`. No-op when nothing
    /// was appended (an empty record emits no run).
    pub fn close_run(&mut self, msg: M) {
        if self.has_open_run() {
            self.msg.push(msg);
            self.run_ends.push(self.dst.len() as u32);
        }
    }

    /// The flat destination column (closed runs only — callers must not
    /// interleave with an open tail).
    pub fn dsts(&self) -> &[VertexId] {
        &self.dst
    }
}

impl<M: Copy> MsgSlab<M> {
    /// Append a singleton run, or combine into the previous one when it
    /// targets the same destination — the push-time form of the old
    /// flush-time adjacent dedup (CSR order makes duplicate targets of
    /// one source adjacent). Only valid on slabs built exclusively by
    /// this method: every run stays a singleton, so merging into the
    /// last run is merging with exactly the last destination.
    pub fn push_combined(&mut self, dst: VertexId, msg: M, combine: impl FnOnce(M, M) -> M) {
        debug_assert!(!self.has_open_run());
        if self.dst.last() == Some(&dst) {
            debug_assert_eq!(self.n_runs(), self.len(), "combined slabs hold singletons");
            let last = self.msg.last_mut().expect("non-empty slab has a run");
            *last = combine(*last, msg);
            return;
        }
        self.push(dst, msg);
    }

    /// Iterate the closed runs as `(destinations, msg)` pairs, in
    /// emission order.
    pub fn runs(&self) -> Runs<'_, M> {
        debug_assert!(!self.has_open_run());
        Runs {
            slab: self,
            i: 0,
            start: 0,
        }
    }
}

/// Iterator over a slab's runs. See [`MsgSlab::runs`].
#[derive(Debug)]
pub struct Runs<'a, M> {
    slab: &'a MsgSlab<M>,
    i: usize,
    start: usize,
}

impl<'a, M: Copy> Iterator for Runs<'a, M> {
    type Item = (&'a [VertexId], M);

    fn next(&mut self) -> Option<Self::Item> {
        if self.i >= self.slab.msg.len() {
            return None;
        }
        let end = self.slab.run_ends[self.i] as usize;
        let run = &self.slab.dst[self.start..end];
        let m = self.slab.msg[self.i];
        self.start = end;
        self.i += 1;
        Some((run, m))
    }
}

/// A shared lock-free free-list of message slabs.
///
/// Cheap to share behind an `Arc`; all operations are wait-free pushes
/// and pops on a [`SegQueue`] plus relaxed counter bumps. Hit/miss
/// counters are byte-weighted (see the module docs).
pub struct MsgSlabPool<M> {
    slabs: SegQueue<MsgSlab<M>>,
    slab_capacity: usize,
    hit_bytes: AtomicU64,
    miss_bytes: AtomicU64,
}

impl<M> MsgSlabPool<M> {
    /// A pool whose freshly allocated slabs reserve room for
    /// `slab_capacity` destinations (sized to the engine's `msg_batch`
    /// so a slab fills roughly once before flushing).
    pub fn new(slab_capacity: usize) -> Self {
        MsgSlabPool {
            slabs: SegQueue::new(),
            slab_capacity,
            hit_bytes: AtomicU64::new(0),
            miss_bytes: AtomicU64::new(0),
        }
    }

    /// Pop a recycled slab, or allocate a fresh one on a miss.
    pub fn acquire(&self) -> MsgSlab<M> {
        match self.slabs.pop() {
            Some(slab) => {
                self.hit_bytes
                    .fetch_add(slab.capacity_bytes(), Ordering::Relaxed);
                slab
            }
            None => {
                let slab = MsgSlab::with_capacity(self.slab_capacity);
                self.miss_bytes
                    .fetch_add(slab.capacity_bytes(), Ordering::Relaxed);
                slab
            }
        }
    }

    /// Return a slab to the free-list. Contents are cleared; the
    /// allocations are kept for the next
    /// [`acquire`](MsgSlabPool::acquire).
    pub fn release(&self, mut slab: MsgSlab<M>) {
        slab.clear();
        self.slabs.push(slab);
    }

    /// Capacity bytes handed out from the free-list so far.
    pub fn hit_bytes(&self) -> u64 {
        self.hit_bytes.load(Ordering::Relaxed)
    }

    /// Capacity bytes freshly allocated on pool misses so far.
    pub fn miss_bytes(&self) -> u64 {
        self.miss_bytes.load(Ordering::Relaxed)
    }

    /// `hit_bytes / (hit_bytes + miss_bytes)`, or 0.0 for an unused
    /// pool.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hit_bytes();
        let total = h + self.miss_bytes();
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }
}

/// Sentinel for "no batch recorded yet this superstep".
const UNSET: u64 = u64::MAX;

/// Time-to-first-compute-batch per superstep.
///
/// The manager calls [`begin_superstep`](OverlapStats::begin_superstep)
/// before sending ITERATION_START; the first computer to fold a batch
/// CASes its offset from the epoch into place. The manager harvests the
/// value at superstep completion with
/// [`take_first_batch`](OverlapStats::take_first_batch).
pub(crate) struct OverlapStats {
    epoch: Mutex<Instant>,
    first_batch_us: AtomicU64,
}

impl OverlapStats {
    pub(crate) fn new() -> Self {
        OverlapStats {
            epoch: Mutex::new(Instant::now()),
            first_batch_us: AtomicU64::new(UNSET),
        }
    }

    /// Reset the superstep epoch. Called by the manager, strictly before
    /// any dispatcher of the superstep is started.
    pub(crate) fn begin_superstep(&self) {
        *self.epoch.lock() = Instant::now();
        self.first_batch_us.store(UNSET, Ordering::Release);
    }

    /// Record "a compute batch is being folded now" — only the first call
    /// per superstep wins. The fast path (already recorded) is one relaxed
    /// load.
    pub(crate) fn record_first_batch(&self) {
        if self.first_batch_us.load(Ordering::Relaxed) != UNSET {
            return;
        }
        let us = self.epoch.lock().elapsed().as_micros() as u64;
        let _ = self.first_batch_us.compare_exchange(
            UNSET,
            us.min(UNSET - 1),
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// The superstep's time-to-first-batch, if any batch arrived.
    pub(crate) fn take_first_batch(&self) -> Option<Duration> {
        match self.first_batch_us.load(Ordering::Acquire) {
            UNSET => None,
            us => Some(Duration::from_micros(us)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_runs_roundtrip() {
        let mut s = MsgSlab::<u32>::new();
        assert!(s.is_empty());
        s.push(5, 100);
        s.extend_run(&[7, 8, 9], 200);
        s.extend_run(&[], 999); // empty record: no run
        s.dst_buf_mut().extend_from_slice(&[1, 2]);
        assert_eq!(s.open_len(), 2);
        s.close_run(300);
        s.close_run(888); // nothing open: no-op
        assert_eq!(s.len(), 6);
        assert_eq!(s.n_runs(), 3);
        let runs: Vec<(Vec<u32>, u32)> = s.runs().map(|(d, m)| (d.to_vec(), m)).collect();
        assert_eq!(
            runs,
            vec![(vec![5], 100), (vec![7, 8, 9], 200), (vec![1, 2], 300),]
        );
        assert_eq!(s.dsts(), &[5, 7, 8, 9, 1, 2]);
        s.clear();
        assert!(s.is_empty() && s.n_runs() == 0);
    }

    #[test]
    fn push_combined_merges_adjacent_duplicates_only() {
        let mut s = MsgSlab::<u32>::new();
        s.push_combined(3, 1, |a, b| a + b);
        s.push_combined(3, 2, |a, b| a + b);
        s.push_combined(4, 5, |a, b| a + b);
        s.push_combined(3, 7, |a, b| a + b); // not adjacent to the first 3
        let runs: Vec<(Vec<u32>, u32)> = s.runs().map(|(d, m)| (d.to_vec(), m)).collect();
        assert_eq!(runs, vec![(vec![3], 3), (vec![4], 5), (vec![3], 7)]);
    }

    #[test]
    fn pool_recycles_and_counts_bytes() {
        let pool = MsgSlabPool::<u32>::new(8);
        let mut a = pool.acquire();
        // 8 dst u32 + 8 msg u32 + 8 run_ends u32.
        let fresh_bytes = a.capacity_bytes();
        assert_eq!(fresh_bytes, 8 * 4 * 3);
        assert_eq!((pool.hit_bytes(), pool.miss_bytes()), (0, fresh_bytes));
        a.push(1, 2);
        pool.release(a);
        let b = pool.acquire();
        assert!(b.is_empty(), "released slabs come back cleared");
        assert_eq!(
            (pool.hit_bytes(), pool.miss_bytes()),
            (fresh_bytes, fresh_bytes)
        );
        assert!((pool.hit_rate() - 0.5).abs() < 1e-9);
        pool.release(b);
    }

    #[test]
    fn empty_pool_hit_rate_is_zero() {
        assert_eq!(MsgSlabPool::<u32>::new(4).hit_rate(), 0.0);
    }

    #[test]
    fn overlap_stats_record_only_first_batch() {
        let s = OverlapStats::new();
        assert!(s.take_first_batch().is_none());
        s.begin_superstep();
        std::thread::sleep(Duration::from_millis(2));
        s.record_first_batch();
        let first = s.take_first_batch().expect("recorded");
        assert!(first >= Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(2));
        s.record_first_batch();
        assert_eq!(s.take_first_batch(), Some(first), "later batches ignored");
        s.begin_superstep();
        assert!(
            s.take_first_batch().is_none(),
            "epoch reset clears the record"
        );
    }
}
