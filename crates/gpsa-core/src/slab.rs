//! Recycled message slabs and dispatch/compute overlap statistics.
//!
//! Every dispatcher → computer batch used to be a freshly allocated
//! buffer, dropped by the computer after folding. The [`MsgSlabPool`]
//! closes that loop: dispatchers pop an empty slab from a shared
//! lock-free free-list whenever they hand a full one off, and computers
//! push slabs back after folding them. The pool population converges to
//! the maximum number of batches ever in flight, after which flushing
//! allocates nothing — observable as a hit rate near 1 in
//! [`crate::RunReport::pool_hit_rate`].
//!
//! [`OverlapStats`] makes the paper's dispatch/compute overlap claim
//! measurable: the manager stamps an epoch at superstep start and the
//! first compute batch of the superstep records its arrival time against
//! it (time-to-first-batch). With chunked dispatch this should sit near
//! one chunk's worth of work, not a full interval scan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam_queue::SegQueue;
use gpsa_graph::VertexId;
use parking_lot::Mutex;

/// A shared lock-free free-list of message buffers ("slabs").
///
/// Cheap to share behind an `Arc`; all operations are wait-free pushes
/// and pops on a [`SegQueue`] plus relaxed counter bumps.
pub struct MsgSlabPool<M> {
    slabs: SegQueue<Vec<(VertexId, M)>>,
    slab_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<M> MsgSlabPool<M> {
    /// A pool whose freshly allocated slabs reserve room for
    /// `slab_capacity` messages (sized to the engine's `msg_batch` so a
    /// slab fills exactly once before flushing).
    pub fn new(slab_capacity: usize) -> Self {
        MsgSlabPool {
            slabs: SegQueue::new(),
            slab_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Pop a recycled slab, or allocate a fresh one on a miss.
    pub fn acquire(&self) -> Vec<(VertexId, M)> {
        match self.slabs.pop() {
            Some(slab) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slab
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.slab_capacity)
            }
        }
    }

    /// Return a slab to the free-list. Contents are cleared; the
    /// allocation is kept for the next [`acquire`](MsgSlabPool::acquire).
    pub fn release(&self, mut slab: Vec<(VertexId, M)>) {
        slab.clear();
        self.slabs.push(slab);
    }

    /// Acquires served from the free-list so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquires that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0.0 for an unused pool.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let total = h + self.misses();
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }
}

/// Sentinel for "no batch recorded yet this superstep".
const UNSET: u64 = u64::MAX;

/// Time-to-first-compute-batch per superstep.
///
/// The manager calls [`begin_superstep`](OverlapStats::begin_superstep)
/// before sending ITERATION_START; the first computer to fold a batch
/// CASes its offset from the epoch into place. The manager harvests the
/// value at superstep completion with
/// [`take_first_batch`](OverlapStats::take_first_batch).
pub(crate) struct OverlapStats {
    epoch: Mutex<Instant>,
    first_batch_us: AtomicU64,
}

impl OverlapStats {
    pub(crate) fn new() -> Self {
        OverlapStats {
            epoch: Mutex::new(Instant::now()),
            first_batch_us: AtomicU64::new(UNSET),
        }
    }

    /// Reset the superstep epoch. Called by the manager, strictly before
    /// any dispatcher of the superstep is started.
    pub(crate) fn begin_superstep(&self) {
        *self.epoch.lock() = Instant::now();
        self.first_batch_us.store(UNSET, Ordering::Release);
    }

    /// Record "a compute batch is being folded now" — only the first call
    /// per superstep wins. The fast path (already recorded) is one relaxed
    /// load.
    pub(crate) fn record_first_batch(&self) {
        if self.first_batch_us.load(Ordering::Relaxed) != UNSET {
            return;
        }
        let us = self.epoch.lock().elapsed().as_micros() as u64;
        let _ = self.first_batch_us.compare_exchange(
            UNSET,
            us.min(UNSET - 1),
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// The superstep's time-to-first-batch, if any batch arrived.
    pub(crate) fn take_first_batch(&self) -> Option<Duration> {
        match self.first_batch_us.load(Ordering::Acquire) {
            UNSET => None,
            us => Some(Duration::from_micros(us)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_and_counts() {
        let pool = MsgSlabPool::<u32>::new(8);
        let mut a = pool.acquire();
        assert_eq!(a.capacity(), 8);
        assert_eq!((pool.hits(), pool.misses()), (0, 1));
        a.push((1, 2));
        pool.release(a);
        let b = pool.acquire();
        assert!(b.is_empty(), "released slabs come back cleared");
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
        assert!((pool.hit_rate() - 0.5).abs() < 1e-9);
        pool.release(b);
    }

    #[test]
    fn empty_pool_hit_rate_is_zero() {
        assert_eq!(MsgSlabPool::<u32>::new(4).hit_rate(), 0.0);
    }

    #[test]
    fn overlap_stats_record_only_first_batch() {
        let s = OverlapStats::new();
        assert!(s.take_first_batch().is_none());
        s.begin_superstep();
        std::thread::sleep(Duration::from_millis(2));
        s.record_first_batch();
        let first = s.take_first_batch().expect("recorded");
        assert!(first >= Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(2));
        s.record_first_batch();
        assert_eq!(s.take_first_batch(), Some(first), "later batches ignored");
        s.begin_superstep();
        assert!(
            s.take_first_batch().is_none(),
            "epoch reset clears the record"
        );
    }
}
