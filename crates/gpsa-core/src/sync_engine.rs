//! The *conventional* vertex-centric BSP engine the paper argues against
//! (§III, Fig. 1): computing and message dispatching run strictly
//! sequentially within a superstep, and all messages for superstep `S+1`
//! are queued in full before any of them is processed.
//!
//! It executes the exact same [`VertexProgram`] trait as the actor engine,
//! which makes it two things at once:
//!
//! * a **semantics oracle** — for any program, [`SyncEngine`] and
//!   [`crate::Engine`] must produce the same values (tested), and
//! * the **honest baseline** for the paper's core claim: the speedup of
//!   the actor engine over this one is the value of decoupling dispatch
//!   from compute (plus the memory cost: this engine materializes the full
//!   message volume of a superstep, which is exactly the "large number of
//!   messages in persistent storage" overhead of §III).

use std::time::Instant;

use gpsa_graph::{Csr, EdgeList, VertexId};

use crate::config::Termination;
use crate::program::{GraphMeta, VertexProgram};
use crate::report::{RunOutcome, RunReport};

/// The sequential-phase BSP engine.
#[derive(Debug, Clone)]
pub struct SyncEngine {
    termination: Termination,
}

impl SyncEngine {
    /// Create an engine with the given stop condition.
    pub fn new(termination: Termination) -> Self {
        SyncEngine { termination }
    }

    /// Run `program` over `edges` to termination.
    pub fn run<P: VertexProgram>(&self, edges: &EdgeList, program: P) -> RunReport<P::Value> {
        let t0 = Instant::now();
        let csr = Csr::from_edge_list(edges);
        let n = csr.n_vertices();
        let meta = GraphMeta {
            n_vertices: n as u64,
            n_edges: csr.n_edges() as u64,
        };

        let mut values: Vec<P::Value> = Vec::with_capacity(n);
        let mut active: Vec<bool> = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            let (val, act) = program.init(v, &meta);
            values.push(val);
            active.push(act);
        }

        let mut step_times = Vec::new();
        let mut activated_hist = Vec::new();
        let mut deltas = Vec::new();
        let mut densities = Vec::new();
        let mut messages = 0u64;
        let mut supersteps = 0u64;

        // Inbox for the *next* compute phase: per destination, the pending
        // message list — the §III "messages intended for the next
        // superstep have to be stored somewhere" cost, paid explicitly.
        let mut inbox: Vec<Vec<P::MsgVal>> = vec![Vec::new(); n];

        loop {
            let t_step = Instant::now();
            let frontier = active.iter().filter(|&&a| a).count();
            densities.push(if n == 0 {
                0.0
            } else {
                frontier as f64 / n as f64
            });

            // --- Phase 1: dispatch (sequential, Fig. 1) ---
            for v in 0..n as VertexId {
                if !program.always_dispatch() && !active[v as usize] {
                    continue;
                }
                let deg = csr.out_degree(v);
                if let Some(msg) = program.gen_msg(v, values[v as usize], deg, &meta) {
                    for &dst in csr.neighbors(v) {
                        inbox[dst as usize].push(msg);
                        messages += 1;
                    }
                }
            }

            // --- Barrier, then Phase 2: compute (sequential) ---
            let mut step_activated = 0u64;
            let mut step_delta = 0.0f64;
            for v in 0..n as VertexId {
                let pending = std::mem::take(&mut inbox[v as usize]);
                let basis = values[v as usize];
                let new = if pending.is_empty() {
                    if program.always_dispatch() {
                        program.no_message_value(v, basis, &meta)
                    } else {
                        active[v as usize] = false;
                        continue;
                    }
                } else {
                    let mut acc: Option<P::Value> = None;
                    for msg in pending {
                        acc = Some(program.compute(v, acc, basis, msg, &meta));
                    }
                    acc.expect("non-empty inbox")
                };
                if program.changed(basis, new) {
                    step_activated += 1;
                    step_delta += program.delta(basis, new);
                    values[v as usize] = new;
                    active[v as usize] = true;
                } else {
                    // Store the (possibly re-derived) value but mark idle,
                    // mirroring the actor engine's flush pass.
                    values[v as usize] = new;
                    active[v as usize] = false;
                }
            }

            step_times.push(t_step.elapsed());
            activated_hist.push(step_activated);
            deltas.push(step_delta);
            supersteps += 1;

            let next = supersteps;
            let more = match self.termination {
                Termination::Supersteps(k) => next < k,
                Termination::Quiescence { max_supersteps } => {
                    step_activated > 0 && next < max_supersteps
                }
                Termination::Delta {
                    epsilon,
                    max_supersteps,
                } => step_delta > epsilon && next < max_supersteps,
            };
            if !more {
                break;
            }
        }

        RunReport {
            values,
            outcome: RunOutcome::Completed,
            supersteps,
            step_times,
            activated: activated_hist,
            deltas,
            messages,
            dispatcher_messages: vec![messages],
            // No frontier-aware I/O path: the oracle re-derives everything
            // in memory, so the streamed/skipped tallies stay zero.
            edges_streamed: 0,
            edge_bytes_streamed: 0,
            edges_skipped: 0,
            frontier_density: densities,
            seeded_frontier: 0,
            // No actor pipeline: no slab pool, no batch timing.
            pool_hit_bytes: 0,
            pool_miss_bytes: 0,
            phases: Vec::new(),
            first_batch: Vec::new(),
            elapsed: t0.elapsed(),
            retry_attempts: 0,
            retry_causes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{Bfs, ConnectedComponents, PageRank, UNREACHED};
    use gpsa_graph::generate;

    #[test]
    fn bfs_levels_on_chain() {
        let el = generate::chain(6);
        let eng = SyncEngine::new(Termination::Quiescence {
            max_supersteps: 100,
        });
        let r = eng.run(&el, Bfs { root: 0 });
        assert_eq!(r.values, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn cc_on_two_components() {
        let el = generate::two_components(4, 5);
        let eng = SyncEngine::new(Termination::Quiescence {
            max_supersteps: 100,
        });
        let r = eng.run(&el, ConnectedComponents);
        assert_eq!(r.values, vec![0, 0, 0, 0, 4, 4, 4, 4, 4]);
        assert_eq!(*r.activated.last().unwrap(), 0);
    }

    #[test]
    fn pagerank_mass_on_cycle() {
        let el = generate::cycle(8);
        let eng = SyncEngine::new(Termination::Supersteps(20));
        let r = eng.run(&el, PageRank::default());
        for &v in &r.values {
            assert!((v - 0.125).abs() < 1e-5);
        }
        assert_eq!(r.supersteps, 20);
    }

    #[test]
    fn unreachable_stay_unreached() {
        let el = generate::two_components(3, 3);
        let eng = SyncEngine::new(Termination::Quiescence {
            max_supersteps: 100,
        });
        let r = eng.run(&el, Bfs { root: 0 });
        assert!(r.values[3..].iter().all(|&l| l == UNREACHED));
    }
}
