//! Vertex value encodings compatible with the in-band flag bit.

use crate::word::FLAG_BIT;

/// A vertex value storable in one 32-bit slot of the value file, leaving
/// bit 31 (the flag) clear.
///
/// Implementations must guarantee `to_bits` never sets [`FLAG_BIT`]; the
/// engine debug-asserts this. Provided impls: `u32` (31-bit payloads:
/// BFS levels, CC labels) and `f32` (non-negative: PageRank ranks — the
/// IEEE sign bit is the MSB and is free for values `>= 0`).
pub trait VertexValue: Copy + PartialEq + Send + Sync + 'static {
    /// Encode into the low 31 bits of a word.
    fn to_bits(self) -> u32;
    /// Decode from a word whose flag bit has been cleared.
    fn from_bits(bits: u32) -> Self;
}

impl VertexValue for u32 {
    #[inline(always)]
    fn to_bits(self) -> u32 {
        debug_assert!(self & FLAG_BIT == 0, "u32 vertex values must be < 2^31");
        self
    }
    #[inline(always)]
    fn from_bits(bits: u32) -> Self {
        bits
    }
}

impl VertexValue for f32 {
    #[inline(always)]
    fn to_bits(self) -> u32 {
        debug_assert!(
            self.to_bits() & FLAG_BIT == 0,
            "f32 vertex values must be non-negative (sign bit doubles as flag)"
        );
        self.to_bits()
    }
    #[inline(always)]
    fn from_bits(bits: u32) -> Self {
        f32::from_bits(bits)
    }
}

impl VertexValue for i32 {
    #[inline(always)]
    fn to_bits(self) -> u32 {
        debug_assert!(self >= 0, "i32 vertex values must be non-negative");
        self as u32
    }
    #[inline(always)]
    fn from_bits(bits: u32) -> Self {
        bits as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        for v in [0u32, 1, 0x7FFF_FFFF] {
            assert_eq!(u32::from_bits(v.to_bits()), v);
        }
    }

    #[test]
    fn f32_roundtrip() {
        for v in [0.0f32, 0.15, 1.0, 1e30, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_bits(VertexValue::to_bits(v)), v);
            assert_eq!(VertexValue::to_bits(v) & FLAG_BIT, 0);
        }
    }

    #[test]
    fn i32_roundtrip() {
        for v in [0i32, 7, i32::MAX] {
            assert_eq!(<i32 as VertexValue>::from_bits(v.to_bits()), v);
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn negative_f32_rejected_in_debug() {
        let _ = VertexValue::to_bits(-1.0f32);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn oversized_u32_rejected_in_debug() {
        let _ = (0x8000_0000u32).to_bits();
    }
}
