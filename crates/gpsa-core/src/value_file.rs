//! The memory-mapped two-column vertex value file (paper §IV-D, §IV-F).
//!
//! Layout: one 4 KiB header page, then two interleaved 32-bit slots per
//! vertex — columns 0 and 1 "next to each other" exactly as in the paper
//! (`offset(v) = |V| * sizeof(Val)` generalized to `2 * v + column`). The
//! columns alternate roles every superstep: one is read by dispatchers
//! (the result of the previous superstep), the other is written by compute
//! actors. Bit 31 of every slot is the *not-updated* flag ([`crate::word`]).
//!
//! The header records the last **committed** superstep and which column
//! will be the dispatch column of the next superstep. Because the dispatch
//! column is never payload-mutated during a superstep, a crash
//! mid-superstep always leaves one intact column — the paper's lightweight
//! fault tolerance (§IV-G); [`ValueFile::recover`] rebuilds a runnable
//! state from it.

use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};

use gpsa_mmap::MmapMut;

use crate::value::VertexValue;
use crate::word::{clear_flag, set_flag};

const MAGIC: u32 = u32::from_le_bytes(*b"GVAL");
const VERSION: u32 = 1;
/// Header page size in bytes / words.
const HEADER_BYTES: usize = 4096;
const HEADER_WORDS: usize = HEADER_BYTES / 4;

// Header word indices.
const W_MAGIC: usize = 0;
const W_VERSION: usize = 1;
const W_NVERT_LO: usize = 2;
const W_NVERT_HI: usize = 3;
/// Committed superstep, biased by +1 so 0 means "initialized, none run".
const W_COMMITTED: usize = 4;
const W_NEXT_DISPATCH: usize = 5;
/// First global vertex id held by this file (0 for single-node files; a
/// node's range start in the distributed simulation).
const W_BASE: usize = 6;

/// Decoded header state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueFileHeader {
    /// Number of vertices.
    pub n_vertices: u64,
    /// Last committed superstep (`None` right after initialization).
    pub committed_superstep: Option<u64>,
    /// Column that the *next* superstep dispatches (reads) from.
    pub next_dispatch_col: u32,
}

/// The mmap-backed value file. All slot accesses are atomic so dispatch and
/// compute actors can share one instance behind an `Arc`.
#[derive(Debug)]
pub struct ValueFile {
    map: MmapMut,
    n: usize,
    /// First global vertex id stored here; slots are indexed by `v - base`.
    base: u32,
}

impl ValueFile {
    /// Create a fresh value file for `n` vertices.
    ///
    /// `init` supplies each vertex's initial value and whether the vertex
    /// starts *active*. Both columns receive the payload; the column that
    /// superstep 0 dispatches from (column 0) gets the flag **cleared**
    /// for active vertices (initialization counts as an update, otherwise
    /// superstep 0 would dispatch nothing), while the superstep-0 update
    /// column (column 1) starts fully flagged.
    pub fn create<P, V, F>(path: P, n: usize, init: F) -> std::io::Result<ValueFile>
    where
        P: AsRef<Path>,
        V: VertexValue,
        F: FnMut(u32) -> (V, bool),
    {
        Self::create_ranged(path, 0..n as u32, init)
    }

    /// Create a value file holding only the global vertex range
    /// `range` — one shard of a distributed deployment. Slot addressing
    /// still uses global ids.
    pub fn create_ranged<P, V, F>(
        path: P,
        range: std::ops::Range<u32>,
        mut init: F,
    ) -> std::io::Result<ValueFile>
    where
        P: AsRef<Path>,
        V: VertexValue,
        F: FnMut(u32) -> (V, bool),
    {
        let n = (range.end - range.start) as usize;
        let len = HEADER_BYTES + n * 8;
        let map = MmapMut::create(path, len).map_err(std::io::Error::from)?;
        let vf = ValueFile {
            map,
            n,
            base: range.start,
        };
        {
            let words = vf.words();
            words[W_MAGIC].store(MAGIC, Ordering::Relaxed);
            words[W_VERSION].store(VERSION, Ordering::Relaxed);
            words[W_NVERT_LO].store(n as u32, Ordering::Relaxed);
            words[W_NVERT_HI].store(((n as u64) >> 32) as u32, Ordering::Relaxed);
            words[W_COMMITTED].store(0, Ordering::Relaxed);
            words[W_NEXT_DISPATCH].store(0, Ordering::Relaxed);
            words[W_BASE].store(range.start, Ordering::Relaxed);
            for v in range {
                let (val, active) = init(v);
                let bits = val.to_bits();
                let dispatch_bits = if active { bits } else { set_flag(bits) };
                vf.store(0, v, dispatch_bits);
                vf.store(1, v, set_flag(bits));
            }
        }
        vf.flush()?;
        Ok(vf)
    }

    /// Open an existing value file, validating the header.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<ValueFile> {
        let map = MmapMut::open(path).map_err(std::io::Error::from)?;
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        if map.len() < HEADER_BYTES {
            return Err(bad("value file shorter than its header"));
        }
        let vf = ValueFile { map, n: 0, base: 0 };
        let words = vf.words();
        if words[W_MAGIC].load(Ordering::Relaxed) != MAGIC {
            return Err(bad("not a GVAL value file"));
        }
        if words[W_VERSION].load(Ordering::Relaxed) != VERSION {
            return Err(bad("unsupported GVAL version"));
        }
        let n = words[W_NVERT_LO].load(Ordering::Relaxed) as u64
            | (words[W_NVERT_HI].load(Ordering::Relaxed) as u64) << 32;
        if vf.map.len() != HEADER_BYTES + n as usize * 8 {
            return Err(bad("value file length mismatch"));
        }
        let base = words[W_BASE].load(Ordering::Relaxed);
        Ok(ValueFile {
            map: vf.map,
            n: n as usize,
            base,
        })
    }

    fn words(&self) -> &[AtomicU32] {
        self.map.atomic_u32().expect("value file is u32-aligned")
    }

    /// Number of vertices held by this file.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Global id range held by this file.
    #[inline]
    pub fn range(&self) -> std::ops::Range<u32> {
        self.base..self.base + self.n as u32
    }

    /// Decode the header.
    pub fn header(&self) -> ValueFileHeader {
        let words = self.words();
        let committed = words[W_COMMITTED].load(Ordering::Acquire);
        ValueFileHeader {
            n_vertices: self.n as u64,
            committed_superstep: committed.checked_sub(1).map(u64::from),
            next_dispatch_col: words[W_NEXT_DISPATCH].load(Ordering::Acquire),
        }
    }

    /// Record that `superstep` completed and the next superstep dispatches
    /// from `next_dispatch_col`. With `durable`, `msync` the mapping so the
    /// commit survives a crash (the paper's per-superstep checkpoint —
    /// cheap because only the header and already-written value pages are
    /// involved).
    pub fn commit(&self, superstep: u64, next_dispatch_col: u32, durable: bool) -> std::io::Result<()> {
        let words = self.words();
        words[W_NEXT_DISPATCH].store(next_dispatch_col & 1, Ordering::Release);
        words[W_COMMITTED].store(superstep as u32 + 1, Ordering::Release);
        if durable {
            self.flush()?;
        }
        Ok(())
    }

    /// Raw word index of `(col, v)`; `v` is a global id within
    /// [`Self::range`].
    #[inline(always)]
    fn slot(&self, col: u32, v: u32) -> usize {
        debug_assert!(
            col < 2 && v >= self.base && ((v - self.base) as usize) < self.n,
            "vertex {v} outside value-file range"
        );
        HEADER_WORDS + 2 * (v - self.base) as usize + col as usize
    }

    /// Atomically load the raw word (payload + flag) of vertex `v` in
    /// `col`.
    #[inline(always)]
    pub fn load(&self, col: u32, v: u32) -> u32 {
        self.words()[self.slot(col, v)].load(Ordering::Relaxed)
    }

    /// Atomically store the raw word of vertex `v` in `col`.
    #[inline(always)]
    pub fn store(&self, col: u32, v: u32, bits: u32) {
        self.words()[self.slot(col, v)].store(bits, Ordering::Relaxed);
    }

    /// Atomically set the flag bit of vertex `v` in `col`, preserving the
    /// payload (the dispatcher's "invalidate after dispatch").
    #[inline(always)]
    pub fn invalidate(&self, col: u32, v: u32) {
        self.words()[self.slot(col, v)].fetch_or(crate::word::FLAG_BIT, Ordering::Relaxed);
    }

    /// `msync` the whole mapping.
    pub fn flush(&self) -> std::io::Result<()> {
        self.map.flush().map_err(std::io::Error::from)
    }

    /// Rebuild a runnable state after a crash (paper §IV-G, Fig. 6).
    ///
    /// The header names the column that held the last committed superstep's
    /// results (`next_dispatch_col`); its payloads are intact because
    /// dispatchers only ever set flag bits. Recovery copies those payloads
    /// over the possibly half-written other column (flagged, = "no update
    /// yet") and re-activates every vertex in the dispatch column so the
    /// interrupted superstep is re-run conservatively. Returns the
    /// superstep to resume from.
    pub fn recover(&self) -> u64 {
        let h = self.header();
        let good = h.next_dispatch_col;
        let resume = h.committed_superstep.map(|s| s + 1).unwrap_or(0);
        for v in self.range() {
            let payload = clear_flag(self.load(good, v));
            self.store(good, v, payload); // flag 0: active
            self.store(1 - good, v, set_flag(payload));
        }
        resume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::is_flagged;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-vf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_initializes_columns_per_protocol() {
        let path = tmp("init.gval");
        let vf = ValueFile::create(&path, 4, |v| (v * 10, v % 2 == 0)).unwrap();
        // Active vertices: flag clear in column 0.
        assert!(!is_flagged(vf.load(0, 0)));
        assert!(is_flagged(vf.load(0, 1)));
        assert!(!is_flagged(vf.load(0, 2)));
        // Column 1 fully flagged.
        for v in 0..4 {
            assert!(is_flagged(vf.load(1, v)));
            assert_eq!(clear_flag(vf.load(1, v)), v * 10);
            assert_eq!(clear_flag(vf.load(0, v)), v * 10);
        }
        let h = vf.header();
        assert_eq!(h.n_vertices, 4);
        assert_eq!(h.committed_superstep, None);
        assert_eq!(h.next_dispatch_col, 0);
    }

    #[test]
    fn reopen_preserves_state() {
        let path = tmp("reopen.gval");
        {
            let vf = ValueFile::create(&path, 3, |v| (v, true)).unwrap();
            vf.store(1, 2, 99);
            vf.commit(5, 1, true).unwrap();
        }
        let vf = ValueFile::open(&path).unwrap();
        assert_eq!(vf.n_vertices(), 3);
        assert_eq!(vf.load(1, 2), 99);
        let h = vf.header();
        assert_eq!(h.committed_superstep, Some(5));
        assert_eq!(h.next_dispatch_col, 1);
    }

    #[test]
    fn invalidate_preserves_payload() {
        let path = tmp("inval.gval");
        let vf = ValueFile::create(&path, 1, |_| (1234u32, true)).unwrap();
        vf.invalidate(0, 0);
        assert!(is_flagged(vf.load(0, 0)));
        assert_eq!(clear_flag(vf.load(0, 0)), 1234);
        // Idempotent.
        vf.invalidate(0, 0);
        assert_eq!(clear_flag(vf.load(0, 0)), 1234);
    }

    #[test]
    fn recover_restores_from_good_column() {
        let path = tmp("recover.gval");
        let vf = ValueFile::create(&path, 3, |_| (7u32, true)).unwrap();
        // Pretend superstep 0 completed: column 1 holds results, next
        // superstep (1) dispatches from column 1.
        for v in 0..3 {
            vf.store(1, v, 100 + v);
        }
        vf.commit(0, 1, false).unwrap();
        // Crash mid-superstep-1: column 0 is half garbage.
        vf.store(0, 0, set_flag(0x7FFF_0000));
        vf.store(0, 1, 0x0BAD);
        let resume = vf.recover();
        assert_eq!(resume, 1);
        for v in 0..3 {
            // Good column re-activated, payload intact.
            assert!(!is_flagged(vf.load(1, v)));
            assert_eq!(clear_flag(vf.load(1, v)), 100 + v);
            // Other column rebuilt: flagged copy of the good payload.
            assert!(is_flagged(vf.load(0, v)));
            assert_eq!(clear_flag(vf.load(0, v)), 100 + v);
        }
    }

    #[test]
    fn recover_on_fresh_file_resumes_at_zero() {
        let path = tmp("fresh.gval");
        let vf = ValueFile::create(&path, 2, |v| (v, v == 0)).unwrap();
        assert_eq!(vf.recover(), 0);
        // All vertices conservatively active.
        assert!(!is_flagged(vf.load(0, 0)));
        assert!(!is_flagged(vf.load(0, 1)));
    }

    #[test]
    fn corrupt_header_rejected() {
        let path = tmp("bad.gval");
        ValueFile::create(&path, 2, |v| (v, true)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(ValueFile::open(&path).is_err());
        // Length mismatch.
        let path2 = tmp("short.gval");
        ValueFile::create(&path2, 2, |v| (v, true)).unwrap();
        let bytes = std::fs::read(&path2).unwrap();
        std::fs::write(&path2, &bytes[..bytes.len() - 8]).unwrap();
        assert!(ValueFile::open(&path2).is_err());
    }

    #[test]
    fn f32_values_roundtrip_through_slots() {
        let path = tmp("f32.gval");
        let vf = ValueFile::create(&path, 2, |_| (0.15f32, true)).unwrap();
        let bits = clear_flag(vf.load(0, 0));
        assert_eq!(f32::from_bits(bits), 0.15);
    }
}
