//! The memory-mapped two-column vertex value file (paper §IV-D, §IV-F).
//!
//! Layout: one 4 KiB header page, then two interleaved 32-bit slots per
//! vertex — columns 0 and 1 "next to each other" exactly as in the paper
//! (`offset(v) = |V| * sizeof(Val)` generalized to `2 * v + column`). The
//! columns alternate roles every superstep: one is read by dispatchers
//! (the result of the previous superstep), the other is written by compute
//! actors. Bit 31 of every slot is the *not-updated* flag ([`crate::word`]).
//!
//! # Torn-proof commits (format v2)
//!
//! The header carries **two commit slots** (A/B), written alternately.
//! Each slot records the committed superstep, the next dispatch column,
//! a monotonic sequence number, a copy of the file identity, and a CRC32
//! over all of it. A commit that dies mid-write can only tear the slot it
//! was writing; the other slot still holds the previous commit with a
//! valid checksum, so [`ValueFile::recover`] (which picks the
//! highest-sequence valid slot) never observes a half-written commit.
//! Durable commits `msync` the value pages *before* the header page so
//! the slot on disk never describes data that has not reached the file.
//!
//! Because the dispatch column is never payload-mutated during a
//! superstep, a crash mid-superstep always leaves one intact column — the
//! paper's lightweight fault tolerance (§IV-G); [`ValueFile::recover`]
//! rebuilds a runnable state from it.

use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};

use gpsa_mmap::MmapMut;

use crate::frontier::Frontier;
use crate::value::VertexValue;
use crate::word::{clear_flag, set_flag};

const MAGIC: u32 = u32::from_le_bytes(*b"GVAL");
const VERSION: u32 = 2;
/// Header page size in bytes / words.
const HEADER_BYTES: usize = 4096;
const HEADER_WORDS: usize = HEADER_BYTES / 4;

// Identity words (written once at create, never touched by commits).
const W_MAGIC: usize = 0;
const W_VERSION: usize = 1;
const W_NVERT_LO: usize = 2;
const W_NVERT_HI: usize = 3;
/// First global vertex id held by this file (0 for single-node files; a
/// node's range start in the distributed simulation).
const W_BASE: usize = 4;

// Commit slots: 8 words each, at word offsets 8 (slot A) and 16 (slot B).
const SLOT_WORDS: usize = 8;
const SLOT_BASE: [usize; 2] = [8, 16];
// Word offsets within a slot. The CRC is written last; everything before
// it is covered by it, including a copy of the file identity so a slot
// can never validate against the wrong file.
const S_SEQ_LO: usize = 0;
const S_SEQ_HI: usize = 1;
/// Committed superstep, biased by +1 so 0 means "initialized, none run".
const S_COMMITTED: usize = 2;
const S_NEXT_DISPATCH: usize = 3;
const S_NVERT_LO: usize = 4;
const S_NVERT_HI: usize = 5;
const S_BASE: usize = 6;
const S_CRC: usize = 7;

// CRC32 (IEEE, reflected, poly 0xEDB88320) over the little-endian bytes
// of the first seven slot words. Table generated at compile time — no
// external crate needed.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

fn crc32_words(words: &[u32]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &w in words {
        for b in w.to_le_bytes() {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// CRC32 (IEEE, reflected) over raw bytes — the same polynomial and table
/// the commit slots use, exported so sibling on-disk records (the
/// distributed cluster manifest) checksum with the identical algorithm.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Typed failures from [`ValueFile::open`] and friends. Corrupt or
/// truncated files are reported, never panicked on.
#[derive(Debug)]
pub enum ValueFileError {
    /// Underlying filesystem / mapping failure.
    Io(std::io::Error),
    /// File is shorter than the header page, or not word-aligned.
    Truncated {
        /// Observed file length in bytes.
        len: usize,
    },
    /// The magic word is not `GVAL`.
    BadMagic(u32),
    /// The format version is not the one this build writes.
    UnsupportedVersion(u32),
    /// File length disagrees with the vertex count in the header.
    SizeMismatch {
        /// Length the header implies.
        expected: usize,
        /// Length on disk.
        actual: usize,
    },
    /// Neither commit slot has a valid checksum — the header page is
    /// corrupt beyond what the dual-slot scheme can absorb.
    NoValidCommitSlot,
}

impl std::fmt::Display for ValueFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueFileError::Io(e) => write!(f, "value file I/O error: {e}"),
            ValueFileError::Truncated { len } => {
                write!(f, "value file truncated or misaligned ({len} bytes)")
            }
            ValueFileError::BadMagic(m) => write!(f, "not a GVAL value file (magic {m:#010x})"),
            ValueFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported GVAL version {v} (expected {VERSION})")
            }
            ValueFileError::SizeMismatch { expected, actual } => write!(
                f,
                "value file length mismatch (header implies {expected} bytes, file has {actual})"
            ),
            ValueFileError::NoValidCommitSlot => {
                write!(
                    f,
                    "no commit slot passes its checksum (corrupt header page)"
                )
            }
        }
    }
}

impl std::error::Error for ValueFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValueFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ValueFileError {
    fn from(e: std::io::Error) -> Self {
        ValueFileError::Io(e)
    }
}

impl From<gpsa_mmap::Error> for ValueFileError {
    fn from(e: gpsa_mmap::Error) -> Self {
        ValueFileError::Io(e.into())
    }
}

impl From<ValueFileError> for std::io::Error {
    fn from(e: ValueFileError) -> Self {
        match e {
            ValueFileError::Io(e) => e,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Decoded header state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueFileHeader {
    /// Number of vertices.
    pub n_vertices: u64,
    /// Last committed superstep (`None` right after initialization).
    pub committed_superstep: Option<u64>,
    /// Column that the *next* superstep dispatches (reads) from.
    pub next_dispatch_col: u32,
}

/// One decoded commit slot.
#[derive(Debug, Clone, Copy)]
struct CommitSlot {
    seq: u64,
    /// Committed superstep, biased by +1 (0 = none yet).
    committed_biased: u32,
    next_dispatch: u32,
}

/// The mmap-backed value file. All slot accesses are atomic so dispatch and
/// compute actors can share one instance behind an `Arc`.
#[derive(Debug)]
pub struct ValueFile {
    map: MmapMut,
    n: usize,
    /// First global vertex id stored here; slots are indexed by `v - base`.
    base: u32,
    /// In-memory active-vertex bitmaps, one per column, kept in lockstep
    /// with the flag bits (see [`crate::frontier`] for the superset
    /// invariant and why recovery never needs to persist them).
    frontier: Frontier,
    /// Chaos hook: scripted msync failures / torn headers.
    #[cfg(feature = "chaos")]
    fault: parking_lot::Mutex<Option<std::sync::Arc<crate::fault::FaultPlan>>>,
}

impl ValueFile {
    /// Create a fresh value file for `n` vertices.
    ///
    /// `init` supplies each vertex's initial value and whether the vertex
    /// starts *active*. Both columns receive the payload; the column that
    /// superstep 0 dispatches from (column 0) gets the flag **cleared**
    /// for active vertices (initialization counts as an update, otherwise
    /// superstep 0 would dispatch nothing), while the superstep-0 update
    /// column (column 1) starts fully flagged.
    pub fn create<P, V, F>(path: P, n: usize, init: F) -> Result<ValueFile, ValueFileError>
    where
        P: AsRef<Path>,
        V: VertexValue,
        F: FnMut(u32) -> (V, bool),
    {
        Self::create_ranged(path, 0..n as u32, init)
    }

    /// Create a value file holding only the global vertex range
    /// `range` — one shard of a distributed deployment. Slot addressing
    /// still uses global ids.
    pub fn create_ranged<P, V, F>(
        path: P,
        range: std::ops::Range<u32>,
        mut init: F,
    ) -> Result<ValueFile, ValueFileError>
    where
        P: AsRef<Path>,
        V: VertexValue,
        F: FnMut(u32) -> (V, bool),
    {
        let n = (range.end - range.start) as usize;
        let len = HEADER_BYTES + n * 8;
        let map = MmapMut::create(path, len)?;
        let vf = ValueFile {
            map,
            n,
            base: range.start,
            frontier: Frontier::new(range.clone()),
            #[cfg(feature = "chaos")]
            fault: parking_lot::Mutex::new(None),
        };
        {
            let words = vf.words();
            words[W_MAGIC].store(MAGIC, Ordering::Relaxed);
            words[W_VERSION].store(VERSION, Ordering::Relaxed);
            words[W_NVERT_LO].store(n as u32, Ordering::Relaxed);
            words[W_NVERT_HI].store(((n as u64) >> 32) as u32, Ordering::Relaxed);
            words[W_BASE].store(range.start, Ordering::Relaxed);
            for v in range {
                let (val, active) = init(v);
                let bits = val.to_bits();
                let dispatch_bits = if active {
                    vf.frontier.mark(0, v);
                    bits
                } else {
                    set_flag(bits)
                };
                vf.store(0, v, dispatch_bits);
                vf.store(1, v, set_flag(bits));
            }
        }
        // Slot A seeds seq 1 / "nothing committed"; slot B stays zeroed
        // (an all-zero slot has seq 0 and an invalid CRC, so it is never
        // selected).
        vf.write_slot(
            0,
            CommitSlot {
                seq: 1,
                committed_biased: 0,
                next_dispatch: 0,
            },
            false,
        );
        vf.flush()?;
        Ok(vf)
    }

    /// Open an existing value file, validating the header. Truncated or
    /// corrupt files yield a typed [`ValueFileError`], never a panic.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<ValueFile, ValueFileError> {
        let map = MmapMut::open(path)?;
        let len = map.len();
        if len < HEADER_BYTES || len % 4 != 0 {
            return Err(ValueFileError::Truncated { len });
        }
        let vf = ValueFile {
            map,
            n: 0,
            base: 0,
            frontier: Frontier::new(0..0),
            #[cfg(feature = "chaos")]
            fault: parking_lot::Mutex::new(None),
        };
        let (magic, version, n, base) = {
            let words = vf.words();
            (
                words[W_MAGIC].load(Ordering::Relaxed),
                words[W_VERSION].load(Ordering::Relaxed),
                words[W_NVERT_LO].load(Ordering::Relaxed) as u64
                    | (words[W_NVERT_HI].load(Ordering::Relaxed) as u64) << 32,
                words[W_BASE].load(Ordering::Relaxed),
            )
        };
        if magic != MAGIC {
            return Err(ValueFileError::BadMagic(magic));
        }
        if version != VERSION {
            return Err(ValueFileError::UnsupportedVersion(version));
        }
        let expected = HEADER_BYTES + n as usize * 8;
        if len != expected {
            return Err(ValueFileError::SizeMismatch {
                expected,
                actual: len,
            });
        }
        let vf = ValueFile {
            map: vf.map,
            n: n as usize,
            base,
            frontier: Frontier::new(base..base + n as u32),
            #[cfg(feature = "chaos")]
            fault: parking_lot::Mutex::new(None),
        };
        if vf.best_slot().is_none() {
            return Err(ValueFileError::NoValidCommitSlot);
        }
        // The bitmap is not persisted; a freshly opened file starts from
        // the conservative superset (next dispatch column all-active).
        // The flag check downstream keeps dispatch exact.
        vf.frontier.fill(vf.header().next_dispatch_col);
        Ok(vf)
    }

    fn words(&self) -> &[AtomicU32] {
        self.map.atomic_u32().expect("value file is u32-aligned")
    }

    /// Number of vertices held by this file.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Global id range held by this file.
    #[inline]
    pub fn range(&self) -> std::ops::Range<u32> {
        self.base..self.base + self.n as u32
    }

    /// Decode commit slot `idx` (0 = A, 1 = B); `None` if its CRC does not
    /// match or its identity copy disagrees with the file.
    fn read_slot(&self, idx: usize) -> Option<CommitSlot> {
        let words = self.words();
        let at = SLOT_BASE[idx];
        let mut raw = [0u32; SLOT_WORDS];
        // Acquire on the CRC word pairs with the Release store in
        // `write_slot`: a matching checksum implies the covered words are
        // the ones it was computed over.
        raw[S_CRC] = words[at + S_CRC].load(Ordering::Acquire);
        for (i, slot) in raw.iter_mut().enumerate().take(S_CRC) {
            *slot = words[at + i].load(Ordering::Relaxed);
        }
        if crc32_words(&raw[..S_CRC]) != raw[S_CRC] {
            return None;
        }
        let n = raw[S_NVERT_LO] as u64 | (raw[S_NVERT_HI] as u64) << 32;
        let seq = raw[S_SEQ_LO] as u64 | (raw[S_SEQ_HI] as u64) << 32;
        if n != self.n as u64 || raw[S_BASE] != self.base || seq == 0 || raw[S_NEXT_DISPATCH] > 1 {
            return None;
        }
        Some(CommitSlot {
            seq,
            committed_biased: raw[S_COMMITTED],
            next_dispatch: raw[S_NEXT_DISPATCH],
        })
    }

    /// Highest-sequence valid slot, with its index.
    fn best_slot(&self) -> Option<(usize, CommitSlot)> {
        let a = self.read_slot(0).map(|s| (0, s));
        let b = self.read_slot(1).map(|s| (1, s));
        match (a, b) {
            (Some(a), Some(b)) => Some(if a.1.seq >= b.1.seq { a } else { b }),
            (one, other) => one.or(other),
        }
    }

    /// Write commit slot `idx`. The CRC word is stored last with Release
    /// ordering so a concurrent reader can never validate a half-visible
    /// slot. With `torn`, the CRC is deliberately ruined — the chaos
    /// harness's model of a crash mid-header-write.
    fn write_slot(&self, idx: usize, slot: CommitSlot, torn: bool) {
        let words = self.words();
        let at = SLOT_BASE[idx];
        let mut raw = [0u32; SLOT_WORDS];
        raw[S_SEQ_LO] = slot.seq as u32;
        raw[S_SEQ_HI] = (slot.seq >> 32) as u32;
        raw[S_COMMITTED] = slot.committed_biased;
        raw[S_NEXT_DISPATCH] = slot.next_dispatch;
        raw[S_NVERT_LO] = self.n as u32;
        raw[S_NVERT_HI] = ((self.n as u64) >> 32) as u32;
        raw[S_BASE] = self.base;
        raw[S_CRC] = crc32_words(&raw[..S_CRC]);
        if torn {
            raw[S_CRC] ^= 0xDEAD_BEEF;
        }
        for (i, &w) in raw.iter().enumerate().take(S_CRC) {
            words[at + i].store(w, Ordering::Relaxed);
        }
        words[at + S_CRC].store(raw[S_CRC], Ordering::Release);
    }

    /// Decode the header from the best commit slot. A file whose slots are
    /// both invalid (possible only through external corruption; `open`
    /// rejects such files) reads as freshly initialized.
    pub fn header(&self) -> ValueFileHeader {
        let slot = self.best_slot().map(|(_, s)| s);
        ValueFileHeader {
            n_vertices: self.n as u64,
            committed_superstep: slot
                .and_then(|s| s.committed_biased.checked_sub(1))
                .map(u64::from),
            next_dispatch_col: slot.map(|s| s.next_dispatch).unwrap_or(0),
        }
    }

    /// Record that `superstep` completed and the next superstep dispatches
    /// from `next_dispatch_col`.
    ///
    /// The commit goes to the slot *not* currently holding the best
    /// commit, with a higher sequence number — so the previous commit
    /// stays intact until the new one is fully written, and a crash at any
    /// point leaves at least one valid slot. With `durable`, the value
    /// pages are `msync`ed **before** the header page (the paper's
    /// per-superstep checkpoint — cheap because only already-written
    /// pages are involved): the on-disk header never describes data that
    /// has not reached the file.
    pub fn commit(
        &self,
        superstep: u64,
        next_dispatch_col: u32,
        durable: bool,
    ) -> std::io::Result<()> {
        if durable {
            #[cfg(feature = "chaos")]
            if let Some(plan) = self.fault.lock().as_ref() {
                if plan.take_msync_failure(superstep) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Other,
                        format!("chaos-injected msync failure at superstep {superstep}"),
                    ));
                }
            }
            // Data before header: the commit slot must never point at
            // value pages that are not on disk yet.
            self.map
                .flush_range(HEADER_BYTES, self.n * 8)
                .map_err(std::io::Error::from)?;
        }
        let (target, seq) = match self.best_slot() {
            Some((best, slot)) => (1 - best, slot.seq + 1),
            None => (0, 1),
        };
        let slot = CommitSlot {
            seq,
            committed_biased: superstep as u32 + 1,
            next_dispatch: next_dispatch_col & 1,
        };
        #[cfg(feature = "chaos")]
        if let Some(plan) = self.fault.lock().as_ref() {
            if plan.take_torn_commit(superstep) {
                self.write_slot(target, slot, true);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Other,
                    format!("chaos-injected torn commit at superstep {superstep}"),
                ));
            }
        }
        self.write_slot(target, slot, false);
        if durable {
            self.map
                .flush_range(0, HEADER_BYTES)
                .map_err(std::io::Error::from)?;
        }
        Ok(())
    }

    /// Install (or clear) the chaos fault plan consulted by
    /// [`ValueFile::commit`].
    #[cfg(feature = "chaos")]
    pub fn set_fault_plan(&self, plan: Option<std::sync::Arc<crate::fault::FaultPlan>>) {
        *self.fault.lock() = plan;
    }

    /// Test/chaos hook: overwrite the *non-best* slot with a
    /// higher-sequence, bad-CRC record — exactly what a crash in the
    /// middle of a header write leaves behind. Recovery must ignore it.
    #[cfg(any(test, feature = "chaos"))]
    pub fn inject_torn_slot(&self) {
        let (target, seq) = match self.best_slot() {
            Some((best, slot)) => (1 - best, slot.seq + 1),
            None => (0, 1),
        };
        self.write_slot(
            target,
            CommitSlot {
                seq,
                committed_biased: u32::MAX,
                next_dispatch: 0,
            },
            true,
        );
    }

    /// Raw word index of `(col, v)`; `v` is a global id within
    /// [`Self::range`].
    #[inline(always)]
    fn slot(&self, col: u32, v: u32) -> usize {
        debug_assert!(
            col < 2 && v >= self.base && ((v - self.base) as usize) < self.n,
            "vertex {v} outside value-file range"
        );
        HEADER_WORDS + 2 * (v - self.base) as usize + col as usize
    }

    /// Atomically load the raw word (payload + flag) of vertex `v` in
    /// `col`.
    #[inline(always)]
    pub fn load(&self, col: u32, v: u32) -> u32 {
        self.words()[self.slot(col, v)].load(Ordering::Relaxed)
    }

    /// Atomically store the raw word of vertex `v` in `col`.
    #[inline(always)]
    pub fn store(&self, col: u32, v: u32, bits: u32) {
        self.words()[self.slot(col, v)].store(bits, Ordering::Relaxed);
    }

    /// Atomically set the flag bit of vertex `v` in `col`, preserving the
    /// payload (the dispatcher's "invalidate after dispatch").
    #[inline(always)]
    pub fn invalidate(&self, col: u32, v: u32) {
        self.words()[self.slot(col, v)].fetch_or(crate::word::FLAG_BIT, Ordering::Relaxed);
    }

    /// Software-prefetch the cache line holding vertex `v`'s slot pair
    /// into L1. The batch fold kernels issue this a few destinations
    /// ahead so the value-file random access doesn't stall their inner
    /// loop. No-op on non-x86_64 targets.
    #[inline(always)]
    pub fn prefetch(&self, col: u32, v: u32) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `slot` bounds-checks (debug) the index; prefetch of any
        // address is side-effect free beyond the cache.
        unsafe {
            let p = self.words().as_ptr().add(self.slot(col, v)) as *const i8;
            core::arch::x86_64::_mm_prefetch(p, core::arch::x86_64::_MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (col, v);
    }

    /// Best-effort transparent-hugepage hint for the whole mapping (see
    /// [`MmapMut::advise_hugepage`]); `false` is expected on kernels
    /// without file-backed THP support.
    pub fn advise_hugepage(&self) -> bool {
        self.map.advise_hugepage()
    }

    /// The per-column active-vertex bitmaps (see [`crate::frontier`]).
    #[inline]
    pub fn frontier(&self) -> &Frontier {
        &self.frontier
    }

    /// `msync` the whole mapping.
    pub fn flush(&self) -> std::io::Result<()> {
        self.map.flush().map_err(std::io::Error::from)
    }

    /// Rebuild a runnable state after a crash (paper §IV-G, Fig. 6).
    ///
    /// The highest-sequence valid commit slot names the column that held
    /// the last committed superstep's results (`next_dispatch_col`); its
    /// payloads are intact because dispatchers only ever set flag bits.
    /// Torn slots (bad CRC) are rejected, so a crash during the commit of
    /// superstep `s` recovers to superstep `s - 1`'s slot, never a
    /// half-written one. Recovery copies the good column's payloads over
    /// the possibly half-written other column (flagged, = "no update
    /// yet") and re-activates every vertex in the dispatch column so the
    /// interrupted superstep is re-run conservatively. Returns the
    /// superstep to resume from.
    pub fn recover(&self) -> u64 {
        let h = self.header();
        let good = h.next_dispatch_col;
        let resume = h.committed_superstep.map(|s| s + 1).unwrap_or(0);
        for v in self.range() {
            let payload = clear_flag(self.load(good, v));
            self.store(good, v, payload); // flag 0: active
            self.store(1 - good, v, set_flag(payload));
        }
        // Bitmap in lockstep with the flags just rebuilt: every vertex is
        // active in the dispatch column, none in the update column.
        self.frontier.fill(good);
        self.frontier.clear(1 - good);
        resume
    }

    /// Sequence number of the best (highest-seq valid) commit slot; 0 if
    /// neither slot validates. The distributed barrier manifest records
    /// this per node so recovery can verify every shard reached the
    /// barrier it claims.
    pub fn commit_seq(&self) -> u64 {
        self.best_slot().map(|(_, s)| s.seq).unwrap_or(0)
    }

    /// Force this file back to an *externally chosen* barrier: superstep
    /// `committed` (`None` = nothing committed yet) whose results live in
    /// `dispatch_col`.
    ///
    /// Unlike [`ValueFile::recover`], which trusts the file's own best
    /// slot, this is the distributed rollback path: the cluster manifest
    /// — not any single shard — names the last barrier *every* node
    /// committed, and shards that already committed one superstep past it
    /// must step back. That is always possible one superstep deep:
    /// dispatchers only flag-invalidate the column they read, so the
    /// payloads of `dispatch_col` (superstep `committed`'s results) stay
    /// intact until the *following* superstep's dispatch — which cannot
    /// have started, because the cluster barrier for the superstep in
    /// between never completed.
    ///
    /// Rebuilds both columns from `dispatch_col`'s payloads (all-active
    /// conservative frontier, like `recover`) and writes a fresh commit
    /// slot pinning `(committed, dispatch_col)` so a subsequent crash
    /// recovers to the same barrier. Returns the superstep to resume from.
    pub fn rollback_to(&self, committed: Option<u64>, dispatch_col: u32) -> u64 {
        let good = dispatch_col & 1;
        for v in self.range() {
            let payload = clear_flag(self.load(good, v));
            self.store(good, v, payload); // flag 0: active
            self.store(1 - good, v, set_flag(payload));
        }
        self.frontier.fill(good);
        self.frontier.clear(1 - good);
        let (target, seq) = match self.best_slot() {
            Some((best, slot)) => (1 - best, slot.seq + 1),
            None => (0, 1),
        };
        self.write_slot(
            target,
            CommitSlot {
                seq,
                committed_biased: committed.map(|s| s as u32 + 1).unwrap_or(0),
                next_dispatch: good,
            },
            false,
        );
        committed.map(|s| s + 1).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::is_flagged;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-vf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_initializes_columns_per_protocol() {
        let path = tmp("init.gval");
        let vf = ValueFile::create(&path, 4, |v| (v * 10, v % 2 == 0)).unwrap();
        // Active vertices: flag clear in column 0.
        assert!(!is_flagged(vf.load(0, 0)));
        assert!(is_flagged(vf.load(0, 1)));
        assert!(!is_flagged(vf.load(0, 2)));
        // Column 1 fully flagged.
        for v in 0..4 {
            assert!(is_flagged(vf.load(1, v)));
            assert_eq!(clear_flag(vf.load(1, v)), v * 10);
            assert_eq!(clear_flag(vf.load(0, v)), v * 10);
        }
        let h = vf.header();
        assert_eq!(h.n_vertices, 4);
        assert_eq!(h.committed_superstep, None);
        assert_eq!(h.next_dispatch_col, 0);
    }

    #[test]
    fn reopen_preserves_state() {
        let path = tmp("reopen.gval");
        {
            let vf = ValueFile::create(&path, 3, |v| (v, true)).unwrap();
            vf.store(1, 2, 99);
            vf.commit(5, 1, true).unwrap();
        }
        let vf = ValueFile::open(&path).unwrap();
        assert_eq!(vf.n_vertices(), 3);
        assert_eq!(vf.load(1, 2), 99);
        let h = vf.header();
        assert_eq!(h.committed_superstep, Some(5));
        assert_eq!(h.next_dispatch_col, 1);
    }

    #[test]
    fn commits_alternate_slots_with_growing_sequence() {
        let path = tmp("alternate.gval");
        let vf = ValueFile::create(&path, 2, |v| (v, true)).unwrap();
        // create seeds slot A with seq 1; slot B starts invalid.
        let (idx0, s0) = vf.best_slot().unwrap();
        assert_eq!((idx0, s0.seq), (0, 1));
        assert!(vf.read_slot(1).is_none());
        for step in 0..6u64 {
            vf.commit(step, (step as u32 + 1) & 1, false).unwrap();
            let (idx, slot) = vf.best_slot().unwrap();
            // Commit k lands in the slot the previous best did NOT occupy.
            assert_eq!(idx, (1 + step as usize) % 2);
            assert_eq!(slot.seq, step + 2);
            assert_eq!(vf.header().committed_superstep, Some(step));
        }
        // Both slots valid now; they differ by exactly one in sequence.
        let a = vf.read_slot(0).unwrap();
        let b = vf.read_slot(1).unwrap();
        assert_eq!(a.seq.abs_diff(b.seq), 1);
    }

    #[test]
    fn invalidate_preserves_payload() {
        let path = tmp("inval.gval");
        let vf = ValueFile::create(&path, 1, |_| (1234u32, true)).unwrap();
        vf.invalidate(0, 0);
        assert!(is_flagged(vf.load(0, 0)));
        assert_eq!(clear_flag(vf.load(0, 0)), 1234);
        // Idempotent.
        vf.invalidate(0, 0);
        assert_eq!(clear_flag(vf.load(0, 0)), 1234);
    }

    #[test]
    fn recover_restores_from_good_column() {
        let path = tmp("recover.gval");
        let vf = ValueFile::create(&path, 3, |_| (7u32, true)).unwrap();
        // Pretend superstep 0 completed: column 1 holds results, next
        // superstep (1) dispatches from column 1.
        for v in 0..3 {
            vf.store(1, v, 100 + v);
        }
        vf.commit(0, 1, false).unwrap();
        // Crash mid-superstep-1: column 0 is half garbage.
        vf.store(0, 0, set_flag(0x7FFF_0000));
        vf.store(0, 1, 0x0BAD);
        let resume = vf.recover();
        assert_eq!(resume, 1);
        for v in 0..3 {
            // Good column re-activated, payload intact.
            assert!(!is_flagged(vf.load(1, v)));
            assert_eq!(clear_flag(vf.load(1, v)), 100 + v);
            // Other column rebuilt: flagged copy of the good payload.
            assert!(is_flagged(vf.load(0, v)));
            assert_eq!(clear_flag(vf.load(0, v)), 100 + v);
        }
    }

    #[test]
    fn recover_ignores_torn_slot() {
        let path = tmp("torn.gval");
        let vf = ValueFile::create(&path, 2, |v| (v, true)).unwrap();
        vf.store(1, 0, 42);
        vf.store(1, 1, 43);
        vf.commit(0, 1, false).unwrap();
        // A crash in the middle of committing superstep 1 leaves a
        // higher-sequence slot with a bad CRC.
        vf.inject_torn_slot();
        let h = vf.header();
        assert_eq!(h.committed_superstep, Some(0), "torn slot must not win");
        assert_eq!(h.next_dispatch_col, 1);
        assert_eq!(vf.recover(), 1);
        assert_eq!(clear_flag(vf.load(1, 0)), 42);
        // And the file still opens after a reload.
        drop(vf);
        let vf = ValueFile::open(&path).unwrap();
        assert_eq!(vf.header().committed_superstep, Some(0));
    }

    #[test]
    fn commit_after_torn_slot_reclaims_it() {
        let path = tmp("torn-reclaim.gval");
        let vf = ValueFile::create(&path, 1, |v| (v, true)).unwrap();
        vf.commit(0, 1, false).unwrap();
        vf.inject_torn_slot();
        // The next commit targets the invalid slot (it is "not the best")
        // and repairs it.
        vf.commit(1, 0, false).unwrap();
        let h = vf.header();
        assert_eq!(h.committed_superstep, Some(1));
        assert_eq!(h.next_dispatch_col, 0);
        assert!(vf.read_slot(0).is_some());
        assert!(vf.read_slot(1).is_some());
    }

    #[test]
    fn recover_on_fresh_file_resumes_at_zero() {
        let path = tmp("fresh.gval");
        let vf = ValueFile::create(&path, 2, |v| (v, v == 0)).unwrap();
        assert_eq!(vf.recover(), 0);
        // All vertices conservatively active.
        assert!(!is_flagged(vf.load(0, 0)));
        assert!(!is_flagged(vf.load(0, 1)));
    }

    #[test]
    fn corrupt_header_rejected_with_typed_errors() {
        // Bad magic.
        let path = tmp("bad.gval");
        ValueFile::create(&path, 2, |v| (v, true)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ValueFile::open(&path),
            Err(ValueFileError::BadMagic(_))
        ));
        // Length mismatch: vertex data sliced off the end.
        let path2 = tmp("short.gval");
        ValueFile::create(&path2, 2, |v| (v, true)).unwrap();
        let bytes = std::fs::read(&path2).unwrap();
        std::fs::write(&path2, &bytes[..bytes.len() - 8]).unwrap();
        assert!(matches!(
            ValueFile::open(&path2),
            Err(ValueFileError::SizeMismatch { .. })
        ));
        // Unsupported (v1) version word.
        let path3 = tmp("oldver.gval");
        ValueFile::create(&path3, 2, |v| (v, true)).unwrap();
        let mut bytes = std::fs::read(&path3).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path3, &bytes).unwrap();
        assert!(matches!(
            ValueFile::open(&path3),
            Err(ValueFileError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn truncated_file_is_a_typed_error_not_a_panic() {
        // Shorter than the header page, and not word-aligned either.
        let path = tmp("trunc.gval");
        std::fs::write(&path, vec![0u8; 137]).unwrap();
        assert!(matches!(
            ValueFile::open(&path),
            Err(ValueFileError::Truncated { len: 137 })
        ));
        // Header-sized but odd length: still typed, still no panic.
        let path2 = tmp("trunc2.gval");
        std::fs::write(&path2, vec![0u8; HEADER_BYTES + 7]).unwrap();
        assert!(matches!(
            ValueFile::open(&path2),
            Err(ValueFileError::Truncated { .. })
        ));
    }

    #[test]
    fn zeroed_header_is_a_typed_error() {
        let path = tmp("zeroed.gval");
        ValueFile::create(&path, 2, |v| (v, true)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        for b in bytes.iter_mut().take(HEADER_BYTES) {
            *b = 0;
        }
        std::fs::write(&path, &bytes).unwrap();
        // Magic is zero, so that is the first thing to trip.
        assert!(matches!(
            ValueFile::open(&path),
            Err(ValueFileError::BadMagic(0))
        ));
    }

    #[test]
    fn both_slots_corrupt_is_rejected_at_open() {
        let path = tmp("noslot.gval");
        ValueFile::create(&path, 2, |v| (v, true)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Ruin both slots' CRC words (slot A word 15, slot B word 23)
        // while leaving the identity words intact.
        for word in [SLOT_BASE[0] + S_CRC, SLOT_BASE[1] + S_CRC] {
            let at = word * 4;
            bytes[at] ^= 0xFF;
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ValueFile::open(&path),
            Err(ValueFileError::NoValidCommitSlot)
        ));
    }

    #[test]
    fn create_marks_frontier_for_active_vertices_only() {
        let path = tmp("frontier-init.gval");
        let vf = ValueFile::create(&path, 4, |v| (v, v % 2 == 0)).unwrap();
        let f = vf.frontier();
        assert!(f.is_marked(0, 0) && f.is_marked(0, 2));
        assert!(!f.is_marked(0, 1) && !f.is_marked(0, 3));
        assert_eq!(f.count(0), 2);
        assert_eq!(f.count(1), 0, "superstep-0 update column starts empty");
    }

    #[test]
    fn open_fills_frontier_conservatively() {
        let path = tmp("frontier-open.gval");
        {
            let vf = ValueFile::create(&path, 3, |v| (v, v == 0)).unwrap();
            vf.commit(0, 1, true).unwrap();
        }
        let vf = ValueFile::open(&path).unwrap();
        // Bitmap is not persisted: the next dispatch column (1) reads
        // all-active, the other empty.
        assert_eq!(vf.frontier().count(1), 3);
        assert_eq!(vf.frontier().count(0), 0);
    }

    #[test]
    fn recover_rebuilds_frontier_in_lockstep_with_flags() {
        let path = tmp("frontier-recover.gval");
        let vf = ValueFile::create(&path, 3, |_| (7u32, true)).unwrap();
        vf.commit(0, 1, false).unwrap();
        // Mid-superstep-1 state: computer marked a partial frontier in
        // the update column (0) before the crash.
        vf.frontier().mark(0, 2);
        vf.frontier().clear(1);
        let resume = vf.recover();
        assert_eq!(resume, 1);
        // Dispatch column 1: every vertex flag-clear AND bitmap-set;
        // update column 0: every vertex flagged AND bitmap-clear.
        for v in 0..3 {
            assert!(!is_flagged(vf.load(1, v)));
            assert!(vf.frontier().is_marked(1, v));
            assert!(is_flagged(vf.load(0, v)));
            assert!(!vf.frontier().is_marked(0, v));
        }
    }

    #[test]
    fn rollback_steps_an_ahead_shard_back_one_barrier() {
        let path = tmp("rollback.gval");
        let vf = ValueFile::create(&path, 3, |_| (5u32, true)).unwrap();
        // Superstep 0 completed: column 1 holds its results.
        for v in 0..3 {
            vf.store(1, v, 50 + v);
        }
        vf.commit(0, 1, false).unwrap();
        // This shard raced ahead: it ran superstep 1 (writing column 0),
        // invalidated column 1's flags during dispatch, and committed —
        // but the cluster barrier for superstep 1 never completed.
        for v in 0..3 {
            vf.invalidate(1, v);
            vf.store(0, v, 90 + v);
        }
        vf.commit(1, 0, false).unwrap();
        assert_eq!(vf.header().committed_superstep, Some(1));
        let seq_before = vf.commit_seq();
        // Roll back to the cluster-wide barrier (superstep 0, column 1).
        let resume = vf.rollback_to(Some(0), 1);
        assert_eq!(resume, 1);
        let h = vf.header();
        assert_eq!(h.committed_superstep, Some(0));
        assert_eq!(h.next_dispatch_col, 1);
        assert!(vf.commit_seq() > seq_before, "rollback is itself a commit");
        for v in 0..3 {
            // Superstep 0's payloads survive the invalidation (flags only)
            // and come back active; the raced-ahead column is discarded.
            assert!(!is_flagged(vf.load(1, v)));
            assert_eq!(clear_flag(vf.load(1, v)), 50 + v);
            assert!(is_flagged(vf.load(0, v)));
            assert_eq!(clear_flag(vf.load(0, v)), 50 + v);
            assert!(vf.frontier().is_marked(1, v));
            assert!(!vf.frontier().is_marked(0, v));
        }
    }

    #[test]
    fn rollback_to_initial_state_resumes_at_zero() {
        let path = tmp("rollback0.gval");
        let vf = ValueFile::create(&path, 2, |v| (v, v == 0)).unwrap();
        vf.store(1, 0, 77);
        vf.commit(0, 1, false).unwrap();
        // Cluster never finished barrier 0: back to "nothing committed",
        // dispatching from column 0.
        let resume = vf.rollback_to(None, 0);
        assert_eq!(resume, 0);
        let h = vf.header();
        assert_eq!(h.committed_superstep, None);
        assert_eq!(h.next_dispatch_col, 0);
        assert!(!is_flagged(vf.load(0, 0)) && !is_flagged(vf.load(0, 1)));
    }

    #[test]
    fn commit_seq_tracks_commits() {
        let path = tmp("seq.gval");
        let vf = ValueFile::create(&path, 1, |v| (v, true)).unwrap();
        assert_eq!(vf.commit_seq(), 1, "create seeds seq 1");
        vf.commit(0, 1, false).unwrap();
        assert_eq!(vf.commit_seq(), 2);
        vf.commit(1, 0, false).unwrap();
        assert_eq!(vf.commit_seq(), 3);
    }

    #[test]
    fn crc32_bytes_matches_word_crc() {
        let words = [1u32, 2, 3, 0xDEAD_BEEF];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(crc32(&bytes), crc32_words(&words));
        assert_ne!(crc32(&bytes), crc32(&bytes[..15]));
    }

    #[test]
    fn f32_values_roundtrip_through_slots() {
        let path = tmp("f32.gval");
        let vf = ValueFile::create(&path, 2, |_| (0.15f32, true)).unwrap();
        let bits = clear_flag(vf.load(0, 0));
        assert_eq!(f32::from_bits(bits), 0.15);
    }
}
