//! The in-band flag bit (paper §IV-F).
//!
//! Every vertex-value slot is one 32-bit word whose highest bit marks the
//! value as *not updated*: the dispatcher skips flagged vertices, and the
//! compute actor uses a still-flagged slot in the update column to detect
//! the first message of a vertex in a superstep. Payload encodings must
//! therefore leave bit 31 clear — 31-bit unsigned integers, or
//! non-negative IEEE-754 floats (whose free sign bit is exactly the MSB).

/// The "not updated" flag: bit 31, the paper's "highest bit".
pub const FLAG_BIT: u32 = 1 << 31;

/// Is the flag set (vertex NOT updated)?
#[inline(always)]
pub fn is_flagged(word: u32) -> bool {
    word & FLAG_BIT != 0
}

/// Set the flag, preserving the payload (the paper's "invalidate").
#[inline(always)]
pub fn set_flag(word: u32) -> u32 {
    word | FLAG_BIT
}

/// Clear the flag, recovering the payload bits.
#[inline(always)]
pub fn clear_flag(word: u32) -> u32 {
    word & !FLAG_BIT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip_preserves_payload() {
        for payload in [0u32, 1, 0x7FFF_FFFF, 12345] {
            let f = set_flag(payload);
            assert!(is_flagged(f));
            assert_eq!(clear_flag(f), payload);
            assert!(!is_flagged(clear_flag(f)));
        }
    }

    #[test]
    fn flag_matches_paper_examples() {
        // Paper Fig. 5: 0x80000001 is value 1 with the flag set.
        assert!(is_flagged(0x8000_0001));
        assert_eq!(clear_flag(0x8000_0001), 1);
        assert_eq!(set_flag(2), 0x8000_0002);
    }

    #[test]
    fn set_is_idempotent() {
        assert_eq!(set_flag(set_flag(7)), set_flag(7));
        assert_eq!(clear_flag(clear_flag(7)), 7);
    }
}
