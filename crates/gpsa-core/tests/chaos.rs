//! Seeded chaos runs (`--features chaos`): scripted fault plans inject
//! actor panics, msync failures and torn commit headers into real engine
//! runs, and every run must still land on final values **bit-identical**
//! to a fault-free run of the same configuration — the paper's §IV-G
//! recovery claim, tested end to end instead of trusted.
//!
//! Determinism ground rules (see also `FaultPlan`): plans fire each point
//! at most once, so a plan of `n` points costs at most `n` in-process
//! recovery attempts; the retry budget is sized accordingly. PageRank is
//! run with one dispatcher and one computer because its f32 fold order is
//! part of the bit pattern; BFS and CC min-folds are exact under any
//! actor layout.

#![cfg(feature = "chaos")]

use std::path::PathBuf;
use std::sync::Arc;

use gpsa::fault::{FaultPlan, FaultSpec};
use gpsa::programs::{Bfs, ConnectedComponents, PageRank};
use gpsa::{Engine, EngineConfig, RunOutcome, Termination};
use gpsa_graph::{generate, preprocess, EdgeList};

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-chaos-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn materialize(dir: &std::path::Path, el: &EdgeList) -> PathBuf {
    let p = dir.join("graph.gcsr");
    preprocess::edges_to_csr(el.clone(), &p, &preprocess::PreprocessOptions::default()).unwrap();
    p
}

/// Durable config with a retry budget sized to the plan: each injection
/// point fires at most once, so `n_points` bounds the failed attempts.
fn chaos_config(dir: &std::path::Path, plan: &FaultPlan) -> EngineConfig {
    let mut c = EngineConfig::small(dir);
    c.durable = true;
    c.max_superstep_retries = plan.n_points() as u32 + 2;
    c
}

fn fault_free_config(dir: &std::path::Path) -> EngineConfig {
    let mut c = EngineConfig::small(dir);
    c.durable = true;
    c
}

fn cc_graph(seed: u64) -> EdgeList {
    generate::symmetrize(&generate::rmat(
        250,
        1200,
        generate::RmatParams::default(),
        seed,
    ))
}

#[test]
fn cc_is_bit_identical_across_a_seed_matrix() {
    let el = cc_graph(90);
    let baseline = {
        let dir = workdir("cc-base");
        let path = materialize(&dir, &el);
        Engine::new(fault_free_config(&dir))
            .run(&path, ConnectedComponents)
            .unwrap()
            .values
    };
    for seed in [11u64, 29, 47] {
        let plan = Arc::new(FaultPlan::scripted(seed, 4, 4));
        let dir = workdir(&format!("cc-{seed}"));
        let path = materialize(&dir, &el);
        let mut c = chaos_config(&dir, &plan);
        c.fault_plan = Some(plan);
        let report = Engine::new(c).run(&path, ConnectedComponents).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed, "seed {seed}");
        assert_eq!(report.values, baseline, "seed {seed} diverged");
    }
}

#[test]
fn bfs_is_bit_identical_across_a_seed_matrix() {
    let el = generate::symmetrize(&generate::grid(14, 14));
    let baseline = {
        let dir = workdir("bfs-base");
        let path = materialize(&dir, &el);
        Engine::new(fault_free_config(&dir))
            .run(&path, Bfs { root: 0 })
            .unwrap()
            .values
    };
    for seed in [5u64, 17] {
        let plan = Arc::new(FaultPlan::scripted(seed, 4, 6));
        let dir = workdir(&format!("bfs-{seed}"));
        let path = materialize(&dir, &el);
        let mut c = chaos_config(&dir, &plan);
        c.fault_plan = Some(plan);
        let report = Engine::new(c).run(&path, Bfs { root: 0 }).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed, "seed {seed}");
        assert_eq!(report.values, baseline, "seed {seed} diverged");
    }
}

#[test]
fn pagerank_is_bit_identical_across_a_seed_matrix() {
    // One dispatcher, one computer: the f32 fold order is fixed, so a
    // replayed superstep reproduces the exact bit pattern of the
    // original — the strongest form of the recovery claim.
    let el = cc_graph(91);
    let steps = 6u64;
    let baseline: Vec<u32> = {
        let dir = workdir("pr-base");
        let path = materialize(&dir, &el);
        let c = fault_free_config(&dir)
            .with_actors(1, 1)
            .with_termination(Termination::Supersteps(steps));
        let r = Engine::new(c).run(&path, PageRank::default()).unwrap();
        r.values.iter().map(|v| v.to_bits()).collect()
    };
    for seed in [3u64, 13] {
        let plan = Arc::new(FaultPlan::scripted(seed, 3, steps));
        let dir = workdir(&format!("pr-{seed}"));
        let path = materialize(&dir, &el);
        let mut c = chaos_config(&dir, &plan)
            .with_actors(1, 1)
            .with_termination(Termination::Supersteps(steps));
        c.fault_plan = Some(plan);
        let report = Engine::new(c).run(&path, PageRank::default()).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed, "seed {seed}");
        let bits: Vec<u32> = report.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, baseline, "seed {seed}: ranks not bit-identical");
    }
}

#[test]
fn every_actor_role_panic_is_survived() {
    // One run, every panic flavor: a dispatcher mid-chunk, a computer
    // mid-fold, a computer at its flush barrier, the manager at a
    // superstep kickoff.
    let el = cc_graph(92);
    let baseline = {
        let dir = workdir("roles-base");
        let path = materialize(&dir, &el);
        Engine::new(fault_free_config(&dir))
            .run(&path, ConnectedComponents)
            .unwrap()
            .values
    };
    let plan = Arc::new(
        FaultPlan::new(0)
            .with(FaultSpec::DispatcherPanic {
                superstep: 0,
                after_messages: 64,
            })
            .with(FaultSpec::ComputerPanic { after_messages: 32 })
            .with(FaultSpec::ComputerFlushPanic { superstep: 2 })
            .with(FaultSpec::ManagerPanic { superstep: 3 }),
    );
    let dir = workdir("roles");
    let path = materialize(&dir, &el);
    let mut c = chaos_config(&dir, &plan);
    c.fault_plan = Some(plan);
    let report = Engine::new(c).run(&path, ConnectedComponents).unwrap();
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(report.values, baseline);
    assert!(
        report.retry_attempts >= 1,
        "at least one injection must have fired"
    );
}

#[test]
fn sparse_dispatch_survives_mid_superstep_recovery() {
    // The active-vertex bitmap is in-memory only; recovery rebuilds it
    // from the recovered column (fill the good column, clear the other).
    // If the rebuild under-filled it, a sparse dispatcher would silently
    // skip live vertices and the final values would diverge from the
    // fault-free baseline — so bit-identity here is exactly the claim
    // that the bitmap is restored consistently with the recovered column.
    use gpsa::DispatchMode;
    let el = generate::symmetrize(&generate::grid(16, 17));
    let baseline = {
        let dir = workdir("sparse-base");
        let path = materialize(&dir, &el);
        let mut c = fault_free_config(&dir);
        c.dispatch_mode = DispatchMode::Sparse;
        Engine::new(c).run(&path, Bfs { root: 0 }).unwrap().values
    };
    for seed in [7u64, 31] {
        let plan = Arc::new(FaultPlan::scripted(seed, 4, 6));
        let dir = workdir(&format!("sparse-{seed}"));
        let path = materialize(&dir, &el);
        let mut c = chaos_config(&dir, &plan);
        c.dispatch_mode = DispatchMode::Sparse;
        c.fault_plan = Some(plan);
        let report = Engine::new(c).run(&path, Bfs { root: 0 }).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed, "seed {seed}");
        assert_eq!(
            report.values, baseline,
            "seed {seed}: sparse recovery diverged"
        );
    }
    // Same plan shape under a mid-compute torn commit: the replayed
    // superstep dispatches from a conservatively refilled bitmap, which
    // must only ever widen the frontier, never narrow it.
    let plan = Arc::new(FaultPlan::new(0).with(FaultSpec::TornCommit { superstep: 1 }));
    let dir = workdir("sparse-torn");
    let path = materialize(&dir, &el);
    let mut c = chaos_config(&dir, &plan);
    c.dispatch_mode = DispatchMode::Sparse;
    c.fault_plan = Some(plan);
    let report = Engine::new(c).run(&path, Bfs { root: 0 }).unwrap();
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(
        report.values, baseline,
        "torn-commit sparse recovery diverged"
    );
    assert_eq!(report.retry_attempts, 1, "{:?}", report.retry_causes);
}

#[test]
fn recovery_is_format_agnostic() {
    // `materialize` writes the default (v2 delta-varint) format, so every
    // test above already chaoses v2. This one pins the claim explicitly:
    // the same scripted fault plan over the v1 word-array layout and the
    // v2 compressed layout of the same graph must both recover to the
    // fault-free fixpoint — replayed supersteps re-decode their interval
    // from scratch, so the edge encoding cannot leak into recovery.
    let el = cc_graph(93);
    let baseline = {
        let dir = workdir("fmt-base");
        let path = materialize(&dir, &el);
        Engine::new(fault_free_config(&dir))
            .run(&path, ConnectedComponents)
            .unwrap()
            .values
    };
    for (fmt, opts) in [
        ("v1", preprocess::PreprocessOptions::uncompressed()),
        ("v2", preprocess::PreprocessOptions::default()),
    ] {
        let plan = Arc::new(FaultPlan::scripted(19, 4, 4));
        let dir = workdir(&format!("fmt-{fmt}"));
        let path = dir.join("graph.gcsr");
        preprocess::edges_to_csr(el.clone(), &path, &opts).unwrap();
        let mut c = chaos_config(&dir, &plan);
        c.fault_plan = Some(plan);
        let report = Engine::new(c).run(&path, ConnectedComponents).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed, "{fmt}");
        assert_eq!(report.values, baseline, "{fmt} recovery diverged");
        assert!(
            report.retry_attempts >= 1,
            "{fmt}: at least one injection must have fired"
        );
    }
}

#[test]
fn torn_commit_header_rolls_back_one_superstep() {
    // The commit of superstep 2 writes a torn (bad-CRC) slot and dies.
    // Recovery must reject that slot, resume from superstep 1's commit,
    // and the re-run must land on the fault-free fixpoint.
    let el = generate::cycle(60);
    let baseline = {
        let dir = workdir("torn-base");
        let path = materialize(&dir, &el);
        Engine::new(fault_free_config(&dir))
            .run(&path, ConnectedComponents)
            .unwrap()
            .values
    };
    let plan = Arc::new(FaultPlan::new(0).with(FaultSpec::TornCommit { superstep: 2 }));
    let dir = workdir("torn");
    let path = materialize(&dir, &el);
    let mut c = chaos_config(&dir, &plan);
    c.fault_plan = Some(plan);
    let report = Engine::new(c).run(&path, ConnectedComponents).unwrap();
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(report.values, baseline);
    assert_eq!(report.retry_attempts, 1, "{:?}", report.retry_causes);
    assert!(
        report.retry_causes[0].contains("Manager"),
        "a failed commit escalates through the manager: {:?}",
        report.retry_causes[0]
    );
}

#[test]
fn msync_failure_is_survived() {
    let el = generate::cycle(60);
    let baseline = {
        let dir = workdir("msync-base");
        let path = materialize(&dir, &el);
        Engine::new(fault_free_config(&dir))
            .run(&path, ConnectedComponents)
            .unwrap()
            .values
    };
    let plan = Arc::new(FaultPlan::new(0).with(FaultSpec::MsyncFail { superstep: 1 }));
    let dir = workdir("msync");
    let path = materialize(&dir, &el);
    let mut c = chaos_config(&dir, &plan);
    c.fault_plan = Some(plan);
    let report = Engine::new(c).run(&path, ConnectedComponents).unwrap();
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(report.values, baseline);
    assert_eq!(report.retry_attempts, 1, "{:?}", report.retry_causes);
}
