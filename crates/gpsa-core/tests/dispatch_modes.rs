//! Frontier-aware selective dispatch parity: Dense, Sparse and Auto
//! dispatch modes must be *bit-identical* to each other and agree with
//! the sequential-phase oracle, across a seeded matrix of random graphs
//! and programs — including an `always_dispatch` program (PageRank),
//! whose sparse request must quietly fall back to a dense sweep.
//!
//! Why bit-identity is the right bar: the sparse path changes *which CSR
//! words are read*, never *which vertices dispatch*. The active bitmap is
//! a superset of the flag-clear set and the dispatcher keeps the per-slot
//! flag check, so both paths emit the same ascending vertex sequence and
//! every downstream fold sees the same message order.

use gpsa::programs::{Bfs, ConnectedComponents, PageRank, Sssp};
use gpsa::{
    DispatchMode, Engine, EngineConfig, IntervalStrategy, RunReport, SyncEngine, Termination,
};
use gpsa_graph::{generate, EdgeList};
use std::path::PathBuf;

const MODES: [DispatchMode; 3] = [
    DispatchMode::Dense,
    DispatchMode::Sparse,
    DispatchMode::Auto,
];

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-modes-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn quiesce() -> Termination {
    Termination::Quiescence {
        max_supersteps: 2000,
    }
}

fn run_mode<P: gpsa::VertexProgram>(
    tag: &str,
    el: &EdgeList,
    program: P,
    term: Termination,
    mode: DispatchMode,
) -> RunReport<P::Value> {
    let config = EngineConfig::small(workdir(tag))
        .with_termination(term)
        .with_dispatch_mode(mode);
    Engine::new(config)
        .run_edge_list(el.clone(), tag, program)
        .unwrap()
}

fn seeded_graphs() -> Vec<(String, EdgeList)> {
    let mut graphs: Vec<(String, EdgeList)> = [7u64, 23, 61]
        .iter()
        .map(|&seed| {
            let el = generate::symmetrize(&generate::rmat(
                220,
                1100,
                generate::RmatParams::default(),
                seed,
            ));
            (format!("rmat{seed}"), el)
        })
        .collect();
    // A grid keeps BFS frontiers narrow for many supersteps — the shape
    // sparse dispatch exists for.
    graphs.push(("grid".to_string(), generate::grid(12, 13)));
    graphs
}

#[test]
fn sparse_and_auto_match_dense_and_the_oracle_bit_for_bit() {
    for (tag, el) in seeded_graphs() {
        let oracle_bfs = SyncEngine::new(quiesce()).run(&el, Bfs { root: 0 }).values;
        let oracle_cc = SyncEngine::new(quiesce())
            .run(&el, ConnectedComponents)
            .values;
        let oracle_sssp = SyncEngine::new(quiesce()).run(&el, Sssp { root: 0 }).values;
        for mode in MODES {
            let bfs = run_mode(
                &format!("bfs-{tag}-{mode:?}"),
                &el,
                Bfs { root: 0 },
                quiesce(),
                mode,
            );
            assert_eq!(bfs.values, oracle_bfs, "bfs {tag} {mode:?}");

            let cc = run_mode(
                &format!("cc-{tag}-{mode:?}"),
                &el,
                ConnectedComponents,
                quiesce(),
                mode,
            );
            assert_eq!(cc.values, oracle_cc, "cc {tag} {mode:?}");

            let sssp = run_mode(
                &format!("sssp-{tag}-{mode:?}"),
                &el,
                Sssp { root: 0 },
                quiesce(),
                mode,
            );
            assert_eq!(sssp.values, oracle_sssp, "sssp {tag} {mode:?}");

            // The report must carry one density sample per superstep.
            assert_eq!(
                bfs.frontier_density.len(),
                bfs.supersteps as usize,
                "bfs {tag} {mode:?}: density samples"
            );
        }
    }
}

#[test]
fn always_dispatch_program_is_mode_invariant_bit_for_bit() {
    // PageRank declares always_dispatch: its frontier is every vertex, so
    // Sparse must fall back to the dense sweep rather than consult the
    // bitmap. One dispatcher + one computer pins the f32 fold order, so
    // the three modes must agree on exact bit patterns.
    let el = generate::symmetrize(&generate::erdos_renyi(180, 900, 17));
    let term = Termination::Supersteps(5);
    let runs: Vec<RunReport<f32>> = MODES
        .iter()
        .map(|&mode| {
            let config = EngineConfig::small(workdir(&format!("pr-{mode:?}")))
                .with_termination(term)
                .with_actors(1, 1)
                .with_dispatch_mode(mode);
            Engine::new(config)
                .run_edge_list(el.clone(), "pr", PageRank::default())
                .unwrap()
        })
        .collect();
    let dense_bits: Vec<u32> = runs[0].values.iter().map(|v| v.to_bits()).collect();
    for (run, mode) in runs.iter().zip(MODES).skip(1) {
        let bits: Vec<u32> = run.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, dense_bits, "{mode:?} diverged from Dense");
        // Fallback means the I/O profile is dense too: nothing skipped.
        assert_eq!(run.edges_skipped, 0, "{mode:?} skipped edges");
        assert_eq!(
            run.edges_streamed, runs[0].edges_streamed,
            "{mode:?} streamed a different volume than Dense"
        );
    }
}

#[test]
fn sparse_mode_streams_fewer_words_and_conserves_the_interval() {
    // BFS on a grid: the frontier is a thin diagonal wave, so a sparse
    // dispatcher should seek past almost every record. Dense reads the
    // whole interval every superstep; sparse must read strictly less, and
    // what it reads plus what it skips must add back up to exactly the
    // dense volume (same supersteps, same intervals).
    let el = generate::grid(40, 41);
    let dense = run_mode(
        "io-dense",
        &el,
        Bfs { root: 0 },
        quiesce(),
        DispatchMode::Dense,
    );
    let sparse = run_mode(
        "io-sparse",
        &el,
        Bfs { root: 0 },
        quiesce(),
        DispatchMode::Sparse,
    );
    assert_eq!(sparse.values, dense.values);
    assert_eq!(sparse.supersteps, dense.supersteps);
    assert_eq!(dense.edges_skipped, 0, "dense sweeps skip nothing");
    assert!(
        sparse.edges_streamed < dense.edges_streamed,
        "sparse streamed {} vs dense {}",
        sparse.edges_streamed,
        dense.edges_streamed
    );
    assert!(sparse.edges_skipped > 0);
    assert_eq!(
        sparse.edges_streamed + sparse.edges_skipped,
        dense.edges_streamed,
        "streamed + skipped must cover the dense interval volume"
    );
}

#[test]
fn strided_assignments_fall_back_to_dense_under_every_mode() {
    // Strided intervals interleave vertices from the whole id space; the
    // seek cursor's sequential-window optimization does not apply, so a
    // sparse request must degrade to the strided dense walk — and still
    // agree with the oracle.
    let el = generate::symmetrize(&generate::rmat(
        200,
        1000,
        generate::RmatParams::default(),
        41,
    ));
    let oracle = SyncEngine::new(quiesce())
        .run(&el, ConnectedComponents)
        .values;
    for mode in MODES {
        let mut config = EngineConfig::small(workdir(&format!("strided-{mode:?}")))
            .with_termination(quiesce())
            .with_dispatch_mode(mode);
        config.intervals = IntervalStrategy::Strided;
        let report = Engine::new(config)
            .run_edge_list(el.clone(), "strided", ConnectedComponents)
            .unwrap();
        assert_eq!(report.values, oracle, "strided {mode:?}");
        assert_eq!(report.edges_skipped, 0, "strided {mode:?} reported skips");
    }
}

#[test]
fn auto_threshold_extremes_pin_the_mode_choice() {
    let el = generate::grid(30, 31);
    // Threshold 0: no frontier is ever below it — Auto must behave
    // exactly like Dense, including the I/O profile.
    let pinned_dense = {
        let config = EngineConfig::small(workdir("auto-0"))
            .with_termination(quiesce())
            .with_dispatch_mode(DispatchMode::Auto)
            .with_sparse_density_threshold(0.0);
        Engine::new(config)
            .run_edge_list(el.clone(), "auto0", Bfs { root: 0 })
            .unwrap()
    };
    assert_eq!(pinned_dense.edges_skipped, 0);
    // Threshold 1: every frontier qualifies — Auto must skip words like
    // Sparse does on this wavefront workload.
    let pinned_sparse = {
        let config = EngineConfig::small(workdir("auto-1"))
            .with_termination(quiesce())
            .with_dispatch_mode(DispatchMode::Auto)
            .with_sparse_density_threshold(1.0);
        Engine::new(config)
            .run_edge_list(el.clone(), "auto1", Bfs { root: 0 })
            .unwrap()
    };
    assert!(pinned_sparse.edges_skipped > 0);
    assert_eq!(pinned_dense.values, pinned_sparse.values);
}
