//! End-to-end engine tests: correctness against sequential references,
//! configuration strategies, resumption, and crash recovery.

use gpsa::programs::{Bfs, ConnectedComponents, InDegree, PageRank, Sssp, UNREACHED};
use gpsa::{Engine, EngineConfig, RunOutcome, Termination};
use gpsa_graph::{generate, preprocess, EdgeList};
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpsa-engine-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn csr_for(tag: &str, el: &EdgeList) -> PathBuf {
    let dir = workdir(tag);
    let path = dir.join(format!("{tag}.gcsr"));
    preprocess::edges_to_csr(el.clone(), &path, &preprocess::PreprocessOptions::default()).unwrap();
    path
}

// ---------- sequential references ----------

fn ref_bfs(el: &EdgeList, root: u32) -> Vec<u32> {
    let csr = gpsa_graph::Csr::from_edge_list(el);
    let mut level = vec![UNREACHED; el.n_vertices];
    let mut frontier = vec![root];
    level[root as usize] = 0;
    let mut l = 0;
    while !frontier.is_empty() {
        l += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &d in csr.neighbors(v) {
                if level[d as usize] == UNREACHED {
                    level[d as usize] = l;
                    next.push(d);
                }
            }
        }
        frontier = next;
    }
    level
}

fn ref_cc(el: &EdgeList) -> Vec<u32> {
    // Min-label propagation along *directed* edges to a fixpoint — the
    // exact semantics of the CC vertex program.
    let csr = gpsa_graph::Csr::from_edge_list(el);
    let mut label: Vec<u32> = (0..el.n_vertices as u32).collect();
    loop {
        let mut changed = false;
        for v in 0..el.n_vertices as u32 {
            for &d in csr.neighbors(v) {
                if label[v as usize] < label[d as usize] {
                    label[d as usize] = label[v as usize];
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    label
}

fn ref_pagerank(el: &EdgeList, damping: f32, supersteps: usize) -> Vec<f32> {
    let csr = gpsa_graph::Csr::from_edge_list(el);
    let n = el.n_vertices;
    let mut rank = vec![1.0f32 / n as f32; n];
    let base = (1.0 - damping) / n as f32;
    for _ in 0..supersteps {
        let mut next = vec![base; n];
        for v in 0..n as u32 {
            let deg = csr.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = rank[v as usize] / deg as f32;
            for &d in csr.neighbors(v) {
                next[d as usize] += damping * share;
            }
        }
        rank = next;
    }
    rank
}

fn ref_sssp(el: &EdgeList, root: u32) -> Vec<u32> {
    // Bellman-Ford with the program's synthetic weights.
    let mut dist = vec![UNREACHED; el.n_vertices];
    dist[root as usize] = 0;
    loop {
        let mut changed = false;
        for e in &el.edges {
            let du = dist[e.src as usize];
            if du == UNREACHED {
                continue;
            }
            let cand = du.saturating_add(Sssp::weight(e.src, e.dst)).min(UNREACHED);
            if cand < dist[e.dst as usize] {
                dist[e.dst as usize] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

// ---------- correctness ----------

#[test]
fn bfs_matches_reference_on_rmat() {
    let el = generate::rmat(500, 3000, generate::RmatParams::default(), 21);
    let path = csr_for("bfs-rmat", &el);
    let engine = Engine::new(EngineConfig::small(workdir("bfs-rmat")));
    let report = engine.run(&path, Bfs { root: 0 }).unwrap();
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(report.values, ref_bfs(&el, 0));
}

#[test]
fn bfs_on_chain_takes_n_supersteps() {
    let el = generate::chain(30);
    let path = csr_for("bfs-chain", &el);
    let engine = Engine::new(EngineConfig::small(workdir("bfs-chain")));
    let report = engine.run(&path, Bfs { root: 0 }).unwrap();
    let expect: Vec<u32> = (0..30).collect();
    assert_eq!(report.values, expect);
    // Depth-29 chain needs 29 propagating supersteps plus one quiescent one.
    assert!(report.supersteps >= 29, "got {}", report.supersteps);
    assert_eq!(*report.activated.last().unwrap(), 0);
}

#[test]
fn bfs_leaves_unreachable_at_unreached() {
    let el = generate::two_components(10, 10);
    let path = csr_for("bfs-2c", &el);
    let engine = Engine::new(EngineConfig::small(workdir("bfs-2c")));
    let report = engine.run(&path, Bfs { root: 0 }).unwrap();
    assert!(report.values[10..].iter().all(|&v| v == UNREACHED));
    assert_eq!(report.values[..10], *ref_bfs(&el, 0)[..10].to_vec());
}

#[test]
fn cc_matches_reference_on_random_graphs() {
    for seed in [1, 2, 3] {
        let el = generate::symmetrize(&generate::erdos_renyi(200, 600, seed));
        let path = csr_for(&format!("cc-{seed}"), &el);
        let engine = Engine::new(EngineConfig::small(workdir(&format!("cc-{seed}"))));
        let report = engine.run(&path, ConnectedComponents).unwrap();
        assert_eq!(report.values, ref_cc(&el), "seed {seed}");
    }
}

#[test]
fn pagerank_matches_reference_power_iteration() {
    let el = generate::rmat(300, 2400, generate::RmatParams::default(), 33);
    let path = csr_for("pr", &el);
    let steps = 10;
    let config =
        EngineConfig::small(workdir("pr")).with_termination(Termination::Supersteps(steps as u64));
    let engine = Engine::new(config);
    let report = engine.run(&path, PageRank::default()).unwrap();
    let expect = ref_pagerank(&el, 0.85, steps);
    assert_eq!(report.supersteps, steps as u64);
    let mut max_err = 0.0f32;
    for (got, want) in report.values.iter().zip(&expect) {
        max_err = max_err.max((got - want).abs());
    }
    assert!(
        max_err < 1e-5,
        "PageRank diverges from power iteration: max err {max_err}"
    );
    // Mass sanity: total rank stays near 1 (sinks hold their mass).
    let total: f32 = report.values.iter().sum();
    assert!(total > 0.5 && total < 1.5, "total rank {total}");
}

#[test]
fn pagerank_delta_termination_converges() {
    let el = generate::symmetrize(&generate::erdos_renyi(100, 400, 9));
    let path = csr_for("pr-delta", &el);
    let config = EngineConfig::small(workdir("pr-delta")).with_termination(Termination::Delta {
        epsilon: 1e-7,
        max_supersteps: 200,
    });
    let engine = Engine::new(config);
    let report = engine.run(&path, PageRank::default()).unwrap();
    assert!(report.supersteps < 200, "should converge before the cap");
    assert!(*report.deltas.last().unwrap() <= 1e-7);
    // Deltas shrink monotonically-ish: last is far below first.
    assert!(report.deltas[0] > *report.deltas.last().unwrap() * 10.0);
}

#[test]
fn sssp_matches_bellman_ford() {
    let el = generate::rmat(200, 1500, generate::RmatParams::default(), 44);
    let path = csr_for("sssp", &el);
    let engine = Engine::new(EngineConfig::small(workdir("sssp")));
    let report = engine.run(&path, Sssp { root: 0 }).unwrap();
    assert_eq!(report.values, ref_sssp(&el, 0));
}

#[test]
fn indegree_counts_in_one_superstep() {
    let el = generate::rmat(100, 700, generate::RmatParams::default(), 50);
    let path = csr_for("indeg", &el);
    let config = EngineConfig::small(workdir("indeg")).with_termination(Termination::Supersteps(1));
    let engine = Engine::new(config);
    let report = engine.run(&path, InDegree).unwrap();
    let mut expect = vec![0u32; el.n_vertices];
    for e in &el.edges {
        expect[e.dst as usize] += 1;
    }
    assert_eq!(report.values, expect);
}

// ---------- configuration space ----------

#[test]
fn all_strategy_combinations_agree() {
    use gpsa::{IntervalStrategy, RouterStrategy};
    let el = generate::symmetrize(&generate::rmat(
        300,
        1500,
        generate::RmatParams::default(),
        66,
    ));
    let path = csr_for("strategies", &el);
    let expect = ref_cc(&el);
    for router in [RouterStrategy::Mod, RouterStrategy::Range] {
        for intervals in [
            IntervalStrategy::Uniform,
            IntervalStrategy::EdgeBalanced,
            IntervalStrategy::Strided,
        ] {
            for (d, c) in [(1, 1), (2, 3), (4, 2)] {
                let mut config = EngineConfig::small(workdir("strategies")).with_actors(d, c);
                config.router = router;
                config.intervals = intervals;
                let engine = Engine::new(config);
                let report = engine.run(&path, ConnectedComponents).unwrap();
                assert_eq!(
                    report.values, expect,
                    "router {router:?} intervals {intervals:?} d={d} c={c}"
                );
            }
        }
    }
}

#[test]
fn more_actors_than_vertices_is_fine() {
    let el = generate::cycle(5);
    let path = csr_for("tiny", &el);
    let config = EngineConfig::small(workdir("tiny")).with_actors(8, 8);
    let engine = Engine::new(config);
    let report = engine.run(&path, ConnectedComponents).unwrap();
    assert_eq!(report.values, vec![0; 5]);
}

#[test]
fn empty_and_edgeless_graphs() {
    let el = EdgeList::with_vertices(vec![], 7);
    let path = csr_for("edgeless", &el);
    let engine = Engine::new(EngineConfig::small(workdir("edgeless")));
    let report = engine.run(&path, ConnectedComponents).unwrap();
    assert_eq!(report.values, (0..7).collect::<Vec<u32>>());
    assert_eq!(report.messages, 0);
}

#[test]
fn supersteps_zero_is_a_config_error() {
    let el = generate::cycle(3);
    let path = csr_for("zero", &el);
    let config = EngineConfig::small(workdir("zero")).with_termination(Termination::Supersteps(0));
    let engine = Engine::new(config);
    assert!(engine.run(&path, ConnectedComponents).is_err());
}

#[test]
fn report_statistics_are_consistent() {
    let el = generate::symmetrize(&generate::erdos_renyi(100, 500, 13));
    let path = csr_for("stats", &el);
    let engine = Engine::new(EngineConfig::small(workdir("stats")));
    let report = engine.run(&path, ConnectedComponents).unwrap();
    assert_eq!(report.step_times.len() as u64, report.supersteps);
    assert_eq!(report.activated.len() as u64, report.supersteps);
    // Superstep 0 dispatches all 100 labels; messages flow until quiescence.
    assert!(report.messages >= el.len() as u64);
    assert_eq!(*report.activated.last().unwrap(), 0);
    assert!(report.superstep_total() <= report.elapsed);
    assert!(report.mean_superstep(5) > std::time::Duration::ZERO);
}

// ---------- fault tolerance ----------

#[test]
fn crash_and_recover_reaches_same_fixpoint() {
    let el = generate::symmetrize(&generate::rmat(
        400,
        2000,
        generate::RmatParams::default(),
        77,
    ));
    let dir = workdir("recover");
    let path = csr_for("recover", &el);

    // Clean run for the expected answer.
    let clean_dir = workdir("recover-clean");
    let clean_path = {
        let p = clean_dir.join("recover.gcsr");
        preprocess::edges_to_csr(el.clone(), &p, &preprocess::PreprocessOptions::default())
            .unwrap();
        p
    };
    let clean = Engine::new(EngineConfig::small(&clean_dir))
        .run(&clean_path, ConnectedComponents)
        .unwrap();

    // Crashing run: durable commits, killed after the dispatch phase of
    // superstep 1 (mid-superstep: compute actors never flushed).
    let mut config = EngineConfig::small(&dir);
    config.durable = true;
    config.crash_after_dispatch = Some(1);
    let crashed = Engine::new(config).run(&path, ConnectedComponents).unwrap();
    assert_eq!(crashed.outcome, RunOutcome::Crashed);
    assert!(crashed.values.is_empty());

    // Recovery run resumes from the last committed superstep and finishes.
    let mut config = EngineConfig::small(&dir);
    config.resume = true;
    let recovered = Engine::new(config).run(&path, ConnectedComponents).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    assert_eq!(recovered.values, clean.values);
}

#[test]
fn crash_at_superstep_zero_recovers_too() {
    let el = generate::two_components(20, 30);
    let dir = workdir("recover0");
    let path = csr_for("recover0", &el);
    let mut config = EngineConfig::small(&dir);
    config.durable = true;
    config.crash_after_dispatch = Some(0);
    let crashed = Engine::new(config).run(&path, ConnectedComponents).unwrap();
    assert_eq!(crashed.outcome, RunOutcome::Crashed);

    let mut config = EngineConfig::small(&dir);
    config.resume = true;
    let recovered = Engine::new(config).run(&path, ConnectedComponents).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    let mut expect = vec![0u32; 50];
    for e in expect.iter_mut().skip(20) {
        *e = 20;
    }
    assert_eq!(recovered.values, expect);
}

#[test]
fn resume_without_crash_just_reruns_conservatively() {
    // Completing a run, then resuming it, must not corrupt the fixpoint.
    let el = generate::symmetrize(&generate::erdos_renyi(80, 300, 31));
    let dir = workdir("resume-idem");
    let path = csr_for("resume-idem", &el);
    let first = Engine::new(EngineConfig::small(&dir))
        .run(&path, ConnectedComponents)
        .unwrap();
    let mut config = EngineConfig::small(&dir);
    config.resume = true;
    let second = Engine::new(config).run(&path, ConnectedComponents).unwrap();
    assert_eq!(first.values, second.values);
}

#[test]
fn edge_balanced_intervals_balance_dispatcher_load() {
    // Paper §V-A: assigning vertices "by the average edges" makes every
    // dispatcher send about the same number of messages. Verify via the
    // per-dispatcher counters on a skewed graph where uniform intervals
    // would be badly lopsided.
    use gpsa::IntervalStrategy;
    let el = generate::rmat(2000, 20_000, generate::RmatParams::default(), 3);
    let path = csr_for("balance", &el);
    let run = |strategy: IntervalStrategy| {
        let mut config = EngineConfig::small(workdir("balance")).with_actors(4, 2);
        config.intervals = strategy;
        config.termination = Termination::Supersteps(3);
        Engine::new(config)
            .run(&path, gpsa::programs::PageRank::default())
            .unwrap()
    };
    let balanced = run(IntervalStrategy::EdgeBalanced);
    assert_eq!(balanced.dispatcher_messages.len(), 4);
    let total: u64 = balanced.dispatcher_messages.iter().sum();
    assert_eq!(
        total, balanced.messages,
        "per-dispatcher counts sum to total"
    );
    let max = *balanced.dispatcher_messages.iter().max().unwrap() as f64;
    let min = *balanced.dispatcher_messages.iter().min().unwrap() as f64;
    assert!(
        max / min.max(1.0) < 2.0,
        "edge-balanced loads should be even: {:?}",
        balanced.dispatcher_messages
    );

    let uniform = run(IntervalStrategy::Uniform);
    let u_max = *uniform.dispatcher_messages.iter().max().unwrap() as f64;
    let u_min = *uniform.dispatcher_messages.iter().min().unwrap() as f64;
    assert!(
        u_max / u_min.max(1.0) > max / min.max(1.0),
        "uniform intervals on a skewed R-MAT should be more lopsided: \
         uniform {:?} vs balanced {:?}",
        uniform.dispatcher_messages,
        balanced.dispatcher_messages
    );
}

#[test]
fn combiner_preserves_results_and_reduces_messages() {
    // Reverse star with tripled spokes: every spoke points at the hub
    // three times, so each source's buffer run holds adjacent duplicate
    // destinations — exactly what the run-dedup combiner collapses
    // (duplicates from one source are adjacent in CSR scan order).
    let n = 500u32;
    let mut edges: Vec<gpsa_graph::Edge> = Vec::new();
    for i in 1..n {
        for _ in 0..3 {
            edges.push(gpsa_graph::Edge::new(i, 0));
        }
    }
    // Plus a cycle so CC has real propagation to do.
    for i in 0..n {
        edges.push(gpsa_graph::Edge::new(i, (i + 1) % n));
    }
    let el = EdgeList::with_vertices(edges, n as usize);
    let path = csr_for("combine", &el);

    let mut on = EngineConfig::small(workdir("combine-on"));
    on.combine_messages = true;
    on.msg_batch = 4096; // big batches => more combining opportunity
    let with = Engine::new(on).run(&path, ConnectedComponents).unwrap();

    let mut off = EngineConfig::small(workdir("combine-off"));
    off.combine_messages = false;
    off.msg_batch = 4096;
    let without = Engine::new(off).run(&path, ConnectedComponents).unwrap();

    assert_eq!(
        with.values, without.values,
        "combining must not change results"
    );
    // Hub messages (3/4 of the volume) combine at least 3→1 per source;
    // cycle messages (distinct destinations) cannot combine at all.
    assert!(
        with.messages <= without.messages * 6 / 10,
        "reverse star should combine heavily: {} vs {}",
        with.messages,
        without.messages
    );
}

#[test]
fn combiner_parity_for_pagerank_sum() {
    let el = generate::rmat(300, 3000, generate::RmatParams::default(), 13);
    let path = csr_for("combine-pr", &el);
    let term = Termination::Supersteps(5);
    let mut on = EngineConfig::small(workdir("combine-pr-on")).with_termination(term);
    on.combine_messages = true;
    let with = Engine::new(on).run(&path, PageRank::default()).unwrap();
    let mut off = EngineConfig::small(workdir("combine-pr-off")).with_termination(term);
    off.combine_messages = false;
    let without = Engine::new(off).run(&path, PageRank::default()).unwrap();
    // Sum order differs, so allow float noise only.
    let max_diff = with
        .values
        .iter()
        .zip(&without.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_diff < 1e-6, "combined PR diverged: {max_diff}");
}

#[test]
fn chunked_dispatch_matches_monolithic() {
    // The chunk protocol must be invisible to results: a tiny chunk size
    // (many self-messages per superstep) and monolithic dispatch reach
    // the same fixpoint. CC's min-fold is order-independent, so equality
    // is exact even with several dispatchers interleaving.
    let el = generate::symmetrize(&generate::rmat(
        400,
        2400,
        generate::RmatParams::default(),
        91,
    ));
    let path = csr_for("chunked", &el);
    let run = |chunk: usize| {
        let config = EngineConfig::small(workdir(&format!("chunked-{chunk}")))
            .with_actors(3, 2)
            .with_dispatch_chunk(chunk);
        Engine::new(config).run(&path, ConnectedComponents).unwrap()
    };
    let mono = run(EngineConfig::MONOLITHIC_DISPATCH);
    for chunk in [7, 64, 1024] {
        let chunked = run(chunk);
        assert_eq!(chunked.values, mono.values, "chunk={chunk}");
        assert_eq!(chunked.supersteps, mono.supersteps, "chunk={chunk}");
        assert_eq!(chunked.messages, mono.messages, "chunk={chunk}");
    }
}

#[test]
fn slab_pool_recycles_buffers() {
    // After the first few flushes seed the pool, later acquisitions are
    // recycled: hits dominate over a multi-superstep dense run.
    let el = generate::rmat(800, 8000, generate::RmatParams::default(), 17);
    let path = csr_for("slab", &el);
    let mut config =
        EngineConfig::small(workdir("slab")).with_termination(Termination::Supersteps(6));
    config.msg_batch = 256; // many batches per superstep
    let report = Engine::new(config).run(&path, PageRank::default()).unwrap();
    assert!(report.pool_miss_bytes > 0, "first flushes must allocate");
    assert!(report.pool_hit_bytes > 0, "steady state must recycle");
    assert!(
        report.pool_hit_rate() > 0.5,
        "pool should serve most acquisitions after superstep 1: \
         {} hit bytes / {} miss bytes",
        report.pool_hit_bytes,
        report.pool_miss_bytes
    );
    // Overlap statistics: every dense superstep sends messages, so each
    // records a time-to-first-batch.
    assert_eq!(report.first_batch.len() as u64, report.supersteps);
    assert!(report.first_batch.iter().all(|t| t.is_some()));
    assert!(report.mean_first_batch().unwrap() <= report.superstep_total());
}

#[test]
fn cc_quiesces_promptly_on_bidirectional_graphs() {
    // Regression: flush-time `changed` once compared against the raw
    // dispatch-column payload; a stale copy there let adjacent vertices
    // reactivate each other forever, so CC only stopped at max_supersteps.
    let el = generate::symmetrize(&generate::erdos_renyi(500, 2500, 77));
    let path = csr_for("quiesce", &el);
    let engine = Engine::new(EngineConfig::small(workdir("quiesce")));
    let report = engine.run(&path, ConnectedComponents).unwrap();
    assert_eq!(report.values, ref_cc(&el));
    assert!(
        report.supersteps < 60,
        "CC must quiesce in O(diameter) supersteps, took {}",
        report.supersteps
    );
    assert_eq!(*report.activated.last().unwrap(), 0);
}

#[test]
fn run_edge_list_convenience() {
    let engine = Engine::new(EngineConfig::small(workdir("conv")));
    let report = engine
        .run_edge_list(generate::cycle(12), "cyc", ConnectedComponents)
        .unwrap();
    assert_eq!(report.values, vec![0; 12]);
}
