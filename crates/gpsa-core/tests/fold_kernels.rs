//! Batch fold kernels vs the scalar per-message oracle.
//!
//! The contract of [`gpsa::VertexProgram::fold_batch`] is *bit identity*:
//! for any slab of message runs, the kernel override must leave the value
//! file (both columns), the frontier bitmap and the dirty list exactly as
//! the scalar replay through `compute()` would — including the
//! first-message seeding protocol. Two layers of evidence:
//!
//! 1. **Engine A/B**: the same run with `batch_fold` on and off must
//!    produce bit-identical results across programs × dispatch modes ×
//!    v1/v2 edge formats (PageRank on a single-actor fleet, where the
//!    message fold order is deterministic — f32 sums are
//!    order-sensitive).
//! 2. **Adversarial slabs**: property-tested hand-built slabs with
//!    duplicate destinations within and across runs, folded through the
//!    kernel on one value file and the scalar oracle on a twin, starting
//!    from arbitrary mid-superstep slot states.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use gpsa::programs::{Bfs, ConnectedComponents, PageRank, Sssp, UNREACHED};
use gpsa::{
    set_flag, DispatchMode, Engine, EngineConfig, FoldCtx, GraphMeta, MsgSlab, RunReport,
    Termination, ValueFile, VertexProgram, VertexValue, FLAG_BIT,
};
use gpsa_graph::{generate, preprocess, EdgeList, VertexId};
use proptest::prelude::*;

const MODES: [DispatchMode; 3] = [
    DispatchMode::Dense,
    DispatchMode::Sparse,
    DispatchMode::Auto,
];

static CASE: AtomicU64 = AtomicU64::new(0);

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-foldk-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Materialize `el` in both formats; returns `(v1_path, v2_path)`.
fn both_formats(tag: &str, el: &EdgeList) -> (PathBuf, PathBuf) {
    let dir = workdir(tag);
    let v1 = dir.join("graph-v1.gcsr");
    let v2 = dir.join("graph-v2.gcsr");
    preprocess::edges_to_csr(
        el.clone(),
        &v1,
        &preprocess::PreprocessOptions::uncompressed(),
    )
    .unwrap();
    preprocess::edges_to_csr(el.clone(), &v2, &preprocess::PreprocessOptions::default()).unwrap();
    (v1, v2)
}

/// Run the same job twice — batch kernels on, then the scalar oracle —
/// and return both reports.
fn run_ab<P: VertexProgram + Clone>(
    base: EngineConfig,
    path: &Path,
    program: P,
) -> (RunReport<P::Value>, RunReport<P::Value>) {
    let batch = Engine::new(base.clone().with_batch_fold(true))
        .run(path, program.clone())
        .unwrap();
    let scalar = Engine::new(base.with_batch_fold(false))
        .run(path, program)
        .unwrap();
    (batch, scalar)
}

fn assert_reports_identical<V: VertexValue>(
    batch: &RunReport<V>,
    scalar: &RunReport<V>,
    what: &str,
) {
    let b_bits: Vec<u32> = batch.values.iter().map(|v| v.to_bits()).collect();
    let s_bits: Vec<u32> = scalar.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(b_bits, s_bits, "{what}: values diverge");
    assert_eq!(
        batch.supersteps, scalar.supersteps,
        "{what}: superstep counts diverge"
    );
    assert_eq!(
        batch.messages, scalar.messages,
        "{what}: message counts diverge"
    );
    assert_eq!(
        batch.activated, scalar.activated,
        "{what}: activation traces diverge"
    );
}

fn quiesce() -> Termination {
    Termination::Quiescence {
        max_supersteps: 2000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Min-fold programs (order-independent): the full small fleet, every
    /// dispatch mode, both edge formats.
    #[test]
    fn engine_batch_fold_matches_scalar_for_min_programs(
        seed in 0u64..1000,
        n in 40usize..160,
        e_per_v in 2usize..6,
        root_pick in any::<prop::sample::Index>(),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let el = generate::symmetrize(&generate::rmat(
            n, n * e_per_v, generate::RmatParams::default(), seed,
        ));
        let (v1, v2) = both_formats(&format!("min-{case}"), &el);
        let root = root_pick.index(n) as VertexId;
        for (fmt, path) in [("v1", &v1), ("v2", &v2)] {
            for mode in MODES {
                let base = EngineConfig::small(workdir(&format!("min-{case}-run")))
                    .with_termination(quiesce())
                    .with_dispatch_mode(mode);
                let (b, s) = run_ab(base.clone(), path, Bfs { root });
                assert_reports_identical(&b, &s, &format!("bfs {fmt} {mode:?}"));
                let (b, s) = run_ab(base.clone(), path, ConnectedComponents);
                assert_reports_identical(&b, &s, &format!("cc {fmt} {mode:?}"));
                let (b, s) = run_ab(base, path, Sssp { root });
                assert_reports_identical(&b, &s, &format!("sssp {fmt} {mode:?}"));
            }
        }
    }
}

/// PageRank's f32 sum is fold-order-sensitive, so A/B it on a
/// single-dispatcher / single-computer / single-worker fleet where the
/// message stream order is deterministic.
#[test]
fn engine_batch_fold_matches_scalar_for_pagerank() {
    let el = generate::rmat(300, 1800, generate::RmatParams::default(), 41);
    let (v1, v2) = both_formats("pr", &el);
    for (fmt, path) in [("v1", &v1), ("v2", &v2)] {
        for combine in [true, false] {
            let mut base = EngineConfig::small(workdir("pr-run"))
                .with_actors(1, 1)
                .with_workers(1)
                .with_termination(Termination::Supersteps(5));
            base.combine_messages = combine;
            let (b, s) = run_ab(base, path, PageRank::default());
            assert_reports_identical(&b, &s, &format!("pagerank {fmt} combine={combine}"));
        }
    }
}

// ---------------------------------------------------------------------
// Adversarial slab layer: kernel vs scalar on twin value files.
// ---------------------------------------------------------------------

const N: usize = 32;

/// One generated update-slot pre-state: `None` = still flagged with the
/// given stale payload (no message yet), `Some` = already accumulated.
type SlotState = (u32, Option<u32>);

/// Strategy for one u32 update-slot pre-state (the shim has no
/// `prop::option::of`; a bool draw picks the variant).
fn u32_slot() -> impl Strategy<Value = SlotState> {
    (0u32..UNREACHED, any::<bool>(), 0u32..UNREACHED)
        .prop_map(|(stale, has_acc, acc)| (stale, has_acc.then_some(acc)))
}

/// Strategy for one f32 update-slot pre-state, as bit patterns
/// (`any::<f32>()` draws from `[0, 1)` — positive, so flag-bit-free).
fn f32_slot() -> impl Strategy<Value = SlotState> {
    (any::<f32>(), any::<bool>(), any::<f32>())
        .prop_map(|(stale, has_acc, acc)| (stale.to_bits(), has_acc.then_some(acc.to_bits())))
}

fn twin_files<V: VertexValue>(
    tag: &str,
    dispatch: &[u32],
    update: &[SlotState],
) -> (ValueFile, ValueFile) {
    let dir = workdir(tag);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let mk = |name: &str| {
        let vf = ValueFile::create(dir.join(format!("{name}-{case}.gval")), N, |v| {
            (V::from_bits(dispatch[v as usize]), true)
        })
        .unwrap();
        for v in 0..N as u32 {
            // Column 0 dispatches, column 1 is mid-fold.
            vf.store(0, v, dispatch[v as usize]);
            match update[v as usize] {
                (stale, None) => vf.store(1, v, set_flag(stale)),
                (_, Some(acc)) => {
                    vf.store(1, v, acc);
                    vf.frontier().mark(1, v);
                }
            }
        }
        vf
    };
    (mk("kernel"), mk("scalar"))
}

fn frontier_set(vf: &ValueFile, col: u32) -> Vec<VertexId> {
    vf.frontier().iter_set(col, 0..N as VertexId).collect()
}

/// Fold `slab` through the program's kernel on one file and the scalar
/// oracle on its twin; every observable output must match bit-for-bit.
fn assert_kernel_matches_scalar<P: VertexProgram>(
    program: &P,
    slab: &MsgSlab<P::MsgVal>,
    kernel_vf: &ValueFile,
    scalar_vf: &ValueFile,
) {
    let meta = GraphMeta {
        n_vertices: N as u64,
        n_edges: 0,
    };
    let mut kernel_dirty: Vec<(VertexId, P::Value)> = Vec::new();
    let mut ctx = FoldCtx::new(kernel_vf, &meta, 1, &mut kernel_dirty);
    program.fold_batch(slab, &mut ctx);

    let mut scalar_dirty: Vec<(VertexId, P::Value)> = Vec::new();
    let mut ctx = FoldCtx::new(scalar_vf, &meta, 1, &mut scalar_dirty);
    ctx.fold_scalar_slab(program, slab);

    for col in 0..2 {
        for v in 0..N as u32 {
            assert_eq!(
                kernel_vf.load(col, v),
                scalar_vf.load(col, v),
                "slot ({col}, {v}) diverges"
            );
        }
    }
    let k: Vec<(VertexId, u32)> = kernel_dirty
        .iter()
        .map(|&(v, x)| (v, x.to_bits()))
        .collect();
    let s: Vec<(VertexId, u32)> = scalar_dirty
        .iter()
        .map(|&(v, x)| (v, x.to_bits()))
        .collect();
    assert_eq!(k, s, "dirty lists diverge");
    assert_eq!(
        frontier_set(kernel_vf, 1),
        frontier_set(scalar_vf, 1),
        "frontier marks diverge"
    );
}

/// Runs with duplicate destinations *within* a run (parallel edges) and
/// *across* runs (many sources hitting the same hub) — the worst case
/// for any kernel tempted to cache or reorder per-destination state.
fn slab_from_runs<M: Copy>(runs: &[(Vec<VertexId>, M)]) -> MsgSlab<M> {
    let mut slab = MsgSlab::new();
    for (targets, msg) in runs {
        slab.extend_run(targets, *msg);
    }
    slab
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn min_kernel_survives_adversarial_duplicates(
        dispatch in prop::collection::vec(0u32..UNREACHED, N..=N),
        update in prop::collection::vec(u32_slot(), N..=N),
        runs in prop::collection::vec(
            (
                prop::collection::vec(0u32..N as u32, 0..12),
                1u32..(UNREACHED - 1),
            ),
            0..10,
        ),
    ) {
        let (kernel_vf, scalar_vf) = twin_files::<u32>("amin", &dispatch, &update);
        let slab = slab_from_runs(&runs);
        assert_kernel_matches_scalar(&Bfs { root: 0 }, &slab, &kernel_vf, &scalar_vf);

        let (kernel_vf, scalar_vf) = twin_files::<u32>("amin-cc", &dispatch, &update);
        assert_kernel_matches_scalar(&ConnectedComponents, &slab, &kernel_vf, &scalar_vf);
    }

    #[test]
    fn sssp_kernel_survives_adversarial_duplicates(
        dispatch in prop::collection::vec(0u32..UNREACHED, N..=N),
        update in prop::collection::vec(u32_slot(), N..=N),
        runs in prop::collection::vec(
            (
                prop::collection::vec(0u32..N as u32, 0..12),
                (0u32..UNREACHED, 0u32..N as u32),
            ),
            0..10,
        ),
    ) {
        let (kernel_vf, scalar_vf) = twin_files::<u32>("asssp", &dispatch, &update);
        let slab = slab_from_runs(&runs);
        assert_kernel_matches_scalar(&Sssp { root: 0 }, &slab, &kernel_vf, &scalar_vf);
    }

    #[test]
    fn sum_kernel_survives_adversarial_duplicates(
        dispatch_f in prop::collection::vec(any::<f32>(), N..=N),
        update in prop::collection::vec(f32_slot(), N..=N),
        runs in prop::collection::vec(
            (
                prop::collection::vec(0u32..N as u32, 0..12),
                any::<f32>(),
            ),
            0..10,
        ),
    ) {
        let dispatch: Vec<u32> = dispatch_f.iter().map(|f| f.to_bits()).collect();
        prop_assert!(dispatch.iter().all(|&b| b < FLAG_BIT));
        let (kernel_vf, scalar_vf) = twin_files::<f32>("asum", &dispatch, &update);
        let slab = slab_from_runs(&runs);
        assert_kernel_matches_scalar(&PageRank::default(), &slab, &kernel_vf, &scalar_vf);
    }
}
