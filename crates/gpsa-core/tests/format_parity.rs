//! v1/v2 edge-format parity: the delta-varint compressed format must be a
//! pure representation change. For every dispatch mode and program, an
//! engine run over a v2 graph must be *bit-identical* to the same run over
//! the v1 word-array encoding of the same edge list — and both must match
//! the sequential-phase oracle. The formats may differ only in the I/O
//! profile: fewer bytes under v2, and a different logical word count
//! (v2 records carry no separator/degree words).

use std::path::{Path, PathBuf};

use gpsa::programs::{Bfs, ConnectedComponents, Sssp};
use gpsa::{DispatchMode, Engine, EngineConfig, RunReport, SyncEngine, Termination};
use gpsa_graph::{generate, preprocess, EdgeList};

const MODES: [DispatchMode; 3] = [
    DispatchMode::Dense,
    DispatchMode::Sparse,
    DispatchMode::Auto,
];

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-fmt-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn quiesce() -> Termination {
    Termination::Quiescence {
        max_supersteps: 2000,
    }
}

/// Materialize `el` in both formats; returns `(v1_path, v2_path)`.
fn both_formats(tag: &str, el: &EdgeList) -> (PathBuf, PathBuf) {
    let dir = workdir(tag);
    let v1 = dir.join("graph-v1.gcsr");
    let v2 = dir.join("graph-v2.gcsr");
    preprocess::edges_to_csr(
        el.clone(),
        &v1,
        &preprocess::PreprocessOptions::uncompressed(),
    )
    .unwrap();
    preprocess::edges_to_csr(el.clone(), &v2, &preprocess::PreprocessOptions::default()).unwrap();
    (v1, v2)
}

fn run_path<P: gpsa::VertexProgram>(
    tag: &str,
    path: &Path,
    program: P,
    term: Termination,
    mode: DispatchMode,
) -> RunReport<P::Value> {
    let config = EngineConfig::small(workdir(tag))
        .with_termination(term)
        .with_dispatch_mode(mode);
    Engine::new(config).run(path, program).unwrap()
}

fn seeded_graphs() -> Vec<(String, EdgeList)> {
    let mut graphs: Vec<(String, EdgeList)> = [5u64, 29]
        .iter()
        .map(|&seed| {
            let el = generate::symmetrize(&generate::rmat(
                200,
                1000,
                generate::RmatParams::default(),
                seed,
            ));
            (format!("rmat{seed}"), el)
        })
        .collect();
    // The grid drives long sparse-frontier runs — the regime where the
    // seek path decodes individual varint records.
    graphs.push(("grid".to_string(), generate::grid(12, 13)));
    graphs
}

#[test]
fn v2_matches_v1_and_the_oracle_across_modes_and_programs() {
    for (tag, el) in seeded_graphs() {
        let (v1, v2) = both_formats(&tag, &el);
        let oracle_bfs = SyncEngine::new(quiesce()).run(&el, Bfs { root: 0 }).values;
        let oracle_cc = SyncEngine::new(quiesce())
            .run(&el, ConnectedComponents)
            .values;
        let oracle_sssp = SyncEngine::new(quiesce()).run(&el, Sssp { root: 0 }).values;
        for mode in MODES {
            let r1 = run_path(
                &format!("bfs1-{tag}-{mode:?}"),
                &v1,
                Bfs { root: 0 },
                quiesce(),
                mode,
            );
            let r2 = run_path(
                &format!("bfs2-{tag}-{mode:?}"),
                &v2,
                Bfs { root: 0 },
                quiesce(),
                mode,
            );
            assert_eq!(r1.values, oracle_bfs, "bfs v1 {tag} {mode:?}");
            assert_eq!(r2.values, oracle_bfs, "bfs v2 {tag} {mode:?}");

            let r1 = run_path(
                &format!("cc1-{tag}-{mode:?}"),
                &v1,
                ConnectedComponents,
                quiesce(),
                mode,
            );
            let r2 = run_path(
                &format!("cc2-{tag}-{mode:?}"),
                &v2,
                ConnectedComponents,
                quiesce(),
                mode,
            );
            assert_eq!(r1.values, oracle_cc, "cc v1 {tag} {mode:?}");
            assert_eq!(r2.values, oracle_cc, "cc v2 {tag} {mode:?}");

            let r1 = run_path(
                &format!("sssp1-{tag}-{mode:?}"),
                &v1,
                Sssp { root: 0 },
                quiesce(),
                mode,
            );
            let r2 = run_path(
                &format!("sssp2-{tag}-{mode:?}"),
                &v2,
                Sssp { root: 0 },
                quiesce(),
                mode,
            );
            assert_eq!(r1.values, oracle_sssp, "sssp v1 {tag} {mode:?}");
            assert_eq!(r2.values, oracle_sssp, "sssp v2 {tag} {mode:?}");
        }
    }
}

#[test]
fn each_format_conserves_its_interval_volume_under_sparse_dispatch() {
    // Within one format, a sparse run's streamed + skipped words must add
    // back up to the dense sweep's volume — the conservation law that
    // makes the I/O counters trustworthy. It must hold per format even
    // though the two formats count different logical words per record.
    let el = generate::grid(30, 31);
    let (v1, v2) = both_formats("conserve", &el);
    for (fmt, path) in [("v1", &v1), ("v2", &v2)] {
        let dense = run_path(
            &format!("cons-dense-{fmt}"),
            path,
            Bfs { root: 0 },
            quiesce(),
            DispatchMode::Dense,
        );
        let sparse = run_path(
            &format!("cons-sparse-{fmt}"),
            path,
            Bfs { root: 0 },
            quiesce(),
            DispatchMode::Sparse,
        );
        assert_eq!(sparse.values, dense.values, "{fmt}");
        assert_eq!(sparse.supersteps, dense.supersteps, "{fmt}");
        assert_eq!(dense.edges_skipped, 0, "{fmt}: dense sweeps skip nothing");
        assert!(
            sparse.edges_streamed < dense.edges_streamed,
            "{fmt}: sparse streamed {} vs dense {}",
            sparse.edges_streamed,
            dense.edges_streamed
        );
        assert_eq!(
            sparse.edges_streamed + sparse.edges_skipped,
            dense.edges_streamed,
            "{fmt}: streamed + skipped must cover the dense interval volume"
        );
        // Bytes move with words: a sparse run cannot touch more bytes
        // than the dense sweep of the same file.
        assert!(
            sparse.edge_bytes_streamed < dense.edge_bytes_streamed,
            "{fmt}: sparse bytes {} vs dense bytes {}",
            sparse.edge_bytes_streamed,
            dense.edge_bytes_streamed
        );
    }
}

#[test]
fn v2_streams_fewer_bytes_than_v1_for_the_same_run() {
    // The compressed format's whole point: identical supersteps, identical
    // values, strictly fewer bytes through the dispatchers. The skewed
    // R-MAT degree distribution gives varint runs their advantage.
    let el = generate::symmetrize(&generate::rmat(
        300,
        2400,
        generate::RmatParams::default(),
        97,
    ));
    let (v1, v2) = both_formats("bytes", &el);
    for mode in [DispatchMode::Dense, DispatchMode::Sparse] {
        let r1 = run_path(
            &format!("bytes1-{mode:?}"),
            &v1,
            ConnectedComponents,
            quiesce(),
            mode,
        );
        let r2 = run_path(
            &format!("bytes2-{mode:?}"),
            &v2,
            ConnectedComponents,
            quiesce(),
            mode,
        );
        assert_eq!(r1.values, r2.values, "{mode:?}");
        assert!(r1.edge_bytes_streamed > 0, "{mode:?}");
        assert!(
            r2.edge_bytes_streamed < r1.edge_bytes_streamed,
            "{mode:?}: v2 streamed {} bytes, v1 {}",
            r2.edge_bytes_streamed,
            r1.edge_bytes_streamed
        );
        // v1 words are 4 bytes each, exactly.
        assert_eq!(r1.edge_bytes_streamed, 4 * r1.edges_streamed, "{mode:?}");
        // v2 encodes the same records in fewer bytes than a word layout
        // would take (mean varint target < 4 bytes on small-id graphs).
        assert!(
            r2.edge_bytes_streamed < 4 * r2.edges_streamed,
            "{mode:?}: v2 bytes {} not below 4x its {} logical words",
            r2.edge_bytes_streamed,
            r2.edges_streamed
        );
    }
}

#[test]
fn strided_assignments_read_v2_records_correctly() {
    // Strided dispatch exercises `record_into` (point lookups into the
    // byte-offset index) rather than the streaming cursor.
    let el = generate::symmetrize(&generate::rmat(
        150,
        800,
        generate::RmatParams::default(),
        53,
    ));
    let (v1, v2) = both_formats("strided", &el);
    let oracle = SyncEngine::new(quiesce())
        .run(&el, ConnectedComponents)
        .values;
    for (fmt, path) in [("v1", &v1), ("v2", &v2)] {
        let mut config =
            EngineConfig::small(workdir(&format!("strided-run-{fmt}"))).with_termination(quiesce());
        config.intervals = gpsa::IntervalStrategy::Strided;
        let report = Engine::new(config).run(path, ConnectedComponents).unwrap();
        assert_eq!(report.values, oracle, "{fmt}");
        assert_eq!(report.edges_skipped, 0, "{fmt}: strided reports no skips");
    }
}
