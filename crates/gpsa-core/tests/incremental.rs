//! Incremental recompute (`Engine::run_incremental`) vs the full-recompute
//! oracle: re-converging BFS / CC / SSSP from a prior run's values after an
//! additions-only delta must land on values bit-identical to a scratch
//! `run_snapshot` over the same merged snapshot.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpsa::programs::{Bfs, ConnectedComponents, PageRank, Sssp};
use gpsa::{Engine, EngineConfig, Termination};
use gpsa_graph::{generate, preprocess, DeltaBatch, DeltaOverlay, DiskCsr, Edge, GraphSnapshot};

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-incr-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn engine(dir: &PathBuf) -> Engine {
    let mut cfg = EngineConfig::small(dir).with_actors(2, 2);
    cfg.termination = Termination::Quiescence {
        max_supersteps: 10_000,
    };
    Engine::new(cfg)
}

/// Base graph + a mutated snapshot: ~1% added edges, including edges out
/// of likely-unreached vertices, a chain of additions (reachable only
/// through each other), and a brand-new vertex past the base id range.
fn base_and_mutated(dir: &Path) -> (Arc<GraphSnapshot>, Arc<GraphSnapshot>) {
    let csr = dir.join("g.gcsr");
    preprocess::edges_to_csr(
        generate::erdos_renyi(600, 3000, 42),
        &csr,
        &preprocess::PreprocessOptions::default(),
    )
    .unwrap();
    let base = Arc::new(DiskCsr::open(&csr).unwrap());
    let frozen = Arc::new(GraphSnapshot::from_csr(base.clone()));

    let mut added = Vec::new();
    for i in 0..20u32 {
        added.push(Edge::new((i * 13) % 600, (i * 37 + 5) % 600));
    }
    // Chain through otherwise-dark territory: 7 → 601 → 602 → 3. The new
    // vertex 602 only becomes reachable via another added edge, so its
    // outgoing added edge must be discovered by propagation, not seeding.
    added.push(Edge::new(7, 601));
    added.push(Edge::new(601, 602));
    added.push(Edge::new(602, 3));
    let mut overlay = DeltaOverlay::new();
    overlay.apply(&base, &DeltaBatch::Add(added));
    let mutated = Arc::new(GraphSnapshot::new(base, Arc::new(overlay)));
    (frozen, mutated)
}

#[test]
fn incremental_bfs_matches_full_recompute() {
    let dir = test_dir("bfs");
    let (frozen, mutated) = base_and_mutated(&dir);
    let eng = engine(&dir);
    let prior = eng
        .run_snapshot(&frozen, &dir.join("prior.gval"), Bfs { root: 0 })
        .unwrap();
    assert_eq!(prior.seeded_frontier, 0, "full runs seed nothing");
    let incr = eng
        .run_incremental(
            &mutated,
            &dir.join("incr.gval"),
            Bfs { root: 0 },
            &prior.values,
        )
        .unwrap();
    let full = eng
        .run_snapshot(&mutated, &dir.join("full.gval"), Bfs { root: 0 })
        .unwrap();
    assert!(
        incr.seeded_frontier > 0,
        "delta sources must seed the frontier"
    );
    assert_eq!(incr.values, full.values);
    // The chain vertices exist and were reached through the delta.
    assert_eq!(full.values.len(), 603);
    assert!(full.values[602] < gpsa::programs::UNREACHED);
}

#[test]
fn incremental_cc_matches_full_recompute() {
    let dir = test_dir("cc");
    let (frozen, mutated) = base_and_mutated(&dir);
    let eng = engine(&dir);
    let prior = eng
        .run_snapshot(&frozen, &dir.join("prior.gval"), ConnectedComponents)
        .unwrap();
    let incr = eng
        .run_incremental(
            &mutated,
            &dir.join("incr.gval"),
            ConnectedComponents,
            &prior.values,
        )
        .unwrap();
    let full = eng
        .run_snapshot(&mutated, &dir.join("full.gval"), ConnectedComponents)
        .unwrap();
    assert!(incr.seeded_frontier > 0);
    assert_eq!(incr.values, full.values);
}

#[test]
fn incremental_sssp_matches_full_recompute() {
    let dir = test_dir("sssp");
    let (frozen, mutated) = base_and_mutated(&dir);
    let eng = engine(&dir);
    let prior = eng
        .run_snapshot(&frozen, &dir.join("prior.gval"), Sssp { root: 0 })
        .unwrap();
    let incr = eng
        .run_incremental(
            &mutated,
            &dir.join("incr.gval"),
            Sssp { root: 0 },
            &prior.values,
        )
        .unwrap();
    let full = eng
        .run_snapshot(&mutated, &dir.join("full.gval"), Sssp { root: 0 })
        .unwrap();
    assert!(incr.seeded_frontier > 0);
    assert_eq!(incr.values, full.values);
}

#[test]
fn incremental_rejects_always_dispatch_removals_and_bad_prior() {
    let dir = test_dir("reject");
    let (frozen, mutated) = base_and_mutated(&dir);
    let eng = engine(&dir);
    let prior = eng
        .run_snapshot(&frozen, &dir.join("prior.gval"), Bfs { root: 0 })
        .unwrap();

    // PageRank re-dispatches every vertex every superstep; warm-starting
    // it from a seed set is unsound, so it must be refused.
    let pr_prior = vec![0.1f32; frozen.n_vertices()];
    let e = eng
        .run_incremental(
            &mutated,
            &dir.join("pr.gval"),
            PageRank { damping: 0.85 },
            &pr_prior,
        )
        .unwrap_err();
    assert!(e.to_string().contains("always-dispatch"), "{e}");

    // A delta containing removals invalidates monotone warm starts.
    let mut overlay = DeltaOverlay::new();
    overlay.apply(frozen.base(), &DeltaBatch::Remove(vec![Edge::new(0, 1)]));
    let removed = Arc::new(GraphSnapshot::new(frozen.base().clone(), Arc::new(overlay)));
    let e = eng
        .run_incremental(
            &removed,
            &dir.join("rm.gval"),
            Bfs { root: 0 },
            &prior.values,
        )
        .unwrap_err();
    assert!(e.to_string().contains("additions-only"), "{e}");

    // Prior values from a *larger* graph cannot be mapped onto this one.
    let too_long = vec![0u32; mutated.n_vertices() + 1];
    let e = eng
        .run_incremental(&mutated, &dir.join("long.gval"), Bfs { root: 0 }, &too_long)
        .unwrap_err();
    assert!(e.to_string().contains("prior values cover"), "{e}");
}
