//! Regression: concurrent `run_shared` jobs against ONE shared `DiskCsr`
//! must not collide, as long as each run gets a private value file —
//! the contract the serving layer's job-unique scratch dirs rely on.

use std::path::PathBuf;
use std::sync::Arc;

use gpsa::programs::{Bfs, ConnectedComponents, PageRank};
use gpsa::{Engine, EngineConfig, Termination};
use gpsa_graph::{generate, preprocess, DiskCsr};

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-shared-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn engine(dir: &PathBuf, termination: Termination) -> Engine {
    let mut cfg = EngineConfig::small(dir).with_actors(1, 1);
    cfg.termination = termination;
    Engine::new(cfg)
}

#[test]
fn concurrent_jobs_on_one_graph_match_sequential_baselines() {
    let dir = test_dir("concurrent");
    let csr = dir.join("g.gcsr");
    preprocess::edges_to_csr(
        generate::erdos_renyi(500, 2500, 11),
        &csr,
        &preprocess::PreprocessOptions::default(),
    )
    .unwrap();
    let graph = Arc::new(DiskCsr::open(&csr).unwrap());

    // Sequential baselines, each with its own value file.
    let quiesce = Termination::Quiescence {
        max_supersteps: 10_000,
    };
    let base_pr = engine(&dir, Termination::Supersteps(5))
        .run_shared(
            &graph,
            &dir.join("base-pr.gval"),
            PageRank { damping: 0.85 },
        )
        .unwrap();
    let base_bfs = engine(&dir, quiesce)
        .run_shared(&graph, &dir.join("base-bfs.gval"), Bfs { root: 0 })
        .unwrap();
    let base_cc = engine(&dir, quiesce)
        .run_shared(&graph, &dir.join("base-cc.gval"), ConnectedComponents)
        .unwrap();

    // Now the same three programs, three threads, one shared mmap, each
    // run writing a job-unique value file — exactly what the job server
    // does for concurrent submissions against one resident graph.
    let mut handles = Vec::new();
    for round in 0..2u32 {
        let (g, d) = (graph.clone(), dir.clone());
        handles.push(std::thread::spawn(move || {
            let vf = d.join(format!("job-pr-{round}.gval"));
            let r = engine(&d, Termination::Supersteps(5))
                .run_shared(&g, &vf, PageRank { damping: 0.85 })
                .unwrap();
            (
                "pr",
                round,
                r.values.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            )
        }));
        let (g, d) = (graph.clone(), dir.clone());
        handles.push(std::thread::spawn(move || {
            let vf = d.join(format!("job-bfs-{round}.gval"));
            let r = engine(&d, quiesce)
                .run_shared(&g, &vf, Bfs { root: 0 })
                .unwrap();
            ("bfs", round, r.values)
        }));
        let (g, d) = (graph.clone(), dir.clone());
        handles.push(std::thread::spawn(move || {
            let vf = d.join(format!("job-cc-{round}.gval"));
            let r = engine(&d, quiesce)
                .run_shared(&g, &vf, ConnectedComponents)
                .unwrap();
            ("cc", round, r.values)
        }));
    }

    let expected_pr: Vec<u32> = base_pr.values.iter().map(|v| v.to_bits()).collect();
    for h in handles {
        let (kind, round, values) = h.join().unwrap();
        let expected = match kind {
            "pr" => &expected_pr,
            "bfs" => &base_bfs.values,
            _ => &base_cc.values,
        };
        assert_eq!(
            &values, expected,
            "concurrent {kind} run (round {round}) diverged from its sequential baseline"
        );
    }
}

#[test]
fn run_shared_refuses_nothing_but_needs_distinct_value_files() {
    // Sanity for the contract itself: two back-to-back runs reusing the
    // SAME value file path still work sequentially (create-or-recover),
    // which is why collision avoidance must come from path uniqueness,
    // not from file locking.
    let dir = test_dir("same-path");
    let csr = dir.join("g.gcsr");
    preprocess::edges_to_csr(
        generate::cycle(64),
        &csr,
        &preprocess::PreprocessOptions::default(),
    )
    .unwrap();
    let graph = Arc::new(DiskCsr::open(&csr).unwrap());
    let quiesce = Termination::Quiescence {
        max_supersteps: 10_000,
    };
    let vf = dir.join("shared.gval");
    let a = engine(&dir, quiesce)
        .run_shared(&graph, &vf, Bfs { root: 0 })
        .unwrap();
    let b = engine(&dir, quiesce)
        .run_shared(&graph, &vf, Bfs { root: 0 })
        .unwrap();
    assert_eq!(a.values, b.values);
}
