//! Trait-level semantic parity: the actor engine and the sequential-phase
//! BSP engine run the SAME `VertexProgram`s and must agree — across every
//! built-in program, including the retraction-style k-core.

use gpsa::programs::{Bfs, ConnectedComponents, InDegree, KCore, PageRank, Sssp};
use gpsa::{Engine, EngineConfig, SyncEngine, Termination};
use gpsa_graph::{generate, EdgeList};
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-sva-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("chain", generate::chain(25)),
        ("star", generate::symmetrize(&generate::star(30))),
        ("grid", generate::grid(6, 7)),
        (
            "rmat",
            generate::symmetrize(&generate::rmat(
                200,
                1000,
                generate::RmatParams::default(),
                3,
            )),
        ),
    ]
}

fn actor_run<P: gpsa::VertexProgram>(
    tag: &str,
    el: &EdgeList,
    program: P,
    term: Termination,
) -> Vec<P::Value> {
    let engine = Engine::new(EngineConfig::small(workdir(tag)).with_termination(term));
    engine
        .run_edge_list(el.clone(), tag, program)
        .unwrap()
        .values
}

#[test]
fn bfs_and_sssp_parity() {
    let quiesce = Termination::Quiescence {
        max_supersteps: 2000,
    };
    for (tag, el) in graphs() {
        let sync_bfs = SyncEngine::new(quiesce).run(&el, Bfs { root: 0 }).values;
        let actor_bfs = actor_run(&format!("bfs-{tag}"), &el, Bfs { root: 0 }, quiesce);
        assert_eq!(actor_bfs, sync_bfs, "bfs {tag}");

        let sync_sssp = SyncEngine::new(quiesce).run(&el, Sssp { root: 0 }).values;
        let actor_sssp = actor_run(&format!("sssp-{tag}"), &el, Sssp { root: 0 }, quiesce);
        assert_eq!(actor_sssp, sync_sssp, "sssp {tag}");
    }
}

#[test]
fn cc_parity_and_superstep_counts_are_close() {
    let quiesce = Termination::Quiescence {
        max_supersteps: 2000,
    };
    for (tag, el) in graphs() {
        let sync = SyncEngine::new(quiesce).run(&el, ConnectedComponents);
        let engine = Engine::new(
            EngineConfig::small(workdir(&format!("cc-{tag}"))).with_termination(quiesce),
        );
        let actor = engine
            .run_edge_list(el.clone(), "g", ConnectedComponents)
            .unwrap();
        assert_eq!(actor.values, sync.values, "cc {tag}");
        // Both are synchronous BSP; the actor engine may take a couple of
        // extra supersteps (conservative stale-column reactivation) but
        // not drastically more.
        assert!(
            actor.supersteps <= sync.supersteps + 4,
            "cc {tag}: actor {} vs sync {} supersteps",
            actor.supersteps,
            sync.supersteps
        );
    }
}

#[test]
fn indegree_parity() {
    let once = Termination::Supersteps(1);
    for (tag, el) in graphs() {
        let sync = SyncEngine::new(once).run(&el, InDegree).values;
        let actor = actor_run(&format!("indeg-{tag}"), &el, InDegree, once);
        assert_eq!(actor, sync, "indegree {tag}");
    }
}

#[test]
fn kcore_parity() {
    let quiesce = Termination::Quiescence {
        max_supersteps: 2000,
    };
    for (tag, el) in graphs() {
        for k in [2u32, 3] {
            let sync = SyncEngine::new(quiesce)
                .run(&el, KCore::new(k, el.out_degrees()))
                .values;
            let actor = actor_run(
                &format!("kcore-{tag}-{k}"),
                &el,
                KCore::new(k, el.out_degrees()),
                quiesce,
            );
            // Membership must agree (residual-degree details may differ by
            // decrement arrival grouping, but the zero/non-zero split is
            // the k-core).
            let sync_members: Vec<bool> = sync.iter().map(|&v| v != 0).collect();
            let actor_members: Vec<bool> = actor.iter().map(|&v| v != 0).collect();
            assert_eq!(actor_members, sync_members, "kcore {tag} k={k}");
        }
    }
}

#[test]
fn pagerank_trajectory_parity() {
    for steps in [1u64, 3, 7] {
        let el = generate::symmetrize(&generate::erdos_renyi(150, 700, 11));
        let term = Termination::Supersteps(steps);
        let sync = SyncEngine::new(term).run(&el, PageRank::default()).values;
        let actor = actor_run(&format!("pr-{steps}"), &el, PageRank::default(), term);
        let max_diff = actor
            .iter()
            .zip(&sync)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-6, "steps {steps}: diff {max_diff}");
    }
}
