//! Property tests for the two-column value file and the flag protocol.

use gpsa::{clear_flag, is_flagged, set_flag, ValueFile, FLAG_BIT};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gpsa-vfp-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!("{tag}-{case}.gval"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn flag_ops_preserve_payload(payload in 0u32..FLAG_BIT) {
        prop_assert!(!is_flagged(payload));
        let f = set_flag(payload);
        prop_assert!(is_flagged(f));
        prop_assert_eq!(clear_flag(f), payload);
        prop_assert_eq!(set_flag(f), f);
        prop_assert_eq!(clear_flag(clear_flag(f)), payload);
    }

    #[test]
    fn stores_roundtrip_and_reopen(
        n in 1usize..300,
        writes in proptest::collection::vec(
            (any::<prop::sample::Index>(), 0u32..2, 0u32..FLAG_BIT),
            0..64,
        ),
    ) {
        let path = tmp("store");
        let mut expect: Vec<[u32; 2]> =
            (0..n as u32).map(|v| [v % 1000, set_flag(v % 1000)]).collect();
        {
            let vf = ValueFile::create(&path, n, |v| (v % 1000, true)).unwrap();
            for (idx, col, bits) in &writes {
                let v = idx.index(n) as u32;
                vf.store(*col, v, *bits);
                expect[v as usize][*col as usize] = *bits;
            }
            vf.commit(7, 1, true).unwrap();
        }
        let vf = ValueFile::open(&path).unwrap();
        prop_assert_eq!(vf.n_vertices(), n);
        prop_assert_eq!(vf.header().committed_superstep, Some(7));
        prop_assert_eq!(vf.header().next_dispatch_col, 1);
        for v in 0..n as u32 {
            prop_assert_eq!(vf.load(0, v), expect[v as usize][0]);
            prop_assert_eq!(vf.load(1, v), expect[v as usize][1]);
        }
    }

    #[test]
    fn recover_always_restores_a_consistent_state(
        n in 1usize..200,
        good_col in 0u32..2,
        committed in 0u64..50,
        garbage in proptest::collection::vec((any::<prop::sample::Index>(), any::<u32>()), 0..32),
    ) {
        let path = tmp("recover");
        let vf = ValueFile::create(&path, n, |v| (v, true)).unwrap();
        // Establish a committed state in `good_col`.
        for v in 0..n as u32 {
            vf.store(good_col, v, v.wrapping_mul(3) & !FLAG_BIT);
        }
        vf.commit(committed, good_col, false).unwrap();
        // Crash: arbitrary garbage lands in the other column.
        for (idx, bits) in &garbage {
            vf.store(1 - good_col, idx.index(n) as u32, *bits);
        }
        let resume = vf.recover();
        prop_assert_eq!(resume, committed + 1);
        for v in 0..n as u32 {
            let expected_payload = v.wrapping_mul(3) & !FLAG_BIT;
            // Good column: re-activated, payload intact.
            prop_assert!(!is_flagged(vf.load(good_col, v)));
            prop_assert_eq!(clear_flag(vf.load(good_col, v)), expected_payload);
            // Other column: flagged copy of the good payload — garbage gone.
            prop_assert!(is_flagged(vf.load(1 - good_col, v)));
            prop_assert_eq!(clear_flag(vf.load(1 - good_col, v)), expected_payload);
        }
        // Recovery is idempotent.
        prop_assert_eq!(vf.recover(), committed + 1);
    }

    #[test]
    fn invalidate_is_payload_preserving_for_any_slot(
        n in 1usize..100,
        ops in proptest::collection::vec((any::<prop::sample::Index>(), 0u32..2), 0..64),
    ) {
        let path = tmp("inval");
        let vf = ValueFile::create(&path, n, |v| (v, v % 3 == 0)).unwrap();
        let before: Vec<[u32; 2]> = (0..n as u32)
            .map(|v| [clear_flag(vf.load(0, v)), clear_flag(vf.load(1, v))])
            .collect();
        for (idx, col) in &ops {
            vf.invalidate(*col, idx.index(n) as u32);
        }
        for v in 0..n as u32 {
            prop_assert_eq!(clear_flag(vf.load(0, v)), before[v as usize][0]);
            prop_assert_eq!(clear_flag(vf.load(1, v)), before[v as usize][1]);
        }
    }
}
