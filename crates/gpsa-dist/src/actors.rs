//! The distributed variants of the GPSA actors. Protocol identical to
//! `gpsa-core` (paper Algorithms 1–3); the differences are that every
//! actor knows which *node* it lives on, state accesses go to that node's
//! value-file shard, and cross-node sends are tallied in the
//! [`TrafficMatrix`].

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use actor::{Actor, Addr, Ctx};
use crossbeam_channel::Sender;
use gpsa::{clear_flag, is_flagged, GraphMeta, Termination, ValueFile, VertexProgram, VertexValue};
use gpsa_graph::{DiskCsr, VertexId};

use crate::manifest::{BarrierRecord, ClusterManifest};
use crate::recovery::SharedStats;
use crate::traffic::TrafficMatrix;

/// Global routing: vertex → (node, compute actor).
#[derive(Debug, Clone)]
pub(crate) struct DistRouter {
    pub n_nodes: usize,
    pub per_node: usize,
    pub computers_per_node: usize,
}

impl DistRouter {
    #[inline]
    pub fn node_of_vertex(&self, v: VertexId) -> usize {
        (v as usize / self.per_node).min(self.n_nodes - 1)
    }

    /// Index into the global computer list.
    #[inline]
    pub fn computer_of_vertex(&self, v: VertexId) -> usize {
        self.node_of_vertex(v) * self.computers_per_node + (v as usize % self.computers_per_node)
    }

    #[inline]
    pub fn node_of_computer(&self, idx: usize) -> usize {
        idx / self.computers_per_node
    }

    /// Vertex range owned by `node`.
    pub fn node_range(&self, node: usize, n_vertices: usize) -> Range<VertexId> {
        let lo = (node * self.per_node).min(n_vertices);
        let hi = if node + 1 == self.n_nodes {
            n_vertices
        } else {
            ((node + 1) * self.per_node).min(n_vertices)
        };
        lo as VertexId..hi as VertexId
    }
}

pub(crate) enum DispatchCmd {
    Start { superstep: u64, dispatch_col: u32 },
    Shutdown,
}

#[cfg(test)]
mod router_tests {
    use super::*;

    #[test]
    fn routing_is_total_and_consistent() {
        let r = DistRouter {
            n_nodes: 3,
            per_node: 10,
            computers_per_node: 2,
        };
        for v in 0..30u32 {
            let node = r.node_of_vertex(v);
            assert!(node < 3);
            let c = r.computer_of_vertex(v);
            assert_eq!(
                r.node_of_computer(c),
                node,
                "computer lives on the vertex's node"
            );
            assert!(r.node_range(node, 30).contains(&v));
        }
        // Overflow ids clamp to the last node.
        assert_eq!(r.node_of_vertex(1000), 2);
    }

    #[test]
    fn node_ranges_tile_the_vertex_space() {
        for (n, nodes, per) in [
            (30usize, 3usize, 10usize),
            (31, 3, 11),
            (5, 4, 2),
            (7, 7, 1),
        ] {
            let r = DistRouter {
                n_nodes: nodes,
                per_node: per,
                computers_per_node: 1,
            };
            let mut covered = 0usize;
            let mut expect_start = 0u32;
            for node in 0..nodes {
                let range = r.node_range(node, n);
                assert_eq!(range.start, expect_start.min(n as u32));
                expect_start = range.end;
                covered += (range.end - range.start) as usize;
            }
            assert_eq!(covered, n, "n={n} nodes={nodes} per={per}");
        }
    }

    #[test]
    fn computers_within_a_node_partition_its_vertices() {
        let r = DistRouter {
            n_nodes: 2,
            per_node: 8,
            computers_per_node: 3,
        };
        // Same vertex always routes to the same computer; computers of a
        // node cover exactly the node's vertices.
        let mut seen = std::collections::HashMap::new();
        for v in 0..16u32 {
            let c = r.computer_of_vertex(v);
            assert_eq!(r.computer_of_vertex(v), c);
            *seen.entry(c).or_insert(0) += 1;
        }
        assert!(seen.keys().all(|&c| c < 6));
        assert_eq!(seen.values().sum::<i32>(), 16);
    }
}

pub(crate) enum ComputeCmd<M> {
    Batch {
        update_col: u32,
        msgs: Box<[(VertexId, M)]>,
    },
    Flush {
        superstep: u64,
        update_col: u32,
    },
    Shutdown,
}

pub(crate) enum CoordinatorMsg<P: VertexProgram> {
    Wire {
        dispatchers: Vec<Addr<DistDispatcher<P>>>,
        computers: Vec<Addr<DistComputer<P>>>,
    },
    DispatchOver {
        superstep: u64,
    },
    ComputeOver {
        superstep: u64,
        activated: u64,
        delta: f64,
        messages: u64,
    },
}

/// End-of-run signal forwarded to the blocking caller. Per-superstep
/// statistics travel through [`SharedStats`] instead (appended only
/// after each barrier's manifest append, so rolled-back supersteps never
/// double-count).
#[derive(Debug, Clone)]
pub(crate) struct CoordinatorReport {
    pub final_dispatch_col: u32,
}

pub(crate) struct DistDispatcher<P: VertexProgram> {
    pub node: usize,
    pub program: Arc<P>,
    pub graph: Arc<DiskCsr>,
    pub values: Arc<ValueFile>,
    pub meta: GraphMeta,
    pub interval: Range<VertexId>,
    pub router: Arc<DistRouter>,
    pub computers: Vec<Addr<DistComputer<P>>>,
    pub coordinator: Addr<Coordinator<P>>,
    pub traffic: Arc<TrafficMatrix>,
    pub buffers: Vec<Vec<(VertexId, P::MsgVal)>>,
    pub msg_batch: usize,
    pub always_dispatch: bool,
    pub combine: bool,
    /// Superstep currently being dispatched (chaos batch faults key on it).
    pub superstep: u64,
    /// Cluster recovery epoch: bumped by the recovery loop when this
    /// fleet is abandoned. A zombie worker (e.g. one sleeping through a
    /// chaos-injected network delay) re-checks it and bails before
    /// touching shared state the resumed fleet now owns.
    pub epoch: Arc<AtomicU64>,
    pub my_epoch: u64,
    #[cfg(feature = "chaos")]
    pub fault: Option<Arc<gpsa::fault::FaultPlan>>,
}

impl<P: VertexProgram> DistDispatcher<P> {
    /// True when the recovery loop moved on without this fleet — this
    /// worker is a zombie and must stop touching shared state.
    #[inline]
    fn abandoned(&self) -> bool {
        self.epoch.load(Ordering::Relaxed) != self.my_epoch
    }

    fn flush_buffer(&mut self, owner: usize, update_col: u32) {
        let mut buf = std::mem::take(&mut self.buffers[owner]);
        if buf.is_empty() {
            return;
        }
        if self.combine {
            buf.sort_unstable_by_key(|&(dst, _)| dst);
            let mut out: Vec<(VertexId, P::MsgVal)> = Vec::with_capacity(buf.len());
            for (dst, msg) in buf {
                match out.last_mut() {
                    Some((d, m)) if *d == dst => *m = self.program.combine(*m, msg),
                    _ => out.push((dst, msg)),
                }
            }
            buf = out;
        }
        #[cfg(feature = "chaos")]
        if self.router.node_of_computer(owner) != self.node {
            if let Some(plan) = &self.fault {
                match plan.take_batch_fault(self.node as u32, self.superstep) {
                    // A dropped batch is a *detected* link failure: the
                    // sender dies and the barrier rolls back. Silently
                    // losing it would let the cluster quiesce on wrong
                    // values.
                    Some(gpsa::fault::BatchFault::Drop) => panic!(
                        "chaos-injected network drop: node {} superstep {}",
                        self.node, self.superstep
                    ),
                    Some(gpsa::fault::BatchFault::Delay(ms)) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                        if self.abandoned() {
                            return;
                        }
                    }
                    None => {}
                }
            }
        }
        // Tally the (simulated) wire: messages leaving this node.
        self.traffic.record(
            self.node,
            self.router.node_of_computer(owner),
            buf.len() as u64,
        );
        let _ = self.computers[owner].send(ComputeCmd::Batch {
            update_col,
            msgs: buf.into_boxed_slice(),
        });
    }

    fn run_superstep(&mut self, superstep: u64, dispatch_col: u32) {
        self.superstep = superstep;
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault {
            // Node kill: the plan fires once, so exactly one dispatcher
            // of the target node panics; its system's failure escalation
            // takes the whole simulated node down.
            if plan.take_node_kill(self.node as u32, superstep) {
                panic!(
                    "chaos-injected node kill: node {} at superstep {superstep}",
                    self.node
                );
            }
        }
        let update_col = 1 - dispatch_col;
        let graph = self.graph.clone();
        let mut cursor = graph.cursor(self.interval.clone());
        while let Some(rec) = cursor.next_rec() {
            if self.abandoned() {
                return;
            }
            let bits = self.values.load(dispatch_col, rec.vid);
            if !self.always_dispatch && is_flagged(bits) {
                continue;
            }
            let value = P::Value::from_bits(clear_flag(bits));
            if let Some(msg) = self.program.gen_msg(rec.vid, value, rec.degree, &self.meta) {
                for &dst in rec.targets {
                    let owner = self.router.computer_of_vertex(dst);
                    self.buffers[owner].push((dst, msg));
                    if self.buffers[owner].len() >= self.msg_batch {
                        self.flush_buffer(owner, update_col);
                    }
                }
            }
            self.values.invalidate(dispatch_col, rec.vid);
        }
        for owner in 0..self.buffers.len() {
            self.flush_buffer(owner, update_col);
        }
        let _ = self
            .coordinator
            .send(CoordinatorMsg::DispatchOver { superstep });
    }
}

impl<P: VertexProgram> Actor for DistDispatcher<P> {
    type Msg = DispatchCmd;
    fn handle(&mut self, msg: DispatchCmd, ctx: &mut Ctx<'_, Self>) {
        match msg {
            DispatchCmd::Start {
                superstep,
                dispatch_col,
            } => self.run_superstep(superstep, dispatch_col),
            DispatchCmd::Shutdown => ctx.stop(),
        }
    }
}

pub(crate) struct DistComputer<P: VertexProgram> {
    /// Node this computer lives on (chaos targeting).
    #[cfg_attr(not(feature = "chaos"), allow(dead_code))]
    pub node: usize,
    pub program: Arc<P>,
    /// This node's value-file shard; every vertex routed here is in its
    /// range.
    pub values: Arc<ValueFile>,
    pub meta: GraphMeta,
    pub coordinator: Addr<Coordinator<P>>,
    pub dirty: Vec<(VertexId, P::Value)>,
    pub owned: Vec<VertexId>,
    pub messages: u64,
    /// Cluster recovery epoch (see [`DistDispatcher::epoch`]).
    pub epoch: Arc<AtomicU64>,
    pub my_epoch: u64,
    #[cfg(feature = "chaos")]
    pub fault: Option<Arc<gpsa::fault::FaultPlan>>,
}

impl<P: VertexProgram> DistComputer<P> {
    #[inline]
    fn abandoned(&self) -> bool {
        self.epoch.load(Ordering::Relaxed) != self.my_epoch
    }

    #[inline]
    fn fold(&mut self, update_col: u32, v: VertexId, msg: P::MsgVal) {
        let dispatch_col = 1 - update_col;
        let u_bits = self.values.load(update_col, v);
        let new = if is_flagged(u_bits) {
            let d = P::Value::from_bits(clear_flag(self.values.load(dispatch_col, v)));
            let u = P::Value::from_bits(clear_flag(u_bits));
            let basis = self.program.freshest(d, u);
            self.dirty.push((v, basis));
            self.program.compute(v, None, basis, msg, &self.meta)
        } else {
            let acc = P::Value::from_bits(u_bits);
            let basis = P::Value::from_bits(clear_flag(self.values.load(dispatch_col, v)));
            self.program.compute(v, Some(acc), basis, msg, &self.meta)
        };
        self.values.store(update_col, v, new.to_bits());
        self.messages += 1;
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault {
            plan.panic_if_due_on_node(self.node as u32, self.messages);
        }
    }

    fn flush(&mut self, superstep: u64, update_col: u32) {
        let dispatch_col = 1 - update_col;
        let mut activated = 0u64;
        let mut delta = 0.0f64;
        for &v in &self.owned {
            let u_bits = self.values.load(update_col, v);
            if !is_flagged(u_bits) {
                continue;
            }
            let d = P::Value::from_bits(clear_flag(self.values.load(dispatch_col, v)));
            let u = P::Value::from_bits(clear_flag(u_bits));
            let basis = self.program.freshest(d, u);
            let new = self.program.no_message_value(v, basis, &self.meta);
            if self.program.changed(basis, new) {
                self.values.store(update_col, v, new.to_bits());
                activated += 1;
                delta += self.program.delta(basis, new);
            } else {
                self.values
                    .store(update_col, v, gpsa::set_flag(new.to_bits()));
            }
        }
        for &(v, basis) in &self.dirty {
            let final_v = P::Value::from_bits(clear_flag(self.values.load(update_col, v)));
            if self.program.changed(basis, final_v) {
                activated += 1;
                delta += self.program.delta(basis, final_v);
            } else {
                self.values.invalidate(update_col, v);
            }
        }
        self.dirty.clear();
        let messages = std::mem::take(&mut self.messages);
        let _ = self.coordinator.send(CoordinatorMsg::ComputeOver {
            superstep,
            activated,
            delta,
            messages,
        });
    }
}

impl<P: VertexProgram> Actor for DistComputer<P> {
    type Msg = ComputeCmd<P::MsgVal>;
    fn handle(&mut self, msg: ComputeCmd<P::MsgVal>, ctx: &mut Ctx<'_, Self>) {
        if self.abandoned() {
            // Zombie after an abandon(): the resumed fleet owns the
            // shard now; drain silently.
            if matches!(msg, ComputeCmd::Shutdown) {
                ctx.stop();
            }
            return;
        }
        match msg {
            ComputeCmd::Batch { update_col, msgs } => {
                for &(v, m) in msgs.iter() {
                    self.fold(update_col, v, m);
                }
            }
            ComputeCmd::Flush {
                superstep,
                update_col,
            } => self.flush(superstep, update_col),
            ComputeCmd::Shutdown => ctx.stop(),
        }
    }
}

/// The global barrier coordinator (paper Algorithm 1 across nodes),
/// extended with the cluster commit: at every barrier it drives each
/// node's dual-slot value-file commit and then appends one CRC'd record
/// to the [`ClusterManifest`] — in that order, so the manifest never
/// names a barrier some node has not committed. A failed commit or
/// append *panics*: the master system's failure escalation hands the
/// error to the recovery loop, which rolls the cluster back.
pub(crate) struct Coordinator<P: VertexProgram> {
    pub value_files: Vec<Arc<ValueFile>>,
    pub termination: Termination,
    pub report_tx: Sender<CoordinatorReport>,
    pub dispatchers: Vec<Addr<DistDispatcher<P>>>,
    pub computers: Vec<Addr<DistComputer<P>>>,
    pub superstep: u64,
    pub dispatch_col: u32,
    pub pending_dispatch: usize,
    pub pending_compute: usize,
    pub step_started: Option<Instant>,
    pub step_activated: u64,
    pub step_delta: f64,
    pub step_messages: u64,
    /// Whether barrier commits fsync (value pages before headers).
    pub durable: bool,
    pub manifest: Arc<ClusterManifest>,
    /// Committed-superstep stats, shared with the recovery loop so they
    /// survive attempts (see [`SharedStats`]).
    pub stats: Arc<Mutex<SharedStats>>,
    /// `last started superstep + 1`, watched by the per-superstep
    /// watchdog and used to count rolled-back work.
    pub progress: Arc<AtomicU64>,
    /// Cluster recovery epoch (see [`DistDispatcher::epoch`]): an
    /// abandoned coordinator must not keep committing barriers — it
    /// shares the manifest handle and the value files with the fleet
    /// that replaced it.
    pub epoch: Arc<AtomicU64>,
    pub my_epoch: u64,
    #[cfg(feature = "chaos")]
    pub fault: Option<Arc<gpsa::fault::FaultPlan>>,
}

impl<P: VertexProgram> Coordinator<P> {
    fn start_superstep(&mut self) {
        self.pending_dispatch = self.dispatchers.len();
        self.pending_compute = self.computers.len();
        self.step_activated = 0;
        self.step_delta = 0.0;
        self.step_messages = 0;
        self.step_started = Some(Instant::now());
        self.progress.store(self.superstep + 1, Ordering::Relaxed);
        for d in &self.dispatchers {
            let _ = d.send(DispatchCmd::Start {
                superstep: self.superstep,
                dispatch_col: self.dispatch_col,
            });
        }
    }

    /// The cluster commit at a completed barrier. Records the superstep's
    /// stats only after the manifest append succeeds — a barrier that
    /// rolls back leaves no trace here, so replayed supersteps count
    /// exactly once.
    fn commit_barrier(&mut self, step_elapsed: std::time::Duration) {
        let next_dispatch = 1 - self.dispatch_col;
        let commit_t0 = Instant::now();
        let mut node_seqs = Vec::with_capacity(self.value_files.len());
        for (node, vf) in self.value_files.iter().enumerate() {
            if let Err(e) = vf.commit(self.superstep, next_dispatch, self.durable) {
                panic!(
                    "node {node} value-file commit failed at superstep {}: {e}",
                    self.superstep
                );
            }
            node_seqs.push(vf.commit_seq());
        }
        let rec = BarrierRecord {
            superstep: self.superstep,
            next_dispatch_col: next_dispatch,
            node_seqs,
        };
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.fault {
            if plan.take_torn_manifest(self.superstep) {
                self.manifest.append_torn(&rec);
                panic!(
                    "chaos-injected torn manifest tail at superstep {}",
                    self.superstep
                );
            }
        }
        if let Err(e) = self.manifest.append(&rec, self.durable) {
            panic!(
                "cluster manifest append failed at superstep {}: {e}",
                self.superstep
            );
        }
        let commit_elapsed = commit_t0.elapsed();
        let mut stats = self.stats.lock().expect("stats lock poisoned");
        stats.steps_run += 1;
        stats.step_times.push(step_elapsed);
        stats.commit_times.push(commit_elapsed);
        stats.activated.push(self.step_activated);
        stats.deltas.push(self.step_delta);
        stats.messages += self.step_messages;
        drop(stats);
        self.dispatch_col = next_dispatch;
    }

    fn finish(&mut self, ctx: &mut Ctx<'_, Self>) {
        for d in &self.dispatchers {
            let _ = d.send(DispatchCmd::Shutdown);
        }
        for c in &self.computers {
            let _ = c.send(ComputeCmd::Shutdown);
        }
        let _ = self.report_tx.send(CoordinatorReport {
            final_dispatch_col: self.dispatch_col,
        });
        ctx.stop();
    }

    fn wants_more(&self) -> bool {
        let next = self.superstep + 1;
        match self.termination {
            Termination::Supersteps(n) => next < n,
            Termination::Quiescence { max_supersteps } => {
                self.step_activated > 0 && next < max_supersteps
            }
            Termination::Delta {
                epsilon,
                max_supersteps,
            } => self.step_delta > epsilon && next < max_supersteps,
        }
    }
}

impl<P: VertexProgram> Actor for Coordinator<P> {
    type Msg = CoordinatorMsg<P>;
    fn handle(&mut self, msg: CoordinatorMsg<P>, ctx: &mut Ctx<'_, Self>) {
        if self.epoch.load(Ordering::Relaxed) != self.my_epoch {
            // Zombie after an abandon(): the recovery loop moved on; do
            // not commit barriers against state the new fleet owns.
            ctx.stop();
            return;
        }
        match msg {
            CoordinatorMsg::Wire {
                dispatchers,
                computers,
            } => {
                self.dispatchers = dispatchers;
                self.computers = computers;
                self.start_superstep();
            }
            CoordinatorMsg::DispatchOver { superstep } => {
                debug_assert_eq!(superstep, self.superstep);
                self.pending_dispatch -= 1;
                if self.pending_dispatch == 0 {
                    let update_col = 1 - self.dispatch_col;
                    for c in &self.computers {
                        let _ = c.send(ComputeCmd::Flush {
                            superstep: self.superstep,
                            update_col,
                        });
                    }
                }
            }
            CoordinatorMsg::ComputeOver {
                superstep,
                activated,
                delta,
                messages,
            } => {
                debug_assert_eq!(superstep, self.superstep);
                self.step_activated += activated;
                self.step_delta += delta;
                self.step_messages += messages;
                self.pending_compute -= 1;
                if self.pending_compute == 0 {
                    let step_elapsed = self
                        .step_started
                        .take()
                        .map(|t| t.elapsed())
                        .unwrap_or_default();
                    self.commit_barrier(step_elapsed);
                    if self.wants_more() {
                        self.superstep += 1;
                        self.start_superstep();
                    } else {
                        self.finish(ctx);
                    }
                }
            }
        }
    }
}
