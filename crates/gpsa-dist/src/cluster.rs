//! Cluster assembly, the blocking run entry point, and the
//! superstep-granular recovery loop.
//!
//! A run is a sequence of *attempts*. Each attempt builds the whole
//! fleet (one actor system per node + the master), registered with a
//! [`SystemGuard`] so every exit path tears it down, and waits on a
//! select loop for the coordinator's report, a failure escalation, or a
//! watchdog stall. A failed attempt rolls the cluster back to the last
//! manifest barrier ([`crate::recovery::rollback_cluster`]) — reopening
//! the dead node's on-disk state when a specific node crashed — and
//! retries with exponential backoff, up to
//! [`ClusterConfig::max_node_retries`] times.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use actor::System;
use gpsa::{clear_flag, is_flagged, GraphMeta, Termination, ValueFile, VertexProgram, VertexValue};
use gpsa_graph::{preprocess, DiskCsr, Edge, EdgeList};

use crate::actors::{
    Coordinator, CoordinatorMsg, CoordinatorReport, DistComputer, DistDispatcher, DistRouter,
};
use crate::manifest::ClusterManifest;
use crate::recovery::{rollback_cluster, Failure, NodeShard, SharedStats, SystemGuard};
use crate::traffic::TrafficMatrix;

/// Typed failures from [`Cluster::run`].
#[derive(Debug)]
pub enum ClusterError {
    /// Filesystem / mapping failure.
    Io(std::io::Error),
    /// Inconsistent inputs or corrupt recovery state.
    Config(String),
    /// The run blew [`ClusterConfig::run_deadline`]; the fleet is
    /// abandoned (threads signalled, not joined) and the cause recorded.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
        /// What the cluster was doing when time ran out.
        cause: String,
    },
    /// The recovery loop exhausted its retry budget; each element is the
    /// cause of one failed attempt, in order.
    RetriesExhausted(Vec<String>),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster I/O error: {e}"),
            ClusterError::Config(m) => write!(f, "cluster configuration error: {m}"),
            ClusterError::DeadlineExceeded { deadline, cause } => {
                write!(f, "cluster run exceeded its {deadline:?} deadline: {cause}")
            }
            ClusterError::RetriesExhausted(causes) => write!(
                f,
                "cluster recovery gave up after {} failed attempt(s): [{}]",
                causes.len(),
                causes.join("; ")
            ),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

impl From<gpsa::ValueFileError> for ClusterError {
    fn from(e: gpsa::ValueFileError) -> Self {
        match e {
            gpsa::ValueFileError::Io(e) => ClusterError::Io(e),
            other => ClusterError::Config(other.to_string()),
        }
    }
}

impl From<ClusterError> for std::io::Error {
    fn from(e: ClusterError) -> Self {
        match e {
            ClusterError::Io(e) => e,
            other => std::io::Error::other(other.to_string()),
        }
    }
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated nodes (each gets its own actor system and
    /// state shard).
    pub n_nodes: usize,
    /// Dispatch actors per node.
    pub dispatchers_per_node: usize,
    /// Compute actors per node.
    pub computers_per_node: usize,
    /// Worker threads per node system.
    pub workers_per_node: usize,
    /// Stop condition.
    pub termination: Termination,
    /// Scratch directory (per-node CSR fragments + value shards + the
    /// cluster manifest).
    pub work_dir: PathBuf,
    /// Dispatcher batch size.
    pub msg_batch: usize,
    /// Hard wall-clock budget for the whole run, recovery included. A
    /// run that is still incomplete when it expires fails fast with
    /// [`ClusterError::DeadlineExceeded`] instead of parking the caller.
    pub run_deadline: Duration,
    /// Per-superstep progress watchdog: if no superstep *starts* within
    /// this window, the attempt is declared wedged, the fleet abandoned,
    /// and the cluster rolled back. Must be set well above the
    /// worst-case superstep time — abandoned workers may still run actor
    /// code briefly. `None` disables the watchdog (failures are then
    /// detected only by escalation or the run deadline).
    pub superstep_deadline: Option<Duration>,
    /// Recovery attempts before [`ClusterError::RetriesExhausted`].
    pub max_node_retries: u32,
    /// Fsync barrier commits (each shard's value pages before its
    /// header, the manifest record after all shards).
    pub durable: bool,
    /// Distributed chaos schedule (node kills, computer panics, batch
    /// drops/delays, torn manifests — see `gpsa::fault::FaultSpec`).
    #[cfg(feature = "chaos")]
    pub fault_plan: Option<Arc<gpsa::fault::FaultPlan>>,
}

impl ClusterConfig {
    /// A small cluster suitable for tests: 2 workers and 2+2 actors per
    /// node.
    pub fn new<P: Into<PathBuf>>(n_nodes: usize, work_dir: P) -> Self {
        ClusterConfig {
            n_nodes: n_nodes.max(1),
            dispatchers_per_node: 2,
            computers_per_node: 2,
            workers_per_node: 2,
            termination: Termination::Quiescence {
                max_supersteps: 10_000,
            },
            work_dir: work_dir.into(),
            msg_batch: 1024,
            run_deadline: Duration::from_secs(4 * 3600),
            superstep_deadline: None,
            max_node_retries: 3,
            durable: false,
            #[cfg(feature = "chaos")]
            fault_plan: None,
        }
    }

    /// Builder-style: set the termination mode.
    pub fn with_termination(mut self, t: Termination) -> Self {
        self.termination = t;
        self
    }

    /// Builder-style: set the whole-run wall-clock deadline.
    pub fn with_run_deadline(mut self, d: Duration) -> Self {
        self.run_deadline = d;
        self
    }

    /// Builder-style: arm the per-superstep progress watchdog.
    pub fn with_superstep_deadline(mut self, d: Duration) -> Self {
        self.superstep_deadline = Some(d);
        self
    }

    /// Builder-style: set the recovery retry budget.
    pub fn with_max_node_retries(mut self, n: u32) -> Self {
        self.max_node_retries = n;
        self
    }

    /// Builder-style: fsync barrier commits.
    pub fn with_durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    /// Builder-style: install a distributed chaos schedule.
    #[cfg(feature = "chaos")]
    pub fn with_fault_plan(mut self, plan: Arc<gpsa::fault::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistReport<V> {
    /// Final vertex values, stitched across node shards, indexed by
    /// global id.
    pub values: Vec<V>,
    /// Supersteps committed (each counted once, however many times a
    /// fault forced it to re-run).
    pub supersteps: u64,
    /// Wall time per committed superstep (barrier to barrier, excluding
    /// the commit itself).
    pub step_times: Vec<Duration>,
    /// Wall time of each barrier's cluster commit (per-node value-file
    /// commits + the manifest append) — the measurable cost of the
    /// paper's "free checkpoint" claim.
    pub commit_times: Vec<Duration>,
    /// Vertices activated per superstep (cluster-wide).
    pub activated: Vec<u64>,
    /// Convergence deltas per superstep.
    pub deltas: Vec<f64>,
    /// Messages folded cluster-wide.
    pub messages: u64,
    /// Node-to-node message counts; off-diagonal = simulated network.
    pub traffic: Arc<TrafficMatrix>,
    /// Simulated node restarts (a crashed node's CSR fragment and value
    /// shard reopened from disk).
    pub node_restarts: u64,
    /// Supersteps whose work was discarded by rollbacks (started but not
    /// cluster-committed when their attempt died).
    pub supersteps_rolled_back: u64,
    /// Cause of each failed attempt, in order; empty for a fault-free
    /// run.
    pub retry_causes: Vec<String>,
}

/// A simulated GPSA cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
}

enum Outcome {
    Done(u32),
    Failed { dead: Option<usize>, cause: String },
    Wedged(String),
}

impl Cluster {
    /// Create a cluster with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Cluster { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Run `program` over `edges` across the simulated cluster,
    /// surviving node and actor failure at superstep granularity.
    pub fn run<P: VertexProgram>(
        &self,
        edges: &EdgeList,
        program: P,
    ) -> Result<DistReport<P::Value>, ClusterError> {
        let t0 = Instant::now();
        let cfg = &self.config;
        std::fs::create_dir_all(&cfg.work_dir)?;
        let n = edges.n_vertices;
        let n_nodes = cfg.n_nodes.min(n.max(1));
        let router = Arc::new(DistRouter {
            n_nodes,
            per_node: n.div_ceil(n_nodes).max(1),
            computers_per_node: cfg.computers_per_node.max(1),
        });
        let meta = GraphMeta {
            n_vertices: n as u64,
            n_edges: edges.len() as u64,
        };
        let program = Arc::new(program);
        let traffic = Arc::new(TrafficMatrix::new(n_nodes));

        // Attempt-invariant state: per-node shards (CSR fragment of this
        // node's out-edges + value shard over its vertex range) and the
        // cluster manifest.
        let mut shards: Vec<NodeShard> = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            let range = router.node_range(node, n);
            let frag_edges: Vec<Edge> = edges
                .edges
                .iter()
                .copied()
                .filter(|e| range.contains(&e.src))
                .collect();
            let frag = EdgeList::with_vertices(frag_edges, n);
            let csr_path = cfg.work_dir.join(format!("node{node}.gcsr"));
            preprocess::edges_to_csr(frag, &csr_path, &preprocess::PreprocessOptions::default())?;
            let graph = Arc::new(DiskCsr::open(&csr_path)?);

            let vf_path = cfg.work_dir.join(format!("node{node}.gval"));
            let p = program.clone();
            let m = meta;
            let values = Arc::new(ValueFile::create_ranged(&vf_path, range, |v| {
                p.init(v, &m)
            })?);
            shards.push(NodeShard {
                graph,
                values,
                csr_path,
                vf_path,
            });
        }
        #[cfg(feature = "chaos")]
        for shard in &shards {
            shard.values.set_fault_plan(cfg.fault_plan.clone());
        }
        let manifest_path = cfg.work_dir.join("cluster.gman");
        let manifest = Arc::new(ClusterManifest::create(&manifest_path, n_nodes)?);
        let stats = Arc::new(Mutex::new(SharedStats::default()));
        // Bumped whenever a fleet is given up on; zombie workers from
        // abandoned attempts check it and stand down (see
        // `DistDispatcher::epoch`).
        let epoch = Arc::new(AtomicU64::new(0));

        let mut resume_superstep = 0u64;
        let mut dispatch_col = 0u32;
        let mut retry_causes: Vec<String> = Vec::new();
        let mut node_restarts = 0u64;
        let mut supersteps_rolled_back = 0u64;

        let final_col = 'attempts: loop {
            let my_epoch = epoch.load(Ordering::Relaxed);
            let mut guard = SystemGuard::new();
            // Failure escalations arrive from dying worker threads,
            // tagged with the node they came from.
            let (failure_tx, failure_rx) = crossbeam_channel::bounded::<Failure>(64);
            let mut node_systems: Vec<System> = Vec::with_capacity(n_nodes);
            for node in 0..n_nodes {
                let sys = System::builder()
                    .workers(cfg.workers_per_node)
                    .name(format!("node{node}"))
                    .build();
                let tx = failure_tx.clone();
                sys.set_failure_handler(move |ev| {
                    let detail = ev
                        .detail
                        .as_deref()
                        .map(|d| format!(": {d}"))
                        .unwrap_or_default();
                    let _ = tx.try_send(Failure::Node {
                        node,
                        cause: format!("node {node}: {} died{detail}", ev.actor),
                    });
                });
                guard.push(sys.clone());
                node_systems.push(sys);
            }
            // The coordinator lives on a dedicated "master" system.
            let master = System::builder().workers(1).name("gpsa-master").build();
            let tx = failure_tx.clone();
            master.set_failure_handler(move |ev| {
                let detail = ev
                    .detail
                    .as_deref()
                    .map(|d| format!(": {d}"))
                    .unwrap_or_default();
                let _ = tx.try_send(Failure::Master {
                    cause: format!("master: {} died{detail}", ev.actor),
                });
            });
            guard.push(master.clone());

            let progress = Arc::new(AtomicU64::new(resume_superstep));
            let (report_tx, report_rx) = crossbeam_channel::bounded::<CoordinatorReport>(1);
            let coordinator = master.spawn(Coordinator::<P> {
                value_files: shards.iter().map(|s| s.values.clone()).collect(),
                termination: cfg.termination,
                report_tx,
                dispatchers: Vec::new(),
                computers: Vec::new(),
                superstep: resume_superstep,
                dispatch_col,
                pending_dispatch: 0,
                pending_compute: 0,
                step_started: None,
                step_activated: 0,
                step_delta: 0.0,
                step_messages: 0,
                durable: cfg.durable,
                manifest: manifest.clone(),
                stats: stats.clone(),
                progress: progress.clone(),
                epoch: epoch.clone(),
                my_epoch,
                #[cfg(feature = "chaos")]
                fault: cfg.fault_plan.clone(),
            });

            // Compute actors: global list ordered node-major (the
            // router's index space).
            let mut computers = Vec::with_capacity(n_nodes * cfg.computers_per_node);
            for node in 0..n_nodes {
                let range = router.node_range(node, n);
                for slot in 0..cfg.computers_per_node {
                    let owned: Vec<u32> = if program.always_dispatch() {
                        range
                            .clone()
                            .filter(|&v| {
                                router.computer_of_vertex(v) % cfg.computers_per_node == slot
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    computers.push(node_systems[node].spawn(DistComputer {
                        node,
                        program: program.clone(),
                        values: shards[node].values.clone(),
                        meta,
                        coordinator: coordinator.clone(),
                        dirty: Vec::new(),
                        owned,
                        messages: 0,
                        epoch: epoch.clone(),
                        my_epoch,
                        #[cfg(feature = "chaos")]
                        fault: cfg.fault_plan.clone(),
                    }));
                }
            }

            // Dispatch actors: each node splits its own range uniformly.
            let mut dispatchers = Vec::with_capacity(n_nodes * cfg.dispatchers_per_node);
            for node in 0..n_nodes {
                let range = router.node_range(node, n);
                let width = (range.end - range.start) as usize;
                let per = width.div_ceil(cfg.dispatchers_per_node.max(1)).max(1);
                for d in 0..cfg.dispatchers_per_node {
                    let lo = (range.start as usize + d * per).min(range.end as usize) as u32;
                    let hi = (lo as usize + per).min(range.end as usize) as u32;
                    dispatchers.push(node_systems[node].spawn(DistDispatcher {
                        node,
                        program: program.clone(),
                        graph: shards[node].graph.clone(),
                        values: shards[node].values.clone(),
                        meta,
                        interval: lo..hi,
                        router: router.clone(),
                        computers: computers.clone(),
                        coordinator: coordinator.clone(),
                        traffic: traffic.clone(),
                        buffers: vec![Vec::new(); computers.len()],
                        msg_batch: cfg.msg_batch.max(1),
                        always_dispatch: program.always_dispatch(),
                        combine: program.combines(),
                        superstep: resume_superstep,
                        epoch: epoch.clone(),
                        my_epoch,
                        #[cfg(feature = "chaos")]
                        fault: cfg.fault_plan.clone(),
                    }));
                }
            }

            let wired = coordinator
                .send(CoordinatorMsg::Wire {
                    dispatchers,
                    computers,
                })
                .is_ok();

            let outcome = if !wired {
                Outcome::Failed {
                    dead: None,
                    cause: "coordinator died before wiring".into(),
                }
            } else {
                let mut last_progress = progress.load(Ordering::Relaxed);
                let mut last_advance = Instant::now();
                'wait: loop {
                    // Checked at loop entry, not just on the idle tick:
                    // a fast release-mode run can finish inside one tick
                    // window, and an expired deadline must still win
                    // over a ready report.
                    if t0.elapsed() > cfg.run_deadline {
                        // Workers may be wedged; joining could hang the
                        // caller past the deadline it just asked us to
                        // respect.
                        epoch.fetch_add(1, Ordering::Relaxed);
                        guard.wedge();
                        return Err(ClusterError::DeadlineExceeded {
                            deadline: cfg.run_deadline,
                            cause: format!(
                                "{} superstep(s) committed, {} recovery attempt(s) spent",
                                stats.lock().map(|s| s.steps_run).unwrap_or(0),
                                retry_causes.len(),
                            ),
                        });
                    }
                    crossbeam_channel::select! {
                        recv(report_rx) -> r => match r {
                            Ok(CoordinatorReport { final_dispatch_col }) => {
                                break 'wait Outcome::Done(final_dispatch_col)
                            }
                            Err(_) => {
                                // A dying coordinator drops its report
                                // channel a hair before its FailureEvent
                                // lands; give the escalation a beat and
                                // prefer its richer cause.
                                break 'wait match failure_rx
                                    .recv_timeout(Duration::from_millis(200))
                                {
                                    Ok(f) => {
                                        let (dead, cause) = f.split();
                                        Outcome::Failed { dead, cause }
                                    }
                                    Err(_) => Outcome::Failed {
                                        dead: None,
                                        cause: "coordinator terminated without reporting".into(),
                                    },
                                };
                            }
                        },
                        recv(failure_rx) -> f => break 'wait match f {
                            Ok(f) => {
                                let (dead, cause) = Failure::split(f);
                                Outcome::Failed { dead, cause }
                            }
                            Err(_) => Outcome::Failed {
                                dead: None,
                                cause: "failure channel closed".into(),
                            },
                        },
                        default(Duration::from_millis(20)) => {
                            if let Some(deadline) = cfg.superstep_deadline {
                                let p = progress.load(Ordering::Relaxed);
                                if p != last_progress {
                                    last_progress = p;
                                    last_advance = Instant::now();
                                } else if last_advance.elapsed() >= deadline {
                                    break 'wait Outcome::Wedged(format!(
                                        "watchdog: no superstep progress within {deadline:?}",
                                    ));
                                }
                            }
                        },
                    }
                }
            };

            let (dead, cause) = match outcome {
                Outcome::Done(col) => {
                    drop(guard); // joined shutdown of every node + master
                    break 'attempts col;
                }
                Outcome::Failed { dead, cause } => {
                    // The dead actor's thread already unwound and the
                    // rest of the fleet is responsive: a joining
                    // shutdown is safe and leaves no thread touching the
                    // shards.
                    drop(guard);
                    epoch.fetch_add(1, Ordering::Relaxed);
                    (dead, cause)
                }
                Outcome::Wedged(cause) => {
                    // Fence zombies *before* signalling: a worker stuck
                    // in a long stall re-checks the epoch when it wakes
                    // and stands down instead of mutating shards the
                    // resumed fleet owns.
                    epoch.fetch_add(1, Ordering::Relaxed);
                    guard.wedge();
                    drop(guard);
                    (None, cause)
                }
            };

            retry_causes.push(cause);
            if retry_causes.len() as u32 > cfg.max_node_retries {
                return Err(ClusterError::RetriesExhausted(retry_causes));
            }
            // Exponential backoff: 10ms, 20ms, ... capped at 640ms. Also
            // grace for in-flight zombie handlers to drain.
            let shift = (retry_causes.len() as u32 - 1).min(6);
            std::thread::sleep(Duration::from_millis(10u64 << shift));

            // Roll the whole cluster back to the last manifest barrier,
            // restarting the dead node (fresh mappings from disk) if one
            // crashed.
            let point = rollback_cluster(&mut shards, &manifest_path, dead)?;
            #[cfg(feature = "chaos")]
            for shard in &shards {
                shard.values.set_fault_plan(cfg.fault_plan.clone());
            }
            node_restarts += point.reopened;
            supersteps_rolled_back += progress
                .load(Ordering::Relaxed)
                .saturating_sub(point.resume);
            resume_superstep = point.resume;
            dispatch_col = point.dispatch_col;
        };

        // Stitch the shards into one global value vector.
        let fresh = final_col;
        let old = 1 - fresh;
        let mut values = Vec::with_capacity(n);
        for shard in &shards {
            let vf = &shard.values;
            for v in vf.range() {
                let f_bits = vf.load(fresh, v);
                let f_val = P::Value::from_bits(clear_flag(f_bits));
                values.push(if !is_flagged(f_bits) {
                    f_val
                } else {
                    let o_val = P::Value::from_bits(clear_flag(vf.load(old, v)));
                    program.freshest(o_val, f_val)
                });
            }
        }

        let stats = {
            let mut s = stats.lock().expect("stats lock poisoned");
            std::mem::take(&mut *s)
        };
        Ok(DistReport {
            values,
            supersteps: stats.steps_run,
            step_times: stats.step_times,
            commit_times: stats.commit_times,
            activated: stats.activated,
            deltas: stats.deltas,
            messages: stats.messages,
            traffic,
            node_restarts,
            supersteps_rolled_back,
            retry_causes,
        })
    }
}
