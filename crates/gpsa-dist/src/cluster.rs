//! Cluster assembly and the blocking run entry point.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use actor::System;
use gpsa::{clear_flag, is_flagged, GraphMeta, Termination, ValueFile, VertexProgram, VertexValue};
use gpsa_graph::{preprocess, DiskCsr, Edge, EdgeList};

use crate::actors::{Coordinator, CoordinatorMsg, DistComputer, DistDispatcher, DistRouter};
use crate::traffic::TrafficMatrix;

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated nodes (each gets its own actor system and
    /// state shard).
    pub n_nodes: usize,
    /// Dispatch actors per node.
    pub dispatchers_per_node: usize,
    /// Compute actors per node.
    pub computers_per_node: usize,
    /// Worker threads per node system.
    pub workers_per_node: usize,
    /// Stop condition.
    pub termination: Termination,
    /// Scratch directory (per-node CSR fragments + value shards).
    pub work_dir: PathBuf,
    /// Dispatcher batch size.
    pub msg_batch: usize,
}

impl ClusterConfig {
    /// A small cluster suitable for tests: 2 workers and 2+2 actors per
    /// node.
    pub fn new<P: Into<PathBuf>>(n_nodes: usize, work_dir: P) -> Self {
        ClusterConfig {
            n_nodes: n_nodes.max(1),
            dispatchers_per_node: 2,
            computers_per_node: 2,
            workers_per_node: 2,
            termination: Termination::Quiescence {
                max_supersteps: 10_000,
            },
            work_dir: work_dir.into(),
            msg_batch: 1024,
        }
    }

    /// Builder-style: set the termination mode.
    pub fn with_termination(mut self, t: Termination) -> Self {
        self.termination = t;
        self
    }
}

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistReport<V> {
    /// Final vertex values, stitched across node shards, indexed by
    /// global id.
    pub values: Vec<V>,
    /// Supersteps executed.
    pub supersteps: u64,
    /// Wall time per superstep (global barrier to barrier).
    pub step_times: Vec<Duration>,
    /// Vertices activated per superstep (cluster-wide).
    pub activated: Vec<u64>,
    /// Convergence deltas per superstep.
    pub deltas: Vec<f64>,
    /// Messages folded cluster-wide.
    pub messages: u64,
    /// Node-to-node message counts; off-diagonal = simulated network.
    pub traffic: Arc<TrafficMatrix>,
}

/// A simulated GPSA cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
}

impl Cluster {
    /// Create a cluster with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Cluster { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Run `program` over `edges` across the simulated cluster.
    pub fn run<P: VertexProgram>(
        &self,
        edges: &EdgeList,
        program: P,
    ) -> std::io::Result<DistReport<P::Value>> {
        let cfg = &self.config;
        std::fs::create_dir_all(&cfg.work_dir)?;
        let n = edges.n_vertices;
        let n_nodes = cfg.n_nodes.min(n.max(1));
        let router = Arc::new(DistRouter {
            n_nodes,
            per_node: n.div_ceil(n_nodes).max(1),
            computers_per_node: cfg.computers_per_node.max(1),
        });
        let meta = GraphMeta {
            n_vertices: n as u64,
            n_edges: edges.len() as u64,
        };
        let program = Arc::new(program);
        let traffic = Arc::new(TrafficMatrix::new(n_nodes));

        // Per-node state: CSR fragment (this node's out-edges) + value
        // shard over its vertex range.
        let mut node_graphs: Vec<Arc<DiskCsr>> = Vec::with_capacity(n_nodes);
        let mut node_values: Vec<Arc<ValueFile>> = Vec::with_capacity(n_nodes);
        let mut node_systems: Vec<System> = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            let range = router.node_range(node, n);
            let frag_edges: Vec<Edge> = edges
                .edges
                .iter()
                .copied()
                .filter(|e| range.contains(&e.src))
                .collect();
            let frag = EdgeList::with_vertices(frag_edges, n);
            let frag_path = cfg.work_dir.join(format!("node{node}.gcsr"));
            preprocess::edges_to_csr(frag, &frag_path, &preprocess::PreprocessOptions::default())?;
            node_graphs.push(Arc::new(DiskCsr::open(&frag_path)?));

            let vf_path = cfg.work_dir.join(format!("node{node}.gval"));
            let p = program.clone();
            let m = meta;
            node_values.push(Arc::new(ValueFile::create_ranged(&vf_path, range, |v| {
                p.init(v, &m)
            })?));

            node_systems.push(
                System::builder()
                    .workers(cfg.workers_per_node)
                    .name(format!("node{node}"))
                    .build(),
            );
        }

        // The coordinator lives on a dedicated "master" system.
        let master = System::builder().workers(1).name("gpsa-master").build();
        let (report_tx, report_rx) = crossbeam_channel::bounded(1);
        let coordinator = master.spawn(Coordinator::<P> {
            value_files: node_values.clone(),
            termination: cfg.termination,
            report_tx,
            dispatchers: Vec::new(),
            computers: Vec::new(),
            superstep: 0,
            dispatch_col: 0,
            pending_dispatch: 0,
            pending_compute: 0,
            step_started: None,
            step_times: Vec::new(),
            activated: Vec::new(),
            deltas: Vec::new(),
            messages: 0,
            step_activated: 0,
            step_delta: 0.0,
            steps_run: 0,
        });

        // Compute actors: global list ordered node-major (the router's
        // index space).
        let mut computers = Vec::with_capacity(n_nodes * cfg.computers_per_node);
        for node in 0..n_nodes {
            let range = router.node_range(node, n);
            for slot in 0..cfg.computers_per_node {
                let owned: Vec<u32> = if program.always_dispatch() {
                    range
                        .clone()
                        .filter(|&v| router.computer_of_vertex(v) % cfg.computers_per_node == slot)
                        .collect()
                } else {
                    Vec::new()
                };
                computers.push(node_systems[node].spawn(DistComputer {
                    program: program.clone(),
                    values: node_values[node].clone(),
                    meta,
                    coordinator: coordinator.clone(),
                    dirty: Vec::new(),
                    owned,
                    messages: 0,
                }));
            }
        }

        // Dispatch actors: each node splits its own range uniformly.
        let mut dispatchers = Vec::with_capacity(n_nodes * cfg.dispatchers_per_node);
        for node in 0..n_nodes {
            let range = router.node_range(node, n);
            let width = (range.end - range.start) as usize;
            let per = width.div_ceil(cfg.dispatchers_per_node.max(1)).max(1);
            for d in 0..cfg.dispatchers_per_node {
                let lo = (range.start as usize + d * per).min(range.end as usize) as u32;
                let hi = (lo as usize + per).min(range.end as usize) as u32;
                dispatchers.push(node_systems[node].spawn(DistDispatcher {
                    node,
                    program: program.clone(),
                    graph: node_graphs[node].clone(),
                    values: node_values[node].clone(),
                    meta,
                    interval: lo..hi,
                    router: router.clone(),
                    computers: computers.clone(),
                    coordinator: coordinator.clone(),
                    traffic: traffic.clone(),
                    buffers: vec![Vec::new(); computers.len()],
                    msg_batch: cfg.msg_batch.max(1),
                    always_dispatch: program.always_dispatch(),
                    combine: program.combines(),
                }));
            }
        }

        coordinator
            .send(CoordinatorMsg::Wire {
                dispatchers,
                computers,
            })
            .map_err(|_| std::io::Error::other("coordinator died before wiring"))?;

        let report = report_rx
            .recv_timeout(Duration::from_secs(4 * 3600))
            .map_err(|_| std::io::Error::other("distributed run did not complete"))?;
        for sys in &node_systems {
            sys.shutdown();
        }
        master.shutdown();

        // Stitch the shards into one global value vector.
        let fresh = report.final_dispatch_col;
        let old = 1 - fresh;
        let mut values = Vec::with_capacity(n);
        for vf in node_values.iter().take(n_nodes) {
            for v in vf.range() {
                let f_bits = vf.load(fresh, v);
                let f_val = P::Value::from_bits(clear_flag(f_bits));
                values.push(if !is_flagged(f_bits) {
                    f_val
                } else {
                    let o_val = P::Value::from_bits(clear_flag(vf.load(old, v)));
                    program.freshest(o_val, f_val)
                });
            }
        }

        Ok(DistReport {
            values,
            supersteps: report.supersteps,
            step_times: report.step_times,
            activated: report.activated,
            deltas: report.deltas,
            messages: report.messages,
            traffic,
        })
    }
}
