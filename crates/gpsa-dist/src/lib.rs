#![warn(missing_docs)]

//! Distributed-GPSA simulation.
//!
//! The paper's motivation (§III) claims the actor model makes GPSA
//! "directly applicable to distributed systems": actors give location
//! transparency, so the same dispatch/compute protocol should span
//! machines. This crate demonstrates that on one machine by simulating a
//! cluster:
//!
//! * vertices are range-partitioned across `N` **nodes**;
//! * every node runs **its own actor [`actor::System`]** (its own worker
//!   threads — no shared scheduler), holds its own mmap'ed
//!   [`gpsa::ValueFile`] shard and its own CSR fragment (the edges
//!   whose *source* it owns);
//! * dispatch actors route messages to the compute actor owning the
//!   destination — which may live on another node's system. Actor
//!   addresses are location-transparent, so the engine protocol is
//!   byte-for-byte the one from `gpsa-core`; the only addition is a
//!   traffic matrix counting cross-node messages (what a real deployment
//!   would serialize onto the network);
//! * one global coordinator actor runs the superstep barrier across all
//!   nodes (paper Algorithm 1, unchanged).
//!
//! What this is *not*: a network stack. Message transport is in-process;
//! the simulation's outputs are correctness (distributed == single-node
//! results, tested) and the communication-volume consequences of
//! partitioning, not wire latency.
//!
//! # Fault tolerance
//!
//! Distributed runs survive node and actor failure at superstep
//! granularity. Every global barrier is a **cluster commit**: each
//! node's dual-slot [`gpsa::ValueFile`] commit, then one CRC'd record
//! appended to a cluster manifest (`cluster.gman`) naming the barrier
//! and every node's commit sequence. Because node commits strictly
//! precede the manifest append, recovery knows each shard is at most one
//! superstep ahead of the manifest — exactly the distance
//! [`gpsa::ValueFile::rollback_to`] can step back (the paper's
//! "dispatch column is a free checkpoint" observation, §IV-G, applied
//! cluster-wide). On a node crash, actor panic, or watchdog stall, the
//! run tears the fleet down, reopens the dead node's on-disk state,
//! rolls every shard back to the last manifest barrier, and resumes with
//! bounded exponential backoff — reported honestly in
//! [`DistReport::node_restarts`], [`DistReport::supersteps_rolled_back`]
//! and [`DistReport::retry_causes`]. The `chaos` feature adds scripted
//! distributed faults (node kills, mid-fold panics, dropped/delayed
//! inter-node batches, torn manifest tails) to drive all of this under
//! test.

mod actors;
mod cluster;
mod manifest;
mod recovery;
mod traffic;

pub use cluster::{Cluster, ClusterConfig, ClusterError, DistReport};
pub use traffic::{
    replay_against_server, synthetic_jobs, ReplayConfig, ReplayJob, ReplayReport, TrafficMatrix,
};
