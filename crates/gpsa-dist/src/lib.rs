#![warn(missing_docs)]

//! Distributed-GPSA simulation.
//!
//! The paper's motivation (§III) claims the actor model makes GPSA
//! "directly applicable to distributed systems": actors give location
//! transparency, so the same dispatch/compute protocol should span
//! machines. This crate demonstrates that on one machine by simulating a
//! cluster:
//!
//! * vertices are range-partitioned across `N` **nodes**;
//! * every node runs **its own actor [`actor::System`]** (its own worker
//!   threads — no shared scheduler), holds its own mmap'ed
//!   [`gpsa::ValueFile`] shard and its own CSR fragment (the edges
//!   whose *source* it owns);
//! * dispatch actors route messages to the compute actor owning the
//!   destination — which may live on another node's system. Actor
//!   addresses are location-transparent, so the engine protocol is
//!   byte-for-byte the one from `gpsa-core`; the only addition is a
//!   traffic matrix counting cross-node messages (what a real deployment
//!   would serialize onto the network);
//! * one global coordinator actor runs the superstep barrier across all
//!   nodes (paper Algorithm 1, unchanged).
//!
//! What this is *not*: a network stack. Message transport is in-process;
//! the simulation's outputs are correctness (distributed == single-node
//! results, tested) and the communication-volume consequences of
//! partitioning, not wire latency.

mod actors;
mod cluster;
mod traffic;

pub use cluster::{Cluster, ClusterConfig, DistReport};
pub use traffic::{
    replay_against_server, synthetic_jobs, ReplayConfig, ReplayJob, ReplayReport, TrafficMatrix,
};
