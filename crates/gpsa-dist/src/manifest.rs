//! The cluster barrier manifest: the cross-node commit authority.
//!
//! Each node's [`gpsa::ValueFile`] dual-slot header records what *that
//! shard* committed — but after a node failure the cluster needs one
//! answer to "which barrier did **every** node complete?". The manifest
//! is that answer: a tiny append-only file the coordinator extends once
//! per global barrier, *after* all per-node commits succeed, with a
//! fixed-size CRC'd record
//!
//! ```text
//! [superstep u64][next_dispatch_col u32][seq u64 × n_nodes][crc32 u32]
//! ```
//!
//! The per-node `seq` copies let recovery verify each shard actually
//! holds a commit at least as new as the barrier it is rolled back to
//! (a shard *behind* the manifest would mean the manifest lied — a bug,
//! reported as a typed error, never silently recomputed).
//!
//! Ordering gives the recovery invariant: node commits happen before the
//! manifest append, so when the manifest says barrier `m`, every shard
//! has committed `m` or `m + 1` — and one superstep is exactly how far
//! [`gpsa::ValueFile::rollback_to`] can step back. A torn tail (crash
//! mid-append) is detected by the CRC scan and truncated away by
//! [`ClusterManifest::repair`], the same discipline as the serve layer's
//! job journal.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

use gpsa::crc32;

const MAGIC: u32 = u32::from_le_bytes(*b"GMAN");
const VERSION: u32 = 1;
/// Fixed header: magic, version, n_nodes, reserved.
const HEADER_LEN: usize = 16;

/// One committed cluster barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BarrierRecord {
    /// The superstep every node committed.
    pub superstep: u64,
    /// Column the *next* superstep dispatches from.
    pub next_dispatch_col: u32,
    /// Each node's value-file commit sequence at this barrier.
    pub node_seqs: Vec<u64>,
}

impl BarrierRecord {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 8 * self.node_seqs.len());
        buf.extend_from_slice(&self.superstep.to_le_bytes());
        buf.extend_from_slice(&self.next_dispatch_col.to_le_bytes());
        for &s in &self.node_seqs {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    fn decode(bytes: &[u8], n_nodes: usize) -> Option<BarrierRecord> {
        let body = 12 + 8 * n_nodes;
        if bytes.len() != body + 4 {
            return None;
        }
        let stored = u32::from_le_bytes(bytes[body..].try_into().unwrap());
        if crc32(&bytes[..body]) != stored {
            return None;
        }
        let superstep = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let next_dispatch_col = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if next_dispatch_col > 1 {
            return None;
        }
        let node_seqs = (0..n_nodes)
            .map(|i| u64::from_le_bytes(bytes[12 + 8 * i..20 + 8 * i].try_into().unwrap()))
            .collect();
        Some(BarrierRecord {
            superstep,
            next_dispatch_col,
            node_seqs,
        })
    }
}

/// Append-side handle held by the coordinator (one per cluster run).
#[derive(Debug)]
pub(crate) struct ClusterManifest {
    file: Mutex<File>,
    n_nodes: usize,
}

impl ClusterManifest {
    fn record_len(n_nodes: usize) -> usize {
        16 + 8 * n_nodes
    }

    /// Create (truncating) a manifest for an `n_nodes` cluster.
    pub fn create(path: &Path, n_nodes: usize) -> std::io::Result<ClusterManifest> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&(n_nodes as u32).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(ClusterManifest {
            file: Mutex::new(file),
            n_nodes,
        })
    }

    /// Append one barrier record; with `durable` it is fdatasync'd. Call
    /// only after every node's value-file commit for this barrier
    /// succeeded — the ordering is the recovery invariant.
    pub fn append(&self, rec: &BarrierRecord, durable: bool) -> std::io::Result<()> {
        debug_assert_eq!(rec.node_seqs.len(), self.n_nodes);
        let mut f = self.file.lock().expect("manifest lock poisoned");
        f.seek(SeekFrom::End(0))?;
        f.write_all(&rec.encode())?;
        if durable {
            f.sync_data()?;
        }
        Ok(())
    }

    /// Chaos hook: write only the front half of the record — the torn
    /// tail a crash mid-append leaves behind.
    #[cfg(any(test, feature = "chaos"))]
    pub fn append_torn(&self, rec: &BarrierRecord) {
        let bytes = rec.encode();
        if let Ok(mut f) = self.file.lock() {
            let _ = f.seek(SeekFrom::End(0));
            let _ = f.write_all(&bytes[..bytes.len() / 2]);
            let _ = f.sync_data();
        }
    }

    /// Scan the manifest at `path`, truncate any torn tail in place, and
    /// return the last valid barrier (`None` if no barrier ever
    /// committed). Safe to run concurrently with an open append handle:
    /// appends seek to the (now shorter) end.
    pub fn repair(path: &Path) -> std::io::Result<Option<BarrierRecord>> {
        let mut f = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        if bytes.len() < HEADER_LEN {
            return Err(bad("cluster manifest shorter than its header"));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let n_nodes = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if magic != MAGIC {
            return Err(bad("not a GMAN cluster manifest"));
        }
        if version != VERSION {
            return Err(bad("unsupported cluster manifest version"));
        }
        let rec_len = Self::record_len(n_nodes);
        let mut at = HEADER_LEN;
        let mut last = None;
        while at + rec_len <= bytes.len() {
            match BarrierRecord::decode(&bytes[at..at + rec_len], n_nodes) {
                Some(r) => {
                    last = Some(r);
                    at += rec_len;
                }
                None => break,
            }
        }
        if at < bytes.len() {
            f.set_len(at as u64)?;
            f.sync_data()?;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-gman-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn rec(superstep: u64, col: u32, seqs: &[u64]) -> BarrierRecord {
        BarrierRecord {
            superstep,
            next_dispatch_col: col,
            node_seqs: seqs.to_vec(),
        }
    }

    #[test]
    fn append_then_repair_roundtrips_the_last_barrier() {
        let path = tmp("roundtrip.gman");
        let m = ClusterManifest::create(&path, 3).unwrap();
        assert_eq!(ClusterManifest::repair(&path).unwrap(), None);
        m.append(&rec(0, 1, &[2, 2, 2]), true).unwrap();
        m.append(&rec(1, 0, &[3, 3, 3]), false).unwrap();
        let last = ClusterManifest::repair(&path).unwrap().unwrap();
        assert_eq!(last, rec(1, 0, &[3, 3, 3]));
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let path = tmp("torn.gman");
        let m = ClusterManifest::create(&path, 2).unwrap();
        m.append(&rec(0, 1, &[2, 2]), false).unwrap();
        m.append_torn(&rec(1, 0, &[3, 3]));
        let len_torn = std::fs::metadata(&path).unwrap().len();
        // Repair drops the torn record, keeps barrier 0.
        let last = ClusterManifest::repair(&path).unwrap().unwrap();
        assert_eq!(last.superstep, 0);
        assert!(std::fs::metadata(&path).unwrap().len() < len_torn);
        // The original handle keeps appending at the repaired end; the
        // record framing stays aligned.
        m.append(&rec(1, 0, &[4, 4]), false).unwrap();
        let last = ClusterManifest::repair(&path).unwrap().unwrap();
        assert_eq!(last, rec(1, 0, &[4, 4]));
    }

    #[test]
    fn bitflip_invalidates_a_record() {
        let path = tmp("flip.gman");
        let m = ClusterManifest::create(&path, 1).unwrap();
        m.append(&rec(0, 1, &[2]), false).unwrap();
        m.append(&rec(1, 0, &[3]), false).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's seq field.
        let at = HEADER_LEN + ClusterManifest::record_len(1) + 13;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // The scan stops at the corrupt record; barrier 0 survives.
        let last = ClusterManifest::repair(&path).unwrap().unwrap();
        assert_eq!(last.superstep, 0);
    }

    #[test]
    fn bad_header_is_a_typed_error() {
        let path = tmp("badhdr.gman");
        std::fs::write(&path, b"nope").unwrap();
        assert!(ClusterManifest::repair(&path).is_err());
        let path2 = tmp("badmagic.gman");
        std::fs::write(&path2, vec![0u8; HEADER_LEN]).unwrap();
        assert!(ClusterManifest::repair(&path2).is_err());
    }
}
