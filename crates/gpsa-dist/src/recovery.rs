//! Cluster recovery machinery: failure attribution, the fleet teardown
//! guard, per-node shard handles, and the rollback-to-barrier step.
//!
//! The shape mirrors the single-node engine's self-healing loop
//! (`gpsa-core::engine`): one *attempt* spins up the whole fleet, a
//! select loop watches for the report, a failure escalation, or a
//! watchdog stall, and a failed attempt is torn down, rolled back to the
//! last committed barrier, and retried with exponential backoff. The
//! cluster-specific pieces live here: failures are attributed to a
//! *node* (so recovery can simulate that node's restart by reopening its
//! on-disk state), and rollback is driven by the cluster manifest — the
//! only authority on which barrier *every* node completed.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use actor::System;
use gpsa::ValueFile;
use gpsa_graph::DiskCsr;

use crate::cluster::ClusterError;
use crate::manifest::ClusterManifest;

/// What a failed attempt reports, attributed by origin so recovery knows
/// which node (if any) to restart.
#[derive(Debug)]
pub(crate) enum Failure {
    /// An actor on a node's system died; the node is considered crashed.
    Node {
        /// Index of the crashed node.
        node: usize,
        /// Human-readable cause (actor name + restart info).
        cause: String,
    },
    /// The coordinator's master system died (e.g. a failed commit or a
    /// torn manifest append escalated as a panic).
    Master {
        /// Human-readable cause.
        cause: String,
    },
}

impl Failure {
    /// `(dead node, cause)` — `None` when no specific node crashed.
    pub fn split(self) -> (Option<usize>, String) {
        match self {
            Failure::Node { node, cause } => (Some(node), cause),
            Failure::Master { cause } => (None, cause),
        }
    }
}

/// Per-superstep statistics that survive recovery attempts. The
/// coordinator appends one entry per barrier *after* the manifest append
/// succeeds, so a superstep that rolls back never double-counts: only
/// its successfully committed (re-)run lands here.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub steps_run: u64,
    pub step_times: Vec<Duration>,
    pub commit_times: Vec<Duration>,
    pub activated: Vec<u64>,
    pub deltas: Vec<f64>,
    pub messages: u64,
}

/// Shuts down every system it holds on drop, whatever path exits the
/// attempt — the fix for the old leak where an early `?` return skipped
/// `shutdown()` on already-built node systems.
///
/// Default teardown is a joined [`System::shutdown`] (safe when worker
/// threads are responsive). After [`SystemGuard::wedge`] the guard uses
/// [`System::abandon`] instead: a wedged worker cannot be joined without
/// hanging the caller, so its threads are signalled and leaked.
#[derive(Default)]
pub(crate) struct SystemGuard {
    systems: Vec<System>,
    wedged: bool,
}

impl SystemGuard {
    pub fn new() -> SystemGuard {
        SystemGuard::default()
    }

    /// Register a system for teardown. Call immediately after build so no
    /// early-exit path can leak it.
    pub fn push(&mut self, sys: System) {
        self.systems.push(sys);
    }

    /// Switch teardown to abandon (signal, don't join).
    pub fn wedge(&mut self) {
        self.wedged = true;
    }
}

impl Drop for SystemGuard {
    fn drop(&mut self) {
        for sys in &self.systems {
            if self.wedged {
                sys.abandon();
            } else {
                sys.shutdown();
            }
        }
    }
}

/// One node's attempt-invariant on-disk state: its CSR fragment and its
/// value-file shard, plus the paths needed to reopen both — the
/// simulation of a node restart.
pub(crate) struct NodeShard {
    pub graph: Arc<DiskCsr>,
    pub values: Arc<ValueFile>,
    pub csr_path: PathBuf,
    pub vf_path: PathBuf,
}

impl NodeShard {
    /// Simulated node restart: reopen fresh mappings from disk. The old
    /// `Arc`s are left to whoever still holds them.
    pub fn reopen(&mut self) -> Result<(), ClusterError> {
        self.graph = Arc::new(DiskCsr::open(&self.csr_path)?);
        self.values = Arc::new(ValueFile::open(&self.vf_path)?);
        Ok(())
    }
}

/// Where a recovered cluster resumes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RollbackPoint {
    /// First superstep of the resumed run.
    pub resume: u64,
    /// Column that superstep dispatches from.
    pub dispatch_col: u32,
    /// Nodes whose on-disk state was reopened (restart count).
    pub reopened: u64,
}

/// Roll the whole cluster back to the last manifest barrier.
///
/// Repairs the manifest (truncating any torn tail), reopens the dead
/// node's shard if one crashed, sanity-checks that no shard is *behind*
/// the barrier the manifest claims (the append ordering makes that
/// impossible unless state was corrupted out-of-band), and forces every
/// shard to the barrier via [`ValueFile::rollback_to`] — which also
/// rebuilds the conservative all-active frontier superset, so the
/// resumed superstep re-dispatches everything it might have missed.
pub(crate) fn rollback_cluster(
    shards: &mut [NodeShard],
    manifest_path: &Path,
    dead: Option<usize>,
) -> Result<RollbackPoint, ClusterError> {
    let rec = ClusterManifest::repair(manifest_path)?;
    let (committed, col) = match &rec {
        Some(r) => (Some(r.superstep), r.next_dispatch_col),
        None => (None, 0),
    };
    let mut reopened = 0;
    if let Some(node) = dead {
        shards[node].reopen()?;
        reopened = 1;
    }
    for (node, shard) in shards.iter().enumerate() {
        if let Some(r) = &rec {
            let h = shard.values.header();
            let reached = h.committed_superstep.is_some_and(|s| s >= r.superstep);
            if !reached || shard.values.commit_seq() < r.node_seqs[node] {
                return Err(ClusterError::Config(format!(
                    "node {node} shard is behind the cluster barrier \
                     (shard committed {:?} seq {}, manifest says superstep {} seq {})",
                    h.committed_superstep,
                    shard.values.commit_seq(),
                    r.superstep,
                    r.node_seqs[node],
                )));
            }
        }
        shard.values.rollback_to(committed, col);
    }
    Ok(RollbackPoint {
        resume: committed.map(|s| s + 1).unwrap_or(0),
        dispatch_col: col,
        reopened,
    })
}
