//! Cross-node traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `N×N` matrix of message counts: `count(from, to)` messages were
/// routed from a dispatcher on node `from` to a compute actor on node
/// `to`. Off-diagonal entries are what a real cluster would put on the
/// wire.
#[derive(Debug)]
pub struct TrafficMatrix {
    n: usize,
    cells: Vec<AtomicU64>,
}

impl TrafficMatrix {
    /// A zeroed `n × n` matrix.
    pub fn new(n: usize) -> Self {
        TrafficMatrix {
            n,
            cells: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Record `count` messages from node `from` to node `to`.
    #[inline]
    pub fn record(&self, from: usize, to: usize, count: u64) {
        self.cells[from * self.n + to].fetch_add(count, Ordering::Relaxed);
    }

    /// Messages from `from` to `to`.
    pub fn count(&self, from: usize, to: usize) -> u64 {
        self.cells[from * self.n + to].load(Ordering::Relaxed)
    }

    /// Total messages that stayed on their origin node.
    pub fn local(&self) -> u64 {
        (0..self.n).map(|i| self.count(i, i)).sum()
    }

    /// Total messages that crossed nodes (the simulated network volume).
    pub fn remote(&self) -> u64 {
        let mut sum = 0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    sum += self.count(i, j);
                }
            }
        }
        sum
    }

    /// All messages.
    pub fn total(&self) -> u64 {
        self.local() + self.remote()
    }

    /// Snapshot as a plain matrix.
    pub fn snapshot(&self) -> Vec<Vec<u64>> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.count(i, j)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_classifies() {
        let t = TrafficMatrix::new(3);
        t.record(0, 0, 5);
        t.record(0, 1, 7);
        t.record(2, 1, 1);
        t.record(1, 1, 2);
        assert_eq!(t.count(0, 1), 7);
        assert_eq!(t.local(), 7);
        assert_eq!(t.remote(), 8);
        assert_eq!(t.total(), 15);
        assert_eq!(t.snapshot()[2][1], 1);
        assert_eq!(t.n_nodes(), 3);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = std::sync::Arc::new(TrafficMatrix::new(2));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    t.record(0, 1, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.remote(), 40_000);
    }
}
