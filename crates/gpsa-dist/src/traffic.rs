//! Cross-node traffic accounting, plus a client-side traffic *generator*:
//! [`replay_against_server`] drives a synthetic job mix against a running
//! `gpsa-serve` instance and reports latency percentiles, throughput, and
//! the server's cache hit rate (the numbers `BENCH_serve.json` records).

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpsa_serve::{AlgorithmSpec, Client, ClientError, Priority, ServeError, SubmitRequest};

/// An `N×N` matrix of message counts: `count(from, to)` messages were
/// routed from a dispatcher on node `from` to a compute actor on node
/// `to`. Off-diagonal entries are what a real cluster would put on the
/// wire.
#[derive(Debug)]
pub struct TrafficMatrix {
    n: usize,
    cells: Vec<AtomicU64>,
}

impl TrafficMatrix {
    /// A zeroed `n × n` matrix.
    pub fn new(n: usize) -> Self {
        TrafficMatrix {
            n,
            cells: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Record `count` messages from node `from` to node `to`.
    #[inline]
    pub fn record(&self, from: usize, to: usize, count: u64) {
        self.cells[from * self.n + to].fetch_add(count, Ordering::Relaxed);
    }

    /// Messages from `from` to `to`.
    pub fn count(&self, from: usize, to: usize) -> u64 {
        self.cells[from * self.n + to].load(Ordering::Relaxed)
    }

    /// Total messages that stayed on their origin node.
    pub fn local(&self) -> u64 {
        (0..self.n).map(|i| self.count(i, i)).sum()
    }

    /// Total messages that crossed nodes (the simulated network volume).
    pub fn remote(&self) -> u64 {
        let mut sum = 0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    sum += self.count(i, j);
                }
            }
        }
        sum
    }

    /// All messages.
    pub fn total(&self) -> u64 {
        self.local() + self.remote()
    }

    /// Snapshot as a plain matrix.
    pub fn snapshot(&self) -> Vec<Vec<u64>> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.count(i, j)).collect())
            .collect()
    }
}

/// One job in a replay trace.
#[derive(Debug, Clone)]
pub struct ReplayJob {
    /// Which resident graph to hit.
    pub graph_id: String,
    /// What to run.
    pub algorithm: AlgorithmSpec,
    /// Queue class.
    pub priority: Priority,
}

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Client threads issuing jobs concurrently (each with its own
    /// connection).
    pub concurrency: usize,
    /// Per-job deadline forwarded to the server, if any.
    pub deadline: Option<Duration>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            concurrency: 4,
            deadline: None,
        }
    }
}

/// What a replay measured.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Jobs attempted.
    pub jobs_total: usize,
    /// Jobs answered with a result (fresh or cached).
    pub jobs_ok: usize,
    /// Jobs refused by admission control (`server_busy`).
    pub jobs_rejected: usize,
    /// Jobs that failed any other way (deadline, engine, transport).
    pub jobs_failed: usize,
    /// Median end-to-end submit latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile end-to-end submit latency, microseconds.
    pub p99_us: u64,
    /// Answers that were cache hits, as seen in the responses.
    pub cache_hits: usize,
    /// The server's lifetime cache hit rate after the replay.
    pub cache_hit_rate: f64,
    /// Wall time of the whole replay.
    pub elapsed: Duration,
}

impl ReplayReport {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.jobs_ok as f64 / secs
        }
    }

    /// Render the `BENCH_serve.json` document (hand-rolled, like every
    /// other BENCH emitter in the workspace).
    pub fn to_bench_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"serve_replay\",\n  \"jobs_total\": {},\n  \
             \"jobs_ok\": {},\n  \"jobs_rejected\": {},\n  \"jobs_failed\": {},\n  \
             \"p50_us\": {},\n  \"p99_us\": {},\n  \"jobs_per_sec\": {:.2},\n  \
             \"cache_hits\": {},\n  \"cache_hit_rate\": {:.4},\n  \"elapsed_ms\": {}\n}}\n",
            self.jobs_total,
            self.jobs_ok,
            self.jobs_rejected,
            self.jobs_failed,
            self.p50_us,
            self.p99_us,
            self.jobs_per_sec(),
            self.cache_hits,
            self.cache_hit_rate,
            self.elapsed.as_millis()
        )
    }
}

/// Deterministic synthetic job mix over `graph_ids` (xorshift64-seeded).
/// Roots are drawn from a small range on purpose so the trace contains
/// repeats — the cache hit rate is part of what the replay measures.
pub fn synthetic_jobs(graph_ids: &[String], n: usize, seed: u64) -> Vec<ReplayJob> {
    assert!(!graph_ids.is_empty(), "need at least one graph id");
    let mut state = seed.max(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let graph_id = graph_ids[(next() % graph_ids.len() as u64) as usize].clone();
            let root = (next() % 8) as u32;
            let algorithm = match next() % 4 {
                0 => AlgorithmSpec::PageRank {
                    damping: 0.85,
                    supersteps: 5,
                },
                1 => AlgorithmSpec::Bfs { root },
                2 => AlgorithmSpec::Cc,
                _ => AlgorithmSpec::Sssp { root },
            };
            let priority = if next() % 8 == 0 {
                Priority::High
            } else {
                Priority::Normal
            };
            ReplayJob {
                graph_id,
                algorithm,
                priority,
            }
        })
        .collect()
}

/// Drive `jobs` against the server at `addr` from
/// [`ReplayConfig::concurrency`] client threads and collect the
/// latency/throughput/cache profile. Jobs are claimed from a shared
/// cursor, so the trace order is preserved per claim but interleaving is
/// real. Graphs must already be registered.
pub fn replay_against_server(
    addr: SocketAddr,
    jobs: &[ReplayJob],
    config: &ReplayConfig,
) -> io::Result<ReplayReport> {
    let jobs = Arc::new(jobs.to_vec());
    let cursor = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..config.concurrency.max(1) {
        let (jobs, cursor, deadline) = (jobs.clone(), cursor.clone(), config.deadline);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr)?;
            // (latency_us of answered jobs, ok, rejected, failed, hits)
            let mut out = (Vec::new(), 0usize, 0usize, 0usize, 0usize);
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let mut req = SubmitRequest::new(job.graph_id.clone(), job.algorithm)
                    .with_priority(job.priority);
                if let Some(d) = deadline {
                    req = req.with_deadline(d);
                }
                let t = Instant::now();
                match client.submit(&req) {
                    Ok(resp) => {
                        out.0.push(t.elapsed().as_micros() as u64);
                        out.1 += 1;
                        if resp.cache_hit {
                            out.4 += 1;
                        }
                    }
                    Err(ClientError::Server(ServeError::ServerBusy(_))) => out.2 += 1,
                    Err(ClientError::Server(_)) => out.3 += 1,
                    Err(ClientError::Io(e)) => return Err(e),
                }
            }
            Ok(out)
        }));
    }
    let mut latencies = Vec::new();
    let (mut ok, mut rejected, mut failed, mut hits) = (0, 0, 0, 0);
    for h in handles {
        let (lat, o, r, f, c) = h
            .join()
            .map_err(|_| io::Error::other("replay worker panicked"))??;
        latencies.extend(lat);
        ok += o;
        rejected += r;
        failed += f;
        hits += c;
    }
    let elapsed = t0.elapsed();
    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[(latencies.len() - 1) * p / 100]
        }
    };
    let cache_hit_rate = Client::connect(addr)?
        .stats()
        .map(|s| s.cache_hit_rate())
        .unwrap_or(0.0);
    Ok(ReplayReport {
        jobs_total: jobs.len(),
        jobs_ok: ok,
        jobs_rejected: rejected,
        jobs_failed: failed,
        p50_us: pct(50),
        p99_us: pct(99),
        cache_hits: hits,
        cache_hit_rate,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_classifies() {
        let t = TrafficMatrix::new(3);
        t.record(0, 0, 5);
        t.record(0, 1, 7);
        t.record(2, 1, 1);
        t.record(1, 1, 2);
        assert_eq!(t.count(0, 1), 7);
        assert_eq!(t.local(), 7);
        assert_eq!(t.remote(), 8);
        assert_eq!(t.total(), 15);
        assert_eq!(t.snapshot()[2][1], 1);
        assert_eq!(t.n_nodes(), 3);
    }

    #[test]
    fn synthetic_jobs_are_deterministic_and_repeat_params() {
        let ids = vec!["a".to_string(), "b".to_string()];
        let x = synthetic_jobs(&ids, 64, 42);
        let y = synthetic_jobs(&ids, 64, 42);
        assert_eq!(x.len(), 64);
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(a.graph_id, b.graph_id);
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.priority, b.priority);
        }
        // Small parameter space guarantees repeated (graph, alg, params)
        // triples — the trace must be able to exercise the cache.
        let mut keys: Vec<String> = x
            .iter()
            .map(|j| {
                format!(
                    "{}|{}|{}",
                    j.graph_id,
                    j.algorithm.name(),
                    j.algorithm.canonical_params()
                )
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert!(keys.len() < 64, "no repeats in the synthetic trace");
        // A different seed produces a different trace.
        let z = synthetic_jobs(&ids, 64, 43);
        assert!(x
            .iter()
            .zip(&z)
            .any(|(a, b)| a.algorithm != b.algorithm || a.graph_id != b.graph_id));
    }

    #[test]
    fn bench_json_is_well_formed() {
        let r = ReplayReport {
            jobs_total: 10,
            jobs_ok: 8,
            jobs_rejected: 1,
            jobs_failed: 1,
            p50_us: 1200,
            p99_us: 9000,
            cache_hits: 3,
            cache_hit_rate: 0.375,
            elapsed: Duration::from_millis(500),
        };
        let j = r.to_bench_json();
        assert!(j.contains("\"bench\": \"serve_replay\""));
        assert!(j.contains("\"p99_us\": 9000"));
        assert!(j.contains("\"jobs_per_sec\": 16.00"));
        assert!((r.jobs_per_sec() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = std::sync::Arc::new(TrafficMatrix::new(2));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    t.record(0, 1, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.remote(), 40_000);
    }
}
