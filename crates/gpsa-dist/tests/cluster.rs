//! Distributed correctness: a simulated cluster must compute the same
//! answers as the single-node engine / sequential references, with sane
//! traffic accounting.

use gpsa::programs::{Bfs, ConnectedComponents, PageRank, UNREACHED};
use gpsa::Termination;
use gpsa_dist::{Cluster, ClusterConfig};
use gpsa_graph::{generate, EdgeList};
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-dist-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn ref_cc(el: &EdgeList) -> Vec<u32> {
    let csr = gpsa_graph::Csr::from_edge_list(el);
    let mut label: Vec<u32> = (0..el.n_vertices as u32).collect();
    loop {
        let mut changed = false;
        for v in 0..el.n_vertices as u32 {
            for &d in csr.neighbors(v) {
                if label[v as usize] < label[d as usize] {
                    label[d as usize] = label[v as usize];
                    changed = true;
                }
            }
        }
        if !changed {
            return label;
        }
    }
}

#[test]
fn cc_agrees_across_cluster_sizes() {
    let el = generate::symmetrize(&generate::rmat(
        600,
        3000,
        generate::RmatParams::default(),
        5,
    ));
    let expect = ref_cc(&el);
    for nodes in [1usize, 2, 3, 5] {
        let cluster = Cluster::new(ClusterConfig::new(nodes, workdir(&format!("cc-{nodes}"))));
        let report = cluster.run(&el, ConnectedComponents).unwrap();
        assert_eq!(report.values, expect, "{nodes} nodes");
        assert_eq!(report.traffic.n_nodes(), nodes.min(el.n_vertices));
        assert_eq!(*report.activated.last().unwrap(), 0, "quiesced");
    }
}

#[test]
fn bfs_crosses_node_boundaries() {
    // Chain spanning all nodes: the frontier must hop across every
    // node-to-node link.
    let n = 40usize;
    let el = generate::chain(n);
    let cluster = Cluster::new(ClusterConfig::new(4, workdir("bfs-chain")));
    let report = cluster.run(&el, Bfs { root: 0 }).unwrap();
    let expect: Vec<u32> = (0..n as u32).collect();
    assert_eq!(report.values, expect);
    // Node i forwards exactly one chain edge to node i+1.
    assert_eq!(report.traffic.remote(), 3, "three boundary crossings");
    assert_eq!(report.traffic.local() + 3, n as u64 - 1);
}

#[test]
fn pagerank_matches_single_node_trajectory() {
    let el = generate::symmetrize(&generate::erdos_renyi(300, 1500, 9));
    let steps = 6u64;
    // Sequential BSP oracle (same trait, same trajectory).
    let expect = gpsa::SyncEngine::new(Termination::Supersteps(steps))
        .run(&el, PageRank::default())
        .values;
    let cluster = Cluster::new(
        ClusterConfig::new(3, workdir("pr")).with_termination(Termination::Supersteps(steps)),
    );
    let report = cluster.run(&el, PageRank::default()).unwrap();
    assert_eq!(report.supersteps, steps);
    let max_diff = report
        .values
        .iter()
        .zip(&expect)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_diff < 1e-6, "distributed PR diverged: {max_diff}");
}

#[test]
fn traffic_depends_on_partition_locality() {
    // Two dense clusters aligned with the node split: almost all traffic
    // stays local. The same graph relabeled to interleave the clusters
    // across nodes forces most traffic remote.
    let k = 200u32;
    let mut aligned = Vec::new();
    let mut interleaved = Vec::new();
    let cluster_edges = generate::symmetrize(&generate::erdos_renyi(k as usize, 800, 2)).edges;
    for e in &cluster_edges {
        // Cluster A: ids [0, k); cluster B: ids [k, 2k).
        aligned.push(*e);
        aligned.push(gpsa_graph::Edge::new(e.src + k, e.dst + k));
        // Interleaved labeling: cluster A -> even ids, B -> odd ids.
        interleaved.push(gpsa_graph::Edge::new(e.src * 2, e.dst * 2));
        interleaved.push(gpsa_graph::Edge::new(e.src * 2 + 1, e.dst * 2 + 1));
    }
    let aligned = EdgeList::with_vertices(aligned, 2 * k as usize);
    let interleaved = EdgeList::with_vertices(interleaved, 2 * k as usize);

    let run = |tag: &str, el: &EdgeList| {
        let cluster = Cluster::new(ClusterConfig::new(2, workdir(tag)));
        cluster.run(el, ConnectedComponents).unwrap()
    };
    let a = run("aligned", &aligned);
    let b = run("interleaved", &interleaved);
    assert_eq!(a.traffic.remote(), 0, "aligned clusters never cross nodes");
    assert!(
        b.traffic.remote() > b.traffic.local(),
        "interleaved labeling should push most traffic over the wire: \
         remote {} local {}",
        b.traffic.remote(),
        b.traffic.local()
    );
    // Same answers regardless of locality (up to the relabeling).
    assert_eq!(a.values[..k as usize], ref_cc(&aligned)[..k as usize]);
}

#[test]
fn more_nodes_than_vertices() {
    let el = generate::cycle(3);
    let cluster = Cluster::new(ClusterConfig::new(8, workdir("tiny")));
    let report = cluster.run(&el, ConnectedComponents).unwrap();
    assert_eq!(report.values, vec![0, 0, 0]);
}

#[test]
fn unreachable_vertices_stay_unreached_across_shards() {
    let el = generate::two_components(30, 30);
    let cluster = Cluster::new(ClusterConfig::new(3, workdir("2c")));
    let report = cluster.run(&el, Bfs { root: 0 }).unwrap();
    assert!(report.values[30..].iter().all(|&l| l == UNREACHED));
    assert!(report.values[..30].iter().all(|&l| l < UNREACHED));
}

#[test]
fn kcore_runs_distributed() {
    let el = generate::symmetrize(&generate::erdos_renyi(200, 1200, 3));
    let program = gpsa::programs::KCore::new(3, el.out_degrees());
    let cluster = Cluster::new(ClusterConfig::new(3, workdir("kcore")));
    let report = cluster.run(&el, program).unwrap();
    // Compare against the single-node actor engine.
    let single = gpsa::Engine::new(gpsa::EngineConfig::small(workdir("kcore-single")))
        .run_edge_list(
            el.clone(),
            "kc",
            gpsa::programs::KCore::new(3, el.out_degrees()),
        )
        .unwrap();
    assert_eq!(report.values, single.values);
}
