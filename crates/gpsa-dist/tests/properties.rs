//! Property tests: for arbitrary graphs and cluster shapes, the
//! distributed engine agrees with the sequential oracle and conserves
//! message counts across the traffic matrix.

use gpsa::programs::{Bfs, ConnectedComponents};
use gpsa::{SyncEngine, Termination};
use gpsa_dist::{Cluster, ClusterConfig};
use gpsa_graph::{Edge, EdgeList};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn workdir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "gpsa-dist-prop-{}-{tag}-{case}",
        std::process::id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..50).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=150).prop_map(move |pairs| {
            EdgeList::with_vertices(
                pairs
                    .into_iter()
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| Edge::new(a, b))
                    .collect(),
                n,
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn distributed_cc_matches_oracle(el in arb_graph(), nodes in 1usize..6) {
        let term = Termination::Quiescence { max_supersteps: 2000 };
        let expect = SyncEngine::new(term).run(&el, ConnectedComponents).values;
        let cluster = Cluster::new(
            ClusterConfig::new(nodes, workdir("cc")).with_termination(term),
        );
        let got = cluster.run(&el, ConnectedComponents).unwrap();
        prop_assert_eq!(got.values, expect);
    }

    #[test]
    fn distributed_bfs_matches_oracle(el in arb_graph(), nodes in 1usize..6, root_sel in 0u32..50) {
        let root = root_sel % el.n_vertices as u32;
        let term = Termination::Quiescence { max_supersteps: 2000 };
        let expect = SyncEngine::new(term).run(&el, Bfs { root }).values;
        let cluster = Cluster::new(
            ClusterConfig::new(nodes, workdir("bfs")).with_termination(term),
        );
        let got = cluster.run(&el, Bfs { root }).unwrap();
        prop_assert_eq!(got.values, expect);
    }

    #[test]
    fn traffic_matrix_accounts_for_every_message(el in arb_graph(), nodes in 1usize..5) {
        let term = Termination::Quiescence { max_supersteps: 2000 };
        let cluster = Cluster::new(
            ClusterConfig::new(nodes, workdir("traffic")).with_termination(term),
        );
        let got = cluster.run(&el, ConnectedComponents).unwrap();
        // Every message a dispatcher sent was folded by a computer.
        prop_assert_eq!(got.traffic.total(), got.messages);
        // Single-node clusters have no remote traffic.
        if nodes == 1 || el.n_vertices <= 1 {
            prop_assert_eq!(got.traffic.remote(), 0);
        }
    }
}
