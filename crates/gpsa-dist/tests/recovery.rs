//! Fault-tolerant distributed supersteps: scripted fault scenarios, the
//! typed deadline/retry errors, and the oracle property — whatever the
//! fault plan, a recovered run's answers are bit-identical to the
//! sequential [`SyncEngine`] (for BFS/CC; PageRank's f32 fold order is
//! nondeterministic distributed, so it gets a 1e-6 band), and the
//! recovery counters in [`gpsa_dist::DistReport`] are honest.

#[cfg(feature = "chaos")]
use gpsa::programs::PageRank;
use gpsa::programs::{Bfs, ConnectedComponents};
use gpsa::{GraphMeta, SyncEngine, Termination, VertexProgram};
use gpsa_dist::{Cluster, ClusterConfig, ClusterError};
#[cfg(feature = "chaos")]
use gpsa_graph::EdgeList;
use gpsa_graph::{generate, VertexId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static CASE: AtomicU64 = AtomicU64::new(0);

fn workdir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gpsa-dist-rec-{}-{tag}-{case}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn quiesce() -> Termination {
    Termination::Quiescence {
        max_supersteps: 10_000,
    }
}

/// A program whose `compute` always dies — actor failure without the
/// chaos feature, for exercising the retry budget.
struct PoisonedCc;

impl VertexProgram for PoisonedCc {
    type Value = u32;
    type MsgVal = u32;
    fn init(&self, v: VertexId, meta: &GraphMeta) -> (u32, bool) {
        ConnectedComponents.init(v, meta)
    }
    fn gen_msg(&self, src: VertexId, value: u32, deg: u32, meta: &GraphMeta) -> Option<u32> {
        ConnectedComponents.gen_msg(src, value, deg, meta)
    }
    fn compute(
        &self,
        _v: VertexId,
        _acc: Option<u32>,
        _basis: u32,
        _msg: u32,
        _m: &GraphMeta,
    ) -> u32 {
        panic!("poisoned program: compute always dies");
    }
}

#[test]
fn poisoned_program_exhausts_the_retry_budget() {
    let el = generate::symmetrize(&generate::erdos_renyi(60, 200, 3));
    let cfg = ClusterConfig::new(2, workdir("poison"))
        .with_termination(quiesce())
        .with_max_node_retries(2);
    let err = Cluster::new(cfg).run(&el, PoisonedCc).unwrap_err();
    match err {
        ClusterError::RetriesExhausted(causes) => {
            // Initial attempt + 2 retries, every cause recorded.
            assert_eq!(causes.len(), 3, "causes: {causes:?}");
            for c in &causes {
                assert!(c.contains("died"), "cause should name the actor: {c}");
            }
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn zero_run_deadline_fails_fast_and_typed() {
    // A 300-hop BFS chain takes hundreds of barriers; a zero deadline
    // must fail at the first watch tick instead of running them all
    // (let alone the old 4-hour hang window).
    let el = generate::chain(300);
    let cfg = ClusterConfig::new(2, workdir("deadline"))
        .with_termination(quiesce())
        .with_run_deadline(Duration::ZERO);
    let err = Cluster::new(cfg).run(&el, Bfs { root: 0 }).unwrap_err();
    match err {
        ClusterError::DeadlineExceeded { deadline, .. } => {
            assert_eq!(deadline, Duration::ZERO)
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
}

#[test]
fn fault_free_run_reports_no_recovery() {
    let el = generate::symmetrize(&generate::erdos_renyi(120, 500, 5));
    let expect = SyncEngine::new(quiesce())
        .run(&el, ConnectedComponents)
        .values;
    let cfg = ClusterConfig::new(3, workdir("clean")).with_termination(quiesce());
    let report = Cluster::new(cfg).run(&el, ConnectedComponents).unwrap();
    assert_eq!(report.values, expect);
    assert_eq!(report.node_restarts, 0);
    assert_eq!(report.supersteps_rolled_back, 0);
    assert!(report.retry_causes.is_empty());
    // One commit measured per committed barrier.
    assert_eq!(report.commit_times.len() as u64, report.supersteps);
    assert_eq!(report.step_times.len() as u64, report.supersteps);
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use gpsa::fault::{FaultPlan, FaultSpec};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn graph() -> EdgeList {
        generate::symmetrize(&generate::erdos_renyi(200, 800, 11))
    }

    fn cc_oracle(el: &EdgeList) -> Vec<u32> {
        SyncEngine::new(quiesce())
            .run(el, ConnectedComponents)
            .values
    }

    #[test]
    fn node_kill_recovers_bit_identical_and_restarts_the_node() {
        let el = graph();
        let expect = cc_oracle(&el);
        let plan = FaultPlan::new(1).with(FaultSpec::NodeKill {
            node: 1,
            superstep: 1,
        });
        let cfg = ClusterConfig::new(2, workdir("kill"))
            .with_termination(quiesce())
            .with_fault_plan(Arc::new(plan));
        let report = Cluster::new(cfg).run(&el, ConnectedComponents).unwrap();
        assert_eq!(report.values, expect);
        assert_eq!(report.node_restarts, 1, "the dead node must be reopened");
        assert_eq!(report.retry_causes.len(), 1);
        assert!(
            report.retry_causes[0].contains("node 1"),
            "cause attributes the node: {:?}",
            report.retry_causes
        );
        assert!(report.supersteps_rolled_back >= 1);
        assert_eq!(*report.activated.last().unwrap(), 0, "quiesced");
    }

    #[test]
    fn mid_fold_computer_panic_recovers_bit_identical() {
        let el = graph();
        let expect = cc_oracle(&el);
        let plan = FaultPlan::new(2).with(FaultSpec::DistComputerPanic {
            node: 0,
            after_messages: 10,
        });
        let cfg = ClusterConfig::new(2, workdir("fold"))
            .with_termination(quiesce())
            .with_fault_plan(Arc::new(plan));
        let report = Cluster::new(cfg).run(&el, ConnectedComponents).unwrap();
        assert_eq!(report.values, expect);
        assert_eq!(report.node_restarts, 1);
        assert!(
            report.retry_causes[0].contains("dist-computer panic"),
            "{:?}",
            report.retry_causes
        );
    }

    #[test]
    fn dropped_inter_node_batch_is_detected_and_recovered() {
        let el = graph();
        let expect = cc_oracle(&el);
        let plan = FaultPlan::new(3).with(FaultSpec::BatchDrop {
            src_node: 0,
            superstep: 1,
        });
        let cfg = ClusterConfig::new(2, workdir("drop"))
            .with_termination(quiesce())
            .with_fault_plan(Arc::new(plan));
        let report = Cluster::new(cfg).run(&el, ConnectedComponents).unwrap();
        assert_eq!(
            report.values, expect,
            "a dropped batch must never be silent loss"
        );
        assert!(
            report.retry_causes[0].contains("network drop"),
            "{:?}",
            report.retry_causes
        );
        assert_eq!(report.node_restarts, 1, "the sender counts as crashed");
    }

    #[test]
    fn torn_manifest_tail_is_repaired_on_recovery() {
        let el = graph();
        let expect = cc_oracle(&el);
        let plan = FaultPlan::new(4).with(FaultSpec::TornManifest { superstep: 1 });
        let cfg = ClusterConfig::new(2, workdir("torn"))
            .with_termination(quiesce())
            .with_fault_plan(Arc::new(plan));
        let report = Cluster::new(cfg).run(&el, ConnectedComponents).unwrap();
        assert_eq!(report.values, expect);
        assert!(
            report.retry_causes[0].contains("torn manifest"),
            "{:?}",
            report.retry_causes
        );
        // The master died, not a node: nothing to reopen.
        assert_eq!(report.node_restarts, 0);
    }

    #[test]
    fn delayed_batch_trips_the_superstep_watchdog() {
        let el = graph();
        let expect = cc_oracle(&el);
        let plan = FaultPlan::new(5).with(FaultSpec::BatchDelay {
            src_node: 0,
            superstep: 1,
            millis: 1500,
        });
        let cfg = ClusterConfig::new(2, workdir("delay"))
            .with_termination(quiesce())
            .with_superstep_deadline(Duration::from_millis(250))
            .with_fault_plan(Arc::new(plan));
        let report = Cluster::new(cfg).run(&el, ConnectedComponents).unwrap();
        assert_eq!(report.values, expect);
        assert!(
            report.retry_causes[0].contains("watchdog"),
            "{:?}",
            report.retry_causes
        );
        assert!(report.supersteps_rolled_back >= 1);
    }

    #[test]
    fn pagerank_replays_supersteps_exactly_once() {
        let el = generate::symmetrize(&generate::erdos_renyi(300, 1500, 9));
        let steps = 6u64;
        let expect = SyncEngine::new(Termination::Supersteps(steps))
            .run(&el, PageRank::default())
            .values;
        let plan = FaultPlan::new(6).with(FaultSpec::NodeKill {
            node: 1,
            superstep: 3,
        });
        let cfg = ClusterConfig::new(3, workdir("pr"))
            .with_termination(Termination::Supersteps(steps))
            .with_fault_plan(Arc::new(plan));
        let report = Cluster::new(cfg).run(&el, PageRank::default()).unwrap();
        // Honest stats: the rolled-back superstep 3 counts once, not twice.
        assert_eq!(report.supersteps, steps);
        assert_eq!(report.step_times.len() as u64, steps);
        assert!(report.supersteps_rolled_back >= 1);
        let max_diff = report
            .values
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-6, "distributed PR diverged: {max_diff}");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

        /// The tentpole property: for any scripted distributed fault plan
        /// and cluster shape, BFS and CC finish bit-identical to the
        /// sequential oracle (PageRank within 1e-6 — its f32 fold order
        /// is nondeterministic distributed), and the recovery counters
        /// stay consistent.
        #[test]
        fn scripted_faults_never_corrupt_results(
            seed in 0u64..1_000_000,
            nodes_idx in 0usize..3,
            prog in 0usize..3,
        ) {
            let nodes_sel = [1usize, 2, 4][nodes_idx];
            let el = generate::symmetrize(&generate::erdos_renyi(120, 500, 5));
            let term = if prog == 2 {
                Termination::Supersteps(6)
            } else {
                quiesce()
            };
            let plan = Arc::new(FaultPlan::scripted_dist(seed, 3, 4, nodes_sel as u32));
            let cfg = ClusterConfig::new(nodes_sel, workdir("prop"))
                .with_termination(term)
                .with_max_node_retries(8)
                .with_durable(true) // give MsyncFail points a commit to fail
                .with_fault_plan(plan);
            let cluster = Cluster::new(cfg);
            let report = match prog {
                0 => {
                    let expect = SyncEngine::new(quiesce()).run(&el, Bfs { root: 0 }).values;
                    let report = cluster.run(&el, Bfs { root: 0 }).unwrap();
                    prop_assert_eq!(&report.values, &expect);
                    report
                }
                1 => {
                    let expect = cc_oracle(&el);
                    let report = cluster.run(&el, ConnectedComponents).unwrap();
                    prop_assert_eq!(&report.values, &expect);
                    report
                }
                _ => {
                    let expect = SyncEngine::new(term).run(&el, PageRank::default()).values;
                    let report = cluster.run(&el, PageRank::default()).unwrap();
                    let max_diff = report
                        .values
                        .iter()
                        .zip(&expect)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f32, f32::max);
                    prop_assert!(max_diff < 1e-6, "PR diverged: {}", max_diff);
                    prop_assert_eq!(report.supersteps, 6);
                    // PageRank values are f32; reuse the u32-shaped report
                    // fields for the counter checks below.
                    gpsa_dist::DistReport {
                        values: Vec::<u32>::new(),
                        supersteps: report.supersteps,
                        step_times: report.step_times,
                        commit_times: report.commit_times,
                        activated: report.activated,
                        deltas: report.deltas,
                        messages: report.messages,
                        traffic: report.traffic,
                        node_restarts: report.node_restarts,
                        supersteps_rolled_back: report.supersteps_rolled_back,
                        retry_causes: report.retry_causes,
                    }
                }
            };
            // Counter honesty: restarts never exceed failed attempts, and
            // a run with no retries rolled nothing back.
            prop_assert!(report.node_restarts <= report.retry_causes.len() as u64);
            if report.retry_causes.is_empty() {
                prop_assert_eq!(report.node_restarts, 0);
                prop_assert_eq!(report.supersteps_rolled_back, 0);
            }
            prop_assert_eq!(report.commit_times.len() as u64, report.supersteps);
        }
    }
}
