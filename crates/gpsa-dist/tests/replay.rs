//! End-to-end replay: boot a job server, register two graphs, replay a
//! deterministic synthetic trace against it, and sanity-check the
//! latency/throughput/cache profile the BENCH emitter reports.

use std::path::{Path, PathBuf};

use gpsa::EngineConfig;
use gpsa_dist::{replay_against_server, synthetic_jobs, ReplayConfig};
use gpsa_graph::{generate, preprocess};
use gpsa_serve::{start, Client, ServeConfig};

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gpsa-replay-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn build_csr(dir: &Path, name: &str, el: gpsa_graph::EdgeList) -> PathBuf {
    let path = dir.join(format!("{name}.gcsr"));
    preprocess::edges_to_csr(el, &path, &preprocess::PreprocessOptions::default()).unwrap();
    path
}

#[test]
fn replay_completes_the_trace_and_hits_the_cache() {
    let dir = test_dir("e2e");
    let g1 = build_csr(&dir, "g1", generate::cycle(256));
    let g2 = build_csr(&dir, "g2", generate::grid(10, 10));
    let serve_work = dir.join("serve");
    let config = ServeConfig::small(&serve_work)
        .with_max_concurrent_jobs(2)
        .with_queue_capacity(64)
        .with_engine(EngineConfig::small(&serve_work).with_actors(1, 1));
    let handle = start(config).unwrap();
    let addr = handle.addr();

    let mut admin = Client::connect(addr).unwrap();
    admin.register_graph("g1", g1.to_str().unwrap()).unwrap();
    admin.register_graph("g2", g2.to_str().unwrap()).unwrap();

    let jobs = synthetic_jobs(&["g1".to_string(), "g2".to_string()], 40, 7);
    let report = replay_against_server(
        addr,
        &jobs,
        &ReplayConfig {
            concurrency: 4,
            deadline: None,
        },
    )
    .unwrap();

    // Queue capacity 64 > trace size: nothing may be rejected or fail.
    assert_eq!(report.jobs_total, 40);
    assert_eq!(report.jobs_ok, 40, "report: {report:?}");
    assert_eq!(report.jobs_rejected, 0);
    assert_eq!(report.jobs_failed, 0);
    // The trace's parameter space is tiny (two graphs, a handful of
    // param combos), so a 40-job replay must see repeats → cache hits.
    assert!(report.cache_hits > 0, "report: {report:?}");
    assert!(report.cache_hit_rate > 0.0);
    assert!(report.p50_us <= report.p99_us);
    assert!(report.jobs_per_sec() > 0.0);
    let json = report.to_bench_json();
    assert!(json.contains("\"jobs_ok\": 40"));
}
