//! In-memory Compressed Sparse Row graph.
//!
//! Used by the reference algorithm implementations, the in-memory modes of
//! the baseline engines, and as the construction intermediate for the
//! on-disk format.

use crate::types::{Edge, VertexId};
use crate::EdgeList;

/// An immutable in-memory CSR graph: `offsets[v]..offsets[v+1]` indexes the
/// out-neighbors of `v` in `targets`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build from an edge list (counting sort by source; `O(V + E)`).
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Self::from_edges(el.n_vertices, el.edges.iter().copied())
    }

    /// Build from an iterator of edges over `n_vertices` vertices.
    ///
    /// # Panics
    /// Panics if any endpoint id is `>= n_vertices`.
    pub fn from_edges<I: IntoIterator<Item = Edge> + Clone>(n_vertices: usize, edges: I) -> Self {
        let mut counts = vec![0u64; n_vertices + 1];
        let mut n_edges = 0u64;
        for e in edges.clone() {
            assert!(
                (e.src as usize) < n_vertices && (e.dst as usize) < n_vertices,
                "edge {e:?} out of range for {n_vertices} vertices"
            );
            counts[e.src as usize + 1] += 1;
            n_edges += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; n_edges as usize];
        for e in edges {
            let slot = cursor[e.src as usize];
            targets[slot as usize] = e.dst;
            cursor[e.src as usize] += 1;
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The offsets array (length `n_vertices + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The flattened, source-sorted target array.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Iterate `(src, dst)` pairs in source order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n_vertices() as VertexId).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .map(move |&d| Edge { src: v, dst: d })
        })
    }

    /// The reverse graph (every edge flipped). `O(V + E)`.
    pub fn transpose(&self) -> Csr {
        let edges: Vec<Edge> = self.edges().map(Edge::reversed).collect();
        Csr::from_edges(self.n_vertices(), edges.iter().copied())
    }

    /// Vertices with out-degree zero.
    pub fn sinks(&self) -> Vec<VertexId> {
        (0..self.n_vertices() as VertexId)
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example graph from paper Fig. 4: vertex 0 -> {2, 3}, 1 -> {0},
    /// 2 -> {}, 3 -> {1, 2}.
    pub(crate) fn fig4_graph() -> Csr {
        Csr::from_edges(
            4,
            vec![
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(1, 0),
                Edge::new(3, 1),
                Edge::new(3, 2),
            ],
        )
    }

    #[test]
    fn builds_fig4_layout() {
        let g = fig4_graph();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.neighbors(0), &[2, 3]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.sinks(), vec![2]);
    }

    #[test]
    fn unsorted_input_is_grouped_by_source() {
        let g = Csr::from_edges(
            3,
            vec![
                Edge::new(2, 0),
                Edge::new(0, 1),
                Edge::new(2, 1),
                Edge::new(0, 2),
            ],
        );
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let g = fig4_graph();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        let g2 = Csr::from_edges(4, edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn transpose_flips_all_edges() {
        let g = fig4_graph();
        let t = g.transpose();
        assert_eq!(t.n_edges(), g.n_edges());
        assert_eq!(t.neighbors(2), &[0, 3]);
        assert_eq!(t.neighbors(0), &[1]);
        let tt = t.transpose();
        assert_eq!(tt, g);
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = Csr::from_edges(0, Vec::<Edge>::new());
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.n_edges(), 0);
        let g = Csr::from_edges(1, Vec::<Edge>::new());
        assert_eq!(g.n_vertices(), 1);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Csr::from_edges(2, vec![Edge::new(0, 5)]);
    }

    #[test]
    fn duplicate_and_self_edges_are_kept() {
        // The formats are mechanism, not policy: duplicates/self-loops are
        // the generator's concern.
        let g = Csr::from_edges(2, vec![Edge::new(0, 0), Edge::new(0, 1), Edge::new(0, 1)]);
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
    }
}
