//! Scaled stand-ins for the paper's four evaluation graphs (Table I).
//!
//! The paper used SNAP's google web graph, soc-pokec, soc-LiveJournal1 and
//! twitter-2010. We synthesize R-MAT graphs with the same vertex/edge
//! *ratios*, divided by a configurable scale factor so the full harness
//! runs in minutes on a laptop. At `scale = 1` the generated sizes match
//! Table I exactly.

use std::path::{Path, PathBuf};

use crate::generate::{rmat, RmatParams};
use crate::preprocess::{edges_to_csr, PreprocessOptions, PreprocessStats};
use crate::EdgeList;

/// One of the paper's evaluation graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// web-Google: 875,713 nodes, 5,105,039 edges.
    Google,
    /// soc-Pokec: 1,632,803 nodes, 30,622,564 edges.
    Pokec,
    /// soc-LiveJournal1: 4,847,571 nodes, 68,993,773 edges.
    LiveJournal,
    /// twitter-2010: 41,652,230 nodes, 1,468,365,182 edges.
    Twitter,
}

impl Dataset {
    /// All four datasets in Table I order.
    pub const ALL: [Dataset; 4] = [
        Dataset::Google,
        Dataset::Pokec,
        Dataset::LiveJournal,
        Dataset::Twitter,
    ];

    /// Name as printed in Table I.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Google => "google",
            Dataset::Pokec => "soc-pokec",
            Dataset::LiveJournal => "soc-liveJournal",
            Dataset::Twitter => "twitter-2010",
        }
    }

    /// Paper node count (Table I).
    pub fn paper_nodes(self) -> u64 {
        match self {
            Dataset::Google => 875_713,
            Dataset::Pokec => 1_632_803,
            Dataset::LiveJournal => 4_847_571,
            Dataset::Twitter => 41_652_230,
        }
    }

    /// Paper edge count (Table I).
    pub fn paper_edges(self) -> u64 {
        match self {
            Dataset::Google => 5_105_039,
            Dataset::Pokec => 30_622_564,
            Dataset::LiveJournal => 68_993_773,
            Dataset::Twitter => 1_468_365_182,
        }
    }

    /// Parse a name (paper form or short alias).
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "google" | "web-google" => Some(Dataset::Google),
            "pokec" | "soc-pokec" => Some(Dataset::Pokec),
            "journal" | "livejournal" | "soc-livejournal" => Some(Dataset::LiveJournal),
            "twitter" | "twitter-2010" => Some(Dataset::Twitter),
            _ => None,
        }
    }

    /// Deterministic seed per dataset so runs are reproducible.
    pub fn seed(self) -> u64 {
        match self {
            Dataset::Google => 0x600613,
            Dataset::Pokec => 0x90CEC,
            Dataset::LiveJournal => 0x11FE,
            Dataset::Twitter => 0x7917,
        }
    }

    /// Node count at `1/scale_divisor` of the paper size (minimum 64).
    pub fn scaled_nodes(self, scale_divisor: u64) -> usize {
        ((self.paper_nodes() / scale_divisor.max(1)).max(64)) as usize
    }

    /// Edge count at `1/scale_divisor` of the paper size (minimum 256).
    pub fn scaled_edges(self, scale_divisor: u64) -> usize {
        ((self.paper_edges() / scale_divisor.max(1)).max(256)) as usize
    }

    /// Generate the scaled stand-in as an in-memory edge list.
    pub fn generate(self, scale_divisor: u64) -> EdgeList {
        rmat(
            self.scaled_nodes(scale_divisor),
            self.scaled_edges(scale_divisor),
            RmatParams::default(),
            self.seed(),
        )
    }

    /// Path of the cached CSR file for this dataset/scale under `dir`.
    pub fn csr_path(self, dir: &Path, scale_divisor: u64) -> PathBuf {
        dir.join(format!("{}-s{}.gcsr", self.name(), scale_divisor))
    }

    /// Generate (or reuse a cached) on-disk CSR for this dataset.
    pub fn materialize(
        self,
        dir: &Path,
        scale_divisor: u64,
    ) -> std::io::Result<(PathBuf, PreprocessStats)> {
        std::fs::create_dir_all(dir)?;
        let path = self.csr_path(dir, scale_divisor);
        let el = self.generate(scale_divisor);
        let stats = edges_to_csr(el, &path, &PreprocessOptions::default())?;
        Ok((path, stats))
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_are_papers() {
        assert_eq!(Dataset::Google.paper_nodes(), 875_713);
        assert_eq!(Dataset::Twitter.paper_edges(), 1_468_365_182);
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(Dataset::parse("Twitter"), Some(Dataset::Twitter));
        assert_eq!(Dataset::parse("soc-pokec"), Some(Dataset::Pokec));
        assert_eq!(Dataset::parse("journal"), Some(Dataset::LiveJournal));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn scaling_preserves_ratio() {
        let n = Dataset::LiveJournal.scaled_nodes(64);
        let e = Dataset::LiveJournal.scaled_edges(64);
        let paper_ratio =
            Dataset::LiveJournal.paper_edges() as f64 / Dataset::LiveJournal.paper_nodes() as f64;
        let ratio = e as f64 / n as f64;
        assert!((ratio - paper_ratio).abs() / paper_ratio < 0.01);
    }

    #[test]
    fn generate_small_scale() {
        // Very aggressive scale keeps this test fast.
        let el = Dataset::Google.generate(4096);
        assert_eq!(el.len(), Dataset::Google.scaled_edges(4096));
        assert!(el.n_vertices >= 64);
    }

    #[test]
    fn materialize_writes_csr() {
        let dir = std::env::temp_dir().join(format!("gpsa-ds-{}", std::process::id()));
        let (path, stats) = Dataset::Google.materialize(&dir, 8192).unwrap();
        assert!(path.exists());
        assert_eq!(stats.n_edges, Dataset::Google.scaled_edges(8192));
        let d = crate::disk_csr::DiskCsr::open(&path).unwrap();
        assert_eq!(d.n_edges(), stats.n_edges);
    }
}
