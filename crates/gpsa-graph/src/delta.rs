//! Live graphs: an append-only edge-delta log sealed alongside the
//! immutable CSR, an in-memory overlay merging both, and compaction.
//!
//! A preprocessed CSR file never changes. Mutations land as framed
//! add/remove batches in a sibling delta log (`graph.gcsr` →
//! `graph.gcsr.gdelta`, one CRC-framed [`crate::framed`] record per
//! batch, fsync'd before the mutation is acknowledged), and are replayed
//! into a [`DeltaOverlay`]. A [`GraphSnapshot`] pairs one immutable CSR
//! with one immutable overlay and mirrors the [`DiskCsr`] read API, so
//! the engine's dense, sparse, and strided dispatch paths see the
//! mutated graph without re-preprocessing; snapshots are cheap to clone
//! and pin, so in-flight jobs keep reading the version they started on
//! while new mutations build new snapshots. Compaction
//! ([`GraphSnapshot::compact_to`]) folds everything back into a fresh v2
//! CSR, bit-identical to preprocessing the mutated edge list from
//! scratch.
//!
//! ## Mutation semantics
//!
//! The base CSR is a multiset of edges (duplicates and self-loops are
//! preserved by preprocessing), so the overlay tracks each `(src, dst)`
//! pair through a small state machine, applied in log order:
//!
//! * **remove** deletes *every* copy of the pair — all base occurrences
//!   are suppressed and any overlay-added copy is dropped;
//! * **add** inserts *one* copy iff the pair is not currently present
//!   (base copies of a never-removed pair make an add a no-op).
//!
//! A merged vertex record is the base record in stored order with
//! removed targets filtered out, followed by the overlay-added targets
//! in ascending order — a deterministic convention shared with the
//! from-scratch oracle, which is what makes bit-identity testable.
//! Added edges may name vertices past the base range; the snapshot
//! grows `n_vertices` to cover them.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpsa_mmap::Advice;

use crate::disk_csr::{
    index_path, write_data_header, write_index_header, DiskCsr, EdgeCursor, SeekCursor,
    VertexEdges, VERSION_V2,
};
use crate::framed;
use crate::types::{Edge, VertexId};
use crate::varint;

/// Derive the delta-log path for a CSR file (`graph.gcsr` →
/// `graph.gcsr.gdelta`).
pub fn delta_path(csr: &Path) -> PathBuf {
    let mut p = csr.as_os_str().to_owned();
    p.push(".gdelta");
    PathBuf::from(p)
}

/// One mutation batch — the unit of atomicity. A batch is exactly one
/// framed record in the delta log, so a torn append drops the whole
/// batch and recovery lands on the clean pre-mutation state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaBatch {
    /// Insert each edge (one copy, iff not currently present).
    Add(Vec<Edge>),
    /// Delete every copy of each edge.
    Remove(Vec<Edge>),
}

impl DeltaBatch {
    /// The edges in the batch.
    pub fn edges(&self) -> &[Edge] {
        match self {
            DeltaBatch::Add(e) | DeltaBatch::Remove(e) => e,
        }
    }

    /// Whether this is a removal batch.
    pub fn is_remove(&self) -> bool {
        matches!(self, DeltaBatch::Remove(_))
    }

    /// Serialize to the log-record body: `add 0:2 3:1` / `remove 4:4`.
    pub fn encode_body(&self) -> String {
        let mut s = String::from(if self.is_remove() { "remove" } else { "add" });
        for e in self.edges() {
            s.push_str(&format!(" {}:{}", e.src, e.dst));
        }
        s
    }

    /// Parse a log-record body written by [`DeltaBatch::encode_body`].
    pub fn parse_body(s: &str) -> Option<DeltaBatch> {
        let mut toks = s.split(' ');
        let tag = toks.next()?;
        let mut edges = Vec::new();
        for tok in toks {
            let (u, v) = tok.split_once(':')?;
            edges.push(Edge::new(u.parse().ok()?, v.parse().ok()?));
        }
        match tag {
            "add" => Some(DeltaBatch::Add(edges)),
            "remove" => Some(DeltaBatch::Remove(edges)),
            _ => None,
        }
    }
}

/// The append-only, fsync'd delta log for one CSR file.
#[derive(Debug)]
pub struct DeltaLog {
    file: File,
    path: PathBuf,
}

impl DeltaLog {
    /// Open (or create) the delta log sitting next to `csr_path`,
    /// replaying every intact batch in log order. A torn or corrupt tail
    /// is truncated away (the journal's truncate-and-warn idiom, shared
    /// via [`crate::framed::open_scan`]).
    pub fn open<P: AsRef<Path>>(csr_path: P) -> io::Result<(DeltaLog, Vec<DeltaBatch>)> {
        let path = delta_path(csr_path.as_ref());
        let (file, batches) = framed::open_scan(&path, DeltaBatch::parse_body)?;
        Ok((DeltaLog { file, path }, batches))
    }

    /// Append one batch as a single framed record and fsync it. Returns
    /// only after the batch is durable — callers apply the mutation to
    /// in-memory state strictly after this.
    pub fn append(&mut self, batch: &DeltaBatch) -> io::Result<()> {
        self.file
            .write_all(framed::encode_line(&batch.encode_body()).as_bytes())?;
        self.file.sync_data()
    }

    /// Where the log lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Per-source overlay state: which destinations are currently added or
/// removed relative to the base record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VertexDelta {
    /// Destinations in "added" state, ascending.
    added: Vec<VertexId>,
    /// Destinations in "removed" state (base copies suppressed),
    /// ascending.
    removed: Vec<VertexId>,
    /// How many base-record occurrences the `removed` set suppresses
    /// (duplicates counted), so effective degrees stay `O(1)`.
    removed_base_occurrences: u32,
}

/// The in-memory merge state built by replaying delta batches against a
/// base CSR. Immutable once sealed into a [`GraphSnapshot`]; mutations
/// clone-and-apply into a fresh overlay so pinned snapshots never move.
#[derive(Debug, Clone, Default)]
pub struct DeltaOverlay {
    per_vertex: BTreeMap<VertexId, VertexDelta>,
    added_total: u64,
    removed_total: u64,
    removed_pairs: u64,
    /// `1 + max endpoint` over effective added edges (0 when none) — how
    /// far the snapshot must grow past the base vertex range.
    virtual_end: usize,
    batches: u64,
}

impl DeltaOverlay {
    /// An empty overlay (the snapshot degenerates to the base CSR).
    pub fn new() -> DeltaOverlay {
        DeltaOverlay::default()
    }

    /// Apply one batch in log order. `base` is consulted for membership
    /// and duplicate counts (an add of an edge already in the base is a
    /// no-op; a remove suppresses every base copy).
    pub fn apply(&mut self, base: &DiskCsr, batch: &DeltaBatch) {
        let base_n = base.n_vertices();
        let mut scratch = Vec::new();
        match batch {
            DeltaBatch::Add(edges) => {
                for e in edges {
                    let vd = self.per_vertex.entry(e.src).or_default();
                    let removed = vd.removed.binary_search(&e.dst).is_ok();
                    let slot = vd.added.binary_search(&e.dst);
                    let present = if removed {
                        slot.is_ok()
                    } else {
                        slot.is_ok()
                            || ((e.src as usize) < base_n
                                && base_count(base, e.src, e.dst, &mut scratch) > 0)
                    };
                    if !present {
                        if let Err(i) = slot {
                            vd.added.insert(i, e.dst);
                            self.added_total += 1;
                        }
                    }
                }
            }
            DeltaBatch::Remove(edges) => {
                for e in edges {
                    let vd = self.per_vertex.entry(e.src).or_default();
                    if let Ok(i) = vd.added.binary_search(&e.dst) {
                        vd.added.remove(i);
                        self.added_total -= 1;
                    }
                    if let Err(i) = vd.removed.binary_search(&e.dst) {
                        vd.removed.insert(i, e.dst);
                        self.removed_pairs += 1;
                        if (e.src as usize) < base_n {
                            let occ = base_count(base, e.src, e.dst, &mut scratch);
                            vd.removed_base_occurrences += occ;
                            self.removed_total += occ as u64;
                        }
                    }
                }
            }
        }
        self.batches += 1;
        self.virtual_end = self
            .per_vertex
            .iter()
            .filter(|(_, vd)| !vd.added.is_empty())
            .map(|(&v, vd)| (v.max(*vd.added.last().unwrap()) as usize) + 1)
            .max()
            .unwrap_or(0);
    }

    /// Batches applied so far — the snapshot's *delta seq* within its
    /// epoch.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// No batches applied (the overlay is a pass-through).
    pub fn is_empty(&self) -> bool {
        self.batches == 0
    }

    /// Effective edges added on top of the base.
    pub fn added_edges(&self) -> u64 {
        self.added_total
    }

    /// Base-record edge occurrences suppressed by removals.
    pub fn removed_edges(&self) -> u64 {
        self.removed_total
    }

    /// Whether any pair is in the removed state. Incremental recompute
    /// only re-converges monotone programs over *additions*; removals
    /// require a fresh run.
    pub fn has_removals(&self) -> bool {
        self.removed_pairs > 0
    }

    /// Visit every effective added edge `(src, dst)`, sources ascending,
    /// destinations ascending within a source — the incremental
    /// frontier's seed set.
    pub fn for_each_added(&self, mut f: impl FnMut(VertexId, VertexId)) {
        for (&v, vd) in &self.per_vertex {
            for &t in &vd.added {
                f(v, t);
            }
        }
    }

    fn get(&self, v: VertexId) -> Option<&VertexDelta> {
        self.per_vertex.get(&v)
    }

    fn added_slice(&self, v: VertexId) -> &[VertexId] {
        self.per_vertex.get(&v).map_or(&[], |vd| &vd.added[..])
    }
}

/// Occurrences of `dst` in `src`'s base record (duplicates counted).
fn base_count(base: &DiskCsr, src: VertexId, dst: VertexId, scratch: &mut Vec<u32>) -> u32 {
    base.record_into(src, scratch)
        .targets
        .iter()
        .filter(|&&t| t == dst)
        .count() as u32
}

/// Filter `base_targets` through the removed set and append the added
/// targets — the merged record convention.
fn merge_targets(base_targets: &[VertexId], vd: &VertexDelta, out: &mut Vec<VertexId>) {
    out.clear();
    if vd.removed.is_empty() {
        out.extend_from_slice(base_targets);
    } else {
        out.extend(
            base_targets
                .iter()
                .copied()
                .filter(|t| vd.removed.binary_search(t).is_err()),
        );
    }
    out.extend_from_slice(&vd.added);
}

/// One immutable version of a live graph: a base [`DiskCsr`] plus a
/// sealed [`DeltaOverlay`]. Mirrors the `DiskCsr` read API the engine
/// uses, so every dispatch mode streams the mutated graph directly.
///
/// I/O accounting (`words_in_range`, cursor `words_read`/`bytes_read`)
/// counts **base** records only — overlay targets live in memory and
/// cost no disk traffic — so the engine's streamed/skipped conservation
/// invariant carries over unchanged.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    base: Arc<DiskCsr>,
    overlay: Arc<DeltaOverlay>,
    n_vertices: usize,
    n_edges: usize,
}

/// Open a CSR together with its sibling delta log, replaying intact
/// batches into the returned snapshot. The log handle is ready to append
/// further batches.
pub fn open_live<P: AsRef<Path>>(csr_path: P) -> io::Result<(GraphSnapshot, DeltaLog)> {
    let base = Arc::new(DiskCsr::open(csr_path.as_ref())?);
    let (log, batches) = DeltaLog::open(csr_path)?;
    let mut overlay = DeltaOverlay::new();
    for b in &batches {
        overlay.apply(&base, b);
    }
    Ok((GraphSnapshot::new(base, Arc::new(overlay)), log))
}

impl GraphSnapshot {
    /// Seal `overlay` over `base`.
    pub fn new(base: Arc<DiskCsr>, overlay: Arc<DeltaOverlay>) -> GraphSnapshot {
        let n_vertices = base.n_vertices().max(overlay.virtual_end);
        let n_edges =
            (base.n_edges() as u64 + overlay.added_total - overlay.removed_total) as usize;
        GraphSnapshot {
            base,
            overlay,
            n_vertices,
            n_edges,
        }
    }

    /// A pass-through snapshot (empty overlay) — how a frozen graph
    /// enters the engine.
    pub fn from_csr(base: Arc<DiskCsr>) -> GraphSnapshot {
        GraphSnapshot::new(base, Arc::new(DeltaOverlay::new()))
    }

    /// The base CSR.
    pub fn base(&self) -> &Arc<DiskCsr> {
        &self.base
    }

    /// The sealed overlay.
    pub fn overlay(&self) -> &Arc<DeltaOverlay> {
        &self.overlay
    }

    /// Overlay batches folded into this snapshot (its *delta seq*).
    pub fn delta_seq(&self) -> u64 {
        self.overlay.batches
    }

    /// Vertices in the merged graph (base range, grown to cover overlay
    /// endpoints).
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Edges in the merged graph.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Base edge-file size in bytes (the overlay is memory-resident).
    pub fn file_bytes(&self) -> usize {
        self.base.file_bytes()
    }

    /// See [`DiskCsr::advise_sequential`].
    pub fn advise_sequential(&self) -> io::Result<()> {
        self.base.advise_sequential()
    }

    /// See [`DiskCsr::advise_random`].
    pub fn advise_random(&self) -> io::Result<()> {
        self.base.advise_random()
    }

    /// See [`DiskCsr::advise_hugepage`] (the overlay is heap-resident and
    /// needs no hint).
    pub fn advise_hugepage(&self) -> bool {
        self.base.advise_hugepage()
    }

    /// See [`DiskCsr::advise_vertex_range`] — clamped to the base range
    /// (overlay-only records have no disk span to advise about).
    pub fn advise_vertex_range(&self, vertices: Range<VertexId>, advice: Advice) -> io::Result<()> {
        assert!(vertices.end as usize <= self.n_vertices);
        let (s, e) = self.clamp(&vertices);
        if s >= e {
            return Ok(());
        }
        self.base.advise_vertex_range(s..e, advice)
    }

    fn clamp(&self, vertices: &Range<VertexId>) -> (VertexId, VertexId) {
        let base_n = self.base.n_vertices() as u64;
        (
            (vertices.start as u64).min(base_n) as VertexId,
            (vertices.end as u64).min(base_n) as VertexId,
        )
    }

    /// Logical base words spanned by the records of `vertices` (see
    /// [`DiskCsr::words_in_range`]; overlay-only records count zero).
    pub fn words_in_range(&self, vertices: Range<VertexId>) -> u64 {
        let (s, e) = self.clamp(&vertices);
        if s >= e {
            return 0;
        }
        self.base.words_in_range(s..e)
    }

    /// Physical base bytes spanned by the records of `vertices`.
    pub fn bytes_in_range(&self, vertices: Range<VertexId>) -> u64 {
        let (s, e) = self.clamp(&vertices);
        if s >= e {
            return 0;
        }
        self.base.bytes_in_range(s..e)
    }

    /// See [`DiskCsr::record_overhead_words`].
    pub fn record_overhead_words(&self) -> u64 {
        self.base.record_overhead_words()
    }

    /// Effective out-degree of `v` — `O(1)` via the base index plus the
    /// overlay's precomputed suppression counts.
    pub fn degree(&self, v: VertexId) -> u32 {
        assert!((v as usize) < self.n_vertices, "vertex {v} out of range");
        let base_deg = if (v as usize) < self.base.n_vertices() {
            self.base.degree(v)
        } else {
            0
        };
        match self.overlay.get(v) {
            None => base_deg,
            Some(vd) => base_deg - vd.removed_base_occurrences + vd.added.len() as u32,
        }
    }

    /// Sum of effective out-degrees over an id range (the edge-balanced
    /// partitioner's weight function).
    pub fn edges_in_range(&self, vertices: Range<VertexId>) -> u64 {
        let (s, e) = self.clamp(&vertices);
        let mut total = if s >= e {
            0
        } else {
            self.base.edges_in_range(s..e)
        };
        for (_, vd) in self.overlay.per_vertex.range(vertices) {
            total += vd.added.len() as u64;
            total -= vd.removed_base_occurrences as u64;
        }
        total
    }

    /// Random access to one merged record (see [`DiskCsr::record_into`]).
    pub fn record_into<'s>(&'s self, v: VertexId, scratch: &'s mut Vec<u32>) -> VertexEdges<'s> {
        assert!((v as usize) < self.n_vertices, "vertex {v} out of range");
        if (v as usize) >= self.base.n_vertices() {
            let targets = self.overlay.added_slice(v);
            return VertexEdges {
                vid: v,
                degree: targets.len() as u32,
                targets,
            };
        }
        match self.overlay.get(v) {
            None => self.base.record_into(v, scratch),
            Some(vd) => {
                let base_targets = self.base.targets(v);
                merge_targets(&base_targets, vd, scratch);
                VertexEdges {
                    vid: v,
                    degree: scratch.len() as u32,
                    targets: &scratch[..],
                }
            }
        }
    }

    /// One vertex's merged targets as an owned vector (tests / tools).
    pub fn targets(&self, v: VertexId) -> Vec<VertexId> {
        let mut scratch = Vec::new();
        self.record_into(v, &mut scratch).targets.to_vec()
    }

    /// A sequential merged-record cursor (see [`DiskCsr::cursor`]).
    pub fn cursor(&self, vertices: Range<VertexId>) -> SnapshotCursor<'_> {
        assert!(vertices.end as usize <= self.n_vertices);
        let (s, e) = self.clamp(&vertices);
        SnapshotCursor {
            snap: self,
            base: (s < e).then(|| self.base.cursor(s..e)),
            next: vertices.start,
            end: vertices.end,
            scratch: Vec::new(),
        }
    }

    /// A seeking merged-record cursor for sparse dispatch (see
    /// [`DiskCsr::seek_cursor`]).
    pub fn seek_cursor(&self) -> SnapshotSeekCursor<'_> {
        SnapshotSeekCursor {
            snap: self,
            base: self.base.seek_cursor(),
            scratch: Vec::new(),
        }
    }

    /// See [`DiskCsr::chunk_end`]. Overlay-only tail records are
    /// memory-resident and cheap, so a chunk that exhausts the base
    /// range absorbs the whole tail.
    pub fn chunk_end(&self, vertices: Range<VertexId>, edge_budget: u64) -> VertexId {
        assert!(vertices.end as usize <= self.n_vertices);
        if vertices.start >= vertices.end {
            return vertices.end;
        }
        let (_, ce) = self.clamp(&vertices);
        if vertices.start >= ce {
            return vertices.end;
        }
        let e = self.base.chunk_end(vertices.start..ce, edge_budget);
        if e == ce {
            vertices.end
        } else {
            e
        }
    }

    /// Materialize the merged graph as an edge list (source order, the
    /// merged-record convention per vertex) — the from-scratch oracle's
    /// input and the bridge to edge-list engines.
    pub fn to_edge_list(&self) -> crate::EdgeList {
        let mut edges = Vec::with_capacity(self.n_edges);
        let mut cur = self.cursor(0..self.n_vertices as VertexId);
        while let Some(rec) = cur.next_rec() {
            for &dst in rec.targets {
                edges.push(Edge::new(rec.vid, dst));
            }
        }
        crate::EdgeList::with_vertices(edges, self.n_vertices)
    }

    /// Compaction: stream the merged records into a fresh v2 CSR (+
    /// index) at `path`, fsync'ing both files before returning — the
    /// caller's commit point (e.g. a registry manifest rename) can then
    /// rely on the new epoch being fully on disk. The output is
    /// bit-identical to preprocessing the merged edge list from scratch.
    pub fn compact_to(&self, path: &Path) -> io::Result<()> {
        let n = self.n_vertices;
        let mut out = BufWriter::new(File::create(path)?);
        write_data_header(&mut out, VERSION_V2, 0, n as u64, self.n_edges as u64)?;
        let mut idx = BufWriter::new(File::create(index_path(path))?);
        write_index_header(&mut idx, VERSION_V2, n as u64)?;

        let mut byte_off: u64 = 0;
        let mut edge_off: u64 = 0;
        let mut run = Vec::new();
        let mut cur = self.cursor(0..n as VertexId);
        while let Some(rec) = cur.next_rec() {
            idx.write_all(&byte_off.to_le_bytes())?;
            idx.write_all(&edge_off.to_le_bytes())?;
            run.clear();
            varint::encode_run(rec.targets, &mut run);
            out.write_all(&run)?;
            byte_off += run.len() as u64;
            edge_off += rec.degree as u64;
        }
        idx.write_all(&byte_off.to_le_bytes())?;
        idx.write_all(&edge_off.to_le_bytes())?;
        out.into_inner()?.sync_all()?;
        idx.into_inner()?.sync_all()?;
        Ok(())
    }
}

/// Sequential merged-record reader. See [`GraphSnapshot::cursor`]; same
/// lending-cursor contract as [`EdgeCursor`].
#[derive(Debug)]
pub struct SnapshotCursor<'a> {
    snap: &'a GraphSnapshot,
    base: Option<EdgeCursor<'a>>,
    next: VertexId,
    end: VertexId,
    scratch: Vec<u32>,
}

impl SnapshotCursor<'_> {
    /// The next merged record in the range, or `None` past the end.
    pub fn next_rec(&mut self) -> Option<VertexEdges<'_>> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        let SnapshotCursor {
            snap,
            base,
            scratch,
            ..
        } = self;
        if (v as usize) >= snap.base.n_vertices() {
            let targets = snap.overlay.added_slice(v);
            return Some(VertexEdges {
                vid: v,
                degree: targets.len() as u32,
                targets,
            });
        }
        let rec = base
            .as_mut()
            .expect("base cursor covers the clamped range")
            .next_rec()
            .expect("base cursor in step with vertex ids");
        match snap.overlay.get(v) {
            None => Some(rec),
            Some(vd) => {
                merge_targets(rec.targets, vd, scratch);
                Some(VertexEdges {
                    vid: v,
                    degree: scratch.len() as u32,
                    targets: &scratch[..],
                })
            }
        }
    }

    /// See [`EdgeCursor::peek_vid`].
    pub fn peek_vid(&self) -> Option<VertexId> {
        (self.next < self.end).then_some(self.next)
    }

    /// See [`EdgeCursor::skip_rec`] — skipped base records still count as
    /// streamed; overlay-only tail records cost nothing either way.
    pub fn skip_rec(&mut self) {
        debug_assert!(self.next < self.end, "skip_rec past the end");
        let v = self.next;
        if (v as usize) < self.snap.base.n_vertices() {
            self.base
                .as_mut()
                .expect("base cursor covers the clamped range")
                .skip_rec();
        }
        self.next += 1;
    }

    /// See [`EdgeCursor::take_rec_into`]. Records the overlay touches
    /// take the merged-record path (decode + filter + append); untouched
    /// base records stream straight from the base cursor.
    pub fn take_rec_into(&mut self, out: &mut Vec<u32>) -> (VertexId, u32) {
        debug_assert!(self.next < self.end, "take_rec_into past the end");
        let v = self.next;
        if (v as usize) < self.snap.base.n_vertices() && self.snap.overlay.get(v).is_none() {
            self.next += 1;
            return self
                .base
                .as_mut()
                .expect("base cursor covers the clamped range")
                .take_rec_into(out);
        }
        let rec = self.next_rec().expect("record in range");
        let degree = rec.degree;
        let targets = rec.targets;
        out.extend_from_slice(targets);
        (v, degree)
    }

    /// Logical base words consumed so far (overlay targets are free).
    pub fn words_read(&self) -> u64 {
        self.base.as_ref().map_or(0, |c| c.words_read())
    }

    /// Physical base bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.base.as_ref().map_or(0, |c| c.bytes_read())
    }
}

/// Seeking merged-record reader over an ascending id stream. See
/// [`GraphSnapshot::seek_cursor`]; same contract as [`SeekCursor`].
#[derive(Debug)]
pub struct SnapshotSeekCursor<'a> {
    snap: &'a GraphSnapshot,
    base: SeekCursor<'a>,
    scratch: Vec<u32>,
}

impl SnapshotSeekCursor<'_> {
    /// Read vertex `v`'s merged record. Ids must ascend across calls.
    pub fn record(&mut self, v: VertexId) -> VertexEdges<'_> {
        assert!(
            (v as usize) < self.snap.n_vertices,
            "vertex {v} out of range"
        );
        let SnapshotSeekCursor {
            snap,
            base,
            scratch,
        } = self;
        if (v as usize) >= snap.base.n_vertices() {
            let targets = snap.overlay.added_slice(v);
            return VertexEdges {
                vid: v,
                degree: targets.len() as u32,
                targets,
            };
        }
        let rec = base.record(v);
        match snap.overlay.get(v) {
            None => rec,
            Some(vd) => {
                merge_targets(rec.targets, vd, scratch);
                VertexEdges {
                    vid: v,
                    degree: scratch.len() as u32,
                    targets: &scratch[..],
                }
            }
        }
    }

    /// Logical base words consumed so far.
    pub fn words_read(&self) -> u64 {
        self.base.words_read()
    }

    /// Physical base bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.base.bytes_read()
    }

    /// Base index lookups performed.
    pub fn seeks(&self) -> u64 {
        self.base.seeks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{edges_to_csr, PreprocessOptions};
    use crate::EdgeList;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-delta-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Base fixture with a duplicate edge and a self-loop: the multiset
    /// corners the overlay semantics have to get right.
    fn base_edges() -> Vec<Edge> {
        vec![
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(0, 2), // duplicate
            Edge::new(1, 0),
            Edge::new(2, 2), // self-loop
            Edge::new(3, 1),
        ]
    }

    fn materialize(dir: &Path, tag: &str, el: EdgeList, opts: &PreprocessOptions) -> Arc<DiskCsr> {
        let path = dir.join(format!("{tag}.gcsr"));
        edges_to_csr(el, &path, opts).unwrap();
        Arc::new(DiskCsr::open(&path).unwrap())
    }

    fn flavors() -> Vec<(&'static str, PreprocessOptions)> {
        vec![
            ("v1-deg", PreprocessOptions::uncompressed()),
            (
                "v1-nodeg",
                PreprocessOptions {
                    with_degrees: false,
                    ..PreprocessOptions::uncompressed()
                },
            ),
            ("v2", PreprocessOptions::default()),
        ]
    }

    fn snapshot(base: &Arc<DiskCsr>, batches: &[DeltaBatch]) -> GraphSnapshot {
        let mut ov = DeltaOverlay::new();
        for b in batches {
            ov.apply(base, b);
        }
        GraphSnapshot::new(base.clone(), Arc::new(ov))
    }

    /// Independent oracle: apply the documented pair state machine to the
    /// edge list itself, returning per-vertex target sequences in the
    /// merged-record convention (base input order minus removed, then
    /// added ascending).
    fn oracle_adjacency(
        base: &[Edge],
        base_n: usize,
        batches: &[DeltaBatch],
    ) -> (Vec<Vec<VertexId>>, usize) {
        let base_pairs: HashSet<(u32, u32)> = base.iter().map(|e| (e.src, e.dst)).collect();
        let mut removed: HashSet<(u32, u32)> = HashSet::new();
        let mut added: HashSet<(u32, u32)> = HashSet::new();
        for batch in batches {
            for e in batch.edges() {
                let p = (e.src, e.dst);
                if batch.is_remove() {
                    removed.insert(p);
                    added.remove(&p);
                } else {
                    let present = if removed.contains(&p) {
                        added.contains(&p)
                    } else {
                        added.contains(&p) || base_pairs.contains(&p)
                    };
                    if !present {
                        added.insert(p);
                    }
                }
            }
        }
        let n = added
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(base_n);
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for e in base {
            if !removed.contains(&(e.src, e.dst)) {
                adj[e.src as usize].push(e.dst);
            }
        }
        let mut adds: Vec<(u32, u32)> = added.into_iter().collect();
        adds.sort_unstable();
        for (u, v) in adds {
            adj[u as usize].push(v);
        }
        (adj, n)
    }

    fn oracle_edge_list(adj: &[Vec<VertexId>]) -> EdgeList {
        let mut edges = Vec::new();
        for (v, targets) in adj.iter().enumerate() {
            for &t in targets {
                edges.push(Edge::new(v as VertexId, t));
            }
        }
        EdgeList::with_vertices(edges, adj.len())
    }

    /// Full equivalence: iteration, degrees, random access, seek path,
    /// and the I/O accounting conservation the dispatcher relies on.
    fn assert_matches_oracle(snap: &GraphSnapshot, adj: &[Vec<VertexId>], tag: &str) {
        assert_eq!(snap.n_vertices(), adj.len(), "{tag}: n_vertices");
        let total: usize = adj.iter().map(Vec::len).sum();
        assert_eq!(snap.n_edges(), total, "{tag}: n_edges");
        let n = adj.len() as VertexId;
        let mut cur = snap.cursor(0..n);
        for (v, want) in adj.iter().enumerate() {
            let got = cur.next_rec().expect("record per vertex");
            assert_eq!(got.vid, v as VertexId, "{tag}");
            assert_eq!(got.targets, &want[..], "{tag}: vertex {v} targets");
            assert_eq!(got.degree as usize, want.len(), "{tag}: vertex {v} degree");
        }
        assert!(cur.next_rec().is_none(), "{tag}: cursor past the end");
        assert_eq!(cur.words_read(), snap.words_in_range(0..n), "{tag}: words");
        assert_eq!(cur.bytes_read(), snap.bytes_in_range(0..n), "{tag}: bytes");
        let mut seek = snap.seek_cursor();
        let mut scratch = Vec::new();
        for (v, want) in adj.iter().enumerate().step_by(2) {
            assert_eq!(
                seek.record(v as VertexId).targets,
                &want[..],
                "{tag}: seek {v}"
            );
            assert_eq!(
                snap.record_into(v as VertexId, &mut scratch).targets,
                &want[..],
                "{tag}: record_into {v}"
            );
            assert_eq!(
                snap.degree(v as VertexId) as usize,
                want.len(),
                "{tag}: degree {v}"
            );
        }
        assert_eq!(snap.edges_in_range(0..n), total as u64, "{tag}: edge sum");
    }

    #[test]
    fn delta_path_convention() {
        assert_eq!(
            delta_path(Path::new("/x/web.gcsr")),
            PathBuf::from("/x/web.gcsr.gdelta")
        );
    }

    #[test]
    fn batch_body_roundtrips() {
        let add = DeltaBatch::Add(vec![Edge::new(0, 2), Edge::new(7, 7)]);
        assert_eq!(add.encode_body(), "add 0:2 7:7");
        assert_eq!(DeltaBatch::parse_body("add 0:2 7:7"), Some(add));
        let rm = DeltaBatch::Remove(vec![Edge::new(3, 1)]);
        assert_eq!(DeltaBatch::parse_body(&rm.encode_body()), Some(rm));
        assert_eq!(
            DeltaBatch::parse_body("remove"),
            Some(DeltaBatch::Remove(vec![]))
        );
        assert_eq!(DeltaBatch::parse_body("nonsense 1:2"), None);
        assert_eq!(DeltaBatch::parse_body("add 12"), None);
        assert_eq!(DeltaBatch::parse_body("add 1:x"), None);
    }

    #[test]
    fn log_replays_batches_and_truncates_torn_tail() {
        let dir = tmpdir("log");
        let csr = dir.join("g.gcsr");
        edges_to_csr(
            EdgeList::from_edges(base_edges()),
            &csr,
            &PreprocessOptions::default(),
        )
        .unwrap();
        let (mut log, replayed) = DeltaLog::open(&csr).unwrap();
        assert!(replayed.is_empty());
        let b1 = DeltaBatch::Add(vec![Edge::new(1, 3), Edge::new(2, 0)]);
        let b2 = DeltaBatch::Remove(vec![Edge::new(0, 2)]);
        log.append(&b1).unwrap();
        log.append(&b2).unwrap();
        drop(log);
        // Tear a third batch: half its framed bytes, no newline. The
        // whole batch must vanish on recovery — batches are atomic.
        let torn = framed::encode_line(&DeltaBatch::Add(vec![Edge::new(3, 3)]).encode_body());
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(delta_path(&csr))
            .unwrap();
        f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
        drop(f);
        let (mut log, replayed) = DeltaLog::open(&csr).unwrap();
        assert_eq!(replayed, vec![b1.clone(), b2.clone()]);
        // The tail is physically gone and appends continue cleanly.
        log.append(&DeltaBatch::Add(vec![Edge::new(3, 3)])).unwrap();
        drop(log);
        let (snap, log) = open_live(&csr).unwrap();
        assert_eq!(snap.delta_seq(), 3);
        assert_eq!(log.path(), delta_path(&csr));
        let (adj, _) = oracle_adjacency(
            &base_edges(),
            4,
            &[b1, b2, DeltaBatch::Add(vec![Edge::new(3, 3)])],
        );
        assert_matches_oracle(&snap, &adj, "open_live");
    }

    #[test]
    fn overlay_multiset_semantics() {
        let dir = tmpdir("semantics");
        let base = materialize(
            &dir,
            "b",
            EdgeList::from_edges(base_edges()),
            &PreprocessOptions::default(),
        );
        // Add of an edge already in the base: no-op.
        let s = snapshot(&base, &[DeltaBatch::Add(vec![Edge::new(0, 3)])]);
        assert_eq!(s.targets(0), &[2, 3, 2]);
        assert_eq!(s.n_edges(), 6);
        assert!(!s.overlay().has_removals());
        // Remove deletes every copy, including duplicates.
        let s = snapshot(&base, &[DeltaBatch::Remove(vec![Edge::new(0, 2)])]);
        assert_eq!(s.targets(0), &[3]);
        assert_eq!(s.n_edges(), 4);
        assert_eq!(s.degree(0), 1);
        assert!(s.overlay().has_removals());
        // Remove-then-re-add: base copies stay suppressed, one overlay
        // copy appears in the added (ascending) section.
        let s = snapshot(
            &base,
            &[
                DeltaBatch::Remove(vec![Edge::new(0, 2)]),
                DeltaBatch::Add(vec![Edge::new(0, 2)]),
            ],
        );
        assert_eq!(s.targets(0), &[3, 2]);
        assert_eq!(s.n_edges(), 5);
        // Add-then-remove of a new edge cancels out.
        let s = snapshot(
            &base,
            &[
                DeltaBatch::Add(vec![Edge::new(1, 3)]),
                DeltaBatch::Remove(vec![Edge::new(1, 3)]),
            ],
        );
        assert_eq!(s.targets(1), &[0]);
        assert_eq!(s.n_edges(), 6);
        // Removing a nonexistent edge changes nothing but still counts
        // as a removal (incremental recompute must stay conservative).
        let s = snapshot(&base, &[DeltaBatch::Remove(vec![Edge::new(2, 0)])]);
        assert_eq!(s.n_edges(), 6);
        assert!(s.overlay().has_removals());
        // for_each_added yields effective adds only, in order.
        let s = snapshot(
            &base,
            &[
                DeltaBatch::Add(vec![Edge::new(2, 3), Edge::new(1, 2)]),
                DeltaBatch::Remove(vec![Edge::new(2, 3)]),
            ],
        );
        let mut seen = Vec::new();
        s.overlay().for_each_added(|u, v| seen.push((u, v)));
        assert_eq!(seen, vec![(1, 2)]);
        assert_eq!(s.overlay().added_edges(), 1);
    }

    #[test]
    fn snapshot_grows_past_base_range() {
        let dir = tmpdir("grow");
        let base = materialize(
            &dir,
            "b",
            EdgeList::from_edges(base_edges()),
            &PreprocessOptions::default(),
        );
        let batches = [DeltaBatch::Add(vec![Edge::new(6, 9), Edge::new(2, 5)])];
        let s = snapshot(&base, &batches);
        assert_eq!(s.n_vertices(), 10);
        assert_eq!(s.n_edges(), 8);
        assert_eq!(s.targets(6), &[9]);
        assert_eq!(s.degree(9), 0);
        assert!(s.targets(7).is_empty());
        let (adj, n) = oracle_adjacency(&base_edges(), 4, &batches);
        assert_eq!(n, 10);
        assert_matches_oracle(&s, &adj, "grow");
        // Overlay-only tail vertices cost no base I/O; the tail chunk is
        // absorbed once the base range is exhausted.
        assert_eq!(s.words_in_range(4..10), 0);
        assert_eq!(s.chunk_end(0..10, u64::MAX), 10);
        assert_eq!(s.chunk_end(5..10, 1), 10);
        // Chunks over the base region still respect the budget.
        let first = s.chunk_end(0..10, 1);
        assert!((1..10).contains(&first));
    }

    #[test]
    fn merged_view_matches_scratch_all_flavors() {
        let batches = vec![
            DeltaBatch::Add(vec![Edge::new(1, 3), Edge::new(1, 2), Edge::new(0, 1)]),
            DeltaBatch::Remove(vec![Edge::new(0, 2), Edge::new(2, 2)]),
            DeltaBatch::Add(vec![Edge::new(0, 2), Edge::new(3, 0)]),
        ];
        let (adj, _) = oracle_adjacency(&base_edges(), 4, &batches);
        for (tag, opts) in flavors() {
            let dir = tmpdir(&format!("flavor-{tag}"));
            let base = materialize(&dir, "b", EdgeList::from_edges(base_edges()), &opts);
            let s = snapshot(&base, &batches);
            assert_matches_oracle(&s, &adj, tag);
            // An empty overlay passes base records through untouched.
            let passthrough = GraphSnapshot::from_csr(base.clone());
            assert!(!passthrough.overlay().has_removals());
            assert_eq!(passthrough.n_edges(), base.n_edges());
            for v in 0..4 {
                assert_eq!(passthrough.targets(v), base.targets(v), "{tag}");
            }
        }
    }

    #[test]
    fn snapshot_cursor_take_and_skip_match_next_rec() {
        let batches = vec![
            DeltaBatch::Add(vec![Edge::new(1, 3), Edge::new(6, 2)]),
            DeltaBatch::Remove(vec![Edge::new(0, 2)]),
        ];
        for (tag, opts) in flavors() {
            let dir = tmpdir(&format!("takeskip-{tag}"));
            let base = materialize(&dir, "b", EdgeList::from_edges(base_edges()), &opts);
            let s = snapshot(&base, &batches);
            let n = s.n_vertices() as VertexId;
            let mut cur = s.cursor(0..n);
            let mut out = Vec::new();
            let mut recs = Vec::new();
            while let Some(v) = cur.peek_vid() {
                let before = out.len();
                let (vid, degree) = cur.take_rec_into(&mut out);
                assert_eq!(vid, v, "{tag}");
                assert_eq!(degree as usize, out.len() - before, "{tag}");
                recs.push(out[before..].to_vec());
            }
            assert_eq!(cur.words_read(), s.words_in_range(0..n), "{tag}");
            let mut oracle = s.cursor(0..n);
            for want in &recs {
                assert_eq!(oracle.next_rec().unwrap().targets, &want[..], "{tag}");
            }
            // Any skip/take mix still accounts for the full base span.
            let mut cur = s.cursor(0..n);
            for v in 0..n {
                if v % 2 == 0 {
                    cur.skip_rec();
                } else {
                    cur.take_rec_into(&mut Vec::new());
                }
            }
            assert_eq!(cur.words_read(), s.words_in_range(0..n), "{tag}");
            assert_eq!(cur.bytes_read(), s.bytes_in_range(0..n), "{tag}");
        }
    }

    #[test]
    fn compaction_is_bit_identical_to_scratch_preprocessing() {
        let dir = tmpdir("compact");
        let base = materialize(
            &dir,
            "b",
            EdgeList::from_edges(base_edges()),
            &PreprocessOptions::uncompressed(),
        );
        let batches = vec![
            DeltaBatch::Remove(vec![Edge::new(0, 2)]),
            DeltaBatch::Add(vec![Edge::new(0, 2), Edge::new(5, 1)]),
        ];
        let s = snapshot(&base, &batches);
        let compacted = dir.join("compacted.gcsr");
        s.compact_to(&compacted).unwrap();

        let (adj, _) = oracle_adjacency(&base_edges(), 4, &batches);
        let scratch_path = dir.join("scratch.gcsr");
        edges_to_csr(
            oracle_edge_list(&adj),
            &scratch_path,
            &PreprocessOptions::default(),
        )
        .unwrap();
        assert_eq!(
            std::fs::read(&compacted).unwrap(),
            std::fs::read(&scratch_path).unwrap(),
            "compacted edge file differs from scratch preprocessing"
        );
        assert_eq!(
            std::fs::read(index_path(&compacted)).unwrap(),
            std::fs::read(index_path(&scratch_path)).unwrap(),
            "compacted index differs from scratch preprocessing"
        );
        // The compacted epoch reopens as a normal frozen graph.
        let reopened = DiskCsr::open(&compacted).unwrap();
        reopened.validate().unwrap();
        assert_eq!(reopened.n_edges(), s.n_edges());
    }

    static PROP_CASE: AtomicUsize = AtomicUsize::new(0);

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Satellite 3: CSR ⊕ random delta batches (including
        /// remove-then-re-add collisions) is bit-identical to
        /// preprocessing the mutated edge list from scratch, for v1 and
        /// v2 base formats, through every read path.
        #[test]
        fn prop_merged_matches_scratch(
            base_n in 1usize..14,
            raw in proptest::collection::vec((0u32..14, 0u32..14), 0..40),
            ops in proptest::collection::vec(
                (any::<bool>(), proptest::collection::vec((0u32..18, 0u32..18), 1..8)),
                0..6
            ),
            compress in any::<bool>(),
        ) {
            let case = PROP_CASE.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("gpsa-delta-prop-{}", std::process::id()))
                .join(format!("case-{case}"));
            std::fs::create_dir_all(&dir).unwrap();

            let edges: Vec<Edge> = raw
                .iter()
                .map(|&(u, v)| Edge::new(u % base_n as u32, v % base_n as u32))
                .collect();
            let batches: Vec<DeltaBatch> = ops
                .iter()
                .map(|(rm, es)| {
                    let es: Vec<Edge> = es.iter().map(|&(u, v)| Edge::new(u, v)).collect();
                    if *rm { DeltaBatch::Remove(es) } else { DeltaBatch::Add(es) }
                })
                .collect();
            let opts = if compress {
                PreprocessOptions::default()
            } else {
                PreprocessOptions::uncompressed()
            };
            materialize(
                &dir,
                "base",
                EdgeList::with_vertices(edges.clone(), base_n),
                &opts,
            );

            // Route the batches through the on-disk log, so replay and
            // parse are under test too.
            let (mut log, _) = DeltaLog::open(dir.join("base.gcsr")).unwrap();
            for b in &batches {
                log.append(b).unwrap();
            }
            drop(log);
            let (snap, _) = open_live(dir.join("base.gcsr")).unwrap();
            prop_assert_eq!(snap.delta_seq(), batches.len() as u64);

            let (adj, _) = oracle_adjacency(&edges, base_n, &batches);
            assert_matches_oracle(&snap, &adj, "prop");

            // Compaction output is byte-for-byte the scratch v2 build.
            let compacted = dir.join("compacted.gcsr");
            snap.compact_to(&compacted).unwrap();
            let scratch_path = dir.join("scratch.gcsr");
            edges_to_csr(oracle_edge_list(&adj), &scratch_path, &PreprocessOptions::default())
                .unwrap();
            prop_assert_eq!(
                std::fs::read(&compacted).unwrap(),
                std::fs::read(&scratch_path).unwrap()
            );
            prop_assert_eq!(
                std::fs::read(index_path(&compacted)).unwrap(),
                std::fs::read(index_path(&scratch_path)).unwrap()
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
