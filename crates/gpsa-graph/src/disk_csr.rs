//! The paper's on-disk CSR format (Fig. 4) and its mmap-backed reader.
//!
//! The body is one big `u32` array: for each vertex in id order, optionally
//! the vertex's out-degree, then its destination ids, then the
//! [`SEPARATOR`] word (the paper's `-1`). Dispatch actors stream this array
//! sequentially from a memory mapping.
//!
//! A companion index file stores the word offset of every vertex's record
//! so the manager can assign vertex intervals to dispatchers (paper §V-A:
//! by id ranges or balanced by edge counts) and so random access for tests
//! and tools stays `O(1)`.

use std::io::{self, BufWriter, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

use gpsa_mmap::{Advice, Mmap};

use crate::csr::Csr;
use crate::types::{VertexId, SEPARATOR};

const MAGIC: u32 = u32::from_le_bytes(*b"GCSR");
const IDX_MAGIC: u32 = u32::from_le_bytes(*b"GIDX");
const VERSION: u32 = 1;
/// Header length in u32 words: magic, version, flags, pad, n_vertices(2),
/// n_edges(2).
const HEADER_WORDS: usize = 8;
const FLAG_DEGREES: u32 = 1;

/// Derive the index-file path for a CSR file (`graph.gcsr` →
/// `graph.gcsr.gidx`).
pub fn index_path(csr: &Path) -> PathBuf {
    let mut p = csr.as_os_str().to_owned();
    p.push(".gidx");
    PathBuf::from(p)
}

/// Writes the on-disk format.
pub struct DiskCsrWriter;

impl DiskCsrWriter {
    /// Serialize `graph` to `path` (+ companion index), optionally inlining
    /// out-degrees (paper Fig. 4c).
    pub fn write<P: AsRef<Path>>(path: P, graph: &Csr, with_degrees: bool) -> io::Result<()> {
        let path = path.as_ref();
        let n = graph.n_vertices();
        let mut out = BufWriter::new(std::fs::File::create(path)?);
        let flags = if with_degrees { FLAG_DEGREES } else { 0 };
        let nv = n as u64;
        let ne = graph.n_edges() as u64;
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&flags.to_le_bytes())?;
        out.write_all(&0u32.to_le_bytes())?;
        out.write_all(&nv.to_le_bytes())?;
        out.write_all(&ne.to_le_bytes())?;

        let mut idx = BufWriter::new(std::fs::File::create(index_path(path))?);
        idx.write_all(&IDX_MAGIC.to_le_bytes())?;
        idx.write_all(&VERSION.to_le_bytes())?;
        idx.write_all(&nv.to_le_bytes())?;

        let mut word_off: u64 = 0;
        for v in 0..n as VertexId {
            idx.write_all(&word_off.to_le_bytes())?;
            let nbrs = graph.neighbors(v);
            if with_degrees {
                out.write_all(&(nbrs.len() as u32).to_le_bytes())?;
                word_off += 1;
            }
            for &d in nbrs {
                out.write_all(&d.to_le_bytes())?;
                word_off += 1;
            }
            out.write_all(&SEPARATOR.to_le_bytes())?;
            word_off += 1;
        }
        idx.write_all(&word_off.to_le_bytes())?;
        out.flush()?;
        idx.flush()?;
        Ok(())
    }
}

/// A read-only, mmap-backed view of the on-disk CSR format.
#[derive(Debug)]
pub struct DiskCsr {
    data: Mmap,
    index: Mmap,
    n_vertices: usize,
    n_edges: usize,
    with_degrees: bool,
}

/// One vertex's record as streamed from the edge file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexEdges<'a> {
    /// The vertex id.
    pub vid: VertexId,
    /// Out-degree (inlined in the file or derived from the list length).
    pub degree: u32,
    /// Destination ids.
    pub targets: &'a [VertexId],
}

impl DiskCsr {
    /// Map `path` (and its companion index) and validate headers.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<DiskCsr> {
        let path = path.as_ref();
        let data = Mmap::open(path).map_err(io::Error::from)?;
        let index = Mmap::open(index_path(path)).map_err(io::Error::from)?;
        let words: &[u32] = data.as_slice_of().map_err(io::Error::from)?;
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if words.len() < HEADER_WORDS || words[0] != MAGIC {
            return Err(bad("not a GCSR file"));
        }
        if words[1] != VERSION {
            return Err(bad("unsupported GCSR version"));
        }
        let with_degrees = words[2] & FLAG_DEGREES != 0;
        let n_vertices = (words[4] as u64 | (words[5] as u64) << 32) as usize;
        let n_edges = (words[6] as u64 | (words[7] as u64) << 32) as usize;

        let ibytes = index.as_bytes();
        if ibytes.len() < 16 {
            return Err(bad("truncated GIDX file"));
        }
        let imagic = u32::from_le_bytes(ibytes[0..4].try_into().unwrap());
        let iver = u32::from_le_bytes(ibytes[4..8].try_into().unwrap());
        let inv = u64::from_le_bytes(ibytes[8..16].try_into().unwrap());
        if imagic != IDX_MAGIC || iver != VERSION {
            return Err(bad("not a GIDX file"));
        }
        if inv as usize != n_vertices {
            return Err(bad("index/data vertex count mismatch"));
        }
        if ibytes.len() != 16 + 8 * (n_vertices + 1) {
            return Err(bad("GIDX length mismatch"));
        }
        let expected_body = n_edges + n_vertices * (1 + usize::from(with_degrees));
        if words.len() != HEADER_WORDS + expected_body {
            return Err(bad("GCSR body length mismatch"));
        }
        let csr = DiskCsr {
            data,
            index,
            n_vertices,
            n_edges,
            with_degrees,
        };
        if csr.word_offset(n_vertices) != expected_body as u64 {
            return Err(bad("GIDX terminal offset mismatch"));
        }
        Ok(csr)
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Whether out-degrees are inlined (paper Fig. 4c vs 4b).
    pub fn with_degrees(&self) -> bool {
        self.with_degrees
    }

    /// Total size of the edge file in bytes (for the paper's compression
    /// discussion: twitter 26 GB edge list → 6.5 GB CSR).
    pub fn file_bytes(&self) -> usize {
        self.data.len()
    }

    /// Advise the kernel we will stream the edge file sequentially.
    pub fn advise_sequential(&self) -> io::Result<()> {
        self.data
            .advise(Advice::Sequential)
            .map_err(io::Error::from)
    }

    /// Advise the kernel the edge file will be accessed at random (the
    /// strided dispatch path hops between records, where sequential
    /// readahead would only pollute the page cache).
    pub fn advise_random(&self) -> io::Result<()> {
        self.data.advise(Advice::Random).map_err(io::Error::from)
    }

    /// Advise the kernel about just the span of the edge file holding the
    /// records of `vertices`, leaving the rest of the map untouched. Sparse
    /// and strided dispatchers use this so one actor's `Random` hint does
    /// not demote its siblings' sequential windows.
    pub fn advise_vertex_range(&self, vertices: Range<VertexId>, advice: Advice) -> io::Result<()> {
        assert!(vertices.end as usize <= self.n_vertices);
        if vertices.start >= vertices.end {
            return Ok(());
        }
        let start = HEADER_WORDS as u64 + self.word_offset(vertices.start as usize);
        let end = HEADER_WORDS as u64 + self.word_offset(vertices.end as usize);
        self.data
            .advise_range(start as usize * 4, (end - start) as usize * 4, advice)
            .map_err(io::Error::from)
    }

    fn body(&self) -> &[u32] {
        &self.data.as_slice_of::<u32>().expect("validated at open")[HEADER_WORDS..]
    }

    /// Word offset of vertex `v`'s record within the body
    /// (`v == n_vertices` gives the body length).
    pub fn word_offset(&self, v: usize) -> u64 {
        debug_assert!(v <= self.n_vertices);
        let b = self.index.as_bytes();
        let at = 16 + 8 * v;
        u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
    }

    /// Random access to one vertex's record.
    pub fn vertex_edges(&self, v: VertexId) -> VertexEdges<'_> {
        assert!((v as usize) < self.n_vertices, "vertex {v} out of range");
        let start = self.word_offset(v as usize) as usize;
        let end = self.word_offset(v as usize + 1) as usize;
        let rec = &self.body()[start..end];
        debug_assert_eq!(*rec.last().unwrap(), SEPARATOR);
        if self.with_degrees {
            VertexEdges {
                vid: v,
                degree: rec[0],
                targets: &rec[1..rec.len() - 1],
            }
        } else {
            VertexEdges {
                vid: v,
                degree: (rec.len() - 1) as u32,
                targets: &rec[..rec.len() - 1],
            }
        }
    }

    /// A sequential cursor over the records of `vertices` (a contiguous id
    /// range) — the dispatch actor's streaming read path.
    pub fn cursor(&self, vertices: Range<VertexId>) -> EdgeCursor<'_> {
        assert!(vertices.end as usize <= self.n_vertices);
        let start_word = self.word_offset(vertices.start as usize) as usize;
        EdgeCursor {
            csr: self,
            next: vertices.start,
            end: vertices.end,
            pos: start_word,
        }
    }

    /// End of the first chunk of `vertices` covering roughly `edge_budget`
    /// body words: the smallest `end > vertices.start` whose records span
    /// at least the budget, or `vertices.end` if the whole range fits.
    /// Always makes progress (returns at least `vertices.start + 1` for a
    /// non-empty range), so a single vertex fatter than the budget forms a
    /// chunk of its own. `O(log n)` via the word-offset index.
    pub fn chunk_end(&self, vertices: Range<VertexId>, edge_budget: u64) -> VertexId {
        assert!(vertices.end as usize <= self.n_vertices);
        if vertices.start >= vertices.end {
            return vertices.end;
        }
        let target = self
            .word_offset(vertices.start as usize)
            .saturating_add(edge_budget.max(1));
        if self.word_offset(vertices.end as usize) <= target {
            return vertices.end;
        }
        // Binary search for the smallest end with word_offset(end) >= target;
        // word offsets are monotone in vertex id.
        let mut lo = vertices.start as usize + 1;
        let mut hi = vertices.end as usize;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.word_offset(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as VertexId
    }

    /// Split `vertices` into contiguous subranges of roughly `edge_budget`
    /// body words each (see [`DiskCsr::chunk_end`]). The chunks tile the
    /// input range exactly; an empty range yields no chunks.
    pub fn chunks(&self, vertices: Range<VertexId>, edge_budget: u64) -> ChunkCursor<'_> {
        assert!(vertices.end as usize <= self.n_vertices);
        ChunkCursor {
            csr: self,
            next: vertices.start,
            end: vertices.end,
            budget: edge_budget,
        }
    }

    /// Materialize the whole graph back into an in-memory edge list
    /// (source-sorted). Used by tools that bridge to engines consuming
    /// edge lists.
    pub fn to_edge_list(&self) -> crate::EdgeList {
        let mut edges = Vec::with_capacity(self.n_edges);
        for rec in self.cursor(0..self.n_vertices as u32) {
            for &dst in rec.targets {
                edges.push(crate::Edge::new(rec.vid, dst));
            }
        }
        crate::EdgeList::with_vertices(edges, self.n_vertices)
    }

    /// A seeking cursor for sparse (frontier-driven) dispatch: the caller
    /// feeds it a strictly ascending stream of active vertex ids and gets
    /// each record back. Adjacent ids coalesce into one contiguous scan —
    /// the cursor only consults the word-offset index (a seek) when the
    /// requested id is not the one right after the last record read.
    pub fn seek_cursor(&self) -> SeekCursor<'_> {
        SeekCursor {
            csr: self,
            next: 0,
            pos: 0,
            words_read: 0,
            seeks: 0,
        }
    }

    /// Sum of out-degrees over an id range (used by the edge-balanced
    /// partitioner).
    pub fn edges_in_range(&self, vertices: Range<VertexId>) -> u64 {
        let words =
            self.word_offset(vertices.end as usize) - self.word_offset(vertices.start as usize);
        let n = (vertices.end - vertices.start) as u64;
        // Each record is degree? + targets + separator.
        words - n * (1 + u64::from(self.with_degrees))
    }
}

/// Iterator over ~equal-edge-weight vertex subranges. See
/// [`DiskCsr::chunks`].
#[derive(Debug)]
pub struct ChunkCursor<'a> {
    csr: &'a DiskCsr,
    next: VertexId,
    end: VertexId,
    budget: u64,
}

impl Iterator for ChunkCursor<'_> {
    type Item = Range<VertexId>;

    fn next(&mut self) -> Option<Range<VertexId>> {
        if self.next >= self.end {
            return None;
        }
        let start = self.next;
        self.next = self.csr.chunk_end(start..self.end, self.budget);
        Some(start..self.next)
    }
}

/// Seek-based record reader over an ascending id stream. See
/// [`DiskCsr::seek_cursor`].
#[derive(Debug)]
pub struct SeekCursor<'a> {
    csr: &'a DiskCsr,
    /// The vertex whose record starts at `pos` — requests for exactly this
    /// id continue the current scan without touching the index.
    next: VertexId,
    pos: usize,
    words_read: u64,
    seeks: u64,
}

impl<'a> SeekCursor<'a> {
    /// Read vertex `v`'s record. Ids must be requested in strictly
    /// ascending order across calls.
    pub fn record(&mut self, v: VertexId) -> VertexEdges<'a> {
        assert!(
            (v as usize) < self.csr.n_vertices,
            "vertex {v} out of range"
        );
        assert!(
            v >= self.next,
            "seek cursor ids must ascend ({v} < {})",
            self.next
        );
        if v != self.next {
            self.pos = self.csr.word_offset(v as usize) as usize;
            self.seeks += 1;
        }
        let body = self.csr.body();
        let mut pos = self.pos;
        let degree_word = if self.csr.with_degrees {
            let d = body[pos];
            pos += 1;
            Some(d)
        } else {
            None
        };
        let start = pos;
        while body[pos] != SEPARATOR {
            pos += 1;
        }
        let targets = &body[start..pos];
        self.words_read += (pos + 1 - self.pos) as u64;
        self.pos = pos + 1;
        self.next = v + 1;
        VertexEdges {
            vid: v,
            degree: degree_word.unwrap_or(targets.len() as u32),
            targets,
        }
    }

    /// Body words consumed so far (degree words, targets, separators) —
    /// the sparse-mode `edges_streamed` counter.
    pub fn words_read(&self) -> u64 {
        self.words_read
    }

    /// Index lookups performed (coalesced runs don't seek).
    pub fn seeks(&self) -> u64 {
        self.seeks
    }
}

/// Sequential streaming iterator over vertex records. See
/// [`DiskCsr::cursor`].
#[derive(Debug)]
pub struct EdgeCursor<'a> {
    csr: &'a DiskCsr,
    next: VertexId,
    end: VertexId,
    pos: usize,
}

impl<'a> Iterator for EdgeCursor<'a> {
    type Item = VertexEdges<'a>;

    fn next(&mut self) -> Option<VertexEdges<'a>> {
        if self.next >= self.end {
            return None;
        }
        let body = self.csr.body();
        let vid = self.next;
        let mut pos = self.pos;
        let degree_word = if self.csr.with_degrees {
            let d = body[pos];
            pos += 1;
            Some(d)
        } else {
            None
        };
        let start = pos;
        // Scan forward to the separator. Sequential, cache-friendly — this
        // is the paper's "edges are processed by dispatching actors
        // sequentially from disk".
        while body[pos] != SEPARATOR {
            pos += 1;
        }
        let targets = &body[start..pos];
        self.pos = pos + 1;
        self.next += 1;
        Some(VertexEdges {
            vid,
            degree: degree_word.unwrap_or(targets.len() as u32),
            targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-diskcsr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fig4() -> Csr {
        Csr::from_edges(
            4,
            vec![
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(1, 0),
                Edge::new(3, 1),
                Edge::new(3, 2),
            ],
        )
    }

    #[test]
    fn roundtrip_with_and_without_degrees() {
        for with_deg in [false, true] {
            let path = tmpdir().join(format!("fig4-{with_deg}.gcsr"));
            DiskCsrWriter::write(&path, &fig4(), with_deg).unwrap();
            let d = DiskCsr::open(&path).unwrap();
            assert_eq!(d.n_vertices(), 4);
            assert_eq!(d.n_edges(), 5);
            assert_eq!(d.with_degrees(), with_deg);
            let v0 = d.vertex_edges(0);
            assert_eq!(v0.degree, 2);
            assert_eq!(v0.targets, &[2, 3]);
            let v2 = d.vertex_edges(2);
            assert_eq!(v2.degree, 0);
            assert!(v2.targets.is_empty());
            let v3 = d.vertex_edges(3);
            assert_eq!(v3.targets, &[1, 2]);
        }
    }

    #[test]
    fn cursor_streams_ranges() {
        let path = tmpdir().join("cursor.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        let all: Vec<_> = d.cursor(0..4).collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].vid, 0);
        assert_eq!(all[3].targets, &[1, 2]);
        let mid: Vec<_> = d.cursor(1..3).collect();
        assert_eq!(mid.len(), 2);
        assert_eq!(mid[0].vid, 1);
        assert_eq!(mid[0].targets, &[0]);
        assert_eq!(mid[1].vid, 2);
        assert!(d.cursor(2..2).next().is_none());
    }

    #[test]
    fn edges_in_range_matches_degrees() {
        let path = tmpdir().join("range.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        assert_eq!(d.edges_in_range(0..4), 5);
        assert_eq!(d.edges_in_range(0..1), 2);
        assert_eq!(d.edges_in_range(1..3), 1);
        assert_eq!(d.edges_in_range(2..2), 0);
    }

    #[test]
    fn chunk_end_respects_budget_and_progress() {
        // Fig. 4c record word offsets: [0, 4, 7, 9, 13].
        let path = tmpdir().join("chunk.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        // A tiny budget still advances one vertex per chunk.
        assert_eq!(d.chunk_end(0..4, 1), 1);
        // Budget larger than the remaining range returns the range end.
        assert_eq!(d.chunk_end(0..4, 100), 4);
        assert_eq!(d.chunk_end(3..4, 1), 4);
        // Mid-range: the 10-word target lands past vertex 3's offset (9).
        assert_eq!(d.chunk_end(2..4, 3), 4);
        // ...while an 8-word target stops at vertex 3 (offset 9 >= 8).
        assert_eq!(d.chunk_end(2..4, 1), 3);
        // Empty range is a no-op.
        assert_eq!(d.chunk_end(2..2, 1), 2);
    }

    #[test]
    fn chunks_tile_the_range() {
        let path = tmpdir().join("chunks.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        let got: Vec<_> = d.chunks(0..4, 4).collect();
        assert_eq!(got, vec![0..1, 1..3, 3..4]);
        assert_eq!(d.chunks(0..4, u64::MAX).collect::<Vec<_>>(), vec![0..4]);
        assert!(d.chunks(2..2, 4).next().is_none());
        // Per-vertex chunking covers every vertex exactly once.
        let singles: Vec<_> = d.chunks(0..4, 1).collect();
        assert_eq!(singles, vec![0..1, 1..2, 2..3, 3..4]);
    }

    #[test]
    fn golden_bytes_fig4b_layout() {
        // Paper Fig. 4b: without degrees, body is
        // 2 3 -1 | 0 -1 | -1 | 1 2 -1
        let path = tmpdir().join("golden.gcsr");
        DiskCsrWriter::write(&path, &fig4(), false).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let s = SEPARATOR;
        assert_eq!(&words[HEADER_WORDS..], &[2, 3, s, 0, s, s, 1, 2, s]);
    }

    #[test]
    fn golden_bytes_fig4c_layout_with_degrees() {
        // Paper Fig. 4c: with degrees, body is
        // 2 2 3 -1 | 1 0 -1 | 0 -1 | 2 1 2 -1
        let path = tmpdir().join("golden-deg.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let s = SEPARATOR;
        assert_eq!(
            &words[HEADER_WORDS..],
            &[2, 2, 3, s, 1, 0, s, 0, s, 2, 1, 2, s]
        );
    }

    #[test]
    fn seek_cursor_matches_random_access_and_coalesces() {
        for with_deg in [false, true] {
            let path = tmpdir().join(format!("seek-{with_deg}.gcsr"));
            DiskCsrWriter::write(&path, &fig4(), with_deg).unwrap();
            let d = DiskCsr::open(&path).unwrap();

            // Sparse visit {0, 3}: one seek (vertex 3), records identical
            // to random access.
            let mut c = d.seek_cursor();
            let r0 = c.record(0);
            assert_eq!((r0.vid, r0.degree, r0.targets), (0, 2, &[2u32, 3][..]));
            assert_eq!(c.seeks(), 0, "first record starts at offset 0");
            let r3 = c.record(3);
            assert_eq!(r3.targets, d.vertex_edges(3).targets);
            assert_eq!(c.seeks(), 1);
            // Words: exactly the two visited records.
            let rec_words = |v: usize| d.word_offset(v + 1) - d.word_offset(v);
            assert_eq!(c.words_read(), rec_words(0) + rec_words(3));

            // Adjacent ids coalesce: visiting every vertex seeks zero times
            // and reads exactly the whole body.
            let mut c = d.seek_cursor();
            for v in 0..4 {
                assert_eq!(c.record(v).targets, d.vertex_edges(v).targets);
            }
            assert_eq!(c.seeks(), 0);
            assert_eq!(c.words_read(), d.word_offset(4));
        }
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn seek_cursor_rejects_descending_ids() {
        let path = tmpdir().join("seek-desc.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        let mut c = d.seek_cursor();
        c.record(2);
        c.record(2);
    }

    #[test]
    fn advise_vertex_range_accepts_any_subrange() {
        let path = tmpdir().join("advise.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        d.advise_vertex_range(0..4, Advice::Random).unwrap();
        d.advise_vertex_range(1..3, Advice::Sequential).unwrap();
        d.advise_vertex_range(2..2, Advice::Random).unwrap();
        d.advise_vertex_range(3..4, Advice::Normal).unwrap();
    }

    #[test]
    fn corrupt_files_rejected() {
        let dir = tmpdir();
        let path = dir.join("corrupt.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        // Flip the magic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(DiskCsr::open(&path).is_err());

        // Truncate the body.
        let path2 = dir.join("trunc.gcsr");
        DiskCsrWriter::write(&path2, &fig4(), true).unwrap();
        let bytes = std::fs::read(&path2).unwrap();
        std::fs::write(&path2, &bytes[..bytes.len() - 4]).unwrap();
        assert!(DiskCsr::open(&path2).is_err());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let path = tmpdir().join("empty.gcsr");
        DiskCsrWriter::write(&path, &Csr::from_edges(3, Vec::<Edge>::new()), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        assert_eq!(d.n_vertices(), 3);
        assert_eq!(d.n_edges(), 0);
        assert_eq!(d.cursor(0..3).count(), 3);
        assert!(d
            .cursor(0..3)
            .all(|r| r.targets.is_empty() && r.degree == 0));
    }
}
