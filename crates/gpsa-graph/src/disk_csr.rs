//! The paper's on-disk CSR format (Fig. 4) and its mmap-backed reader.
//!
//! Two record encodings share the same header and index scheme:
//!
//! * **v1** — the paper's layout: one big `u32` array; for each vertex in
//!   id order, optionally the vertex's out-degree, then its destination
//!   ids, then the [`SEPARATOR`] word (the paper's `-1`). The index stores
//!   per-vertex *word* offsets.
//! * **v2** — compressed: each vertex's targets are one delta-varint byte
//!   run ([`crate::varint`]) with no separator and no inlined degree; the
//!   index generalizes to per-vertex *(byte offset, cumulative edge
//!   count)* pairs, so degrees and edge counts stay `O(1)` without
//!   touching the body.
//!
//! Dispatch actors stream the body sequentially from a memory mapping;
//! the index lets the manager assign vertex intervals to dispatchers
//! (paper §V-A: by id ranges or balanced by edge counts) and keeps random
//! access for tests and tools `O(1)`.
//!
//! Readers are format-transparent: [`DiskCsr::open`] accepts both
//! versions and every cursor decodes v2 runs into an internal scratch
//! buffer, handing out the same [`VertexEdges`] records either way.

use std::io::{self, BufWriter, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

use gpsa_mmap::{Advice, Mmap};

use crate::csr::Csr;
use crate::types::{VertexId, SEPARATOR};
use crate::varint;

const MAGIC: u32 = u32::from_le_bytes(*b"GCSR");
const IDX_MAGIC: u32 = u32::from_le_bytes(*b"GIDX");
/// The uncompressed word-array encoding (paper Fig. 4).
pub const VERSION_V1: u32 = 1;
/// The delta-varint compressed encoding.
pub const VERSION_V2: u32 = 2;
const MAX_VERSION: u32 = VERSION_V2;
/// Header length in u32 words: magic, version, flags, pad, n_vertices(2),
/// n_edges(2).
const HEADER_WORDS: usize = 8;
const HEADER_BYTES: usize = HEADER_WORDS * 4;
const FLAG_DEGREES: u32 = 1;

/// Derive the index-file path for a CSR file (`graph.gcsr` →
/// `graph.gcsr.gidx`).
pub fn index_path(csr: &Path) -> PathBuf {
    let mut p = csr.as_os_str().to_owned();
    p.push(".gidx");
    PathBuf::from(p)
}

/// A structural problem with an on-disk CSR file — reported instead of a
/// panic so tools and the serving layer can surface *what* is wrong with
/// *which* file (and, for body corruption, which vertex).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrFormatError {
    /// The data file does not start with the `GCSR` magic.
    NotGcsr,
    /// The companion index is missing its `GIDX` magic or disagrees with
    /// the data file's version.
    BadIndex(String),
    /// The file was written by a newer format than this reader supports
    /// (e.g. opening a v2 compressed graph with a v1-only build).
    UnsupportedVersion {
        /// Version word found in the header.
        found: u32,
        /// Newest version this reader understands.
        max_supported: u32,
    },
    /// Header, body, and index lengths disagree.
    LengthMismatch(String),
    /// A vertex's varint run (v2) or separator structure (v1) failed to
    /// decode.
    CorruptRun {
        /// The vertex whose record is damaged.
        vertex: VertexId,
        /// What went wrong mid-record.
        detail: String,
    },
}

impl CsrFormatError {
    /// Recover the typed error from an [`io::Error`] produced by
    /// [`DiskCsr::open`] (it travels as the error's inner source).
    pub fn from_io(e: &io::Error) -> Option<&CsrFormatError> {
        e.get_ref().and_then(|inner| inner.downcast_ref())
    }
}

impl std::fmt::Display for CsrFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrFormatError::NotGcsr => write!(f, "not a GCSR file (bad magic)"),
            CsrFormatError::BadIndex(detail) => write!(f, "bad GIDX index: {detail}"),
            CsrFormatError::UnsupportedVersion {
                found,
                max_supported,
            } => write!(
                f,
                "GCSR version {found} is newer than this reader supports \
                 (max {max_supported}); re-preprocess or upgrade"
            ),
            CsrFormatError::LengthMismatch(detail) => {
                write!(f, "GCSR length mismatch: {detail}")
            }
            CsrFormatError::CorruptRun { vertex, detail } => {
                write!(f, "corrupt edge run at vertex {vertex}: {detail}")
            }
        }
    }
}

impl std::error::Error for CsrFormatError {}

impl From<CsrFormatError> for io::Error {
    fn from(e: CsrFormatError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Writes the on-disk format.
pub struct DiskCsrWriter;

impl DiskCsrWriter {
    /// Serialize `graph` to `path` (+ companion index) in the v1
    /// uncompressed layout, optionally inlining out-degrees (paper
    /// Fig. 4c).
    pub fn write<P: AsRef<Path>>(path: P, graph: &Csr, with_degrees: bool) -> io::Result<()> {
        let path = path.as_ref();
        let n = graph.n_vertices();
        let mut out = BufWriter::new(std::fs::File::create(path)?);
        let flags = if with_degrees { FLAG_DEGREES } else { 0 };
        let nv = n as u64;
        let ne = graph.n_edges() as u64;
        write_data_header(&mut out, VERSION_V1, flags, nv, ne)?;

        let mut idx = BufWriter::new(std::fs::File::create(index_path(path))?);
        write_index_header(&mut idx, VERSION_V1, nv)?;

        let mut word_off: u64 = 0;
        for v in 0..n as VertexId {
            idx.write_all(&word_off.to_le_bytes())?;
            let nbrs = graph.neighbors(v);
            if with_degrees {
                out.write_all(&(nbrs.len() as u32).to_le_bytes())?;
                word_off += 1;
            }
            for &d in nbrs {
                out.write_all(&d.to_le_bytes())?;
                word_off += 1;
            }
            out.write_all(&SEPARATOR.to_le_bytes())?;
            word_off += 1;
        }
        idx.write_all(&word_off.to_le_bytes())?;
        out.flush()?;
        idx.flush()?;
        Ok(())
    }

    /// Serialize `graph` to `path` (+ companion index) in the v2
    /// delta-varint compressed layout.
    pub fn write_compressed<P: AsRef<Path>>(path: P, graph: &Csr) -> io::Result<()> {
        let path = path.as_ref();
        let n = graph.n_vertices();
        let mut out = BufWriter::new(std::fs::File::create(path)?);
        write_data_header(&mut out, VERSION_V2, 0, n as u64, graph.n_edges() as u64)?;

        let mut idx = BufWriter::new(std::fs::File::create(index_path(path))?);
        write_index_header(&mut idx, VERSION_V2, n as u64)?;

        let mut byte_off: u64 = 0;
        let mut edge_off: u64 = 0;
        let mut run = Vec::new();
        for v in 0..n as VertexId {
            idx.write_all(&byte_off.to_le_bytes())?;
            idx.write_all(&edge_off.to_le_bytes())?;
            let nbrs = graph.neighbors(v);
            run.clear();
            varint::encode_run(nbrs, &mut run);
            out.write_all(&run)?;
            byte_off += run.len() as u64;
            edge_off += nbrs.len() as u64;
        }
        idx.write_all(&byte_off.to_le_bytes())?;
        idx.write_all(&edge_off.to_le_bytes())?;
        out.flush()?;
        idx.flush()?;
        Ok(())
    }
}

/// Write the shared `GCSR` data-file header.
pub(crate) fn write_data_header<W: Write>(
    w: &mut W,
    version: u32,
    flags: u32,
    n_vertices: u64,
    n_edges: u64,
) -> io::Result<()> {
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&n_vertices.to_le_bytes())?;
    w.write_all(&n_edges.to_le_bytes())
}

/// Write the shared `GIDX` index-file header.
pub(crate) fn write_index_header<W: Write>(
    w: &mut W,
    version: u32,
    n_vertices: u64,
) -> io::Result<()> {
    w.write_all(&IDX_MAGIC.to_le_bytes())?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(&n_vertices.to_le_bytes())
}

/// A read-only, mmap-backed view of the on-disk CSR format (v1 or v2).
#[derive(Debug)]
pub struct DiskCsr {
    data: Mmap,
    index: Mmap,
    n_vertices: usize,
    n_edges: usize,
    version: u32,
    with_degrees: bool,
}

/// One vertex's record as streamed from the edge file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexEdges<'a> {
    /// The vertex id.
    pub vid: VertexId,
    /// Out-degree (inlined in the file or derived from the index).
    pub degree: u32,
    /// Destination ids.
    pub targets: &'a [VertexId],
}

impl DiskCsr {
    /// Map `path` (and its companion index) and validate headers. Format
    /// problems surface as [`io::ErrorKind::InvalidData`] wrapping a
    /// [`CsrFormatError`] (see [`CsrFormatError::from_io`]).
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<DiskCsr> {
        let path = path.as_ref();
        let data = Mmap::open(path).map_err(io::Error::from)?;
        let index = Mmap::open(index_path(path)).map_err(io::Error::from)?;
        let bytes = data.as_bytes();
        let len_err = |m: String| io::Error::from(CsrFormatError::LengthMismatch(m));
        if bytes.len() < HEADER_BYTES {
            return Err(len_err(format!(
                "file is {} bytes, smaller than the {HEADER_BYTES}-byte header",
                bytes.len()
            )));
        }
        let word = |i: usize| u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap());
        if word(0) != MAGIC {
            return Err(CsrFormatError::NotGcsr.into());
        }
        let version = word(1);
        if version == 0 || version > MAX_VERSION {
            return Err(CsrFormatError::UnsupportedVersion {
                found: version,
                max_supported: MAX_VERSION,
            }
            .into());
        }
        let with_degrees = version == VERSION_V2 || word(2) & FLAG_DEGREES != 0;
        let n_vertices = (word(4) as u64 | (word(5) as u64) << 32) as usize;
        let n_edges = (word(6) as u64 | (word(7) as u64) << 32) as usize;

        let ibytes = index.as_bytes();
        if ibytes.len() < 16 {
            return Err(CsrFormatError::BadIndex("truncated GIDX header".into()).into());
        }
        let imagic = u32::from_le_bytes(ibytes[0..4].try_into().unwrap());
        let iver = u32::from_le_bytes(ibytes[4..8].try_into().unwrap());
        let inv = u64::from_le_bytes(ibytes[8..16].try_into().unwrap());
        if imagic != IDX_MAGIC {
            return Err(CsrFormatError::BadIndex("missing GIDX magic".into()).into());
        }
        if iver != version {
            return Err(CsrFormatError::BadIndex(format!(
                "index version {iver} != data version {version}"
            ))
            .into());
        }
        if inv as usize != n_vertices {
            return Err(CsrFormatError::BadIndex(format!(
                "index has {inv} vertices, data has {n_vertices}"
            ))
            .into());
        }
        let entry_bytes = if version == VERSION_V1 { 8 } else { 16 };
        if ibytes.len() != 16 + entry_bytes * (n_vertices + 1) {
            return Err(CsrFormatError::BadIndex(format!("GIDX is {} bytes", ibytes.len())).into());
        }
        let csr = DiskCsr {
            data,
            index,
            n_vertices,
            n_edges,
            version,
            with_degrees,
        };
        match version {
            VERSION_V1 => {
                csr.data
                    .as_slice_of::<u32>()
                    .map_err(|_| len_err("v1 body is not word-aligned".into()))?;
                let expected_body = n_edges + n_vertices * (1 + usize::from(with_degrees));
                if csr.data.len() != HEADER_BYTES + expected_body * 4 {
                    return Err(len_err(format!(
                        "v1 body is {} bytes, expected {}",
                        csr.data.len() - HEADER_BYTES.min(csr.data.len()),
                        expected_body * 4
                    )));
                }
                if csr.word_offset(n_vertices) != expected_body as u64 {
                    return Err(len_err("GIDX terminal offset mismatch".into()));
                }
            }
            _ => {
                let body_bytes = csr.data.len() - HEADER_BYTES;
                if csr.byte_offset(n_vertices) != body_bytes as u64 {
                    return Err(len_err(format!(
                        "index says the body ends at byte {}, file has {body_bytes}",
                        csr.byte_offset(n_vertices)
                    )));
                }
                if csr.edge_offset(n_vertices) != n_edges as u64 {
                    return Err(len_err(format!(
                        "index counts {} edges, header says {n_edges}",
                        csr.edge_offset(n_vertices)
                    )));
                }
            }
        }
        Ok(csr)
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Format version of the underlying file ([`VERSION_V1`] or
    /// [`VERSION_V2`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether the body uses the v2 delta-varint encoding.
    pub fn compressed(&self) -> bool {
        self.version == VERSION_V2
    }

    /// Whether out-degrees are `O(1)` without scanning a record: inlined
    /// degree words for v1 (paper Fig. 4c vs 4b), always for v2 (the
    /// index carries cumulative edge counts).
    pub fn with_degrees(&self) -> bool {
        self.with_degrees
    }

    /// Total size of the edge file in bytes (for the paper's compression
    /// discussion: twitter 26 GB edge list → 6.5 GB CSR).
    pub fn file_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total size of the companion index file in bytes.
    pub fn index_bytes(&self) -> usize {
        self.index.len()
    }

    /// Advise the kernel we will stream the edge file sequentially.
    pub fn advise_sequential(&self) -> io::Result<()> {
        self.data
            .advise(Advice::Sequential)
            .map_err(io::Error::from)
    }

    /// Advise the kernel the edge file will be accessed at random (the
    /// strided dispatch path hops between records, where sequential
    /// readahead would only pollute the page cache).
    pub fn advise_random(&self) -> io::Result<()> {
        self.data.advise(Advice::Random).map_err(io::Error::from)
    }

    /// Best-effort transparent-hugepage hint for the edge file (see
    /// [`Mmap::advise_hugepage`]). Returns whether the kernel accepted
    /// the hint; `false` is expected on kernels without file-backed THP.
    pub fn advise_hugepage(&self) -> bool {
        self.data.advise_hugepage()
    }

    /// Advise the kernel about just the span of the edge file holding the
    /// records of `vertices`, leaving the rest of the map untouched. Sparse
    /// and strided dispatchers use this so one actor's `Random` hint does
    /// not demote its siblings' sequential windows.
    pub fn advise_vertex_range(&self, vertices: Range<VertexId>, advice: Advice) -> io::Result<()> {
        assert!(vertices.end as usize <= self.n_vertices);
        if vertices.start >= vertices.end {
            return Ok(());
        }
        let start = HEADER_BYTES as u64 + self.byte_offset(vertices.start as usize);
        let end = HEADER_BYTES as u64 + self.byte_offset(vertices.end as usize);
        self.data
            .advise_range(start as usize, (end - start) as usize, advice)
            .map_err(io::Error::from)
    }

    /// The v1 body as a word slice.
    fn body(&self) -> &[u32] {
        debug_assert_eq!(self.version, VERSION_V1);
        &self.data.as_slice_of::<u32>().expect("validated at open")[HEADER_WORDS..]
    }

    /// The v2 body as a byte slice.
    fn body_bytes(&self) -> &[u8] {
        &self.data.as_bytes()[HEADER_BYTES..]
    }

    /// Word offset of vertex `v`'s record within the body
    /// (`v == n_vertices` gives the body length). v1 files only.
    pub fn word_offset(&self, v: usize) -> u64 {
        debug_assert!(v <= self.n_vertices);
        assert_eq!(self.version, VERSION_V1, "word offsets are a v1 notion");
        let b = self.index.as_bytes();
        let at = 16 + 8 * v;
        u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
    }

    /// Byte offset of vertex `v`'s record within the body
    /// (`v == n_vertices` gives the body length in bytes).
    pub fn byte_offset(&self, v: usize) -> u64 {
        debug_assert!(v <= self.n_vertices);
        if self.version == VERSION_V1 {
            return self.word_offset(v) * 4;
        }
        let b = self.index.as_bytes();
        let at = 16 + 16 * v;
        u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
    }

    /// Cumulative edge count ahead of vertex `v` (`v == n_vertices` gives
    /// `n_edges`).
    pub fn edge_offset(&self, v: usize) -> u64 {
        debug_assert!(v <= self.n_vertices);
        if self.version == VERSION_V1 {
            // v1 record = degree? + targets + separator, so subtracting the
            // per-record overhead from the word offset leaves edges.
            return self.word_offset(v) - v as u64 * (1 + u64::from(self.with_degrees));
        }
        let b = self.index.as_bytes();
        let at = 16 + 16 * v + 8;
        u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
    }

    /// Format-independent stream position of vertex `v` in *logical
    /// words*: for v1 the literal word offset; for v2 each record counts
    /// its targets plus one boundary word (standing in for v1's
    /// separator). Monotone in `v`, so chunking and the streamed/skipped
    /// conservation accounting work identically for both formats.
    pub fn logical_offset(&self, v: usize) -> u64 {
        if self.version == VERSION_V1 {
            self.word_offset(v)
        } else {
            self.edge_offset(v) + v as u64
        }
    }

    /// Logical words spanned by the records of `vertices` (see
    /// [`DiskCsr::logical_offset`]).
    pub fn words_in_range(&self, vertices: Range<VertexId>) -> u64 {
        self.logical_offset(vertices.end as usize) - self.logical_offset(vertices.start as usize)
    }

    /// Physical bytes spanned by the records of `vertices`.
    pub fn bytes_in_range(&self, vertices: Range<VertexId>) -> u64 {
        self.byte_offset(vertices.end as usize) - self.byte_offset(vertices.start as usize)
    }

    /// Logical words per record beyond its targets (v1: separator plus
    /// the optional degree word; v2: the single boundary word).
    pub fn record_overhead_words(&self) -> u64 {
        if self.version == VERSION_V1 {
            1 + u64::from(self.with_degrees)
        } else {
            1
        }
    }

    /// Out-degree of `v` — `O(1)` from the index for both formats.
    pub fn degree(&self, v: VertexId) -> u32 {
        assert!((v as usize) < self.n_vertices, "vertex {v} out of range");
        (self.edge_offset(v as usize + 1) - self.edge_offset(v as usize)) as u32
    }

    /// Random access to one vertex's record, decoding (v2) or borrowing
    /// (v1) into `scratch`. The returned record borrows `scratch`, so
    /// callers that batch lookups reuse one buffer across calls.
    pub fn record_into<'s>(&'s self, v: VertexId, scratch: &'s mut Vec<u32>) -> VertexEdges<'s> {
        match self.try_record_into(v, scratch) {
            Ok(rec) => rec,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`DiskCsr::record_into`]: corrupt v2 runs report
    /// [`CsrFormatError::CorruptRun`] naming the vertex instead of
    /// panicking.
    pub fn try_record_into<'s>(
        &'s self,
        v: VertexId,
        scratch: &'s mut Vec<u32>,
    ) -> Result<VertexEdges<'s>, CsrFormatError> {
        assert!((v as usize) < self.n_vertices, "vertex {v} out of range");
        if self.version == VERSION_V1 {
            let start = self.word_offset(v as usize) as usize;
            let end = self.word_offset(v as usize + 1) as usize;
            let rec = &self.body()[start..end];
            return v1_record(v, rec, self.with_degrees);
        }
        let start = self.byte_offset(v as usize) as usize;
        let end = self.byte_offset(v as usize + 1) as usize;
        let degree = self.degree(v) as usize;
        scratch.clear();
        decode_v2_record(v, &self.body_bytes()[start..end], degree, scratch)?;
        Ok(VertexEdges {
            vid: v,
            degree: degree as u32,
            targets: &scratch[..],
        })
    }

    /// One vertex's targets as an owned vector (convenience for tests and
    /// tools; hot paths use the cursors or [`DiskCsr::record_into`]).
    pub fn targets(&self, v: VertexId) -> Vec<VertexId> {
        let mut scratch = Vec::new();
        self.record_into(v, &mut scratch).targets.to_vec()
    }

    /// Decode every record, checking v2 varint runs (or v1 separator
    /// structure) against the index. `O(E)`; used by tools and tests —
    /// the engine's streaming path checks lazily as it decodes.
    pub fn validate(&self) -> Result<(), CsrFormatError> {
        let mut scratch = Vec::new();
        for v in 0..self.n_vertices as VertexId {
            self.try_record_into(v, &mut scratch)?;
        }
        Ok(())
    }

    /// A sequential cursor over the records of `vertices` (a contiguous id
    /// range) — the dispatch actor's streaming read path. Call
    /// [`EdgeCursor::next_rec`] until it returns `None`; each record
    /// borrows the cursor (v2 decodes into the cursor's scratch buffer).
    pub fn cursor(&self, vertices: Range<VertexId>) -> EdgeCursor<'_> {
        assert!(vertices.end as usize <= self.n_vertices);
        EdgeCursor {
            csr: self,
            next: vertices.start,
            end: vertices.end,
            pos: self.byte_offset(vertices.start as usize) as usize,
            words_read: 0,
            bytes_read: 0,
            scratch: Vec::new(),
        }
    }

    /// End of the first chunk of `vertices` covering roughly `edge_budget`
    /// logical body words: the smallest `end > vertices.start` whose
    /// records span at least the budget, or `vertices.end` if the whole
    /// range fits. Always makes progress (returns at least
    /// `vertices.start + 1` for a non-empty range), so a single vertex
    /// fatter than the budget forms a chunk of its own. `O(log n)` via
    /// the offset index.
    pub fn chunk_end(&self, vertices: Range<VertexId>, edge_budget: u64) -> VertexId {
        assert!(vertices.end as usize <= self.n_vertices);
        if vertices.start >= vertices.end {
            return vertices.end;
        }
        let target = self
            .logical_offset(vertices.start as usize)
            .saturating_add(edge_budget.max(1));
        if self.logical_offset(vertices.end as usize) <= target {
            return vertices.end;
        }
        // Binary search for the smallest end with logical_offset(end) >=
        // target; logical offsets are monotone in vertex id.
        let mut lo = vertices.start as usize + 1;
        let mut hi = vertices.end as usize;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.logical_offset(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as VertexId
    }

    /// Split `vertices` into contiguous subranges of roughly `edge_budget`
    /// logical body words each (see [`DiskCsr::chunk_end`]). The chunks
    /// tile the input range exactly; an empty range yields no chunks.
    pub fn chunks(&self, vertices: Range<VertexId>, edge_budget: u64) -> ChunkCursor<'_> {
        assert!(vertices.end as usize <= self.n_vertices);
        ChunkCursor {
            csr: self,
            next: vertices.start,
            end: vertices.end,
            budget: edge_budget,
        }
    }

    /// Materialize the whole graph back into an in-memory edge list
    /// (source-sorted). Used by tools that bridge to engines consuming
    /// edge lists.
    pub fn to_edge_list(&self) -> crate::EdgeList {
        let mut edges = Vec::with_capacity(self.n_edges);
        let mut cur = self.cursor(0..self.n_vertices as u32);
        while let Some(rec) = cur.next_rec() {
            for &dst in rec.targets {
                edges.push(crate::Edge::new(rec.vid, dst));
            }
        }
        crate::EdgeList::with_vertices(edges, self.n_vertices)
    }

    /// A seeking cursor for sparse (frontier-driven) dispatch: the caller
    /// feeds it a strictly ascending stream of active vertex ids and gets
    /// each record back. Adjacent ids coalesce into one contiguous scan —
    /// the cursor only consults the offset index (a seek) when the
    /// requested id is not the one right after the last record read.
    pub fn seek_cursor(&self) -> SeekCursor<'_> {
        SeekCursor {
            csr: self,
            next: 0,
            pos: 0,
            words_read: 0,
            bytes_read: 0,
            seeks: 0,
            scratch: Vec::new(),
        }
    }

    /// Sum of out-degrees over an id range (used by the edge-balanced
    /// partitioner).
    pub fn edges_in_range(&self, vertices: Range<VertexId>) -> u64 {
        self.edge_offset(vertices.end as usize) - self.edge_offset(vertices.start as usize)
    }
}

/// Split a raw v1 record (degree? + targets + separator) into a
/// [`VertexEdges`].
fn v1_record(
    v: VertexId,
    rec: &[u32],
    with_degrees: bool,
) -> Result<VertexEdges<'_>, CsrFormatError> {
    let corrupt = |detail: &str| CsrFormatError::CorruptRun {
        vertex: v,
        detail: detail.to_string(),
    };
    if *rec.last().ok_or_else(|| corrupt("empty record"))? != SEPARATOR {
        return Err(corrupt("record does not end with the separator"));
    }
    let targets = if with_degrees {
        let targets = &rec[1..rec.len() - 1];
        if rec[0] as usize != targets.len() {
            return Err(corrupt("inlined degree disagrees with the record span"));
        }
        targets
    } else {
        &rec[..rec.len() - 1]
    };
    if targets.contains(&SEPARATOR) {
        return Err(corrupt("separator word inside the target list"));
    }
    Ok(VertexEdges {
        vid: v,
        degree: targets.len() as u32,
        targets,
    })
}

/// Decode one v2 byte run, wrapping varint failures with the vertex id.
fn decode_v2_record(
    v: VertexId,
    bytes: &[u8],
    degree: usize,
    out: &mut Vec<u32>,
) -> Result<(), CsrFormatError> {
    let used = varint::decode_run(bytes, degree, out).map_err(|e| CsrFormatError::CorruptRun {
        vertex: v,
        detail: e.to_string(),
    })?;
    if used != bytes.len() {
        return Err(CsrFormatError::CorruptRun {
            vertex: v,
            detail: format!("run is {} bytes, decode consumed {used}", bytes.len()),
        });
    }
    Ok(())
}

/// Iterator over ~equal-edge-weight vertex subranges. See
/// [`DiskCsr::chunks`].
#[derive(Debug)]
pub struct ChunkCursor<'a> {
    csr: &'a DiskCsr,
    next: VertexId,
    end: VertexId,
    budget: u64,
}

impl Iterator for ChunkCursor<'_> {
    type Item = Range<VertexId>;

    fn next(&mut self) -> Option<Range<VertexId>> {
        if self.next >= self.end {
            return None;
        }
        let start = self.next;
        self.next = self.csr.chunk_end(start..self.end, self.budget);
        Some(start..self.next)
    }
}

/// Seek-based record reader over an ascending id stream. See
/// [`DiskCsr::seek_cursor`].
///
/// Not an `Iterator`: records decode into (v2) or alongside (v1) the
/// cursor's scratch buffer, so each [`SeekCursor::record`] borrows the
/// cursor until the caller is done with the record.
#[derive(Debug)]
pub struct SeekCursor<'a> {
    csr: &'a DiskCsr,
    /// The vertex whose record starts at `pos` — requests for exactly this
    /// id continue the current scan without touching the index.
    next: VertexId,
    /// v1: word position in the body. v2: byte position in the body.
    pos: usize,
    words_read: u64,
    bytes_read: u64,
    seeks: u64,
    scratch: Vec<u32>,
}

impl SeekCursor<'_> {
    /// Read vertex `v`'s record. Ids must be requested in strictly
    /// ascending order across calls.
    ///
    /// Panics (naming the vertex) on a corrupt v2 varint run — on the
    /// engine's dispatch path that rides the actor failure escalation,
    /// while tools pre-screen with [`DiskCsr::validate`].
    pub fn record(&mut self, v: VertexId) -> VertexEdges<'_> {
        assert!(
            (v as usize) < self.csr.n_vertices,
            "vertex {v} out of range"
        );
        assert!(
            v >= self.next,
            "seek cursor ids must ascend ({v} < {})",
            self.next
        );
        if self.csr.version == VERSION_V1 {
            if v != self.next {
                self.pos = self.csr.word_offset(v as usize) as usize;
                self.seeks += 1;
            }
            let body = self.csr.body();
            let mut pos = self.pos;
            let degree_word = if self.csr.with_degrees {
                let d = body[pos];
                pos += 1;
                Some(d)
            } else {
                None
            };
            let start = pos;
            while body[pos] != SEPARATOR {
                pos += 1;
            }
            let words = (pos + 1 - self.pos) as u64;
            self.words_read += words;
            self.bytes_read += words * 4;
            self.pos = pos + 1;
            self.next = v + 1;
            let targets = &body[start..pos];
            return VertexEdges {
                vid: v,
                degree: degree_word.unwrap_or(targets.len() as u32),
                targets,
            };
        }
        if v != self.next {
            self.pos = self.csr.byte_offset(v as usize) as usize;
            self.seeks += 1;
        }
        let end = self.csr.byte_offset(v as usize + 1) as usize;
        let degree = self.csr.degree(v) as usize;
        self.scratch.clear();
        if let Err(e) = decode_v2_record(
            v,
            &self.csr.body_bytes()[self.pos..end],
            degree,
            &mut self.scratch,
        ) {
            panic!("{e}");
        }
        self.words_read += degree as u64 + 1;
        self.bytes_read += (end - self.pos) as u64;
        self.pos = end;
        self.next = v + 1;
        VertexEdges {
            vid: v,
            degree: degree as u32,
            targets: &self.scratch[..],
        }
    }

    /// Logical body words consumed so far (v1: degree words, targets,
    /// separators; v2: targets plus one boundary word per record) — the
    /// sparse-mode `edges_streamed` counter.
    pub fn words_read(&self) -> u64 {
        self.words_read
    }

    /// Physical bytes consumed so far — the `edge_bytes_streamed`
    /// counter.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Index lookups performed (coalesced runs don't seek).
    pub fn seeks(&self) -> u64 {
        self.seeks
    }
}

/// Sequential streaming reader over vertex records. See
/// [`DiskCsr::cursor`].
///
/// Not an `Iterator`: v2 records decode into the cursor's scratch
/// buffer, so each [`EdgeCursor::next_rec`] borrows the cursor until the
/// caller is done with the record (a lending iterator).
#[derive(Debug)]
pub struct EdgeCursor<'a> {
    csr: &'a DiskCsr,
    next: VertexId,
    end: VertexId,
    /// v1: word position in the body. v2: byte position in the body.
    pos: usize,
    words_read: u64,
    bytes_read: u64,
    scratch: Vec<u32>,
}

impl EdgeCursor<'_> {
    /// The next record in the range, or `None` past the end.
    ///
    /// Panics (naming the vertex) on a corrupt v2 varint run — on the
    /// engine's dispatch path that rides the actor failure escalation,
    /// while tools pre-screen with [`DiskCsr::validate`].
    pub fn next_rec(&mut self) -> Option<VertexEdges<'_>> {
        if self.next >= self.end {
            return None;
        }
        let vid = self.next;
        if self.csr.version == VERSION_V1 {
            let body = self.csr.body();
            let mut pos = self.pos / 4;
            let degree_word = if self.csr.with_degrees {
                let d = body[pos];
                pos += 1;
                Some(d)
            } else {
                None
            };
            let start = pos;
            // Scan forward to the separator. Sequential, cache-friendly —
            // this is the paper's "edges are processed by dispatching
            // actors sequentially from disk".
            while body[pos] != SEPARATOR {
                pos += 1;
            }
            let words = (pos + 1 - self.pos / 4) as u64;
            self.words_read += words;
            self.bytes_read += words * 4;
            self.pos = (pos + 1) * 4;
            self.next += 1;
            let targets = &body[start..pos];
            return Some(VertexEdges {
                vid,
                degree: degree_word.unwrap_or(targets.len() as u32),
                targets,
            });
        }
        let end = self.csr.byte_offset(vid as usize + 1) as usize;
        let degree = self.csr.degree(vid) as usize;
        self.scratch.clear();
        if let Err(e) = decode_v2_record(
            vid,
            &self.csr.body_bytes()[self.pos..end],
            degree,
            &mut self.scratch,
        ) {
            panic!("{e}");
        }
        self.words_read += degree as u64 + 1;
        self.bytes_read += (end - self.pos) as u64;
        self.pos = end;
        self.next += 1;
        Some(VertexEdges {
            vid,
            degree: degree as u32,
            targets: &self.scratch[..],
        })
    }

    /// The id of the record the next `next_rec`/`take_rec_into`/
    /// `skip_rec` call will touch, or `None` past the end — lets callers
    /// consult per-vertex state (e.g. a dispatch flag) before deciding
    /// whether to decode or skip.
    pub fn peek_vid(&self) -> Option<VertexId> {
        (self.next < self.end).then_some(self.next)
    }

    /// Advance past the next record without decoding it — `O(1)` via the
    /// offset index. The skipped record still counts toward
    /// `words_read`/`bytes_read` (the stream position moved over it), so
    /// the streamed/skipped conservation accounting is unchanged whether
    /// a caller decodes or skips.
    pub fn skip_rec(&mut self) {
        debug_assert!(self.next < self.end, "skip_rec past the end");
        let vid = self.next;
        if self.csr.version == VERSION_V1 {
            let end_w = self.csr.word_offset(vid as usize + 1) as usize;
            let words = (end_w - self.pos / 4) as u64;
            self.words_read += words;
            self.bytes_read += words * 4;
            self.pos = end_w * 4;
        } else {
            let end = self.csr.byte_offset(vid as usize + 1) as usize;
            self.words_read += self.csr.degree(vid) as u64 + 1;
            self.bytes_read += (end - self.pos) as u64;
            self.pos = end;
        }
        self.next += 1;
    }

    /// Decode the next record's targets directly into `out` (appending,
    /// never clearing) and return `(vid, degree)` — the batch-native read
    /// path: dispatchers stream destinations straight into a message
    /// slab's `dst` column with no intermediate borrow. Record bounds
    /// come from the offset index (validated at open), so v1 needs no
    /// separator scan here.
    pub fn take_rec_into(&mut self, out: &mut Vec<u32>) -> (VertexId, u32) {
        debug_assert!(self.next < self.end, "take_rec_into past the end");
        let vid = self.next;
        if self.csr.version == VERSION_V1 {
            let start_w = self.pos / 4 + usize::from(self.csr.with_degrees);
            let end_w = self.csr.word_offset(vid as usize + 1) as usize;
            let body = self.csr.body();
            out.extend_from_slice(&body[start_w..end_w - 1]);
            let words = (end_w - self.pos / 4) as u64;
            self.words_read += words;
            self.bytes_read += words * 4;
            self.pos = end_w * 4;
            self.next += 1;
            return (vid, (end_w - 1 - start_w) as u32);
        }
        let end = self.csr.byte_offset(vid as usize + 1) as usize;
        let degree = self.csr.degree(vid) as usize;
        if let Err(e) = decode_v2_record(vid, &self.csr.body_bytes()[self.pos..end], degree, out) {
            panic!("{e}");
        }
        self.words_read += degree as u64 + 1;
        self.bytes_read += (end - self.pos) as u64;
        self.pos = end;
        self.next += 1;
        (vid, degree as u32)
    }

    /// Logical body words consumed so far (see
    /// [`SeekCursor::words_read`]).
    pub fn words_read(&self) -> u64 {
        self.words_read
    }

    /// Physical bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Drain the cursor, counting the remaining records.
    pub fn count_remaining(&mut self) -> usize {
        let mut n = 0;
        while self.next_rec().is_some() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpsa-diskcsr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fig4() -> Csr {
        Csr::from_edges(
            4,
            vec![
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(1, 0),
                Edge::new(3, 1),
                Edge::new(3, 2),
            ],
        )
    }

    /// Write fig4 in every on-disk flavor: (tag, path).
    fn all_flavors(dir: &Path) -> Vec<(&'static str, PathBuf)> {
        let g = fig4();
        let v1n = dir.join("fig4-v1-nodeg.gcsr");
        DiskCsrWriter::write(&v1n, &g, false).unwrap();
        let v1d = dir.join("fig4-v1-deg.gcsr");
        DiskCsrWriter::write(&v1d, &g, true).unwrap();
        let v2 = dir.join("fig4-v2.gcsr");
        DiskCsrWriter::write_compressed(&v2, &g).unwrap();
        vec![("v1", v1n), ("v1-deg", v1d), ("v2", v2)]
    }

    #[test]
    fn roundtrip_all_flavors() {
        for (tag, path) in all_flavors(&tmpdir()) {
            let d = DiskCsr::open(&path).unwrap();
            assert_eq!(d.n_vertices(), 4, "{tag}");
            assert_eq!(d.n_edges(), 5, "{tag}");
            assert_eq!(d.compressed(), tag == "v2", "{tag}");
            let mut scratch = Vec::new();
            let v0 = d.record_into(0, &mut scratch);
            assert_eq!(v0.degree, 2, "{tag}");
            assert_eq!(v0.targets, &[2, 3], "{tag}");
            assert_eq!(d.degree(2), 0, "{tag}");
            assert!(d.targets(2).is_empty(), "{tag}");
            assert_eq!(d.targets(3), &[1, 2], "{tag}");
            d.validate().unwrap();
        }
    }

    #[test]
    fn cursor_streams_ranges() {
        for (tag, path) in all_flavors(&tmpdir()) {
            let d = DiskCsr::open(&path).unwrap();
            let mut cur = d.cursor(0..4);
            let mut seen = Vec::new();
            while let Some(rec) = cur.next_rec() {
                seen.push((rec.vid, rec.targets.to_vec()));
            }
            assert_eq!(seen.len(), 4, "{tag}");
            assert_eq!(seen[0].0, 0, "{tag}");
            assert_eq!(seen[3].1, &[1, 2], "{tag}");
            let mut mid = d.cursor(1..3);
            let first = mid.next_rec().unwrap();
            assert_eq!((first.vid, first.targets), (1, &[0u32][..]), "{tag}");
            assert_eq!(mid.next_rec().unwrap().vid, 2, "{tag}");
            assert!(mid.next_rec().is_none(), "{tag}");
            assert!(d.cursor(2..2).next_rec().is_none(), "{tag}");
        }
    }

    #[test]
    fn cursor_counters_match_index_spans() {
        for (tag, path) in all_flavors(&tmpdir()) {
            let d = DiskCsr::open(&path).unwrap();
            let mut cur = d.cursor(1..4);
            while cur.next_rec().is_some() {}
            assert_eq!(cur.words_read(), d.words_in_range(1..4), "{tag}");
            assert_eq!(cur.bytes_read(), d.bytes_in_range(1..4), "{tag}");
        }
    }

    #[test]
    fn take_and_skip_match_next_rec_and_counters() {
        for (tag, path) in all_flavors(&tmpdir()) {
            let d = DiskCsr::open(&path).unwrap();
            // take_rec_into appends targets without clearing and yields
            // the same records as next_rec.
            let mut cur = d.cursor(0..4);
            let mut out = vec![99u32];
            let mut recs = Vec::new();
            while let Some(v) = cur.peek_vid() {
                let before = out.len();
                let (vid, degree) = cur.take_rec_into(&mut out);
                assert_eq!(vid, v, "{tag}");
                assert_eq!(degree as usize, out.len() - before, "{tag}");
                recs.push((vid, out[before..].to_vec()));
            }
            assert_eq!(out[0], 99, "{tag}: appended, not cleared");
            let mut oracle = d.cursor(0..4);
            for (vid, targets) in &recs {
                let rec = oracle.next_rec().unwrap();
                assert_eq!((rec.vid, rec.targets), (*vid, &targets[..]), "{tag}");
            }
            assert_eq!(cur.words_read(), d.words_in_range(0..4), "{tag}");
            assert_eq!(cur.bytes_read(), d.bytes_in_range(0..4), "{tag}");

            // Skipping counts the skipped record's words/bytes, so any
            // mix of skip/take/next_rec reads the full span.
            let mut cur = d.cursor(0..4);
            cur.skip_rec();
            let (vid, _) = cur.take_rec_into(&mut Vec::new());
            assert_eq!(vid, 1, "{tag}");
            cur.skip_rec();
            assert_eq!(cur.next_rec().unwrap().vid, 3, "{tag}");
            assert!(cur.peek_vid().is_none(), "{tag}");
            assert_eq!(cur.words_read(), d.words_in_range(0..4), "{tag}");
            assert_eq!(cur.bytes_read(), d.bytes_in_range(0..4), "{tag}");
        }
    }

    #[test]
    fn edges_in_range_matches_degrees() {
        for (tag, path) in all_flavors(&tmpdir()) {
            let d = DiskCsr::open(&path).unwrap();
            assert_eq!(d.edges_in_range(0..4), 5, "{tag}");
            assert_eq!(d.edges_in_range(0..1), 2, "{tag}");
            assert_eq!(d.edges_in_range(1..3), 1, "{tag}");
            assert_eq!(d.edges_in_range(2..2), 0, "{tag}");
        }
    }

    #[test]
    fn chunk_end_respects_budget_and_progress() {
        // Fig. 4c record word offsets: [0, 4, 7, 9, 13].
        let path = tmpdir().join("chunk.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        // A tiny budget still advances one vertex per chunk.
        assert_eq!(d.chunk_end(0..4, 1), 1);
        // Budget larger than the remaining range returns the range end.
        assert_eq!(d.chunk_end(0..4, 100), 4);
        assert_eq!(d.chunk_end(3..4, 1), 4);
        // Mid-range: the 10-word target lands past vertex 3's offset (9).
        assert_eq!(d.chunk_end(2..4, 3), 4);
        // ...while an 8-word target stops at vertex 3 (offset 9 >= 8).
        assert_eq!(d.chunk_end(2..4, 1), 3);
        // Empty range is a no-op.
        assert_eq!(d.chunk_end(2..2, 1), 2);
    }

    #[test]
    fn chunks_tile_the_range() {
        for (tag, path) in all_flavors(&tmpdir()) {
            let d = DiskCsr::open(&path).unwrap();
            for budget in [1, 3, 4, u64::MAX] {
                let got: Vec<_> = d.chunks(0..4, budget).collect();
                assert_eq!(got.first().map(|r| r.start), Some(0), "{tag}/{budget}");
                assert_eq!(got.last().map(|r| r.end), Some(4), "{tag}/{budget}");
                for w in got.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "{tag}/{budget}");
                }
            }
            assert!(d.chunks(2..2, 4).next().is_none(), "{tag}");
            // Per-vertex chunking covers every vertex exactly once.
            let singles: Vec<_> = d.chunks(0..4, 1).collect();
            assert_eq!(singles, vec![0..1, 1..2, 2..3, 3..4], "{tag}");
        }
    }

    #[test]
    fn golden_bytes_fig4b_layout() {
        // Paper Fig. 4b: without degrees, body is
        // 2 3 -1 | 0 -1 | -1 | 1 2 -1
        let path = tmpdir().join("golden.gcsr");
        DiskCsrWriter::write(&path, &fig4(), false).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let s = SEPARATOR;
        assert_eq!(&words[HEADER_WORDS..], &[2, 3, s, 0, s, s, 1, 2, s]);
    }

    #[test]
    fn golden_bytes_fig4c_layout_with_degrees() {
        // Paper Fig. 4c: with degrees, body is
        // 2 2 3 -1 | 1 0 -1 | 0 -1 | 2 1 2 -1
        let path = tmpdir().join("golden-deg.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let s = SEPARATOR;
        assert_eq!(
            &words[HEADER_WORDS..],
            &[2, 2, 3, s, 1, 0, s, 0, s, 2, 1, 2, s]
        );
    }

    #[test]
    fn golden_bytes_v2_layout() {
        // v2 body, fig4: v0 [2,3] → raw 2, zigzag(+1)=2; v1 [0] → raw 0;
        // v2 empty → nothing; v3 [1,2] → raw 1, zigzag(+1)=2.
        let path = tmpdir().join("golden-v2.gcsr");
        DiskCsrWriter::write_compressed(&path, &fig4()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[HEADER_BYTES..], &[0x02, 0x02, 0x00, 0x01, 0x02]);
        // Index pairs (byte offset, cumulative edges) per vertex + terminal.
        let d = DiskCsr::open(&path).unwrap();
        let pairs: Vec<(u64, u64)> = (0..=4)
            .map(|v| (d.byte_offset(v), d.edge_offset(v)))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (2, 2), (3, 3), (3, 3), (5, 5)]);
        // 5 edges in 5 bytes vs 4 bytes/edge + separators for v1.
        assert_eq!(d.file_bytes(), HEADER_BYTES + 5);
    }

    #[test]
    fn seek_cursor_matches_random_access_and_coalesces() {
        for (tag, path) in all_flavors(&tmpdir()) {
            let d = DiskCsr::open(&path).unwrap();

            // Sparse visit {0, 3}: one seek (vertex 3), records identical
            // to random access.
            let mut c = d.seek_cursor();
            let r0 = c.record(0);
            assert_eq!(
                (r0.vid, r0.degree, r0.targets),
                (0, 2, &[2u32, 3][..]),
                "{tag}"
            );
            assert_eq!(c.seeks(), 0, "{tag}: first record starts at offset 0");
            assert_eq!(c.record(3).targets, d.targets(3), "{tag}");
            assert_eq!(c.seeks(), 1, "{tag}");
            // Words and bytes: exactly the two visited records.
            assert_eq!(
                c.words_read(),
                d.words_in_range(0..1) + d.words_in_range(3..4),
                "{tag}"
            );
            assert_eq!(
                c.bytes_read(),
                d.bytes_in_range(0..1) + d.bytes_in_range(3..4),
                "{tag}"
            );

            // Adjacent ids coalesce: visiting every vertex seeks zero
            // times and reads exactly the whole body.
            let mut c = d.seek_cursor();
            for v in 0..4 {
                assert_eq!(c.record(v).targets, d.targets(v), "{tag}");
            }
            assert_eq!(c.seeks(), 0, "{tag}");
            assert_eq!(c.words_read(), d.words_in_range(0..4), "{tag}");
            assert_eq!(c.bytes_read(), d.bytes_in_range(0..4), "{tag}");
        }
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn seek_cursor_rejects_descending_ids() {
        let path = tmpdir().join("seek-desc.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let d = DiskCsr::open(&path).unwrap();
        let mut c = d.seek_cursor();
        c.record(2);
        c.record(2);
    }

    #[test]
    fn advise_vertex_range_accepts_any_subrange() {
        for (_, path) in all_flavors(&tmpdir()) {
            let d = DiskCsr::open(&path).unwrap();
            d.advise_vertex_range(0..4, Advice::Random).unwrap();
            d.advise_vertex_range(1..3, Advice::Sequential).unwrap();
            d.advise_vertex_range(2..2, Advice::Random).unwrap();
            d.advise_vertex_range(3..4, Advice::Normal).unwrap();
        }
    }

    #[test]
    fn corrupt_files_rejected() {
        let dir = tmpdir();
        let path = dir.join("corrupt.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        // Flip the magic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(DiskCsr::open(&path).is_err());

        // Truncate the body.
        let path2 = dir.join("trunc.gcsr");
        DiskCsrWriter::write(&path2, &fig4(), true).unwrap();
        let bytes = std::fs::read(&path2).unwrap();
        std::fs::write(&path2, &bytes[..bytes.len() - 4]).unwrap();
        assert!(DiskCsr::open(&path2).is_err());
    }

    #[test]
    fn future_version_reports_typed_error() {
        let path = tmpdir().join("future.gcsr");
        DiskCsrWriter::write(&path, &fig4(), true).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = DiskCsr::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        match CsrFormatError::from_io(&err) {
            Some(CsrFormatError::UnsupportedVersion {
                found: 9,
                max_supported,
            }) => assert_eq!(*max_supported, MAX_VERSION),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        assert!(err.to_string().contains("version 9"), "{err}");
    }

    #[test]
    fn corrupt_varint_run_names_the_vertex() {
        let path = tmpdir().join("corrupt-run.gcsr");
        DiskCsrWriter::write_compressed(&path, &fig4()).unwrap();
        // Overwrite vertex 3's run (body bytes 3..5) with a dangling
        // continuation byte: decode must fail *and* name vertex 3.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_BYTES + 3] = 0xFF;
        bytes[HEADER_BYTES + 4] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let d = DiskCsr::open(&path).unwrap(); // header + index still consistent
        match d.validate() {
            Err(CsrFormatError::CorruptRun { vertex: 3, .. }) => {}
            other => panic!("expected CorruptRun at vertex 3, got {other:?}"),
        }
        let msg = d.validate().unwrap_err().to_string();
        assert!(msg.contains("vertex 3"), "{msg}");
        // Undamaged records still decode.
        assert_eq!(d.targets(0), &[2, 3]);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let dir = tmpdir();
        let empty = Csr::from_edges(3, Vec::<Edge>::new());
        let v1 = dir.join("empty.gcsr");
        DiskCsrWriter::write(&v1, &empty, true).unwrap();
        let v2 = dir.join("empty-v2.gcsr");
        DiskCsrWriter::write_compressed(&v2, &empty).unwrap();
        for path in [v1, v2] {
            let d = DiskCsr::open(&path).unwrap();
            assert_eq!(d.n_vertices(), 3);
            assert_eq!(d.n_edges(), 0);
            let mut cur = d.cursor(0..3);
            let mut n = 0;
            while let Some(r) = cur.next_rec() {
                assert!(r.targets.is_empty() && r.degree == 0);
                n += 1;
            }
            assert_eq!(n, 3);
        }
    }
}
