//! Text and binary edge-list formats.
//!
//! GPSA's input format is "text-based edge list or adjacency graph"
//! (paper §V-A). The text format is one `src dst` pair per line (tabs or
//! spaces), `#`-prefixed comment lines ignored — the SNAP convention used
//! by the paper's datasets. The binary format is a flat array of
//! little-endian `u32` pairs, which is what the preprocessing pipeline
//! consumes.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::types::{Edge, VertexId, SEPARATOR};

/// An in-memory edge list with a vertex-count bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// The edges, in arbitrary order.
    pub edges: Vec<Edge>,
    /// Number of vertices (`max id + 1`, or a caller-supplied larger bound).
    pub n_vertices: usize,
}

impl EdgeList {
    /// Build from raw edges, deriving the vertex count from the largest id.
    pub fn from_edges(edges: Vec<Edge>) -> Self {
        let n_vertices = edges
            .iter()
            .map(|e| e.src.max(e.dst) as usize + 1)
            .max()
            .unwrap_or(0);
        EdgeList { edges, n_vertices }
    }

    /// Build from raw edges with an explicit vertex count (must cover all
    /// endpoint ids).
    pub fn with_vertices(edges: Vec<Edge>, n_vertices: usize) -> Self {
        debug_assert!(edges
            .iter()
            .all(|e| (e.src as usize) < n_vertices && (e.dst as usize) < n_vertices));
        EdgeList { edges, n_vertices }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Parse the SNAP-style text format from a reader.
    ///
    /// Lines are `src<ws>dst`; blank lines and lines starting with `#` or
    /// `%` are skipped. Ids must be decimal `u32` below [`SEPARATOR`].
    pub fn read_text<R: Read>(reader: R) -> io::Result<Self> {
        let mut edges = Vec::new();
        let mut r = BufReader::new(reader);
        let mut line = String::new();
        let mut lineno = 0usize;
        let mut declared_vertices: usize = 0;
        loop {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                break;
            }
            lineno += 1;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                // Honor our own writer's header so isolated tail vertices
                // survive a text roundtrip: "# gpsa edge list: N vertices …".
                if let Some(rest) = t.strip_prefix("# gpsa edge list:") {
                    if let Some(n) = rest.split_whitespace().next().and_then(|w| w.parse().ok()) {
                        declared_vertices = n;
                    }
                }
                continue;
            }
            let mut it = t.split_whitespace();
            let parse = |tok: Option<&str>| -> io::Result<VertexId> {
                let tok = tok.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {lineno}: expected `src dst`"),
                    )
                })?;
                let v: VertexId = tok.parse().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {lineno}: bad vertex id {tok:?}"),
                    )
                })?;
                if v == SEPARATOR {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {lineno}: vertex id {v} is reserved"),
                    ));
                }
                Ok(v)
            };
            let src = parse(it.next())?;
            let dst = parse(it.next())?;
            edges.push(Edge { src, dst });
        }
        let mut el = EdgeList::from_edges(edges);
        el.n_vertices = el.n_vertices.max(declared_vertices);
        Ok(el)
    }

    /// Parse the text format from a file.
    pub fn read_text_file<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        EdgeList::read_text(File::open(path)?)
    }

    /// Write the text format.
    pub fn write_text<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        writeln!(
            w,
            "# gpsa edge list: {} vertices {} edges",
            self.n_vertices,
            self.edges.len()
        )?;
        for e in &self.edges {
            writeln!(w, "{}\t{}", e.src, e.dst)?;
        }
        w.flush()
    }

    /// Write the text format to a file.
    pub fn write_text_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.write_text(File::create(path)?)
    }

    /// Write the binary format: little-endian `u32` pairs.
    pub fn write_binary<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        for e in &self.edges {
            w.write_all(&e.src.to_le_bytes())?;
            w.write_all(&e.dst.to_le_bytes())?;
        }
        w.flush()
    }

    /// Write the binary format to a file.
    pub fn write_binary_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.write_binary(File::create(path)?)
    }

    /// Read the binary format (whole stream).
    pub fn read_binary<R: Read>(reader: R) -> io::Result<Self> {
        let mut edges = Vec::new();
        let mut r = BufReader::new(reader);
        let mut buf = [0u8; 8];
        loop {
            match r.read_exact(&mut buf) {
                Ok(()) => {
                    let src = u32::from_le_bytes(buf[0..4].try_into().unwrap());
                    let dst = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                    edges.push(Edge { src, dst });
                }
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
        }
        Ok(EdgeList::from_edges(edges))
    }

    /// Read the binary format from a file.
    pub fn read_binary_file<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        EdgeList::read_binary(File::open(path)?)
    }

    /// Parse the adjacency text format (the paper's second input format,
    /// §V-A): one line per vertex, `src n_neighbors d1 d2 ... dn`; blank
    /// and `#`/`%` comment lines skipped. Vertices may appear in any
    /// order; vertices without a line are isolated.
    pub fn read_adjacency<R: Read>(reader: R) -> io::Result<Self> {
        let mut edges = Vec::new();
        let mut max_seen: Option<VertexId> = None;
        let mut r = BufReader::new(reader);
        let mut line = String::new();
        let mut lineno = 0usize;
        loop {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                break;
            }
            lineno += 1;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                continue;
            }
            let bad = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
            let mut it = t.split_whitespace();
            let parse_id = |tok: &str| -> io::Result<VertexId> {
                let v: VertexId = tok
                    .parse()
                    .map_err(|_| bad(format!("line {lineno}: bad vertex id {tok:?}")))?;
                if v == SEPARATOR {
                    return Err(bad(format!("line {lineno}: vertex id {v} is reserved")));
                }
                Ok(v)
            };
            let src = parse_id(
                it.next()
                    .ok_or_else(|| bad(format!("line {lineno}: empty record")))?,
            )?;
            let count: usize = it
                .next()
                .ok_or_else(|| bad(format!("line {lineno}: missing neighbor count")))?
                .parse()
                .map_err(|_| bad(format!("line {lineno}: bad neighbor count")))?;
            max_seen = Some(max_seen.map_or(src, |m| m.max(src)));
            for i in 0..count {
                let dst = parse_id(it.next().ok_or_else(|| {
                    bad(format!(
                        "line {lineno}: expected {count} neighbors, got {i}"
                    ))
                })?)?;
                max_seen = Some(max_seen.map_or(dst, |m| m.max(dst)));
                edges.push(Edge { src, dst });
            }
            if it.next().is_some() {
                return Err(bad(format!(
                    "line {lineno}: more than {count} neighbors listed"
                )));
            }
        }
        let n_vertices = max_seen.map_or(0, |m| m as usize + 1);
        Ok(EdgeList { edges, n_vertices })
    }

    /// Parse the adjacency format from a file.
    pub fn read_adjacency_file<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        EdgeList::read_adjacency(File::open(path)?)
    }

    /// Write the adjacency text format: one line per vertex that has
    /// out-edges, `src n d1 ... dn`.
    pub fn write_adjacency<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        writeln!(
            w,
            "# gpsa adjacency: {} vertices {} edges",
            self.n_vertices,
            self.edges.len()
        )?;
        let csr = crate::Csr::from_edge_list(self);
        for v in 0..self.n_vertices as VertexId {
            let nbrs = csr.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            write!(w, "{v} {}", nbrs.len())?;
            for d in nbrs {
                write!(w, " {d}")?;
            }
            writeln!(w)?;
        }
        w.flush()
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n_vertices];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_edges(vec![
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(1, 0),
            Edge::new(3, 1),
        ])
    }

    #[test]
    fn text_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        el.write_text(&mut buf).unwrap();
        let back = EdgeList::read_text(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        el.write_binary(&mut buf).unwrap();
        assert_eq!(buf.len(), el.len() * 8);
        let back = EdgeList::read_binary(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n% matrix-market style\n0 1\n2\t3\n";
        let el = EdgeList::read_text(text.as_bytes()).unwrap();
        assert_eq!(el.edges, vec![Edge::new(0, 1), Edge::new(2, 3)]);
        assert_eq!(el.n_vertices, 4);
    }

    #[test]
    fn bad_lines_are_errors() {
        assert!(EdgeList::read_text("0\n".as_bytes()).is_err());
        assert!(EdgeList::read_text("a b\n".as_bytes()).is_err());
        assert!(EdgeList::read_text("0 4294967295\n".as_bytes()).is_err());
    }

    #[test]
    fn degrees_counted() {
        let el = sample();
        assert_eq!(el.out_degrees(), vec![2, 1, 0, 1]);
    }

    #[test]
    fn empty_list() {
        let el = EdgeList::from_edges(vec![]);
        assert!(el.is_empty());
        assert_eq!(el.n_vertices, 0);
        let mut buf = Vec::new();
        el.write_binary(&mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn adjacency_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        el.write_adjacency(&mut buf).unwrap();
        let back = EdgeList::read_adjacency(&buf[..]).unwrap();
        // Adjacency groups by source, so compare multisets + counts.
        let mut a = back.edges.clone();
        let mut b = el.edges.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(back.n_vertices, el.n_vertices);
    }

    #[test]
    fn adjacency_parses_mixed_order_and_comments() {
        let text = "# hi\n3 2 1 0\n\n0 1 2\n";
        let el = EdgeList::read_adjacency(text.as_bytes()).unwrap();
        assert_eq!(el.n_vertices, 4);
        let mut e = el.edges.clone();
        e.sort_unstable();
        assert_eq!(e, vec![Edge::new(0, 2), Edge::new(3, 0), Edge::new(3, 1)]);
    }

    #[test]
    fn adjacency_rejects_malformed_records() {
        assert!(EdgeList::read_adjacency("0\n".as_bytes()).is_err());
        assert!(EdgeList::read_adjacency("0 2 1\n".as_bytes()).is_err()); // too few
        assert!(EdgeList::read_adjacency("0 1 2 3\n".as_bytes()).is_err()); // too many
        assert!(EdgeList::read_adjacency("0 x\n".as_bytes()).is_err());
        assert!(EdgeList::read_adjacency("0 1 4294967295\n".as_bytes()).is_err());
    }

    #[test]
    fn with_vertices_allows_isolated_tail() {
        let el = EdgeList::with_vertices(vec![Edge::new(0, 1)], 10);
        assert_eq!(el.n_vertices, 10);
        assert_eq!(el.out_degrees().len(), 10);
    }
}
