//! CRC32-framed append-only line logs — the shared record framing used
//! by the serving layer's job journal and the live-graph delta log.
//!
//! One record per line: 8 lowercase hex digits of CRC32 over the body
//! text, one space, the body, `\n`. Appends are sequential and fsync'd,
//! so a crash can tear at most the final record; [`open_scan`] recovers
//! by scanning forward and physically truncating the file at the first
//! line that is incomplete, fails its CRC, or fails the caller's parse —
//! everything before the tear survives, everything after it is gone, and
//! the file is ready to append again.

use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::Path;

/// CRC32 (IEEE, reflected) over bytes — the same polynomial the engine's
/// value file uses for its commit headers.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frame one record body as a log line: `crc32-hex SP body NL`. The body
/// must not contain a newline (the framing is line-oriented).
pub fn encode_line(body: &str) -> String {
    debug_assert!(!body.contains('\n'), "framed bodies are single lines");
    format!("{:08x} {body}\n", crc32(body.as_bytes()))
}

/// Unframe one `\n`-terminated line (without the newline), returning the
/// body on a CRC match. `None` means the line is torn or corrupt.
pub fn decode_line(line: &str) -> Option<&str> {
    let (crc_hex, body) = line.split_at_checked(8)?;
    let body = body.strip_prefix(' ')?;
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc32(body.as_bytes()) == want).then_some(body)
}

/// Open (or create) the framed log at `path` for appending, replaying
/// every intact record through `parse`. The scan stops at the first line
/// that is incomplete, non-UTF-8, fails its CRC, or that `parse` rejects;
/// the file is truncated there (with a warning to stderr) so the garbage
/// is gone on disk, not just skipped. Returns the append handle and the
/// parsed records in file order.
pub fn open_scan<T>(
    path: &Path,
    mut parse: impl FnMut(&str) -> Option<T>,
) -> io::Result<(File, Vec<T>)> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = OpenOptions::new()
        .read(true)
        .create(true)
        .append(true)
        .open(path)?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)?;
    let mut records = Vec::new();
    let mut valid_len = 0usize;
    let mut offset = 0usize;
    while offset < raw.len() {
        let Some(nl) = raw[offset..].iter().position(|&b| b == b'\n') else {
            break; // no newline: torn tail
        };
        let Some(rec) = std::str::from_utf8(&raw[offset..offset + nl])
            .ok()
            .and_then(decode_line)
            .and_then(&mut parse)
        else {
            break;
        };
        records.push(rec);
        offset += nl + 1;
        valid_len = offset;
    }
    if valid_len < raw.len() {
        eprintln!(
            "framed log {}: truncating {} torn/corrupt byte(s) after {} intact record(s)",
            path.display(),
            raw.len() - valid_len,
            records.len()
        );
        file.set_len(valid_len as u64)?;
        file.sync_all()?;
    }
    Ok((file, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gpsa-framed-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn lines_roundtrip() {
        let line = encode_line("hello world");
        assert!(line.ends_with('\n'));
        assert_eq!(
            decode_line(line.trim_end_matches('\n')),
            Some("hello world")
        );
        // A flipped body byte fails the CRC.
        let bad = line.replace("world", "worlb");
        assert_eq!(decode_line(bad.trim_end_matches('\n')), None);
        // Truncated frames never decode.
        assert_eq!(decode_line("3f1d"), None);
        assert_eq!(decode_line("zzzzzzzz x"), None);
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn scan_truncates_torn_tail_physically() {
        let path = tmp("torn").join("log");
        {
            let (mut f, recs) = open_scan(&path, |s| Some(s.to_string())).unwrap();
            assert!(recs.is_empty());
            f.write_all(encode_line("one").as_bytes()).unwrap();
            f.write_all(encode_line("two").as_bytes()).unwrap();
            let torn = encode_line("three");
            f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
        }
        let (_, recs) = open_scan(&path, |s| Some(s.to_string())).unwrap();
        assert_eq!(recs, vec!["one".to_string(), "two".to_string()]);
        let expect = encode_line("one").len() + encode_line("two").len();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), expect as u64);
    }

    #[test]
    fn scan_stops_at_parse_rejection() {
        let path = tmp("parse").join("log");
        {
            let (mut f, _) = open_scan(&path, |s| Some(s.to_string())).unwrap();
            f.write_all(encode_line("good").as_bytes()).unwrap();
            f.write_all(encode_line("BAD").as_bytes()).unwrap();
            f.write_all(encode_line("after").as_bytes()).unwrap();
        }
        // A record the caller cannot parse ends the valid prefix even
        // though its CRC is fine — later records are discarded too.
        let (_, recs) = open_scan(&path, |s| (s != "BAD").then(|| s.to_string())).unwrap();
        assert_eq!(recs, vec!["good".to_string()]);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            encode_line("good").len() as u64
        );
    }
}
