//! Synthetic graph generators.
//!
//! The paper evaluates on SNAP social/web graphs we cannot redistribute;
//! the harness substitutes R-MAT graphs with matched vertex/edge counts
//! (R-MAT reproduces the skewed degree distributions that drive the
//! engines' relative behaviour). Deterministic small graphs (chain, star,
//! grid, …) back the correctness tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::{Edge, VertexId};
use crate::EdgeList;

/// R-MAT quadrant probabilities. The defaults are the Graph500/social-graph
/// standard `(0.57, 0.19, 0.19, 0.05)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (dense core).
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Bottom-right quadrant.
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatParams {
    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9
                && self.a >= 0.0
                && self.b >= 0.0
                && self.c >= 0.0
                && self.d >= 0.0,
            "R-MAT parameters must be non-negative and sum to 1 (got {sum})"
        );
    }
}

/// Generate an R-MAT graph with `n_vertices` (rounded up to a power of
/// two internally, then mapped back down by rejection) and exactly
/// `n_edges` edges. Self-loops are rerolled; duplicate edges are kept, as
/// in real web crawls.
pub fn rmat(n_vertices: usize, n_edges: usize, params: RmatParams, seed: u64) -> EdgeList {
    params.validate();
    assert!(n_vertices >= 2, "R-MAT needs at least 2 vertices");
    let scale = (usize::BITS - (n_vertices - 1).leading_zeros()) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n_edges);
    while edges.len() < n_edges {
        let (src, dst) = rmat_one(&mut rng, scale, params);
        if src == dst {
            continue; // reroll self-loops
        }
        if (src as usize) >= n_vertices || (dst as usize) >= n_vertices {
            continue; // rejection-map the power-of-two grid down
        }
        edges.push(Edge { src, dst });
    }
    EdgeList::with_vertices(edges, n_vertices)
}

fn rmat_one(rng: &mut StdRng, scale: usize, p: RmatParams) -> (VertexId, VertexId) {
    let mut src: u64 = 0;
    let mut dst: u64 = 0;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: neither bit set
        } else if r < p.a + p.b {
            dst |= 1;
        } else if r < p.a + p.b + p.c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src as VertexId, dst as VertexId)
}

/// Erdős–Rényi `G(n, m)`: `m` uniform random edges (self-loops rerolled,
/// duplicates kept).
pub fn erdos_renyi(n_vertices: usize, n_edges: usize, seed: u64) -> EdgeList {
    assert!(n_vertices >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n_edges);
    while edges.len() < n_edges {
        let src = rng.gen_range(0..n_vertices) as VertexId;
        let dst = rng.gen_range(0..n_vertices) as VertexId;
        if src != dst {
            edges.push(Edge { src, dst });
        }
    }
    EdgeList::with_vertices(edges, n_vertices)
}

/// Directed chain `0 -> 1 -> ... -> n-1`.
pub fn chain(n: usize) -> EdgeList {
    let edges = (0..n.saturating_sub(1))
        .map(|i| Edge::new(i as VertexId, i as VertexId + 1))
        .collect();
    EdgeList::with_vertices(edges, n)
}

/// Star: hub `0` points at every other vertex.
pub fn star(n: usize) -> EdgeList {
    let edges = (1..n).map(|i| Edge::new(0, i as VertexId)).collect();
    EdgeList::with_vertices(edges, n)
}

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle(n: usize) -> EdgeList {
    let edges = (0..n)
        .map(|i| Edge::new(i as VertexId, ((i + 1) % n) as VertexId))
        .collect();
    EdgeList::with_vertices(edges, n)
}

/// `rows x cols` grid with edges right and down (and their reverses), so it
/// is strongly connected as an undirected structure.
pub fn grid(rows: usize, cols: usize) -> EdgeList {
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1)));
                edges.push(Edge::new(id(r, c + 1), id(r, c)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c)));
                edges.push(Edge::new(id(r + 1, c), id(r, c)));
            }
        }
    }
    EdgeList::with_vertices(edges, rows * cols)
}

/// Two disjoint directed cycles of sizes `a` and `b` — the standard
/// connected-components fixture (components `{0..a}` and `{a..a+b}`).
pub fn two_components(a: usize, b: usize) -> EdgeList {
    let mut edges = Vec::new();
    for i in 0..a {
        edges.push(Edge::new(i as VertexId, ((i + 1) % a) as VertexId));
    }
    for i in 0..b {
        edges.push(Edge::new(
            (a + i) as VertexId,
            (a + (i + 1) % b) as VertexId,
        ));
    }
    EdgeList::with_vertices(edges, a + b)
}

/// Make a directed edge list symmetric (add every reverse edge).
pub fn symmetrize(el: &EdgeList) -> EdgeList {
    let mut edges = Vec::with_capacity(el.edges.len() * 2);
    for &e in &el.edges {
        edges.push(e);
        if e.src != e.dst {
            edges.push(e.reversed());
        }
    }
    EdgeList::with_vertices(edges, el.n_vertices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_counts_and_ranges() {
        let el = rmat(1000, 5000, RmatParams::default(), 42);
        assert_eq!(el.len(), 5000);
        assert_eq!(el.n_vertices, 1000);
        assert!(el
            .edges
            .iter()
            .all(|e| (e.src as usize) < 1000 && (e.dst as usize) < 1000));
        assert!(
            el.edges.iter().all(|e| e.src != e.dst),
            "self-loops rerolled"
        );
    }

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let a = rmat(512, 2048, RmatParams::default(), 7);
        let b = rmat(512, 2048, RmatParams::default(), 7);
        let c = rmat(512, 2048, RmatParams::default(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_is_skewed() {
        // With a=0.57 the degree distribution must be far from uniform:
        // the max out-degree should greatly exceed the mean.
        let el = rmat(4096, 40960, RmatParams::default(), 1);
        let deg = el.out_degrees();
        let mean = 40960.0 / 4096.0;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(
            max > mean * 8.0,
            "R-MAT should be skewed: max {max}, mean {mean}"
        );
    }

    #[test]
    fn erdos_renyi_is_roughly_uniform() {
        let el = erdos_renyi(1024, 20480, 3);
        let deg = el.out_degrees();
        let max = *deg.iter().max().unwrap() as f64;
        let mean = 20480.0 / 1024.0;
        assert!(
            max < mean * 4.0,
            "ER should not be heavily skewed: max {max}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_rmat_params_panic() {
        rmat(
            16,
            16,
            RmatParams {
                a: 0.9,
                b: 0.9,
                c: 0.1,
                d: 0.1,
            },
            0,
        );
    }

    #[test]
    fn deterministic_fixtures_shapes() {
        assert_eq!(chain(5).len(), 4);
        assert_eq!(chain(1).len(), 0);
        assert_eq!(star(5).len(), 4);
        assert_eq!(cycle(5).len(), 5);
        let g = grid(3, 4);
        assert_eq!(g.n_vertices, 12);
        assert_eq!(g.len(), 2 * (3 * 3 + 2 * 4)); // 2*(rows*(cols-1) + (rows-1)*cols)
        let tc = two_components(3, 4);
        assert_eq!(tc.n_vertices, 7);
        assert_eq!(tc.len(), 7);
    }

    #[test]
    fn symmetrize_doubles_and_preserves() {
        let el = chain(4);
        let s = symmetrize(&el);
        assert_eq!(s.len(), 6);
        assert!(s.edges.contains(&Edge::new(1, 0)));
    }
}
