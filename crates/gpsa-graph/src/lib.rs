#![warn(missing_docs)]

//! Graph storage substrate for GPSA: formats, preprocessing, generators.
//!
//! GPSA assumes vertices are labeled `0..|V|` and stores the graph on disk
//! in a CSR-style format (paper Fig. 4): one big edge array sorted by source
//! vertex, each vertex's out-edge list terminated by a separator (`-1` in
//! the paper, [`SEPARATOR`] here), optionally with the vertex's out-degree
//! inlined ahead of its list so PageRank-style programs need no extra
//! lookup.
//!
//! This crate provides:
//!
//! * [`EdgeList`] text / binary readers and writers,
//! * the in-memory [`Csr`] graph,
//! * the on-disk format: [`DiskCsrWriter`] / [`DiskCsr`] (mmap-backed),
//! * [`preprocess`] — the paper's preprocessing phase: text edge list →
//!   external sort → binary CSR (the "sharder"),
//! * [`generate`] — synthetic graphs (R-MAT, Erdős–Rényi, chains, stars,
//!   grids) used in place of the paper's SNAP datasets,
//! * [`datasets`] — scaled stand-ins for the paper's four graphs
//!   (google, soc-pokec, soc-LiveJournal, twitter-2010),
//! * [`delta`] — live graphs: the append-only edge-delta log, the merged
//!   [`GraphSnapshot`] view, and compaction back into a fresh CSR,
//! * [`framed`] — the CRC32-framed append-only line-log helper shared by
//!   the delta log and the serving layer's job journal.

pub mod csr;
pub mod datasets;
pub mod delta;
pub mod disk_csr;
pub mod edgelist;
pub mod framed;
pub mod generate;
pub mod preprocess;
mod types;
pub mod varint;

pub use csr::Csr;
pub use delta::{
    delta_path, open_live, DeltaBatch, DeltaLog, DeltaOverlay, GraphSnapshot, SnapshotCursor,
    SnapshotSeekCursor,
};
pub use disk_csr::{
    CsrFormatError, DiskCsr, DiskCsrWriter, EdgeCursor, SeekCursor, VertexEdges, VERSION_V1,
    VERSION_V2,
};
pub use edgelist::EdgeList;
pub use types::{Edge, VertexId, SEPARATOR};
